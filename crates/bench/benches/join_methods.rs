//! Criterion benchmark comparing Pass-Join with the ED-Join and Trie-Join
//! baselines (paper Figure 15, micro version).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::DatasetKind;
use passjoin_bench::harness::{corpus, figure15_roster};

fn bench_join_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("join-methods");
    group.sample_size(10);
    for (kind, n, tau) in [
        (DatasetKind::Author, 5_000, 2usize),
        (DatasetKind::QueryLog, 2_000, 4),
        (DatasetKind::AuthorTitle, 1_000, 6),
    ] {
        let coll = corpus(kind, n, 42);
        for (name, join) in figure15_roster(kind) {
            group.bench_with_input(
                BenchmarkId::new(name, format!("{}-tau{tau}", kind.name())),
                &coll,
                |b, coll| b.iter(|| join.self_join(coll, tau)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_join_methods);
criterion_main!(benches);
