//! Criterion micro-benchmarks of the edit-distance verification kernels
//! (the per-pair view of the paper's Figure 14).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{mutate, DatasetKind, DatasetSpec};
use editdist::{banded_within, edit_distance, length_aware_within, myers_within};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// Pairs drawn from a corpus: half mutated (similar), half random
/// (dissimilar) — the mix verification actually sees.
fn sample_pairs(kind: DatasetKind, n: usize, tau: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
    let strings = DatasetSpec::new(kind, n).generate();
    let mut rng = StdRng::seed_from_u64(0xbeef);
    let mut pairs = Vec::with_capacity(n);
    for (i, s) in strings.iter().enumerate() {
        let other = if i % 2 == 0 {
            mutate(s, rng.gen_range(0..=tau), &mut rng)
        } else {
            strings[rng.gen_range(0..strings.len())].clone()
        };
        pairs.push((s.clone(), other));
    }
    pairs
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    group.sample_size(20);
    for (kind, tau) in [(DatasetKind::Author, 3), (DatasetKind::AuthorTitle, 8)] {
        let pairs = sample_pairs(kind, 400, tau);
        group.bench_with_input(
            BenchmarkId::new("full-dp", kind.name()),
            &pairs,
            |b, pairs| {
                b.iter(|| {
                    let mut acc = 0usize;
                    for (x, y) in pairs {
                        acc += edit_distance(black_box(x), black_box(y));
                    }
                    acc
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("banded-2tau+1", kind.name()),
            &pairs,
            |b, pairs| {
                b.iter(|| {
                    let mut acc = 0usize;
                    for (x, y) in pairs {
                        acc += banded_within(black_box(x), black_box(y), tau).unwrap_or(tau + 1);
                    }
                    acc
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("myers-bit-parallel", kind.name()),
            &pairs,
            |b, pairs| {
                b.iter(|| {
                    let mut acc = 0usize;
                    for (x, y) in pairs {
                        acc += myers_within(black_box(x), black_box(y), tau).unwrap_or(tau + 1);
                    }
                    acc
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("length-aware-tau+1", kind.name()),
            &pairs,
            |b, pairs| {
                b.iter(|| {
                    let mut acc = 0usize;
                    for (x, y) in pairs {
                        acc +=
                            length_aware_within(black_box(x), black_box(y), tau).unwrap_or(tau + 1);
                    }
                    acc
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
