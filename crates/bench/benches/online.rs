//! Online-subsystem benchmark: build-then-query throughput of
//! `passjoin_online::OnlineIndex` vs. re-running a batch join per query
//! batch (what serving would cost without a standing index).
//!
//! Four measurements on an Author corpus with a mutated query mix:
//! `build` (index construction), `query-batch` (sequential and parallel
//! batched queries), `rejoin-baseline` (the same answers via
//! `PassJoin::rs_join` from scratch), and `query-cached` (a repeating
//! query mix through the LRU cache).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datagen::{DatasetKind, DatasetSpec};
use passjoin::PassJoin;
use passjoin_online::OnlineIndex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sj_common::StringCollection;

const CORPUS_N: usize = 20_000;
const QUERY_N: usize = 1_000;
const TAU: usize = 2;

fn corpus_strings() -> Vec<Vec<u8>> {
    DatasetSpec::new(DatasetKind::Author, CORPUS_N)
        .with_seed(42)
        .generate()
}

/// A serving-shaped query mix: half exact corpus strings, half mutated
/// within TAU edits (so most queries have at least one match).
fn query_mix(strings: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(7);
    (0..QUERY_N)
        .map(|_| {
            let s = &strings[rng.gen_range(0..strings.len())];
            if rng.gen_bool(0.5) {
                s.clone()
            } else {
                datagen::mutate(s, rng.gen_range(1..=TAU), &mut rng)
            }
        })
        .collect()
}

fn bench_online(c: &mut Criterion) {
    let strings = corpus_strings();
    let queries = query_mix(&strings);
    let index = OnlineIndex::from_strings(strings.iter(), TAU);

    let mut group = c.benchmark_group("online");
    group.sample_size(10);

    group.throughput(Throughput::Elements(CORPUS_N as u64));
    group.bench_with_input(
        BenchmarkId::new("build", CORPUS_N),
        &strings,
        |b, strings| b.iter(|| OnlineIndex::from_strings(strings.iter(), TAU)),
    );

    group.throughput(Throughput::Elements(QUERY_N as u64));
    group.bench_with_input(
        BenchmarkId::new("query-batch", "1-thread"),
        &queries,
        |b, queries| b.iter(|| index.query_batch(queries, TAU)),
    );
    group.bench_with_input(
        BenchmarkId::new("query-batch", "4-threads"),
        &queries,
        |b, queries| b.iter(|| index.par_query_batch(queries, TAU, 4)),
    );

    // The no-subsystem baseline: answering the same batch by joining the
    // query set against the corpus from scratch each time.
    let r_coll = StringCollection::new(queries.clone());
    let s_coll = StringCollection::new(strings.clone());
    group.bench_with_input(
        BenchmarkId::new("rejoin-baseline", "rs-join"),
        &(&r_coll, &s_coll),
        |b, (r, s)| b.iter(|| PassJoin::new().rs_join(r, s, TAU)),
    );

    // A skewed repeating mix through the cache (100 hot queries).
    let mut rng = StdRng::seed_from_u64(3);
    let hot: Vec<&Vec<u8>> = (0..100)
        .map(|_| &queries[rng.gen_range(0..queries.len())])
        .collect();
    group.bench_with_input(
        BenchmarkId::new("query-cached", "hot-100"),
        &hot,
        |b, hot| {
            let mut cached = OnlineIndex::from_strings(strings.iter(), TAU);
            let mut k = 0usize;
            b.iter(|| {
                k = (k + 1) % hot.len();
                cached.query_cached(hot[k], TAU)
            })
        },
    );

    group.finish();
}

criterion_group!(benches, bench_online);
criterion_main!(benches);
