//! Online-subsystem benchmark: build-then-query throughput of
//! `passjoin_online::OnlineIndex` vs. re-running a batch join per query
//! batch (what serving would cost without a standing index).
//!
//! Measurements on an Author corpus with a mutated query mix:
//! `build` (index construction), `query-batch` (sequential and parallel
//! batched queries), `rejoin-baseline` (the same answers via
//! `PassJoin::rs_join` from scratch), and `query-cached` (a repeating
//! query mix through the LRU cache).
//!
//! The `keys` group compares the segment-key backends (owned bytes vs.
//! integer-interned) on build and probe throughput, printing each side's
//! resident index size.
//!
//! The `persist` group measures the restart paths: `save` (snapshot
//! write), `load` (snapshot read, zero-copy arena + posting replay),
//! `load-direct` (buffered read, postings served from the file's sorted-run
//! appendix — no replay), `load-mmap` / `load-instant` (the storage
//! subsystem's `mmap(2)` paths, with eager vs. deferred deep validation),
//! `delta-replay` (base + a churn-generated delta checkpoint chain via
//! `load_chain`), and `rebuild-baseline` (what a restart costs without
//! persistence — `OnlineIndex::from_strings` from the raw corpus). After
//! the timed rows it prints restart-to-first-answer latency for each path
//! (the end-to-end number the storage subsystem exists to shrink) and an
//! instant-load timing at 10× corpus size (the O(1)-in-postings claim,
//! spot-checked).
//!
//! The `sinks` group measures the typed API's result shapes on a
//! match-heavy corpus: `full` (materialize everything), `topk`
//! (bounded-heap retrieval whose verification budget tightens as it
//! fills), `count` (no materialization), and `exists` (a capped count
//! that aborts probing at the first match) — the early-exit claims of
//! `SearchRequest::with_limit`/`count_only`, measured.
//!
//! The `budget` group measures per-request execution caps on the same
//! match-heavy corpus: the full batch unbudgeted vs. decreasing
//! per-query verification caps (`ExecBudget::with_max_verifications`).
//! The criterion shim's min/median/max output is the p50/worst latency
//! story: budgets trade completeness (reported per request as
//! `Completion::Truncated`) for a hard ceiling on per-query work.
//!
//! The `obs` group measures the observability layer: the same
//! match-heavy batch with the metrics registry detached (zero-cost
//! claim) vs. attached, then prints the enabled run's phase attribution
//! (plan/probe/verify/cache vs. total request time).
//!
//! All query groups run through `Queryable::search_batch`, the single
//! execution path behind every surface since the typed-API redesign.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datagen::{DatasetKind, DatasetSpec};
use passjoin::PassJoin;
use passjoin_online::{
    CachePolicy, EngineObs, ExecBudget, KeyBackend, OnlineIndex, Parallelism, Queryable,
    SearchRequest,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sj_common::StringCollection;

const CORPUS_N: usize = 20_000;
const QUERY_N: usize = 1_000;
const TAU: usize = 2;

fn corpus_strings() -> Vec<Vec<u8>> {
    DatasetSpec::new(DatasetKind::Author, CORPUS_N)
        .with_seed(42)
        .generate()
}

/// A serving-shaped query mix: half exact corpus strings, half mutated
/// within TAU edits (so most queries have at least one match).
fn query_mix(strings: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(7);
    (0..QUERY_N)
        .map(|_| {
            let s = &strings[rng.gen_range(0..strings.len())];
            if rng.gen_bool(0.5) {
                s.clone()
            } else {
                datagen::mutate(s, rng.gen_range(1..=TAU), &mut rng)
            }
        })
        .collect()
}

fn bench_online(c: &mut Criterion) {
    let strings = corpus_strings();
    let queries = query_mix(&strings);
    let index = OnlineIndex::from_strings(strings.iter(), TAU);

    let mut group = c.benchmark_group("online");
    group.sample_size(10);

    group.throughput(Throughput::Elements(CORPUS_N as u64));
    group.bench_with_input(
        BenchmarkId::new("build", CORPUS_N),
        &strings,
        |b, strings| b.iter(|| OnlineIndex::from_strings(strings.iter(), TAU)),
    );

    group.throughput(Throughput::Elements(QUERY_N as u64));
    let serial_reqs = SearchRequest::uniform(&queries, TAU);
    group.bench_with_input(
        BenchmarkId::new("query-batch", "1-thread"),
        &serial_reqs,
        |b, reqs| b.iter(|| index.search_batch(reqs)),
    );
    let par_reqs: Vec<SearchRequest> = queries
        .iter()
        .map(|q| SearchRequest::new(q.as_slice(), TAU).with_parallelism(Parallelism::Threads(4)))
        .collect();
    group.bench_with_input(
        BenchmarkId::new("query-batch", "4-threads"),
        &par_reqs,
        |b, reqs| b.iter(|| index.search_batch(reqs)),
    );

    // The no-subsystem baseline: answering the same batch by joining the
    // query set against the corpus from scratch each time.
    let r_coll = StringCollection::new(queries.clone());
    let s_coll = StringCollection::new(strings.clone());
    group.bench_with_input(
        BenchmarkId::new("rejoin-baseline", "rs-join"),
        &(&r_coll, &s_coll),
        |b, (r, s)| b.iter(|| PassJoin::new().rs_join(r, s, TAU)),
    );

    // A skewed repeating mix through the cache (100 hot queries).
    let mut rng = StdRng::seed_from_u64(3);
    let hot: Vec<&Vec<u8>> = (0..100)
        .map(|_| &queries[rng.gen_range(0..queries.len())])
        .collect();
    group.bench_with_input(
        BenchmarkId::new("query-cached", "hot-100"),
        &hot,
        |b, hot| {
            let cached = OnlineIndex::from_strings(strings.iter(), TAU);
            let reqs: Vec<SearchRequest> = hot
                .iter()
                .map(|q| SearchRequest::new(q.as_slice(), TAU).with_cache(CachePolicy::Use))
                .collect();
            let mut k = 0usize;
            b.iter(|| {
                k = (k + 1) % reqs.len();
                cached.search(&reqs[k])
            })
        },
    );

    group.finish();
}

/// Key-backend comparison (paper §6, "encode segments as integers"): the
/// same corpus through an owned-key and an interned-key index.
///
/// * `build` — insertion throughput (the interned side pays dictionary
///   interning up front);
/// * `probe` — the serving mix (half exact, half mutated queries): mostly
///   *verification*-bound, so it shows whether the backend swap is free on
///   an end-to-end hot path;
/// * `probe-miss` — matchless queries: nothing survives to verification,
///   so this isolates the probe machinery itself. The interned side
///   resolves each probed substring against the dictionary once (memoized
///   per query) and a global miss short-circuits every `(l, slot)` probe
///   of that substring, while the owned side re-hashes it per probe.
///
/// Resident index sizes are printed so the README's memory numbers come
/// from the same run.
fn bench_keys(c: &mut Criterion) {
    let strings = corpus_strings();
    let queries = query_mix(&strings);
    // Matchless probes: same length profile as the corpus, disjoint
    // alphabet — every candidate list lookup misses.
    let mut rng = StdRng::seed_from_u64(11);
    let miss_queries: Vec<Vec<u8>> = (0..QUERY_N)
        .map(|_| {
            let len = strings[rng.gen_range(0..strings.len())].len();
            (0..len).map(|_| rng.gen_range(b'0'..=b'9')).collect()
        })
        .collect();
    let backends = [KeyBackend::Owned, KeyBackend::Interned];

    let mut group = c.benchmark_group("keys");
    group.sample_size(10);

    group.throughput(Throughput::Elements(CORPUS_N as u64));
    for backend in backends {
        group.bench_with_input(
            BenchmarkId::new("build", backend.name()),
            &strings,
            |b, strings| {
                b.iter(|| {
                    OnlineIndex::builder(TAU)
                        .key_backend(backend)
                        .build_from(strings.iter())
                })
            },
        );
    }

    group.throughput(Throughput::Elements(QUERY_N as u64));
    let hit_reqs = SearchRequest::uniform(&queries, TAU);
    let miss_reqs = SearchRequest::uniform(&miss_queries, TAU);
    for backend in backends {
        let index = OnlineIndex::builder(TAU)
            .key_backend(backend)
            .build_from(strings.iter());
        let stats = index.stats();
        eprintln!(
            "keys/{}: {} segment entries, resident index ~{} KB",
            backend.name(),
            stats.segment_entries,
            stats.resident_bytes / 1024,
        );
        group.bench_with_input(
            BenchmarkId::new("probe", backend.name()),
            &hit_reqs,
            |b, reqs| b.iter(|| index.search_batch(reqs)),
        );
        group.bench_with_input(
            BenchmarkId::new("probe-miss", backend.name()),
            &miss_reqs,
            |b, reqs| b.iter(|| index.search_batch(reqs)),
        );
    }

    group.finish();
}

/// The match-heavy serving corpus shared by the `sinks` and `budget`
/// groups: ~9 length-diverse near-duplicates per base string, queried
/// with 200 base strings (every query has tens of matches).
fn heavy_corpus_and_queries() -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
    let base = DatasetSpec::new(DatasetKind::Author, 2_000)
        .with_seed(17)
        .generate();
    let mut rng = StdRng::seed_from_u64(23);
    let mut strings = Vec::with_capacity(base.len() * 10);
    for s in &base {
        for _ in 0..9 {
            strings.push(datagen::mutate(s, rng.gen_range(1..=TAU), &mut rng));
        }
        strings.push(s.clone());
    }
    let queries: Vec<Vec<u8>> = base.iter().step_by(10).take(200).cloned().collect();
    (strings, queries)
}

/// Result-shape comparison on a match-heavy corpus (every query has tens
/// of matches): what `limit`/`count_only` buy over full materialization.
///
/// * `full` — the classic collect-everything query;
/// * `topk` — the 10 closest matches on a bounded heap: once full, the
///   heap's worst distance tightens verification budgets and skips
///   whole probe lengths;
/// * `count` — same probing as `full` but no result vector;
/// * `exists` — `count_only` capped at 1: probing aborts at the first
///   verified match, the strongest early exit.
fn bench_sinks(c: &mut Criterion) {
    let (strings, queries) = heavy_corpus_and_queries();
    let index = OnlineIndex::from_strings(strings.iter(), TAU);

    let shapes: [(&str, Vec<SearchRequest>); 4] = [
        ("full", SearchRequest::uniform(&queries, TAU)),
        (
            "topk-10",
            SearchRequest::uniform(&queries, TAU)
                .into_iter()
                .map(|r| r.with_limit(10))
                .collect(),
        ),
        (
            "count",
            SearchRequest::uniform(&queries, TAU)
                .into_iter()
                .map(|r| r.count_only())
                .collect(),
        ),
        (
            "exists",
            SearchRequest::uniform(&queries, TAU)
                .into_iter()
                .map(|r| r.count_only().with_limit(1))
                .collect(),
        ),
    ];

    // The early exit is also *observable*, not just fast: print the
    // verification totals each shape actually ran.
    for (name, reqs) in &shapes {
        let totals = index.search_batch(reqs).totals();
        eprintln!("sinks/{name}: {} matches, {}", totals.matches, totals.stats);
    }

    let mut group = c.benchmark_group("sinks");
    group.sample_size(10);
    group.throughput(Throughput::Elements(queries.len() as u64));
    for (name, reqs) in &shapes {
        group.bench_with_input(BenchmarkId::new(*name, queries.len()), reqs, |b, reqs| {
            b.iter(|| index.search_batch(reqs))
        });
    }
    group.finish();
}

/// Verification-cap latency control (`ExecBudget`) on the match-heavy
/// corpus: the same 200-query batch unbudgeted and at decreasing
/// per-query verification caps. The shim's min/median/max is the
/// p50/worst story — caps bound the *worst* query without touching the
/// cheap ones. Truncation counts are printed so the trade is explicit.
fn bench_budget(c: &mut Criterion) {
    let (strings, queries) = heavy_corpus_and_queries();
    let index = OnlineIndex::from_strings(strings.iter(), TAU);

    let caps: [(&str, Option<u64>); 4] = [
        ("full", None),
        ("cap-1024", Some(1024)),
        ("cap-256", Some(256)),
        ("cap-64", Some(64)),
    ];
    let shapes: Vec<(&str, Vec<SearchRequest>)> = caps
        .iter()
        .map(|&(name, cap)| {
            let reqs = SearchRequest::uniform(&queries, TAU)
                .into_iter()
                .map(|r| match cap {
                    Some(n) => r.with_budget(ExecBudget::new().with_max_verifications(n)),
                    None => r,
                })
                .collect();
            (name, reqs)
        })
        .collect();

    // Budgets trade completeness for latency — print what each cap
    // actually skipped and found so the bench numbers read honestly.
    for (name, reqs) in &shapes {
        let totals = index.search_batch(reqs).totals();
        eprintln!(
            "budget/{name}: {} matches, {} truncated / {} queries, {}",
            totals.matches,
            totals.truncated,
            reqs.len(),
            totals.stats,
        );
    }

    let mut group = c.benchmark_group("budget");
    group.sample_size(10);
    group.throughput(Throughput::Elements(queries.len() as u64));
    for (name, reqs) in &shapes {
        group.bench_with_input(BenchmarkId::new(*name, queries.len()), reqs, |b, reqs| {
            b.iter(|| index.search_batch(reqs))
        });
    }
    group.finish();
}

/// Observability overhead: the match-heavy `sinks` batch through an index
/// with no metrics attached (the zero-cost claim — the engine takes the
/// uninstrumented path) vs. one carrying a live `EngineObs` (phase
/// timers, counters, trace hook all active). The two sides should be
/// within noise of each other; the enabled side's phase attribution is
/// printed afterwards so the "where did the time go" story comes from
/// the same run as the overhead number.
fn bench_obs(c: &mut Criterion) {
    let (strings, queries) = heavy_corpus_and_queries();
    let plain = OnlineIndex::from_strings(strings.iter(), TAU);
    let mut observed = OnlineIndex::from_strings(strings.iter(), TAU);
    let obs = Arc::new(EngineObs::new());
    observed.set_observability(Some(Arc::clone(&obs)));
    let reqs = SearchRequest::uniform(&queries, TAU);

    let mut group = c.benchmark_group("obs");
    group.sample_size(10);
    group.throughput(Throughput::Elements(queries.len() as u64));
    group.bench_with_input(
        BenchmarkId::new("disabled", queries.len()),
        &reqs,
        |b, reqs| b.iter(|| plain.search_batch(reqs)),
    );
    group.bench_with_input(
        BenchmarkId::new("enabled", queries.len()),
        &reqs,
        |b, reqs| b.iter(|| observed.search_batch(reqs)),
    );
    group.finish();

    let reg = obs.registry();
    let phase = |name: &str| reg.histogram(name).sum();
    let attributed = phase("passjoin_phase_plan_ns")
        + phase("passjoin_phase_probe_ns")
        + phase("passjoin_phase_verify_ns")
        + phase("passjoin_phase_cache_ns");
    let total = phase("passjoin_request_ns");
    eprintln!(
        "obs/enabled: {} requests, {attributed} of {total} ns attributed to phases ({:.1}%)",
        reg.counter("passjoin_requests_total").get(),
        100.0 * attributed as f64 / total.max(1) as f64,
    );
}

fn bench_persist(c: &mut Criterion) {
    let strings = corpus_strings();
    let index = OnlineIndex::from_strings(strings.iter(), TAU);
    let snapshot = index.snapshot();
    let path =
        std::env::temp_dir().join(format!("passjoin-bench-online-{}.snap", std::process::id()));

    let mut group = c.benchmark_group("persist");
    group.sample_size(10);
    group.throughput(Throughput::Elements(CORPUS_N as u64));

    group.bench_with_input(BenchmarkId::new("save", CORPUS_N), &snapshot, |b, snap| {
        b.iter(|| snap.save(&path).expect("snapshot save"))
    });

    snapshot.save(&path).expect("snapshot save");
    group.bench_with_input(BenchmarkId::new("load", CORPUS_N), &path, |b, path| {
        b.iter(|| OnlineIndex::load(path).expect("snapshot load"))
    });

    // The zero-rebuild lane: postings are served straight from the file's
    // sorted-run appendix, so load skips the per-posting replay entirely.
    group.bench_with_input(
        BenchmarkId::new("load-direct", CORPUS_N),
        &path,
        |b, path| b.iter(|| OnlineIndex::load_direct(path).expect("direct load")),
    );

    // The mmap lanes: `load-mmap` still deep-validates every section up
    // front; `load-instant` defers that to first access, so its cost is
    // O(sections), not O(bytes) — the instant-restart row.
    group.bench_with_input(BenchmarkId::new("load-mmap", CORPUS_N), &path, |b, path| {
        b.iter(|| passjoin_store::open_mapped(path).expect("mapped load"))
    });
    group.bench_with_input(
        BenchmarkId::new("load-instant", CORPUS_N),
        &path,
        |b, path| b.iter(|| passjoin_store::open_instant(path).expect("instant load")),
    );

    // Restart with pending mutations: replay a churn-generated delta
    // checkpoint on top of the base (the crash-recovery path).
    let store = passjoin_store::CheckpointedIndex::open(&path, passjoin_store::OpenOptions::new())
        .expect("open base for churn");
    for op in datagen::churn_ops(&strings, 1_000, 99) {
        match op {
            datagen::ChurnOp::Insert(s) => {
                store.insert(&s);
            }
            datagen::ChurnOp::Remove(id) => {
                store.remove(id);
            }
        }
    }
    store.checkpoint().expect("churn delta checkpoint");
    drop(store);
    group.bench_with_input(
        BenchmarkId::new("delta-replay", "1000-ops"),
        &path,
        |b, path| b.iter(|| passjoin_store::load_chain(path).expect("chain load")),
    );

    // The no-persistence restart baseline: rebuild the index from the raw
    // corpus (re-partition + re-insert every string).
    group.bench_with_input(
        BenchmarkId::new("rebuild-baseline", CORPUS_N),
        &strings,
        |b, strings| b.iter(|| OnlineIndex::from_strings(strings.iter(), TAU)),
    );

    group.finish();

    // Restart-to-first-answer: open the index, answer one query, wall
    // clock for the pair — the end-to-end latency a restarting server
    // adds to its first request. Best of 5 to shed cold-cache noise.
    let probe = SearchRequest::new(strings[0].as_slice(), TAU);
    let first_answer = |name: &str, open: &mut dyn FnMut() -> OnlineIndex| {
        let mut best = u128::MAX;
        for _ in 0..5 {
            let start = std::time::Instant::now();
            let index = open();
            std::hint::black_box(index.search(&probe));
            best = best.min(start.elapsed().as_nanos());
        }
        eprintln!(
            "persist/first-query {name}: {:.3} ms",
            best as f64 / 1_000_000.0
        );
    };
    first_answer("rebuild", &mut || {
        OnlineIndex::from_strings(strings.iter(), TAU)
    });
    first_answer("load", &mut || OnlineIndex::load(&path).expect("load"));
    first_answer("load-direct", &mut || {
        OnlineIndex::load_direct(&path).expect("direct load")
    });
    first_answer("load-mmap", &mut || {
        passjoin_store::open_mapped(&path).expect("mapped load")
    });
    first_answer("load-instant", &mut || {
        passjoin_store::open_instant(&path).expect("instant load")
    });
    first_answer("delta-replay", &mut || {
        passjoin_store::load_chain(&path).expect("chain load").0
    });

    // Scaling spot-check: instant load against a 10× corpus. The direct
    // appendix keeps open cost in section headers, not postings, so the
    // two timings should stay within the same small constant.
    let big: Vec<Vec<u8>> = DatasetSpec::new(DatasetKind::Author, CORPUS_N * 10)
        .with_seed(43)
        .generate();
    let big_path = std::env::temp_dir().join(format!(
        "passjoin-bench-online-{}-10x.snap",
        std::process::id()
    ));
    OnlineIndex::from_strings(big.iter(), TAU)
        .save(&big_path)
        .expect("10x snapshot save");
    let instant_min = |path: &std::path::PathBuf| {
        let mut best = u128::MAX;
        for _ in 0..10 {
            let start = std::time::Instant::now();
            std::hint::black_box(passjoin_store::open_instant(path).expect("instant load"));
            best = best.min(start.elapsed().as_nanos());
        }
        best as f64 / 1_000_000.0
    };
    eprintln!(
        "persist/instant-load scaling: {CORPUS_N} strings {:.3} ms, {} strings {:.3} ms",
        instant_min(&path),
        CORPUS_N * 10,
        instant_min(&big_path),
    );

    let _ = std::fs::remove_file(&big_path);
    for delta in passjoin_store::find_chain(&path) {
        let _ = std::fs::remove_file(delta);
    }
    let _ = std::fs::remove_file(&path);
}

criterion_group!(
    benches,
    bench_online,
    bench_keys,
    bench_persist,
    bench_sinks,
    bench_budget,
    bench_obs
);
criterion_main!(benches);
