//! Criterion benchmark of the parallel Pass-Join driver: thread scaling on
//! a candidate-heavy corpus (an extension beyond the paper, which defers
//! parallelism to future work).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datagen::DatasetKind;
use passjoin::PassJoin;
use passjoin_bench::harness::corpus;

fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel");
    group.sample_size(10);
    let n = 20_000;
    let coll = corpus(DatasetKind::Author, n, 42);
    group.throughput(Throughput::Elements(n as u64));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("author-tau3", format!("{threads}-threads")),
            &coll,
            |b, coll| b.iter(|| PassJoin::new().par_self_join(coll, 3, threads)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
