//! Sharded-router benchmark: batch query throughput of one
//! `ShardedIndex` with N shards vs the same router with a single shard,
//! on a serving-scale corpus (default 10⁶ strings — `ROUTER_BENCH_N`
//! overrides, e.g. `ROUTER_BENCH_N=10000000 cargo bench --bench router`).
//!
//! Every request carries a `Parallelism::Serial` hint, so shard fan-out
//! is the *only* parallelism axis being measured: the one-shard router
//! (and the plain `OnlineIndex` reference) walk the batch serially, the
//! N-shard router answers each sub-batch on its own scoped thread. The
//! headline acceptance number is `query-batch/N-shards` ≥ 1.5× the
//! one-shard elements/second at 10⁶ strings. The `build` pair prices
//! partitioned construction, and `query-batch/hash` shows the
//! all-shards-probed policy for contrast with banded routing (which
//! skips shards whose length band a query cannot reach).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datagen::{DatasetKind, DatasetSpec};
use passjoin_online::{OnlineIndex, Parallelism, Queryable, SearchRequest, ShardBy, ShardedIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const QUERY_N: usize = 1_000;
const TAU: usize = 2;
const SHARDS: usize = 8;

fn corpus_n() -> usize {
    std::env::var("ROUTER_BENCH_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000)
}

/// A serving-shaped query mix: half exact corpus strings, half mutated
/// within TAU edits.
fn query_mix(strings: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(7);
    (0..QUERY_N)
        .map(|_| {
            let s = &strings[rng.gen_range(0..strings.len())];
            if rng.gen_bool(0.5) {
                s.clone()
            } else {
                datagen::mutate(s, rng.gen_range(1..=TAU), &mut rng)
            }
        })
        .collect()
}

fn serial_reqs(queries: &[Vec<u8>]) -> Vec<SearchRequest<'_>> {
    queries
        .iter()
        .map(|q| SearchRequest::borrowed(q, TAU).with_parallelism(Parallelism::Serial))
        .collect()
}

fn bench_router(c: &mut Criterion) {
    let n = corpus_n();
    let strings = DatasetSpec::new(DatasetKind::Author, n)
        .with_seed(42)
        .generate();
    let queries = query_mix(&strings);

    eprintln!("router bench: building {n}-string indexes ({SHARDS}-shard router, 1-shard router, single index) …");
    let sharded = ShardedIndex::from_strings(strings.iter(), TAU, SHARDS);
    let one_shard = ShardedIndex::from_strings(strings.iter(), TAU, 1);
    let single = OnlineIndex::from_strings(strings.iter(), TAU);
    let hashed = ShardedIndex::builder(TAU)
        .shards(SHARDS)
        .shard_by(ShardBy::Hash)
        .build_from(strings.iter());

    let mut group = c.benchmark_group("router");
    group.sample_size(10);

    group.throughput(Throughput::Elements(n as u64));
    group.bench_with_input(BenchmarkId::new("build", "single"), &strings, |b, s| {
        b.iter(|| OnlineIndex::from_strings(s.iter(), TAU))
    });
    group.bench_with_input(
        BenchmarkId::new("build", format!("{SHARDS}-shards")),
        &strings,
        |b, s| b.iter(|| ShardedIndex::from_strings(s.iter(), TAU, SHARDS)),
    );

    let reqs = serial_reqs(&queries);
    group.throughput(Throughput::Elements(QUERY_N as u64));
    group.bench_with_input(
        BenchmarkId::new("query-batch", "single-index"),
        &reqs,
        |b, reqs| b.iter(|| single.search_batch(reqs)),
    );
    group.bench_with_input(
        BenchmarkId::new("query-batch", "1-shard"),
        &reqs,
        |b, reqs| b.iter(|| one_shard.search_batch(reqs)),
    );
    group.bench_with_input(
        BenchmarkId::new("query-batch", format!("{SHARDS}-shards")),
        &reqs,
        |b, reqs| b.iter(|| sharded.search_batch(reqs)),
    );
    group.bench_with_input(
        BenchmarkId::new("query-batch", format!("{SHARDS}-shards-hash")),
        &reqs,
        |b, reqs| b.iter(|| hashed.search_batch(reqs)),
    );

    group.finish();
}

criterion_group!(benches, bench_router);
criterion_main!(benches);
