//! Criterion benchmark of Pass-Join's scalability in the corpus size
//! (paper Figure 16, micro version). Near-linear growth shows up as a
//! near-constant per-element throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datagen::DatasetKind;
use passjoin::PassJoin;
use passjoin_bench::harness::corpus;
use sj_common::SimilarityJoin;

fn bench_scalability(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalability");
    group.sample_size(10);
    for n in [2_500usize, 5_000, 10_000, 20_000] {
        let coll = corpus(DatasetKind::Author, n, 42);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("author-tau2", n), &coll, |b, coll| {
            b.iter(|| PassJoin::new().self_join(coll, 2))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
