//! Criterion benchmark of the four substring-selection strategies
//! (paper Figure 13, micro version).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::DatasetKind;
use passjoin::Selection;
use passjoin_bench::harness::{corpus, selection_only};

fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection");
    group.sample_size(10);
    for (kind, n, tau) in [
        (DatasetKind::Author, 10_000, 3usize),
        (DatasetKind::AuthorTitle, 3_000, 8),
    ] {
        let coll = corpus(kind, n, 42);
        for selection in Selection::all() {
            group.bench_with_input(
                BenchmarkId::new(selection.name(), format!("{}-tau{tau}", kind.name())),
                &coll,
                |b, coll| b.iter(|| selection_only(coll, tau, selection)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
