//! Set-similarity lane benchmark: the `passjoin_setsim` prefix-filter
//! index and the streaming dedup pipeline.
//!
//! Groups:
//!
//! * `setsim/build` — inverted-index construction (tokenize, rarest-first
//!   dictionary, postings) over an AuthorTitle corpus.
//! * `setsim/query` — a mutated query batch swept across Jaccard
//!   thresholds. Before each timed run the filter's work profile is
//!   printed (candidates screened, merge verifications, matches), so the
//!   threshold sweep doubles as a prefix-filter selectivity table.
//! * `setsim-dedup/pipeline` — end-to-end streaming dedup throughput at
//!   10⁵ records (query-before-insert + union-find per record), the
//!   `cli dedup` hot path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datagen::{DatasetKind, DatasetSpec};
use passjoin_online::ExecStats;
use passjoin_setsim::{DedupPipeline, SetMetric, SetQuery, SetSimilarityIndex, TokenMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CORPUS_N: usize = 20_000;
const QUERY_N: usize = 1_000;
const DEDUP_N: usize = 100_000;
const Q: usize = 3;

fn corpus(n: usize) -> Vec<Vec<u8>> {
    DatasetSpec::new(DatasetKind::AuthorTitle, n)
        .with_seed(42)
        .generate()
}

/// A serving-shaped query mix: half exact corpus strings, half mutated
/// within 2 edits (so most queries keep high set similarity to a record).
fn query_mix(strings: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(7);
    (0..QUERY_N)
        .map(|_| {
            let s = &strings[rng.gen_range(0..strings.len())];
            if rng.gen_bool(0.5) {
                s.clone()
            } else {
                datagen::mutate(s, rng.gen_range(1..=2), &mut rng)
            }
        })
        .collect()
}

fn bench_setsim(c: &mut Criterion) {
    let strings = corpus(CORPUS_N);
    let queries = query_mix(&strings);
    let mode = TokenMode::Grams { q: Q };
    let index = SetSimilarityIndex::build_from(mode, &strings);

    let mut group = c.benchmark_group("setsim");
    group.sample_size(10);

    group.throughput(Throughput::Elements(CORPUS_N as u64));
    group.bench_with_input(
        BenchmarkId::new("build", format!("q{Q}-{CORPUS_N}")),
        &strings,
        |b, strings| b.iter(|| SetSimilarityIndex::build_from(mode, strings)),
    );

    group.throughput(Throughput::Elements(QUERY_N as u64));
    for threshold in [0.7, 0.8, 0.9] {
        // One untimed pass first: the filter's work profile at this
        // threshold, so the sweep reads as a selectivity table.
        let mut totals = ExecStats::default();
        let mut matches = 0usize;
        for q in &queries {
            let outcome = index.search(&SetQuery::new(q, SetMetric::Jaccard, threshold));
            totals.merge(&outcome.stats);
            matches += outcome.count;
        }
        println!(
            "setsim/query/jaccard-{threshold}: {} candidates -> {} verifications -> {matches} matches ({QUERY_N} queries)",
            totals.candidates, totals.verifications
        );
        group.bench_with_input(
            BenchmarkId::new("query", format!("jaccard-{threshold}")),
            &queries,
            |b, queries| {
                b.iter(|| {
                    queries
                        .iter()
                        .map(|q| {
                            index
                                .search(&SetQuery::new(q, SetMetric::Jaccard, threshold))
                                .count
                        })
                        .sum::<usize>()
                })
            },
        );
    }

    group.finish();
}

fn bench_dedup(c: &mut Criterion) {
    let strings = DatasetSpec::new(DatasetKind::AuthorTitle, DEDUP_N)
        .with_seed(42)
        .with_duplicate_rate(0.08)
        .with_max_planted_edits(1)
        .generate();
    let mode = TokenMode::Grams { q: Q };

    // Work profile once, untimed: what a full streaming pass does.
    {
        let mut pipeline = DedupPipeline::new(mode, SetMetric::Jaccard, 0.8);
        for record in &strings {
            pipeline.push(record);
        }
        let clusters = pipeline.clusters().len();
        let stats = pipeline.stats();
        println!(
            "setsim-dedup/pipeline: {} records -> {clusters} clusters; {} candidates -> {} verifications -> {} matches",
            DEDUP_N, stats.candidates, stats.verifications, stats.segment_matches
        );
    }

    let mut group = c.benchmark_group("setsim-dedup");
    group.sample_size(2);
    group.throughput(Throughput::Elements(DEDUP_N as u64));
    group.bench_with_input(
        BenchmarkId::new("pipeline", format!("jaccard-0.8-q{Q}-{DEDUP_N}")),
        &strings,
        |b, strings| {
            b.iter(|| {
                let mut pipeline = DedupPipeline::new(mode, SetMetric::Jaccard, 0.8);
                for record in strings {
                    pipeline.push(record);
                }
                pipeline.matched_records()
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_setsim, bench_dedup);
criterion_main!(benches);
