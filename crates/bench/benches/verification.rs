//! Criterion benchmark of the four verification strategies inside a full
//! Pass-Join run (paper Figure 14, micro version).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::DatasetKind;
use passjoin::Verification;
use passjoin_bench::harness::{corpus, figure14_join};
use sj_common::SimilarityJoin;

fn bench_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("verification");
    group.sample_size(10);
    for (kind, n, tau) in [
        (DatasetKind::Author, 5_000, 2usize),
        (DatasetKind::QueryLog, 2_000, 5),
    ] {
        let coll = corpus(kind, n, 42);
        for verification in Verification::figure14() {
            group.bench_with_input(
                BenchmarkId::new(verification.name(), format!("{}-tau{tau}", kind.name())),
                &coll,
                |b, coll| b.iter(|| figure14_join(verification).self_join(coll, tau)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_verification);
criterion_main!(benches);
