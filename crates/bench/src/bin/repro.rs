//! `repro` — regenerates every table and figure of the Pass-Join
//! evaluation (paper §6) on the synthetic stand-in corpora.
//!
//! ```text
//! repro <experiment> [--scale F] [--seed N] [--out DIR]
//!
//! experiments:
//!   table2   dataset statistics vs the paper's Table 2
//!   fig11    string length distributions
//!   fig12    number of selected substrings (4 selection methods)
//!   fig13    elapsed time for generating substrings
//!   fig14    elapsed time for verification (4 verification methods)
//!   fig15    comparison with ED-Join and Trie-Join
//!   fig16    scalability of Pass-Join
//!   table3   index sizes
//!   tune-q   ED-Join gram-length sweep (the paper's "tuned q")
//!   ablation-partition   even vs left-heavy partition (DESIGN.md ablation)
//!   serve    online serving workload; dumps the metrics registry as JSON
//!   all      everything above
//!
//! options:
//!   --scale F   multiply all corpus sizes by F (default 1.0; the defaults
//!               are ~10x smaller than the paper's corpora)
//!   --seed N    RNG seed for corpus generation (default 42)
//!   --out DIR   write CSV series under DIR (default results/)
//! ```
//!
//! Every run prints aligned tables and writes one CSV per experiment, so
//! the series can be plotted directly against the paper's figures.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use datagen::{DatasetKind, DatasetSpec};
use edjoin::EdJoin;
use passjoin::{PartitionScheme, PassJoin, Selection, Verification};
use passjoin_bench::harness::{
    corpus, default_cardinality, figure14_join, figure15_roster, selection_only, tuned_q,
};
use passjoin_bench::report::Report;
use passjoin_online::{CachePolicy, EngineObs, OnlineIndex, Queryable, SearchRequest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sj_common::{SimilarityJoin, StringCollection};

struct Opts {
    scale: f64,
    seed: u64,
    out: PathBuf,
}

impl Opts {
    fn cardinality(&self, kind: DatasetKind) -> usize {
        ((default_cardinality(kind) as f64 * self.scale) as usize).max(100)
    }

    fn corpus(&self, kind: DatasetKind) -> StringCollection {
        let n = self.cardinality(kind);
        eprintln!("[repro] generating {} corpus, n={n}", kind.name());
        corpus(kind, n, self.seed)
    }

    fn emit(&self, report: &Report) {
        report.print();
        println!();
        if let Err(e) = report.save_csv(&self.out) {
            eprintln!("[repro] warning: could not write CSV: {e}");
        }
    }
}

fn fmt_secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Table 2: synthetic dataset statistics next to the paper's.
fn table2(opts: &Opts) {
    let mut r = Report::new(
        "table2-datasets",
        &[
            "dataset",
            "cardinality",
            "avg-len",
            "max-len",
            "min-len",
            "paper-avg",
            "paper-max",
            "paper-min",
        ],
    );
    for kind in DatasetKind::all() {
        let c = opts.corpus(kind);
        let (_, pavg, pmax, pmin) = kind.paper_stats();
        r.push_row(vec![
            kind.name().into(),
            c.len().to_string(),
            format!("{:.2}", c.avg_len()),
            c.max_len().to_string(),
            c.min_len().to_string(),
            format!("{pavg:.2}"),
            pmax.to_string(),
            pmin.to_string(),
        ]);
    }
    opts.emit(&r);
}

/// Figure 11: length histograms (full series in the CSV; top lengths printed).
fn fig11(opts: &Opts) {
    for kind in DatasetKind::all() {
        let c = opts.corpus(kind);
        let hist = c.length_histogram();
        let mut r = Report::new(format!("fig11-{}", slug(kind)), &["length", "count"]);
        for (len, count) in &hist {
            r.push_row(vec![len.to_string(), count.to_string()]);
        }
        // Print a compact view: the busiest 12 lengths.
        let mut top = hist.clone();
        top.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        top.truncate(12);
        top.sort_unstable();
        let mut compact = Report::new(
            format!("fig11-{}-top (avg {:.1})", slug(kind), c.avg_len()),
            &["length", "count"],
        );
        for (len, count) in top {
            compact.push_row(vec![len.to_string(), count.to_string()]);
        }
        compact.print();
        println!();
        if let Err(e) = r.save_csv(&opts.out) {
            eprintln!("[repro] warning: could not write CSV: {e}");
        }
    }
}

/// Figures 12 and 13: selected-substring counts and selection time.
fn fig12_13(opts: &Opts, timing: bool) {
    let name = if timing {
        "fig13-selection-time"
    } else {
        "fig12-selected-substrings"
    };
    for kind in DatasetKind::all() {
        let c = opts.corpus(kind);
        let mut r = Report::new(
            format!("{name}-{}", slug(kind)),
            &["tau", "length", "shift", "position", "multi-match"],
        );
        for &tau in kind.figure12_taus() {
            let mut row = vec![tau.to_string()];
            for selection in Selection::all() {
                let (count, elapsed) = selection_only(&c, tau, selection);
                row.push(if timing {
                    fmt_secs(elapsed)
                } else {
                    count.to_string()
                });
            }
            r.push_row(row);
        }
        opts.emit(&r);
    }
}

/// Figure 14: join time under the four verification methods.
fn fig14(opts: &Opts) {
    for kind in DatasetKind::all() {
        let c = opts.corpus(kind);
        let mut r = Report::new(
            format!("fig14-verification-{}", slug(kind)),
            &[
                "tau",
                "2tau+1",
                "tau+1",
                "extension",
                "share-prefix",
                "results",
            ],
        );
        for &tau in kind.figure12_taus() {
            let mut row = vec![tau.to_string()];
            let mut results = 0;
            for verification in Verification::figure14() {
                let out = figure14_join(verification).self_join(&c, tau);
                eprintln!(
                    "[repro]   {} tau={tau} {}: {:?}",
                    kind.name(),
                    verification.name(),
                    out.elapsed
                );
                row.push(fmt_secs(out.elapsed));
                results = out.stats.results;
            }
            row.push(results.to_string());
            r.push_row(row);
        }
        opts.emit(&r);
    }
}

/// Figure 15: Pass-Join vs ED-Join vs Trie-Join, total elapsed time.
fn fig15(opts: &Opts) {
    // The baselines are orders of magnitude slower in their bad regimes
    // (that is the point of the figure); scale their corpora down further
    // so the sweep completes.
    let sizes = [
        (DatasetKind::Author, 30_000),
        (DatasetKind::QueryLog, 10_000),
        (DatasetKind::AuthorTitle, 5_000),
    ];
    for (kind, base) in sizes {
        let n = ((base as f64 * opts.scale) as usize).max(100);
        eprintln!("[repro] generating {} corpus, n={n}", kind.name());
        let c = corpus(kind, n, opts.seed);
        let roster = figure15_roster(kind);
        let names: Vec<String> = roster.iter().map(|(n, _)| n.clone()).collect();
        let mut headers: Vec<&str> = vec!["tau"];
        headers.extend(names.iter().map(String::as_str));
        headers.push("results");
        let mut r = Report::new(format!("fig15-comparison-{}", slug(kind)), &headers);
        for &tau in kind.figure15_taus() {
            let mut row = vec![tau.to_string()];
            let mut results = 0;
            for (name, join) in &roster {
                let out = join.self_join(&c, tau);
                eprintln!(
                    "[repro]   {} tau={tau} {}: {:?} ({} results)",
                    kind.name(),
                    name,
                    out.elapsed,
                    out.stats.results
                );
                row.push(fmt_secs(out.elapsed));
                results = out.stats.results;
            }
            row.push(results.to_string());
            r.push_row(row);
        }
        opts.emit(&r);
    }
}

/// Figure 16: Pass-Join scalability in the collection size.
fn fig16(opts: &Opts) {
    for kind in DatasetKind::all() {
        let full = opts.cardinality(kind);
        let steps: Vec<usize> = (1..=4).map(|i| full * i / 4).collect();
        let taus = kind.figure12_taus();
        let mut headers: Vec<String> = vec!["n".into()];
        headers.extend(taus.iter().map(|t| format!("tau={t}")));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut r = Report::new(format!("fig16-scalability-{}", slug(kind)), &header_refs);
        for &n in &steps {
            eprintln!("[repro] generating {} corpus, n={n}", kind.name());
            let c = corpus(kind, n, opts.seed);
            let mut row = vec![n.to_string()];
            for &tau in taus {
                let out = PassJoin::new().self_join(&c, tau);
                row.push(fmt_secs(out.elapsed));
            }
            r.push_row(row);
        }
        opts.emit(&r);
    }
}

/// Table 3: index sizes (MB) of the three algorithms.
fn table3(opts: &Opts) {
    let mut r = Report::new(
        "table3-index-sizes",
        &[
            "dataset",
            "data-MB",
            "ed-join-MB",
            "trie-join-MB",
            "pass-join-MB",
            "(q)",
            "(tau)",
        ],
    );
    for kind in DatasetKind::all() {
        let c = opts.corpus(kind);
        let tau = 4; // the paper's Table 3 uses tau=4 for Pass-Join
        let q = tuned_q(kind);
        let mb = |b: u64| format!("{:.2}", b as f64 / (1024.0 * 1024.0));
        let ed = EdJoin::new(q).self_join(&c, tau);
        let trie = triejoin::TrieJoin::new().self_join(&c, tau);
        let pass = PassJoin::new().self_join(&c, tau);
        r.push_row(vec![
            kind.name().into(),
            mb(c.total_bytes() as u64),
            mb(ed.stats.index_bytes),
            mb(trie.stats.index_bytes),
            mb(pass.stats.index_bytes),
            q.to_string(),
            tau.to_string(),
        ]);
    }
    opts.emit(&r);
}

/// ED-Join q sweep: reproduces the paper's "tuned q" choice.
fn tune_q(opts: &Opts) {
    let sizes = [
        (DatasetKind::Author, 10_000),
        (DatasetKind::QueryLog, 5_000),
        (DatasetKind::AuthorTitle, 3_000),
    ];
    for (kind, base) in sizes {
        let n = ((base as f64 * opts.scale) as usize).max(100);
        let c = corpus(kind, n, opts.seed);
        let taus = kind.figure12_taus();
        let mid_tau = taus[taus.len() / 2];
        let mut r = Report::new(
            format!("tune-q-{}", slug(kind)),
            &["q", "seconds", "candidates"],
        );
        for q in 2..=5 {
            let out = EdJoin::new(q).self_join(&c, mid_tau);
            r.push_row(vec![
                q.to_string(),
                fmt_secs(out.elapsed),
                out.stats.candidate_occurrences.to_string(),
            ]);
        }
        println!("(dataset {} at tau={mid_tau}, n={n})", kind.name());
        opts.emit(&r);
    }
}

/// Ablation: the even partition (§3.1) vs a deliberately unbalanced one.
/// Short segments match everywhere, flooding the candidate set — this run
/// quantifies the paper's argument for balanced segments.
fn ablation_partition(opts: &Opts) {
    let sizes = [
        (DatasetKind::Author, 20_000),
        (DatasetKind::QueryLog, 5_000),
    ];
    for (kind, base) in sizes {
        let n = ((base as f64 * opts.scale) as usize).max(100);
        let c = corpus(kind, n, opts.seed);
        let taus = kind.figure12_taus();
        let mut r = Report::new(
            format!("ablation-partition-{}", slug(kind)),
            &[
                "tau",
                "even-s",
                "left-heavy-s",
                "even-cands",
                "left-heavy-cands",
            ],
        );
        for &tau in &taus[..2.min(taus.len())] {
            let even = PassJoin::new().self_join(&c, tau);
            let heavy = PassJoin::new()
                .with_partition(PartitionScheme::LeftHeavy)
                .self_join(&c, tau);
            assert_eq!(
                even.normalized_pairs(),
                heavy.normalized_pairs(),
                "partition schemes must agree on results"
            );
            r.push_row(vec![
                tau.to_string(),
                fmt_secs(even.elapsed),
                fmt_secs(heavy.elapsed),
                even.stats.candidate_occurrences.to_string(),
                heavy.stats.candidate_occurrences.to_string(),
            ]);
        }
        opts.emit(&r);
    }
}

/// `serve`: the online subsystem under a serving-shaped workload with the
/// observability registry attached. The human table reports per-shape
/// throughput; the same run's complete metrics registry is written as
/// machine-readable JSON next to the CSVs (`metrics.json`), so two runs
/// can be diffed field by field (see README "Observability").
fn serve(opts: &Opts) {
    let tau = 2;
    let n = ((20_000_f64 * opts.scale) as usize).max(100);
    eprintln!("[repro] generating author corpus, n={n}");
    let strings = DatasetSpec::new(DatasetKind::Author, n)
        .with_seed(opts.seed)
        .generate();
    // A serving-shaped mix: half exact corpus strings, half mutated
    // within tau edits, so most queries land at least one match.
    let mut rng = StdRng::seed_from_u64(opts.seed ^ 0x5e57e);
    let queries: Vec<Vec<u8>> = (0..(n / 10).max(100))
        .map(|_| {
            let s = &strings[rng.gen_range(0..strings.len())];
            if rng.gen_bool(0.5) {
                s.clone()
            } else {
                datagen::mutate(s, rng.gen_range(1..=tau), &mut rng)
            }
        })
        .collect();

    let obs = Arc::new(EngineObs::new());
    let mut index = OnlineIndex::from_strings(strings.iter(), tau);
    index.set_observability(Some(Arc::clone(&obs)));

    let shapes: [(&str, Vec<SearchRequest>); 3] = [
        ("full", SearchRequest::uniform(&queries, tau)),
        (
            "topk-10",
            SearchRequest::uniform(&queries, tau)
                .into_iter()
                .map(|r| r.with_limit(10))
                .collect(),
        ),
        (
            "cached",
            SearchRequest::uniform(&queries, tau)
                .into_iter()
                .map(|r| r.with_cache(CachePolicy::Use))
                .collect(),
        ),
    ];
    let mut r = Report::new(
        "serve-metrics",
        &["shape", "queries", "matches", "elapsed-s", "queries-per-s"],
    );
    for (name, reqs) in &shapes {
        let started = Instant::now();
        let totals = index.search_batch(reqs).totals();
        let elapsed = started.elapsed();
        r.push_row(vec![
            (*name).into(),
            reqs.len().to_string(),
            totals.matches.to_string(),
            fmt_secs(elapsed),
            format!("{:.0}", reqs.len() as f64 / elapsed.as_secs_f64().max(1e-9)),
        ]);
    }
    obs.record_index_stats(&index.stats());
    opts.emit(&r);

    let path = opts.out.join("metrics.json");
    let write =
        std::fs::create_dir_all(&opts.out).and_then(|()| std::fs::write(&path, obs.render_json()));
    match write {
        Ok(()) => eprintln!("[repro] wrote {}", path.display()),
        Err(e) => eprintln!("[repro] warning: could not write metrics.json: {e}"),
    }
}

fn slug(kind: DatasetKind) -> &'static str {
    match kind {
        DatasetKind::Author => "author",
        DatasetKind::QueryLog => "querylog",
        DatasetKind::AuthorTitle => "authortitle",
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(experiment) = args.next() else {
        eprintln!("usage: repro <table2|fig11|fig12|fig13|fig14|fig15|fig16|table3|tune-q|ablation-partition|serve|all> [--scale F] [--seed N] [--out DIR]");
        return ExitCode::FAILURE;
    };
    let mut opts = Opts {
        scale: 1.0,
        seed: 42,
        out: PathBuf::from("results"),
    };
    let rest: Vec<String> = args.collect();
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--scale" => {
                opts.scale = rest
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--scale requires a float");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--seed" => {
                opts.seed = rest
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--seed requires an integer");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--out" => {
                opts.out = PathBuf::from(rest.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                }));
                i += 2;
            }
            other => {
                eprintln!("unknown option: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    match experiment.as_str() {
        "table2" => table2(&opts),
        "fig11" => fig11(&opts),
        "fig12" => fig12_13(&opts, false),
        "fig13" => fig12_13(&opts, true),
        "fig14" => fig14(&opts),
        "fig15" => fig15(&opts),
        "fig16" => fig16(&opts),
        "table3" => table3(&opts),
        "tune-q" => tune_q(&opts),
        "ablation-partition" => ablation_partition(&opts),
        "serve" => serve(&opts),
        "all" => {
            table2(&opts);
            fig11(&opts);
            fig12_13(&opts, false);
            fig12_13(&opts, true);
            fig14(&opts);
            fig15(&opts);
            fig16(&opts);
            table3(&opts);
            tune_q(&opts);
            ablation_partition(&opts);
            serve(&opts);
        }
        other => {
            eprintln!("unknown experiment: {other}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
