//! Quick cross-algorithm smoke comparison (not part of the figure
//! reproduction; see `repro` for that).

use datagen::{DatasetKind, DatasetSpec};
use edjoin::EdJoin;
use passjoin::PassJoin;
use sj_common::{SimilarityJoin, StringCollection};
use triejoin::TrieJoin;

fn run(name: &str, join: &dyn SimilarityJoin, coll: &StringCollection, tau: usize) {
    let out = join.self_join(coll, tau);
    println!(
        "  {name:<14} tau={tau} time={:>10.3?} results={:<8} cand={:<10} idx={}KB",
        out.elapsed,
        out.stats.results,
        out.stats.candidate_occurrences,
        out.stats.index_bytes / 1024
    );
}

fn main() {
    for (kind, n, taus) in [
        (DatasetKind::Author, 20_000, &[1usize, 2][..]),
        (DatasetKind::QueryLog, 10_000, &[4][..]),
        (DatasetKind::AuthorTitle, 10_000, &[6][..]),
    ] {
        let coll = DatasetSpec::new(kind, n).collection();
        println!("{} n={} avg_len={:.1}", kind.name(), n, coll.avg_len());
        for &tau in taus {
            run("pass-join", &PassJoin::new(), &coll, tau);
            run("ed-join(q=2)", &EdJoin::new(2), &coll, tau);
            run("ed-join(q=3)", &EdJoin::new(3), &coll, tau);
            run("trie-join", &TrieJoin::new(), &coll, tau);
        }
    }
}
