//! Shared machinery for the experiment reproductions: dataset scaling,
//! the algorithm roster of Figure 15, and the selection-only measurement
//! used by Figures 12–13.

use std::time::{Duration, Instant};

use datagen::{DatasetKind, DatasetSpec};
use edjoin::EdJoin;
use passjoin::partition::segment;
use passjoin::{PassJoin, Selection, Verification};
use sj_common::{JoinOutput, SimilarityJoin, StringCollection};
use triejoin::{TrieJoin, TrieVariant};

/// Default corpus sizes for the reproduction runs, scaled down ~10× from
/// the paper so `repro all` finishes on a laptop; `--scale` restores any
/// fraction of the paper's cardinality.
pub fn default_cardinality(kind: DatasetKind) -> usize {
    match kind {
        DatasetKind::Author => 60_000,
        DatasetKind::QueryLog => 40_000,
        DatasetKind::AuthorTitle => 40_000,
    }
}

/// The q the harness uses for ED-Join per dataset, following the paper's
/// "we tuned its parameter q and reported the best results" (see the
/// `tune-q` subcommand for the reproducible sweep).
pub fn tuned_q(kind: DatasetKind) -> usize {
    match kind {
        DatasetKind::Author => 2,
        DatasetKind::QueryLog => 3,
        DatasetKind::AuthorTitle => 4,
    }
}

/// Generates the reproduction corpus for `kind` at `cardinality`.
pub fn corpus(kind: DatasetKind, cardinality: usize, seed: u64) -> StringCollection {
    DatasetSpec::new(kind, cardinality)
        .with_seed(seed)
        .collection()
}

/// The Figure 15 roster: Pass-Join (paper configuration), ED-Join with the
/// tuned q, and Trie-Join (PathStack).
pub fn figure15_roster(kind: DatasetKind) -> Vec<(String, Box<dyn SimilarityJoin>)> {
    vec![
        (
            "pass-join".into(),
            Box::new(PassJoin::new()) as Box<dyn SimilarityJoin>,
        ),
        (
            format!("ed-join(q={})", tuned_q(kind)),
            Box::new(EdJoin::new(tuned_q(kind))),
        ),
        (
            "trie-join".into(),
            Box::new(TrieJoin::new().with_variant(TrieVariant::PathStack)),
        ),
    ]
}

/// Runs a join and returns its output; elapsed time is measured inside the
/// drivers (index construction included, matching the paper's "elapsed
/// time included the indexing time and the join time").
pub fn run_join(join: &dyn SimilarityJoin, coll: &StringCollection, tau: usize) -> JoinOutput {
    join.self_join(coll, tau)
}

/// Counts and times substring selection alone (Figures 12–13): replicates
/// the join's probing loop — same visit order, same "only lengths already
/// indexed" rule — without building the index or verifying anything.
pub fn selection_only(
    coll: &StringCollection,
    tau: usize,
    selection: Selection,
) -> (u64, Duration) {
    let mut lengths_seen = vec![false; coll.max_len() + 1];
    let mut selected: u64 = 0;
    let mut sink: usize = 0; // defeat dead-code elimination cheaply
    let started = Instant::now();
    for (_, s) in coll.iter() {
        if s.len() > tau {
            let lmin = (tau + 1).max(s.len().saturating_sub(tau));
            #[allow(clippy::needless_range_loop)] // l is a string length, not a slice index
            for l in lmin..=s.len() {
                if !lengths_seen[l] {
                    continue;
                }
                for slot in 1..=tau + 1 {
                    let seg = segment(l, tau, slot);
                    let window = selection.window(s.len(), l, seg, slot, tau);
                    selected += window.len() as u64;
                    for p in window {
                        // Materialize the substring exactly as the join
                        // would before hashing it.
                        let w = &s[p..p + seg.len];
                        sink ^= w.len() + p;
                    }
                }
            }
            lengths_seen[s.len()] = true;
        }
    }
    let elapsed = started.elapsed();
    std::hint::black_box(sink);
    (selected, elapsed)
}

/// One Figure 14 configuration: Pass-Join with multi-match selection and
/// the given verification strategy.
pub fn figure14_join(verification: Verification) -> PassJoin {
    PassJoin::new()
        .with_selection(Selection::MultiMatch)
        .with_verification(verification)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_only_matches_join_stats() {
        let coll = corpus(DatasetKind::Author, 2_000, 7);
        for tau in [1usize, 3] {
            for selection in Selection::all() {
                let (count, _) = selection_only(&coll, tau, selection);
                let out = PassJoin::new()
                    .with_selection(selection)
                    .self_join(&coll, tau);
                assert_eq!(
                    count,
                    out.stats.selected_substrings,
                    "{} tau={tau}",
                    selection.name()
                );
            }
        }
    }

    #[test]
    fn roster_produces_identical_results() {
        let coll = corpus(DatasetKind::Author, 1_500, 9);
        let expected = PassJoin::new().self_join(&coll, 2).normalized_pairs();
        for (name, join) in figure15_roster(DatasetKind::Author) {
            let got = join.self_join(&coll, 2).normalized_pairs();
            assert_eq!(got, expected, "{name}");
        }
    }

    #[test]
    fn default_cardinalities_are_positive() {
        for kind in DatasetKind::all() {
            assert!(default_cardinality(kind) > 0);
            assert!(tuned_q(kind) >= 2);
        }
    }
}
