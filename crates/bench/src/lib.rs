//! Benchmark harness for the Pass-Join reproduction.
//!
//! The `repro` binary regenerates every table and figure of the paper's
//! evaluation (§6) — see `repro --help`. [`report`] renders/persists the
//! result tables; [`harness`] holds the dataset scaling, the tuned
//! baseline parameters, and the selection-only measurement loop shared by
//! the binary and the Criterion benches.

pub mod harness;
pub mod report;
