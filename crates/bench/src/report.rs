//! Plain-text tables and CSV series for the experiment reproductions.
//!
//! Every `repro` subcommand produces one [`Report`]: a header row plus data
//! rows, printed aligned to stdout and optionally persisted as CSV under
//! `results/` so the series can be re-plotted against the paper's figures.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A rectangular result table.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id, e.g. `fig12-author`; used as the CSV file stem.
    pub name: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (stringified by the producer).
    pub rows: Vec<Vec<String>>,
}

impl Report {
    /// Creates an empty report with the given name and headers.
    pub fn new<S: Into<String>>(name: S, headers: &[&str]) -> Self {
        Self {
            name: name.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; must match the header arity.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Renders an aligned plain-text table.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.name);
        let render = |cells: &[String], widths: &[usize], out: &mut String| {
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(out, "{cell:>w$}  ", w = *w);
            }
            out.pop();
            out.pop();
            out.push('\n');
        };
        render(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            render(row, &widths, &mut out);
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.to_text());
    }

    /// Writes `<dir>/<name>.csv`.
    pub fn save_csv(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        fs::write(dir.join(format!("{}.csv", self.name)), out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_text() {
        let mut r = Report::new("demo", &["tau", "time"]);
        r.push_row(vec!["1".into(), "10.5".into()]);
        r.push_row(vec!["10".into(), "300.25".into()]);
        let text = r.to_text();
        assert!(text.contains("== demo =="));
        assert!(text.contains("tau"));
        assert!(text.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut r = Report::new("demo", &["a", "b"]);
        r.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("passjoin_report_test");
        let mut r = Report::new("csvtest", &["x", "y"]);
        r.push_row(vec!["1".into(), "2".into()]);
        r.save_csv(&dir).unwrap();
        let text = fs::read_to_string(dir.join("csvtest.csv")).unwrap();
        assert_eq!(text, "x,y\n1,2\n");
    }
}
