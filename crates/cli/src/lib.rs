//! Library half of the `simjoin` command-line tool: argument parsing and
//! the join dispatch, kept out of `main.rs` so they are unit-testable.

use std::path::PathBuf;

use edjoin::EdJoin;
use passjoin::PassJoin;
use sj_common::{JoinOutput, SimilarityJoin, StringCollection};
use triejoin::TrieJoin;

/// Which algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Pass-Join with the paper's default configuration.
    Pass,
    /// Pass-Join's multi-threaded driver.
    PassParallel,
    /// ED-Join (q-gram prefix filtering), q in [`Config::q`].
    Ed,
    /// Trie-Join (PathStack).
    Trie,
}

impl Algorithm {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "pass" => Ok(Algorithm::Pass),
            "pass-par" => Ok(Algorithm::PassParallel),
            "ed" => Ok(Algorithm::Ed),
            "trie" => Ok(Algorithm::Trie),
            other => Err(format!(
                "unknown algorithm '{other}' (expected pass, pass-par, ed, trie)"
            )),
        }
    }
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Input corpus: one string per line.
    pub input: PathBuf,
    /// Edit-distance threshold.
    pub tau: usize,
    /// Algorithm (default Pass-Join).
    pub algorithm: Algorithm,
    /// Gram length for ED-Join.
    pub q: usize,
    /// Worker threads for `pass-par` (0 = auto).
    pub threads: usize,
    /// Where to write pairs (stdout when `None`).
    pub output: Option<PathBuf>,
    /// Print statistics to stderr.
    pub stats: bool,
}

/// The usage string printed on parse errors.
pub const USAGE: &str = "usage: simjoin <corpus.txt> --tau N \
[--algorithm pass|pass-par|ed|trie] [--q N] [--threads N] [--out pairs.txt] [--stats]";

impl Config {
    /// Parses CLI arguments (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut input: Option<PathBuf> = None;
        let mut tau: Option<usize> = None;
        let mut algorithm = Algorithm::Pass;
        let mut q = 3;
        let mut threads = 0;
        let mut output = None;
        let mut stats = false;

        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--tau" => {
                    tau = Some(take_number(&mut it, "--tau")?);
                }
                "--algorithm" => {
                    let v = it.next().ok_or("--algorithm requires a value")?;
                    algorithm = Algorithm::parse(&v)?;
                }
                "--q" => {
                    q = take_number(&mut it, "--q")?;
                    if q == 0 {
                        return Err("--q must be at least 1".into());
                    }
                }
                "--threads" => {
                    threads = take_number(&mut it, "--threads")?;
                }
                "--out" => {
                    output = Some(PathBuf::from(
                        it.next().ok_or("--out requires a path")?,
                    ));
                }
                "--stats" => {
                    stats = true;
                }
                other if other.starts_with('-') => {
                    return Err(format!("unknown option '{other}'"));
                }
                path => {
                    if input.replace(PathBuf::from(path)).is_some() {
                        return Err("more than one input file given".into());
                    }
                }
            }
        }
        Ok(Config {
            input: input.ok_or("missing input corpus path")?,
            tau: tau.ok_or("missing required --tau")?,
            algorithm,
            q,
            threads,
            output,
            stats,
        })
    }

    /// Runs the configured join over an already-loaded collection.
    pub fn run(&self, collection: &StringCollection) -> JoinOutput {
        match self.algorithm {
            Algorithm::Pass => PassJoin::new().self_join(collection, self.tau),
            Algorithm::PassParallel => {
                PassJoin::new().par_self_join(collection, self.tau, self.threads)
            }
            Algorithm::Ed => EdJoin::new(self.q).self_join(collection, self.tau),
            Algorithm::Trie => TrieJoin::new().self_join(collection, self.tau),
        }
    }
}

fn take_number(
    it: &mut impl Iterator<Item = String>,
    flag: &str,
) -> Result<usize, String> {
    it.next()
        .ok_or_else(|| format!("{flag} requires a value"))?
        .parse()
        .map_err(|_| format!("{flag} requires a non-negative integer"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Config, String> {
        Config::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn minimal_invocation() {
        let c = parse(&["corpus.txt", "--tau", "2"]).unwrap();
        assert_eq!(c.input, PathBuf::from("corpus.txt"));
        assert_eq!(c.tau, 2);
        assert_eq!(c.algorithm, Algorithm::Pass);
        assert_eq!(c.q, 3);
        assert!(c.output.is_none());
        assert!(!c.stats);
    }

    #[test]
    fn full_invocation() {
        let c = parse(&[
            "--tau", "4", "data.txt", "--algorithm", "ed", "--q", "2", "--out",
            "pairs.txt", "--stats", "--threads", "8",
        ])
        .unwrap();
        assert_eq!(c.algorithm, Algorithm::Ed);
        assert_eq!(c.q, 2);
        assert_eq!(c.threads, 8);
        assert_eq!(c.output, Some(PathBuf::from("pairs.txt")));
        assert!(c.stats);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["corpus.txt"]).is_err(), "missing --tau");
        assert!(parse(&["corpus.txt", "--tau"]).is_err());
        assert!(parse(&["corpus.txt", "--tau", "x"]).is_err());
        assert!(parse(&["a.txt", "b.txt", "--tau", "1"]).is_err());
        assert!(parse(&["a.txt", "--tau", "1", "--algorithm", "nope"]).is_err());
        assert!(parse(&["a.txt", "--tau", "1", "--q", "0"]).is_err());
        assert!(parse(&["a.txt", "--tau", "1", "--bogus"]).is_err());
    }

    #[test]
    fn run_dispatches_all_algorithms() {
        let coll = StringCollection::from_strs(&["vldb", "pvldb", "icde"]);
        for algo in ["pass", "pass-par", "ed", "trie"] {
            let c = parse(&["x.txt", "--tau", "1", "--algorithm", algo]).unwrap();
            let out = c.run(&coll);
            assert_eq!(out.normalized_pairs(), vec![(0, 1)], "{algo}");
        }
    }
}
