//! Library half of the `simjoin` command-line tool: argument parsing and
//! the join/serve dispatch, kept out of `main.rs` so they are
//! unit-testable.
//!
//! Two modes share the binary:
//!
//! * **join mode** (no subcommand): the original batch self-join —
//!   `simjoin corpus.txt --tau 2`;
//! * **serve mode** (`index` / `query` / `repl` / `serve` subcommands):
//!   the online subsystem from `passjoin-online` — build a dynamic index
//!   over a corpus and answer queries against it, batch, interactively,
//!   or over the network (`serve` speaks the `passjoin-serve` JSONL
//!   protocol);
//! * **client mode** (`client` subcommand): query a running `serve`
//!   endpoint, printing the same `q<TAB>id<TAB>dist` lines as the
//!   offline `query` subcommand so the two are diffable.

use std::path::PathBuf;

use edjoin::EdJoin;
use passjoin::PassJoin;
use passjoin_online::{KeyBackend, OnlineIndex, ShardBy, ShardedIndex};
use sj_common::{JoinOutput, SimilarityJoin, StringCollection};
use triejoin::TrieJoin;

pub use passjoin_online::Queryable;

/// Which algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Pass-Join with the paper's default configuration.
    Pass,
    /// Pass-Join's multi-threaded driver.
    PassParallel,
    /// ED-Join (q-gram prefix filtering), q in [`Config::q`].
    Ed,
    /// Trie-Join (PathStack).
    Trie,
}

impl Algorithm {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "pass" => Ok(Algorithm::Pass),
            "pass-par" => Ok(Algorithm::PassParallel),
            "ed" => Ok(Algorithm::Ed),
            "trie" => Ok(Algorithm::Trie),
            other => Err(format!(
                "unknown algorithm '{other}' (expected pass, pass-par, ed, trie)"
            )),
        }
    }
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Input corpus: one string per line.
    pub input: PathBuf,
    /// Edit-distance threshold.
    pub tau: usize,
    /// Algorithm (default Pass-Join).
    pub algorithm: Algorithm,
    /// Gram length for ED-Join.
    pub q: usize,
    /// Worker threads for `pass-par` (0 = auto).
    pub threads: usize,
    /// Where to write pairs (stdout when `None`).
    pub output: Option<PathBuf>,
    /// Print statistics to stderr.
    pub stats: bool,
}

/// The usage string printed on parse errors.
pub const USAGE: &str = "usage:
  simjoin <corpus.txt> --tau N [--algorithm pass|pass-par|ed|trie] [--q N]
          [--threads N] [--out pairs.txt] [--stats]
  simjoin index <corpus.txt> [--tau-max N] [--keys owned|interned]
          [--shards N] [--shard-by len|hash] [--save index.snap] [--stats]
          [--metrics]
  simjoin query <corpus.txt | --load index.snap> [--tau N] [--tau-max N]
          [--keys owned|interned] [--shards N] [--shard-by len|hash]
          [--mmap] [--queries q.txt] [--threads N]
          [--cache N] [--limit K] [--count] [--stream] [--max-verify N]
          [--deadline-ms N] [--stats] [--metrics]
  simjoin repl  <corpus.txt | --load index.snap> [--tau N] [--tau-max N]
          [--keys owned|interned] [--cache N] [--mmap] [--save-delta]
  simjoin serve <corpus.txt | --load index.snap> [--addr HOST:PORT] [--tau N]
          [--tau-max N] [--keys owned|interned] [--shards N]
          [--shard-by len|hash] [--threads N] [--cache N] [--mmap]
          [--checkpoint-every SECS] [--checkpoint-path FILE]
          [--max-verify-ceiling N] [--deadline-ms N] [--allow-shutdown]
          [--stats]
  simjoin client [--addr HOST:PORT] [--queries q.txt] [--tau N] [--limit K]
          [--count] [--stream] [--max-verify N] [--max-candidates N]
          [--deadline-ms N] [--batch-max-verify N] [--chunk N] [--stats]
          [--metrics] [--shutdown]
  simjoin dedup <corpus.txt> --threshold T [--metric jaccard|cosine|overlap|edit]
          [--tokens words|grams] [--q N] [--truth pairs.tsv]
          [--out clusters.txt] [--stats] [--metrics]";

/// The address `serve` binds and `client` dials when `--addr` is absent.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7878";

impl Config {
    /// Parses CLI arguments (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut input: Option<PathBuf> = None;
        let mut tau: Option<usize> = None;
        let mut algorithm = Algorithm::Pass;
        let mut q = 3;
        let mut threads = 0;
        let mut output = None;
        let mut stats = false;

        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--tau" => {
                    tau = Some(take_number(&mut it, "--tau")?);
                }
                "--algorithm" => {
                    let v = it.next().ok_or("--algorithm requires a value")?;
                    algorithm = Algorithm::parse(&v)?;
                }
                "--q" => {
                    q = take_number(&mut it, "--q")?;
                    if q == 0 {
                        return Err("--q must be at least 1".into());
                    }
                }
                "--threads" => {
                    threads = take_number(&mut it, "--threads")?;
                }
                "--out" => {
                    output = Some(PathBuf::from(it.next().ok_or("--out requires a path")?));
                }
                "--stats" => {
                    stats = true;
                }
                other if other.starts_with('-') => {
                    return Err(format!("unknown option '{other}'"));
                }
                path => {
                    if input.replace(PathBuf::from(path)).is_some() {
                        return Err("more than one input file given".into());
                    }
                }
            }
        }
        Ok(Config {
            input: input.ok_or("missing input corpus path")?,
            tau: tau.ok_or("missing required --tau")?,
            algorithm,
            q,
            threads,
            output,
            stats,
        })
    }

    /// Runs the configured join over an already-loaded collection.
    pub fn run(&self, collection: &StringCollection) -> JoinOutput {
        match self.algorithm {
            Algorithm::Pass => PassJoin::new().self_join(collection, self.tau),
            Algorithm::PassParallel => {
                PassJoin::new().par_self_join(collection, self.tau, self.threads)
            }
            Algorithm::Ed => EdJoin::new(self.q).self_join(collection, self.tau),
            Algorithm::Trie => TrieJoin::new().self_join(collection, self.tau),
        }
    }
}

fn take_number(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<usize, String> {
    it.next()
        .ok_or_else(|| format!("{flag} requires a value"))?
        .parse()
        .map_err(|_| format!("{flag} requires a non-negative integer"))
}

/// Which serve-mode subcommand was invoked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// Build the index and report statistics.
    Index,
    /// Build the index and answer a batch of queries.
    Query,
    /// Build the index and serve an interactive query/update session.
    Repl,
    /// Build the index and serve it over TCP (the `passjoin-serve`
    /// JSONL protocol).
    Serve,
}

/// Where a serve-mode index comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexSource {
    /// Build by indexing a corpus file (one string per line; ids are
    /// 0-based line numbers).
    Corpus(PathBuf),
    /// Load a saved snapshot file (`--load`); skips the rebuild entirely.
    Snapshot(PathBuf),
}

/// Parsed serve-mode command line (`simjoin index|query|repl …`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Subcommand.
    pub mode: ServeMode,
    /// Corpus to index, or snapshot to load.
    pub source: IndexSource,
    /// Default query threshold.
    pub tau: usize,
    /// Whether `--tau` was given explicitly (an explicit τ above a loaded
    /// snapshot's τ_max is an error; the default is silently capped).
    pub tau_explicit: bool,
    /// Largest supported per-query threshold (the index partitions for
    /// this); defaults to `tau`. With `--load` the snapshot dictates it.
    pub tau_max: usize,
    /// Segment-key backend for a corpus-built index (`--keys`); the
    /// snapshot dictates it with `--load`.
    pub keys: KeyBackend,
    /// Shard count for a corpus-built index (`--shards`, index/query/
    /// serve); 1 (the default) builds a plain single index, ≥ 2 builds a
    /// `ShardedIndex` router. A loaded snapshot dictates its own layout.
    pub shards: usize,
    /// Partitioning policy for `--shards` ≥ 2 (`--shard-by len|hash`,
    /// default length bands).
    pub shard_by: ShardBy,
    /// Where to write a snapshot of the index after building (`--save`).
    pub save: Option<PathBuf>,
    /// Query file for `query` mode (stdin when `None`).
    pub queries: Option<PathBuf>,
    /// Worker threads for batched queries (0 = auto).
    pub threads: usize,
    /// LRU query-cache capacity (0 disables).
    pub cache: usize,
    /// Report only the `K` closest matches per query (`--limit`).
    pub limit: Option<usize>,
    /// Report match counts instead of matches (`--count`).
    pub count_only: bool,
    /// Stream matches as they verify instead of buffering per batch
    /// (`--stream`, query mode).
    pub stream: bool,
    /// Per-query verification cap (`--max-verify`, query mode); tripped
    /// budgets are reported as truncated in `--stats`.
    pub max_verify: Option<u64>,
    /// Per-query wall-clock deadline in milliseconds (`--deadline-ms`,
    /// query mode), measured from the start of the batch; expired
    /// requests are reported as truncated in `--stats`.
    pub deadline_ms: Option<u64>,
    /// Print statistics to stderr.
    pub stats: bool,
    /// Dump the metrics registry (Prometheus text format) to stderr after
    /// the run (`--metrics`, index/query modes; the repl has `:metrics`,
    /// the server has the `metrics` protocol op).
    pub metrics: bool,
    /// Bind address for `serve` (`--addr`, default [`DEFAULT_ADDR`]).
    pub addr: String,
    /// Server-side verification-cap ceiling clamping every network
    /// query's budget (`--max-verify-ceiling`, serve mode). For serve
    /// mode `--deadline-ms` is likewise the per-query deadline ceiling.
    pub max_verify_ceiling: Option<u64>,
    /// Honour the protocol's `shutdown` op (`--allow-shutdown`, serve
    /// mode); off by default so remote peers cannot stop the server.
    pub allow_shutdown: bool,
    /// Memory-map a loaded snapshot instead of reading it (`--mmap`,
    /// with `--load`): the instant-restart path through the
    /// `passjoin-store` shim — page-granular lazy loading with
    /// per-section CRCs and the deep structural scan deferred to a
    /// background verifier (`fs::read` where mapping is unavailable).
    pub mmap: bool,
    /// Persist the repl session's `:add`/`:rm` mutations as a delta
    /// checkpoint on the loaded snapshot's chain at exit (`--save-delta`,
    /// repl mode with `--load`).
    pub save_delta: bool,
    /// Background checkpoint interval in seconds (`--checkpoint-every`,
    /// serve mode with `--load`): drains the mutation log to the delta
    /// chain periodically and once more at shutdown.
    pub checkpoint_every: Option<u64>,
    /// Re-anchor the delta chain at this path instead of the loaded
    /// snapshot (`--checkpoint-path`, serve mode, requires
    /// `--checkpoint-every`) — for read-only snapshot locations.
    pub checkpoint_path: Option<PathBuf>,
}

impl ServeConfig {
    fn parse<I: IntoIterator<Item = String>>(mode: ServeMode, args: I) -> Result<Self, String> {
        let mut corpus: Option<PathBuf> = None;
        let mut load: Option<PathBuf> = None;
        let mut save = None;
        let mut tau: Option<usize> = None;
        let mut tau_max: Option<usize> = None;
        let mut keys: Option<KeyBackend> = None;
        let mut shards: Option<usize> = None;
        let mut shard_by: Option<ShardBy> = None;
        let mut queries = None;
        let mut threads = 0;
        let mut cache = 1024;
        let mut limit = None;
        let mut count_only = false;
        let mut stream = false;
        let mut max_verify = None;
        let mut deadline_ms = None;
        let mut stats = false;
        let mut metrics = false;
        let mut addr: Option<String> = None;
        let mut max_verify_ceiling = None;
        let mut allow_shutdown = false;
        let mut mmap = false;
        let mut save_delta = false;
        let mut checkpoint_every = None;
        let mut checkpoint_path = None;

        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--tau" => tau = Some(take_number(&mut it, "--tau")?),
                "--limit" => {
                    if mode != ServeMode::Query {
                        return Err("--limit is only valid for the query subcommand".into());
                    }
                    limit = Some(take_number(&mut it, "--limit")?);
                }
                "--count" => {
                    if mode != ServeMode::Query {
                        return Err("--count is only valid for the query subcommand".into());
                    }
                    count_only = true;
                }
                "--stream" => {
                    if mode != ServeMode::Query {
                        return Err("--stream is only valid for the query subcommand".into());
                    }
                    stream = true;
                }
                "--max-verify" => {
                    if mode != ServeMode::Query {
                        return Err("--max-verify is only valid for the query subcommand".into());
                    }
                    max_verify = Some(take_number(&mut it, "--max-verify")? as u64);
                }
                "--deadline-ms" => {
                    if !matches!(mode, ServeMode::Query | ServeMode::Serve) {
                        return Err(
                            "--deadline-ms is only valid for the query and serve subcommands"
                                .into(),
                        );
                    }
                    let ms = take_number(&mut it, "--deadline-ms")? as u64;
                    if ms == 0 {
                        return Err("--deadline-ms must be at least 1".into());
                    }
                    deadline_ms = Some(ms);
                }
                "--metrics" => {
                    if mode == ServeMode::Repl {
                        return Err("--metrics is for index/query; the repl has :metrics".into());
                    }
                    if mode == ServeMode::Serve {
                        return Err(
                            "--metrics is for index/query; the server has the metrics op".into(),
                        );
                    }
                    metrics = true;
                }
                "--addr" => {
                    if mode != ServeMode::Serve {
                        return Err("--addr is only valid for the serve subcommand".into());
                    }
                    addr = Some(it.next().ok_or("--addr requires host:port")?);
                }
                "--max-verify-ceiling" => {
                    if mode != ServeMode::Serve {
                        return Err(
                            "--max-verify-ceiling is only valid for the serve subcommand".into(),
                        );
                    }
                    max_verify_ceiling = Some(take_number(&mut it, "--max-verify-ceiling")? as u64);
                }
                "--allow-shutdown" => {
                    if mode != ServeMode::Serve {
                        return Err(
                            "--allow-shutdown is only valid for the serve subcommand".into()
                        );
                    }
                    allow_shutdown = true;
                }
                "--mmap" => {
                    if mode == ServeMode::Index {
                        return Err("--mmap needs a snapshot; `index` builds from a corpus".into());
                    }
                    mmap = true;
                }
                "--save-delta" => {
                    if mode != ServeMode::Repl {
                        return Err("--save-delta is only valid for the repl subcommand".into());
                    }
                    save_delta = true;
                }
                "--checkpoint-every" => {
                    if mode != ServeMode::Serve {
                        return Err(
                            "--checkpoint-every is only valid for the serve subcommand".into()
                        );
                    }
                    let secs = take_number(&mut it, "--checkpoint-every")? as u64;
                    if secs == 0 {
                        return Err("--checkpoint-every must be at least 1 second".into());
                    }
                    checkpoint_every = Some(secs);
                }
                "--checkpoint-path" => {
                    if mode != ServeMode::Serve {
                        return Err(
                            "--checkpoint-path is only valid for the serve subcommand".into()
                        );
                    }
                    checkpoint_path = Some(PathBuf::from(
                        it.next().ok_or("--checkpoint-path requires a path")?,
                    ));
                }
                "--shards" => {
                    if mode == ServeMode::Repl {
                        return Err("--shards is not valid for the repl subcommand".into());
                    }
                    let n = take_number(&mut it, "--shards")?;
                    if n == 0 {
                        return Err("--shards must be at least 1".into());
                    }
                    shards = Some(n);
                }
                "--shard-by" => {
                    if mode == ServeMode::Repl {
                        return Err("--shard-by is not valid for the repl subcommand".into());
                    }
                    let v = it.next().ok_or("--shard-by requires a value")?;
                    shard_by = Some(ShardBy::parse(&v).ok_or_else(|| {
                        format!("unknown shard policy '{v}' (expected len or hash)")
                    })?);
                }
                "--tau-max" => tau_max = Some(take_number(&mut it, "--tau-max")?),
                "--keys" => {
                    let v = it.next().ok_or("--keys requires a value")?;
                    keys = Some(match v.as_str() {
                        "owned" => KeyBackend::Owned,
                        "interned" => KeyBackend::Interned,
                        other => {
                            return Err(format!(
                                "unknown key backend '{other}' (expected owned or interned)"
                            ));
                        }
                    });
                }
                "--save" => {
                    save = Some(PathBuf::from(it.next().ok_or("--save requires a path")?));
                }
                "--load" => {
                    load = Some(PathBuf::from(it.next().ok_or("--load requires a path")?));
                }
                "--queries" => {
                    queries = Some(PathBuf::from(it.next().ok_or("--queries requires a path")?));
                }
                "--threads" => threads = take_number(&mut it, "--threads")?,
                "--cache" => cache = take_number(&mut it, "--cache")?,
                "--stats" => stats = true,
                other if other.starts_with('-') => {
                    return Err(format!("unknown option '{other}'"));
                }
                path => {
                    if corpus.replace(PathBuf::from(path)).is_some() {
                        return Err("more than one corpus file given".into());
                    }
                }
            }
        }
        if checkpoint_path.is_some() && checkpoint_every.is_none() {
            return Err("--checkpoint-path requires --checkpoint-every".into());
        }
        let source = match (corpus, load) {
            (Some(_), Some(_)) => {
                return Err("give a corpus file or --load <snapshot>, not both".into());
            }
            (Some(corpus), None) => {
                // The storage subsystem operates on snapshots: a corpus
                // build has no file to map and no chain to anchor.
                if mmap {
                    return Err("--mmap requires --load <snapshot>".into());
                }
                if save_delta {
                    return Err("--save-delta requires --load <snapshot>".into());
                }
                if checkpoint_every.is_some() {
                    return Err("--checkpoint-every requires --load <snapshot>".into());
                }
                IndexSource::Corpus(corpus)
            }
            (None, Some(snapshot)) => {
                if mode == ServeMode::Index {
                    return Err(
                        "--load is for query/repl; `index` builds from a corpus (use --save to \
                         write a snapshot)"
                            .into(),
                    );
                }
                if tau_max.is_some() {
                    return Err(
                        "--tau-max is fixed by the snapshot and not valid with --load".into(),
                    );
                }
                if keys.is_some() {
                    return Err("--keys is fixed by the snapshot and not valid with --load".into());
                }
                if shards.is_some() || shard_by.is_some() {
                    return Err(
                        "--shards/--shard-by are fixed by the snapshot and not valid with --load"
                            .into(),
                    );
                }
                IndexSource::Snapshot(snapshot)
            }
            (None, None) => {
                return Err("missing corpus path (or --load <snapshot> for query/repl)".into());
            }
        };
        // Defaults: τ = 2 capped by an explicit τ_max; τ_max follows τ.
        // (With --load, τ_max here is only a placeholder — the snapshot's
        // own τ_max governs at run time.)
        let tau_explicit = tau.is_some();
        let (tau, tau_max) = match (tau, tau_max) {
            (Some(t), Some(m)) => (t, m),
            (Some(t), None) => (t, t),
            (None, Some(m)) => (2.min(m), m),
            (None, None) => (2, 2),
        };
        if tau > tau_max {
            return Err(format!("--tau {tau} exceeds --tau-max {tau_max}"));
        }
        Ok(ServeConfig {
            mode,
            source,
            tau,
            tau_explicit,
            tau_max,
            keys: keys.unwrap_or_default(),
            shards: shards.unwrap_or(1),
            shard_by: shard_by.unwrap_or_default(),
            save,
            queries,
            threads,
            cache,
            limit,
            count_only,
            stream,
            max_verify,
            deadline_ms,
            stats,
            metrics,
            addr: addr.unwrap_or_else(|| DEFAULT_ADDR.to_owned()),
            max_verify_ceiling,
            allow_shutdown,
            mmap,
            save_delta,
            checkpoint_every,
            checkpoint_path,
        })
    }

    /// Builds the online index over raw corpus lines (ids = line numbers,
    /// empty lines included so numbering matches the file).
    pub fn build_index(&self, lines: &[Vec<u8>]) -> OnlineIndex {
        OnlineIndex::builder(self.tau_max)
            .key_backend(self.keys)
            .cache_capacity(self.cache)
            .build_from(lines.iter())
    }

    /// Builds the sharded router over raw corpus lines (`--shards` ≥ 2);
    /// ids are line numbers, exactly as in [`ServeConfig::build_index`].
    pub fn build_router(&self, lines: &[Vec<u8>]) -> ShardedIndex {
        ShardedIndex::builder(self.tau_max)
            .shards(self.shards)
            .shard_by(self.shard_by)
            .key_backend(self.keys)
            .cache_capacity(self.cache)
            .build_from(lines.iter())
    }

    /// Resolves the query threshold against the index actually being
    /// served. A default τ quietly adapts to a smaller loaded τ_max; an
    /// *explicit* `--tau` above the index's τ_max is reported as an error
    /// instead of being silently weakened.
    pub fn resolve_tau(&self, index_tau_max: usize) -> Result<usize, String> {
        if self.tau <= index_tau_max {
            return Ok(self.tau);
        }
        if self.tau_explicit {
            return Err(format!(
                "--tau {} exceeds the index's tau_max {index_tau_max}",
                self.tau
            ));
        }
        Ok(index_tau_max)
    }
}

/// Parsed `client` command line (`simjoin client …`): query a running
/// `serve` endpoint over the JSONL protocol. Output matches the offline
/// `query` subcommand line for line, so the two are directly diffable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientConfig {
    /// Server address (`--addr`, default [`DEFAULT_ADDR`]).
    pub addr: String,
    /// Query file (stdin when `None`).
    pub queries: Option<PathBuf>,
    /// Per-query threshold (`--tau`; the server's default when absent).
    pub tau: Option<usize>,
    /// Top-k limit per query (`--limit`).
    pub limit: Option<usize>,
    /// Count-only mode (`--count`): print `q<TAB>n` lines.
    pub count_only: bool,
    /// Stream matches in verification order (`--stream`).
    pub stream: bool,
    /// Per-query verification cap (`--max-verify`).
    pub max_verify: Option<u64>,
    /// Per-query candidate cap (`--max-candidates`).
    pub max_candidates: Option<u64>,
    /// Per-query deadline in milliseconds (`--deadline-ms`), measured
    /// from each request line's receipt at the server.
    pub deadline_ms: Option<u64>,
    /// Shared verification budget drained across each request line
    /// (`--batch-max-verify`): the wire `batch` budget.
    pub batch_max_verify: Option<u64>,
    /// Queries per request line (`--chunk`, default 512; the server's
    /// `max_batch` bounds it from its side).
    pub chunk: usize,
    /// Print aggregate totals to stderr (`--stats`).
    pub stats: bool,
    /// Scrape and print the server's metrics to stderr after the run
    /// (`--metrics`).
    pub metrics: bool,
    /// Send the `shutdown` op after the queries (`--shutdown`; the
    /// server must run with `--allow-shutdown`).
    pub shutdown: bool,
}

impl ClientConfig {
    fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut config = ClientConfig {
            addr: DEFAULT_ADDR.to_owned(),
            queries: None,
            tau: None,
            limit: None,
            count_only: false,
            stream: false,
            max_verify: None,
            max_candidates: None,
            deadline_ms: None,
            batch_max_verify: None,
            chunk: 512,
            stats: false,
            metrics: false,
            shutdown: false,
        };
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--addr" => config.addr = it.next().ok_or("--addr requires host:port")?,
                "--queries" => {
                    config.queries =
                        Some(PathBuf::from(it.next().ok_or("--queries requires a path")?));
                }
                "--tau" => config.tau = Some(take_number(&mut it, "--tau")?),
                "--limit" => config.limit = Some(take_number(&mut it, "--limit")?),
                "--count" => config.count_only = true,
                "--stream" => config.stream = true,
                "--max-verify" => {
                    config.max_verify = Some(take_number(&mut it, "--max-verify")? as u64);
                }
                "--max-candidates" => {
                    config.max_candidates = Some(take_number(&mut it, "--max-candidates")? as u64);
                }
                "--deadline-ms" => {
                    let ms = take_number(&mut it, "--deadline-ms")? as u64;
                    if ms == 0 {
                        return Err("--deadline-ms must be at least 1".into());
                    }
                    config.deadline_ms = Some(ms);
                }
                "--batch-max-verify" => {
                    config.batch_max_verify =
                        Some(take_number(&mut it, "--batch-max-verify")? as u64);
                }
                "--chunk" => {
                    config.chunk = take_number(&mut it, "--chunk")?;
                    if config.chunk == 0 {
                        return Err("--chunk must be at least 1".into());
                    }
                }
                "--stats" => config.stats = true,
                "--metrics" => config.metrics = true,
                "--shutdown" => config.shutdown = true,
                other if other.starts_with('-') => {
                    return Err(format!("unknown option '{other}'"));
                }
                other => {
                    return Err(format!(
                        "unexpected argument '{other}': the client reads queries from --queries \
                         or stdin"
                    ));
                }
            }
        }
        Ok(config)
    }
}

/// The similarity family `dedup` clusters under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DedupMetric {
    /// Jaccard set similarity on token sets.
    Jaccard,
    /// Cosine set similarity on token sets.
    Cosine,
    /// Overlap coefficient on token sets.
    Overlap,
    /// Edit distance on raw bytes (threshold is an integer τ).
    Edit,
}

impl DedupMetric {
    fn parse(name: &str) -> Result<Self, String> {
        match name {
            "jaccard" => Ok(Self::Jaccard),
            "cosine" => Ok(Self::Cosine),
            "overlap" => Ok(Self::Overlap),
            "edit" => Ok(Self::Edit),
            other => Err(format!(
                "unknown metric '{other}' (expected jaccard, cosine, overlap, edit)"
            )),
        }
    }
}

/// Parsed `simjoin dedup` invocation: stream a corpus through
/// query-before-insert and emit near-duplicate clusters.
#[derive(Debug, Clone, PartialEq)]
pub struct DedupConfig {
    /// The corpus file (one record per line; arbitrary bytes).
    pub input: PathBuf,
    /// Similarity family.
    pub metric: DedupMetric,
    /// Similarity threshold: in `(0, 1]` for set metrics, a non-negative
    /// integer τ for `edit`.
    pub threshold: f64,
    /// Tokenize as whitespace words instead of q-grams (set metrics only).
    pub words: bool,
    /// Gram length for q-gram tokenization.
    pub q: usize,
    /// Planted-duplicate ground truth (`dup<TAB>base` pairs) to verify
    /// the clusters against.
    pub truth: Option<PathBuf>,
    /// Where to write clusters (stdout when `None`).
    pub output: Option<PathBuf>,
    /// Print pipeline statistics to stderr.
    pub stats: bool,
    /// Dump the metrics registry to stderr after the run.
    pub metrics: bool,
}

impl DedupConfig {
    fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut input: Option<PathBuf> = None;
        let mut metric = DedupMetric::Jaccard;
        let mut threshold: Option<f64> = None;
        let mut tokens: Option<String> = None;
        let mut q: Option<usize> = None;
        let mut truth = None;
        let mut output = None;
        let mut stats = false;
        let mut metrics = false;

        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--metric" => {
                    let v = it.next().ok_or("--metric requires a value")?;
                    metric = DedupMetric::parse(&v)?;
                }
                "--threshold" => {
                    let v = it.next().ok_or("--threshold requires a value")?;
                    threshold = Some(
                        v.parse()
                            .map_err(|_| format!("--threshold requires a number, got '{v}'"))?,
                    );
                }
                "--tokens" => {
                    let v = it.next().ok_or("--tokens requires a value")?;
                    if v != "words" && v != "grams" {
                        return Err(format!("unknown tokens mode '{v}' (expected words, grams)"));
                    }
                    tokens = Some(v);
                }
                "--q" => {
                    let n = take_number(&mut it, "--q")?;
                    if n == 0 {
                        return Err("--q must be at least 1".into());
                    }
                    q = Some(n);
                }
                "--truth" => {
                    truth = Some(PathBuf::from(it.next().ok_or("--truth requires a path")?));
                }
                "--out" => {
                    output = Some(PathBuf::from(it.next().ok_or("--out requires a path")?));
                }
                "--stats" => stats = true,
                "--metrics" => metrics = true,
                other if other.starts_with('-') => {
                    return Err(format!("unknown option '{other}' for dedup"));
                }
                path => {
                    if input.is_some() {
                        return Err("multiple corpus files given".into());
                    }
                    input = Some(PathBuf::from(path));
                }
            }
        }
        let threshold = threshold.ok_or("dedup requires --threshold")?;
        let words = tokens.as_deref() == Some("words");
        match metric {
            DedupMetric::Edit => {
                if threshold < 0.0 || threshold.fract() != 0.0 {
                    return Err(format!(
                        "--metric edit needs an integer edit-distance threshold, got {threshold}"
                    ));
                }
                if tokens.is_some() || q.is_some() {
                    return Err("--tokens/--q do not apply to --metric edit".into());
                }
            }
            _ => {
                if !(threshold > 0.0 && threshold <= 1.0) {
                    return Err(format!(
                        "--threshold must be in (0, 1] for set metrics, got {threshold}"
                    ));
                }
                if words && q.is_some() {
                    return Err("--q does not apply to --tokens words".into());
                }
            }
        }
        Ok(DedupConfig {
            input: input.ok_or("dedup requires a corpus file")?,
            metric,
            threshold,
            words,
            q: q.unwrap_or(2),
            truth,
            output,
            stats,
            metrics,
        })
    }
}

/// A parsed `simjoin` invocation: the legacy join mode, a serve-mode
/// subcommand, the network client, or the dedup pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Batch self-join over a corpus (the original mode).
    Join(Config),
    /// Online subsystem: `index`, `query`, `repl`, or `serve`.
    Serve(ServeConfig),
    /// Network client against a running `serve` endpoint.
    Client(ClientConfig),
    /// Streaming near-duplicate clustering over a corpus.
    Dedup(DedupConfig),
}

impl Command {
    /// Parses CLI arguments (without the program name). The first argument
    /// selects a serve-mode subcommand or the client; anything else is
    /// join mode.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut it = args.into_iter().peekable();
        let mode = match it.peek().map(String::as_str) {
            Some("index") => Some(ServeMode::Index),
            Some("query") => Some(ServeMode::Query),
            Some("repl") => Some(ServeMode::Repl),
            Some("serve") => Some(ServeMode::Serve),
            Some("client") => {
                it.next();
                return Ok(Command::Client(ClientConfig::parse(it)?));
            }
            Some("dedup") => {
                it.next();
                return Ok(Command::Dedup(DedupConfig::parse(it)?));
            }
            _ => None,
        };
        match mode {
            Some(mode) => {
                it.next();
                Ok(Command::Serve(ServeConfig::parse(mode, it)?))
            }
            None => Ok(Command::Join(Config::parse(it)?)),
        }
    }
}

/// Splits a text blob into per-line byte strings, *keeping* empty lines so
/// ids equal 0-based line numbers of the input file.
pub fn corpus_lines(text: &str) -> Vec<Vec<u8>> {
    text.lines().map(|l| l.as_bytes().to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Config, String> {
        Config::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn minimal_invocation() {
        let c = parse(&["corpus.txt", "--tau", "2"]).unwrap();
        assert_eq!(c.input, PathBuf::from("corpus.txt"));
        assert_eq!(c.tau, 2);
        assert_eq!(c.algorithm, Algorithm::Pass);
        assert_eq!(c.q, 3);
        assert!(c.output.is_none());
        assert!(!c.stats);
    }

    #[test]
    fn full_invocation() {
        let c = parse(&[
            "--tau",
            "4",
            "data.txt",
            "--algorithm",
            "ed",
            "--q",
            "2",
            "--out",
            "pairs.txt",
            "--stats",
            "--threads",
            "8",
        ])
        .unwrap();
        assert_eq!(c.algorithm, Algorithm::Ed);
        assert_eq!(c.q, 2);
        assert_eq!(c.threads, 8);
        assert_eq!(c.output, Some(PathBuf::from("pairs.txt")));
        assert!(c.stats);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["corpus.txt"]).is_err(), "missing --tau");
        assert!(parse(&["corpus.txt", "--tau"]).is_err());
        assert!(parse(&["corpus.txt", "--tau", "x"]).is_err());
        assert!(parse(&["a.txt", "b.txt", "--tau", "1"]).is_err());
        assert!(parse(&["a.txt", "--tau", "1", "--algorithm", "nope"]).is_err());
        assert!(parse(&["a.txt", "--tau", "1", "--q", "0"]).is_err());
        assert!(parse(&["a.txt", "--tau", "1", "--bogus"]).is_err());
    }

    #[test]
    fn run_dispatches_all_algorithms() {
        let coll = StringCollection::from_strs(&["vldb", "pvldb", "icde"]);
        for algo in ["pass", "pass-par", "ed", "trie"] {
            let c = parse(&["x.txt", "--tau", "1", "--algorithm", algo]).unwrap();
            let out = c.run(&coll);
            assert_eq!(out.normalized_pairs(), vec![(0, 1)], "{algo}");
        }
    }

    fn parse_command(args: &[&str]) -> Result<Command, String> {
        Command::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn subcommands_select_serve_mode() {
        match parse_command(&["index", "corpus.txt", "--tau-max", "3", "--stats"]).unwrap() {
            Command::Serve(c) => {
                assert_eq!(c.mode, ServeMode::Index);
                assert_eq!(c.source, IndexSource::Corpus(PathBuf::from("corpus.txt")));
                assert_eq!(c.tau_max, 3);
                assert!(c.stats);
            }
            other => panic!("expected serve command, got {other:?}"),
        }
        match parse_command(&[
            "query",
            "corpus.txt",
            "--tau",
            "1",
            "--tau-max",
            "4",
            "--queries",
            "q.txt",
            "--threads",
            "8",
            "--cache",
            "0",
        ])
        .unwrap()
        {
            Command::Serve(c) => {
                assert_eq!(c.mode, ServeMode::Query);
                assert_eq!((c.tau, c.tau_max), (1, 4));
                assert_eq!(c.queries, Some(PathBuf::from("q.txt")));
                assert_eq!(c.threads, 8);
                assert_eq!(c.cache, 0);
            }
            other => panic!("expected serve command, got {other:?}"),
        }
        assert!(matches!(
            parse_command(&["repl", "corpus.txt"]).unwrap(),
            Command::Serve(ServeConfig {
                mode: ServeMode::Repl,
                ..
            })
        ));
    }

    #[test]
    fn join_mode_still_parses_without_subcommand() {
        match parse_command(&["corpus.txt", "--tau", "2"]).unwrap() {
            Command::Join(c) => assert_eq!(c.tau, 2),
            other => panic!("expected join command, got {other:?}"),
        }
    }

    #[test]
    fn dedup_parses_set_metrics() {
        match parse_command(&["dedup", "corpus.txt", "--threshold", "0.8"]).unwrap() {
            Command::Dedup(c) => {
                assert_eq!(c.input, PathBuf::from("corpus.txt"));
                assert_eq!(c.metric, DedupMetric::Jaccard);
                assert_eq!(c.threshold, 0.8);
                assert!(!c.words);
                assert_eq!(c.q, 2);
                assert!(!c.stats && !c.metrics);
            }
            other => panic!("expected dedup command, got {other:?}"),
        }
        match parse_command(&[
            "dedup",
            "c.txt",
            "--metric",
            "cosine",
            "--threshold",
            "0.9",
            "--tokens",
            "grams",
            "--q",
            "3",
            "--truth",
            "t.tsv",
            "--out",
            "clusters.txt",
            "--stats",
            "--metrics",
        ])
        .unwrap()
        {
            Command::Dedup(c) => {
                assert_eq!(c.metric, DedupMetric::Cosine);
                assert_eq!(c.q, 3);
                assert_eq!(c.truth, Some(PathBuf::from("t.tsv")));
                assert_eq!(c.output, Some(PathBuf::from("clusters.txt")));
                assert!(c.stats && c.metrics);
            }
            other => panic!("expected dedup command, got {other:?}"),
        }
        match parse_command(&[
            "dedup",
            "c.txt",
            "--metric",
            "overlap",
            "--threshold",
            "0.5",
            "--tokens",
            "words",
        ])
        .unwrap()
        {
            Command::Dedup(c) => {
                assert_eq!(c.metric, DedupMetric::Overlap);
                assert!(c.words);
            }
            other => panic!("expected dedup command, got {other:?}"),
        }
    }

    #[test]
    fn dedup_parses_edit_metric_and_rejects_bad_input() {
        match parse_command(&["dedup", "c.txt", "--metric", "edit", "--threshold", "2"]).unwrap() {
            Command::Dedup(c) => {
                assert_eq!(c.metric, DedupMetric::Edit);
                assert_eq!(c.threshold, 2.0);
            }
            other => panic!("expected dedup command, got {other:?}"),
        }
        // Missing threshold / corpus.
        assert!(parse_command(&["dedup", "c.txt"]).is_err());
        assert!(parse_command(&["dedup", "--threshold", "0.8"]).is_err());
        // Set thresholds must sit in (0, 1]; edit thresholds must be integers.
        assert!(parse_command(&["dedup", "c.txt", "--threshold", "0"]).is_err());
        assert!(parse_command(&["dedup", "c.txt", "--threshold", "1.5"]).is_err());
        assert!(
            parse_command(&["dedup", "c.txt", "--metric", "edit", "--threshold", "1.5"]).is_err()
        );
        // Tokenization flags don't apply to edit; --q clashes with words.
        assert!(parse_command(&[
            "dedup",
            "c.txt",
            "--metric",
            "edit",
            "--threshold",
            "2",
            "--q",
            "3"
        ])
        .is_err());
        assert!(parse_command(&[
            "dedup",
            "c.txt",
            "--threshold",
            "0.5",
            "--tokens",
            "words",
            "--q",
            "3"
        ])
        .is_err());
        assert!(
            parse_command(&["dedup", "c.txt", "--threshold", "0.5", "--metric", "dice"]).is_err()
        );
        assert!(parse_command(&["dedup", "c.txt", "--threshold", "0.5", "--q", "0"]).is_err());
        assert!(parse_command(&["dedup", "a.txt", "b.txt", "--threshold", "0.5"]).is_err());
    }

    #[test]
    fn serve_parse_rejects_bad_input() {
        assert!(parse_command(&["query"]).is_err(), "missing corpus");
        assert!(parse_command(&["query", "a.txt", "--tau", "5", "--tau-max", "2"]).is_err());
        assert!(parse_command(&["index", "a.txt", "--bogus"]).is_err());
        assert!(parse_command(&["repl", "a.txt", "b.txt"]).is_err());
        // Defaults: tau = 2, tau_max = tau.
        match parse_command(&["query", "a.txt"]).unwrap() {
            Command::Serve(c) => assert_eq!((c.tau, c.tau_max), (2, 2)),
            other => panic!("{other:?}"),
        }
        // An explicit small --tau-max caps the default tau instead of
        // erroring about a --tau the user never passed.
        match parse_command(&["index", "a.txt", "--tau-max", "1"]).unwrap() {
            Command::Serve(c) => assert_eq!((c.tau, c.tau_max), (1, 1)),
            other => panic!("{other:?}"),
        }
        match parse_command(&["query", "a.txt", "--tau-max", "0"]).unwrap() {
            Command::Serve(c) => assert_eq!((c.tau, c.tau_max), (0, 0)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn limit_and_count_flags_parse_for_query_mode() {
        match parse_command(&["query", "a.txt", "--limit", "5", "--count"]).unwrap() {
            Command::Serve(c) => {
                assert_eq!(c.limit, Some(5));
                assert!(c.count_only);
            }
            other => panic!("{other:?}"),
        }
        // Defaults: no limit, full matches.
        match parse_command(&["query", "a.txt"]).unwrap() {
            Command::Serve(c) => {
                assert_eq!(c.limit, None);
                assert!(!c.count_only);
            }
            other => panic!("{other:?}"),
        }
        // Result shaping is a query-mode feature.
        assert!(parse_command(&["index", "a.txt", "--limit", "5"]).is_err());
        assert!(parse_command(&["repl", "a.txt", "--count"]).is_err());
        assert!(parse_command(&["query", "a.txt", "--limit"]).is_err());
        assert!(parse_command(&["query", "a.txt", "--limit", "x"]).is_err());
    }

    #[test]
    fn stream_and_budget_flags_parse_for_query_mode() {
        match parse_command(&["query", "a.txt", "--stream", "--max-verify", "500"]).unwrap() {
            Command::Serve(c) => {
                assert!(c.stream);
                assert_eq!(c.max_verify, Some(500));
            }
            other => panic!("{other:?}"),
        }
        // Defaults: buffered, unbudgeted.
        match parse_command(&["query", "a.txt"]).unwrap() {
            Command::Serve(c) => {
                assert!(!c.stream);
                assert_eq!(c.max_verify, None);
            }
            other => panic!("{other:?}"),
        }
        // Streaming composes with the other query-mode result shapes.
        match parse_command(&["query", "a.txt", "--stream", "--limit", "3"]).unwrap() {
            Command::Serve(c) => {
                assert!(c.stream);
                assert_eq!(c.limit, Some(3));
            }
            other => panic!("{other:?}"),
        }
        // Both are query-mode features with required values.
        assert!(parse_command(&["index", "a.txt", "--stream"]).is_err());
        assert!(parse_command(&["repl", "a.txt", "--stream"]).is_err());
        assert!(parse_command(&["index", "a.txt", "--max-verify", "5"]).is_err());
        assert!(parse_command(&["repl", "a.txt", "--max-verify", "5"]).is_err());
        assert!(parse_command(&["query", "a.txt", "--max-verify"]).is_err());
        assert!(parse_command(&["query", "a.txt", "--max-verify", "x"]).is_err());
    }

    #[test]
    fn shard_flags_parse_for_index_query_serve() {
        for mode in ["index", "query", "serve"] {
            match parse_command(&[mode, "a.txt", "--shards", "4", "--shard-by", "hash"]).unwrap() {
                Command::Serve(c) => {
                    assert_eq!(c.shards, 4, "{mode}");
                    assert_eq!(c.shard_by, ShardBy::Hash, "{mode}");
                }
                other => panic!("{other:?}"),
            }
        }
        // Defaults: one shard (a plain index), length banding.
        match parse_command(&["query", "a.txt"]).unwrap() {
            Command::Serve(c) => {
                assert_eq!(c.shards, 1);
                assert_eq!(c.shard_by, ShardBy::Len);
            }
            other => panic!("{other:?}"),
        }
        // Zero shards, unknown policies, the repl, and --load are out.
        assert!(parse_command(&["query", "a.txt", "--shards", "0"]).is_err());
        assert!(parse_command(&["query", "a.txt", "--shard-by", "modulo"]).is_err());
        assert!(parse_command(&["repl", "a.txt", "--shards", "2"]).is_err());
        assert!(parse_command(&["repl", "a.txt", "--shard-by", "len"]).is_err());
        assert!(parse_command(&["query", "--load", "x.snap", "--shards", "2"]).is_err());
        assert!(parse_command(&["serve", "--load", "x.snap", "--shard-by", "hash"]).is_err());
    }

    #[test]
    fn metrics_and_deadline_flags_parse() {
        match parse_command(&["query", "a.txt", "--metrics", "--deadline-ms", "250"]).unwrap() {
            Command::Serve(c) => {
                assert!(c.metrics);
                assert_eq!(c.deadline_ms, Some(250));
            }
            other => panic!("{other:?}"),
        }
        match parse_command(&["index", "a.txt", "--metrics"]).unwrap() {
            Command::Serve(c) => assert!(c.metrics),
            other => panic!("{other:?}"),
        }
        // Defaults: no dump, no deadline.
        match parse_command(&["query", "a.txt"]).unwrap() {
            Command::Serve(c) => {
                assert!(!c.metrics);
                assert_eq!(c.deadline_ms, None);
            }
            other => panic!("{other:?}"),
        }
        // The repl dumps via :metrics, and deadlines are a query-mode
        // feature with a required non-zero value.
        assert!(parse_command(&["repl", "a.txt", "--metrics"]).is_err());
        assert!(parse_command(&["index", "a.txt", "--deadline-ms", "5"]).is_err());
        assert!(parse_command(&["repl", "a.txt", "--deadline-ms", "5"]).is_err());
        assert!(parse_command(&["query", "a.txt", "--deadline-ms"]).is_err());
        assert!(parse_command(&["query", "a.txt", "--deadline-ms", "0"]).is_err());
        assert!(parse_command(&["query", "a.txt", "--deadline-ms", "x"]).is_err());
    }

    #[test]
    fn keys_flag_selects_the_backend() {
        // Default is owned.
        match parse_command(&["index", "a.txt"]).unwrap() {
            Command::Serve(c) => assert_eq!(c.keys, KeyBackend::Owned),
            other => panic!("{other:?}"),
        }
        for (mode, expected) in [
            ("owned", KeyBackend::Owned),
            ("interned", KeyBackend::Interned),
        ] {
            match parse_command(&["index", "a.txt", "--keys", mode]).unwrap() {
                Command::Serve(c) => assert_eq!(c.keys, expected, "{mode}"),
                other => panic!("{other:?}"),
            }
        }
        match parse_command(&["query", "a.txt", "--keys", "interned", "--tau", "1"]).unwrap() {
            Command::Serve(c) => {
                assert_eq!(c.keys, KeyBackend::Interned);
                // And the built index actually uses it.
                let index = c.build_index(&corpus_lines("vldb\npvldb\n"));
                assert_eq!(index.key_backend(), KeyBackend::Interned);
                assert_eq!(index.matches(b"vldb", 1), vec![(0, 0), (1, 1)]);
            }
            other => panic!("{other:?}"),
        }
        // Bad values and bad combinations are rejected.
        assert!(parse_command(&["index", "a.txt", "--keys"]).is_err());
        assert!(parse_command(&["index", "a.txt", "--keys", "boxed"]).is_err());
        assert!(parse_command(&["query", "--load", "x.snap", "--keys", "interned"]).is_err());
    }

    #[test]
    fn save_and_load_flags_parse() {
        match parse_command(&["index", "corpus.txt", "--tau-max", "2", "--save", "x.snap"]).unwrap()
        {
            Command::Serve(c) => {
                assert_eq!(c.save, Some(PathBuf::from("x.snap")));
                assert_eq!(c.source, IndexSource::Corpus(PathBuf::from("corpus.txt")));
            }
            other => panic!("{other:?}"),
        }
        match parse_command(&["query", "--load", "x.snap", "--tau", "1"]).unwrap() {
            Command::Serve(c) => {
                assert_eq!(c.source, IndexSource::Snapshot(PathBuf::from("x.snap")));
                assert_eq!(c.tau, 1);
                assert!(c.tau_explicit);
            }
            other => panic!("{other:?}"),
        }
        match parse_command(&["repl", "--load", "x.snap"]).unwrap() {
            Command::Serve(c) => {
                assert_eq!(c.source, IndexSource::Snapshot(PathBuf::from("x.snap")));
                assert!(!c.tau_explicit);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn save_and_load_flags_reject_bad_combinations() {
        // A corpus and a snapshot are mutually exclusive sources.
        assert!(parse_command(&["query", "corpus.txt", "--load", "x.snap"]).is_err());
        // `index` builds from a corpus; loading is for the serving modes.
        assert!(parse_command(&["index", "--load", "x.snap"]).is_err());
        // The snapshot dictates tau_max.
        assert!(parse_command(&["query", "--load", "x.snap", "--tau-max", "3"]).is_err());
        // Flag values are required.
        assert!(parse_command(&["query", "a.txt", "--load"]).is_err());
        assert!(parse_command(&["index", "a.txt", "--save"]).is_err());
    }

    #[test]
    fn resolve_tau_respects_explicitness() {
        // Default tau adapts to a smaller loaded tau_max…
        let c = match parse_command(&["query", "--load", "x.snap"]).unwrap() {
            Command::Serve(c) => c,
            other => panic!("{other:?}"),
        };
        assert_eq!(c.resolve_tau(1), Ok(1));
        assert_eq!(c.resolve_tau(4), Ok(2));
        // …but an explicit --tau above it is an error, not a silent cap.
        let c = match parse_command(&["query", "--load", "x.snap", "--tau", "3"]).unwrap() {
            Command::Serve(c) => c,
            other => panic!("{other:?}"),
        };
        assert_eq!(c.resolve_tau(3), Ok(3));
        assert!(c.resolve_tau(2).is_err());
    }

    #[test]
    fn serve_subcommand_parses_and_gates_its_flags() {
        match parse_command(&[
            "serve",
            "corpus.txt",
            "--addr",
            "127.0.0.1:0",
            "--tau",
            "1",
            "--tau-max",
            "2",
            "--threads",
            "4",
            "--max-verify-ceiling",
            "5000",
            "--deadline-ms",
            "250",
            "--allow-shutdown",
        ])
        .unwrap()
        {
            Command::Serve(c) => {
                assert_eq!(c.mode, ServeMode::Serve);
                assert_eq!(c.addr, "127.0.0.1:0");
                assert_eq!((c.tau, c.tau_max), (1, 2));
                assert_eq!(c.threads, 4);
                assert_eq!(c.max_verify_ceiling, Some(5000));
                assert_eq!(c.deadline_ms, Some(250));
                assert!(c.allow_shutdown);
            }
            other => panic!("{other:?}"),
        }
        // Defaults: well-known address, no ceilings, shutdown disabled.
        match parse_command(&["serve", "corpus.txt"]).unwrap() {
            Command::Serve(c) => {
                assert_eq!(c.addr, DEFAULT_ADDR);
                assert_eq!(c.max_verify_ceiling, None);
                assert!(!c.allow_shutdown);
            }
            other => panic!("{other:?}"),
        }
        // Serving from a snapshot parses like query's --load.
        match parse_command(&["serve", "--load", "x.snap"]).unwrap() {
            Command::Serve(c) => {
                assert_eq!(c.source, IndexSource::Snapshot(PathBuf::from("x.snap")));
            }
            other => panic!("{other:?}"),
        }
        // The serve-only flags stay serve-only, and the query-only result
        // shapes stay out of serve mode.
        assert!(parse_command(&["query", "a.txt", "--addr", "x:1"]).is_err());
        assert!(parse_command(&["index", "a.txt", "--max-verify-ceiling", "5"]).is_err());
        assert!(parse_command(&["query", "a.txt", "--allow-shutdown"]).is_err());
        assert!(parse_command(&["serve", "a.txt", "--limit", "5"]).is_err());
        assert!(parse_command(&["serve", "a.txt", "--stream"]).is_err());
        assert!(parse_command(&["serve", "a.txt", "--metrics"]).is_err());
        assert!(parse_command(&["serve", "a.txt", "--addr"]).is_err());
    }

    #[test]
    fn storage_flags_parse_with_load() {
        // --mmap works for every snapshot-serving mode.
        for mode in ["query", "repl", "serve"] {
            match parse_command(&[mode, "--load", "x.snap", "--mmap"]).unwrap() {
                Command::Serve(c) => assert!(c.mmap, "{mode}"),
                other => panic!("{other:?}"),
            }
        }
        // --save-delta is the repl's exit checkpoint.
        match parse_command(&["repl", "--load", "x.snap", "--save-delta"]).unwrap() {
            Command::Serve(c) => assert!(c.save_delta),
            other => panic!("{other:?}"),
        }
        // The background checkpointer is a serve-mode feature.
        match parse_command(&[
            "serve",
            "--load",
            "x.snap",
            "--checkpoint-every",
            "30",
            "--checkpoint-path",
            "ckpt/base.snap",
        ])
        .unwrap()
        {
            Command::Serve(c) => {
                assert_eq!(c.checkpoint_every, Some(30));
                assert_eq!(c.checkpoint_path, Some(PathBuf::from("ckpt/base.snap")));
            }
            other => panic!("{other:?}"),
        }
        // Defaults: plain read, no checkpointing.
        match parse_command(&["serve", "--load", "x.snap"]).unwrap() {
            Command::Serve(c) => {
                assert!(!c.mmap && !c.save_delta);
                assert_eq!(c.checkpoint_every, None);
                assert_eq!(c.checkpoint_path, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn storage_flags_reject_bad_combinations() {
        // All of them operate on a loaded snapshot, not a corpus build.
        assert!(parse_command(&["query", "a.txt", "--mmap"]).is_err());
        assert!(parse_command(&["repl", "a.txt", "--save-delta"]).is_err());
        assert!(parse_command(&["serve", "a.txt", "--checkpoint-every", "5"]).is_err());
        // Mode gating: index never loads, deltas come from repl
        // mutations, the checkpointer is the server's.
        assert!(parse_command(&["index", "a.txt", "--mmap"]).is_err());
        assert!(parse_command(&["query", "--load", "x.snap", "--save-delta"]).is_err());
        assert!(parse_command(&["serve", "--load", "x.snap", "--save-delta"]).is_err());
        assert!(parse_command(&["repl", "--load", "x.snap", "--checkpoint-every", "5"]).is_err());
        assert!(parse_command(&["query", "--load", "x.snap", "--checkpoint-path", "p"]).is_err());
        // Values are required and checked.
        assert!(parse_command(&["serve", "--load", "x.snap", "--checkpoint-every"]).is_err());
        assert!(parse_command(&["serve", "--load", "x.snap", "--checkpoint-every", "0"]).is_err());
        assert!(
            parse_command(&["serve", "--load", "x.snap", "--checkpoint-path", "p"]).is_err(),
            "--checkpoint-path without --checkpoint-every has nothing to write"
        );
    }

    #[test]
    fn client_subcommand_parses() {
        match parse_command(&[
            "client",
            "--addr",
            "10.0.0.1:7878",
            "--queries",
            "q.txt",
            "--tau",
            "2",
            "--limit",
            "5",
            "--stream",
            "--max-verify",
            "100",
            "--batch-max-verify",
            "1000",
            "--chunk",
            "64",
            "--stats",
            "--metrics",
            "--shutdown",
        ])
        .unwrap()
        {
            Command::Client(c) => {
                assert_eq!(c.addr, "10.0.0.1:7878");
                assert_eq!(c.queries, Some(PathBuf::from("q.txt")));
                assert_eq!(c.tau, Some(2));
                assert_eq!(c.limit, Some(5));
                assert!(c.stream && !c.count_only);
                assert_eq!(c.max_verify, Some(100));
                assert_eq!(c.batch_max_verify, Some(1000));
                assert_eq!(c.chunk, 64);
                assert!(c.stats && c.metrics && c.shutdown);
            }
            other => panic!("{other:?}"),
        }
        // Defaults: well-known address, stdin queries, server-side tau.
        match parse_command(&["client"]).unwrap() {
            Command::Client(c) => {
                assert_eq!(c.addr, DEFAULT_ADDR);
                assert_eq!(c.queries, None);
                assert_eq!(c.tau, None);
                assert_eq!(c.chunk, 512);
            }
            other => panic!("{other:?}"),
        }
        // The client takes no positional corpus, and values are checked.
        assert!(parse_command(&["client", "corpus.txt"]).is_err());
        assert!(parse_command(&["client", "--chunk", "0"]).is_err());
        assert!(parse_command(&["client", "--deadline-ms", "0"]).is_err());
        assert!(parse_command(&["client", "--bogus"]).is_err());
    }

    #[test]
    fn build_index_assigns_line_number_ids() {
        let lines = corpus_lines("vldb\n\npvldb\n");
        assert_eq!(lines.len(), 3, "empty lines keep their id slot");
        let c = match parse_command(&["query", "x.txt", "--tau", "1"]).unwrap() {
            Command::Serve(c) => c,
            other => panic!("{other:?}"),
        };
        let index = c.build_index(&lines);
        assert_eq!(index.len(), 3);
        assert_eq!(index.matches(b"vldb", 1), vec![(0, 0), (2, 1)]);
    }
}
