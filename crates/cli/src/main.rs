//! `simjoin` — string similarity self-join over a newline-delimited file.
//!
//! ```text
//! simjoin corpus.txt --tau 2 --stats
//! simjoin corpus.txt --tau 3 --algorithm pass-par --threads 8 --out pairs.tsv
//! ```
//!
//! Output: one `i<TAB>j` pair of 0-based input line numbers per line,
//! `i < j`, for every pair of lines within the edit-distance threshold.

use std::io::Write;
use std::process::ExitCode;

use simjoin_cli::{Config, USAGE};

fn main() -> ExitCode {
    let config = match Config::parse(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("simjoin: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let collection = match datagen::io::load_lines(&config.input) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("simjoin: cannot read {}: {e}", config.input.display());
            return ExitCode::FAILURE;
        }
    };

    let out = config.run(&collection);

    let mut pairs = out.pairs.clone();
    pairs.sort_unstable();
    let write_result = match &config.output {
        Some(path) => write_pairs(&pairs, std::fs::File::create(path)),
        None => write_pairs(&pairs, Ok(std::io::stdout().lock())),
    };
    if let Err(e) = write_result {
        eprintln!("simjoin: write failed: {e}");
        return ExitCode::FAILURE;
    }

    if config.stats {
        eprintln!(
            "simjoin: {} strings, tau={}, {} pairs in {:?} [{}]",
            collection.len(),
            config.tau,
            pairs.len(),
            out.elapsed,
            out.stats
        );
    }
    ExitCode::SUCCESS
}

fn write_pairs<W: Write>(
    pairs: &[(u32, u32)],
    sink: std::io::Result<W>,
) -> std::io::Result<()> {
    let mut w = std::io::BufWriter::new(sink?);
    for (a, b) in pairs {
        writeln!(w, "{a}\t{b}")?;
    }
    w.flush()
}
