//! `simjoin` — string similarity joins and online similarity search over
//! newline-delimited files.
//!
//! ```text
//! # batch self-join (the original mode)
//! simjoin corpus.txt --tau 2 --stats
//! simjoin corpus.txt --tau 3 --algorithm pass-par --threads 8 --out pairs.tsv
//!
//! # online subsystem
//! simjoin index corpus.txt --tau-max 3 --stats
//! simjoin query corpus.txt --tau 2 --queries queries.txt --threads 8
//! simjoin repl  corpus.txt --tau 2 --tau-max 3
//!
//! # persistence: index once, serve from the snapshot (no rebuild)
//! simjoin index corpus.txt --tau-max 3 --save corpus.snap
//! simjoin query --load corpus.snap --tau 2 --queries queries.txt
//! simjoin repl  --load corpus.snap
//!
//! # instant restart: map the snapshot and checkpoint mutations as deltas
//! # (an existing <snap>.delta-* chain is detected and replayed on load)
//! simjoin serve --load corpus.snap --mmap --checkpoint-every 30
//! simjoin repl  --load corpus.snap --save-delta
//!
//! # integer-interned segment keys (smaller index, same answers)
//! simjoin index corpus.txt --tau-max 3 --keys interned --save corpus.snap
//!
//! # streaming + budgets: emit matches as they verify, cap work per query
//! simjoin query corpus.txt --tau 2 --queries q.txt --stream --max-verify 1000 --stats
//!
//! # observability: wall-clock deadlines, metrics dump after the run
//! simjoin query corpus.txt --tau 2 --queries q.txt --deadline-ms 250 --stats
//! simjoin query corpus.txt --tau 2 --queries q.txt --metrics 2> metrics.prom
//! ```
//!
//! Join mode prints one `i<TAB>j` pair of 0-based input line numbers per
//! result. Query mode reads one query per line (from `--queries` or stdin)
//! and prints `q<TAB>id<TAB>dist` per match, where `q` is the query's line
//! number and `id` the corpus line number. The repl reads queries
//! interactively and accepts `:add`, `:rm`, `:tau`, `:stats`, `:help`,
//! `:quit` commands.

use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use passjoin_online::{
    is_sharded_snapshot, wall_deadline, CacheOutcome, CachePolicy, CacheStats, Completion,
    EngineObs, ExecBudget, ExecStats, MatchSink, OnlineIndex, OnlineStats, Parallelism,
    PersistError, QueryOutcome, Queryable, Registry, SearchRequest, SearchResponse, ShardedIndex,
    WallClockTicks,
};
use passjoin_serve::proto::{BudgetSpec, MetricsFormat};
use passjoin_serve::{Client, Event, QueryOptions, Server, ServerConfig};
use passjoin_setsim::{sorted_overlap, DedupPipeline, SetMetric, SetSimObs, TokenMode, UnionFind};
use passjoin_store::{find_chain, CheckpointedIndex, Checkpointer, OpenOptions as StoreOptions};
use simjoin_cli::{
    corpus_lines, ClientConfig, Command, Config, DedupConfig, DedupMetric, IndexSource,
    ServeConfig, ServeMode, USAGE,
};

fn main() -> ExitCode {
    let command = match Command::parse(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("simjoin: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match command {
        Command::Join(config) => run_join(&config),
        Command::Serve(config) => run_serve(&config),
        Command::Client(config) => run_client(&config),
        Command::Dedup(config) => run_dedup(&config),
    }
}

/// Streams a corpus through query-before-insert and reports the
/// near-duplicate clusters, one per line (tab-separated member ids, ids
/// = 0-based line numbers). Set metrics run the `passjoin-setsim`
/// prefix-filter pipeline; `--metric edit` runs the same
/// query-before-insert loop over the edit-distance engine.
fn run_dedup(config: &DedupConfig) -> ExitCode {
    // Bytes, not text: the set-similarity tokenizers are byte-transparent
    // and dedup must survive non-UTF-8 corpora.
    let bytes = match std::fs::read(&config.input) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("simjoin: cannot read {}: {e}", config.input.display());
            return ExitCode::FAILURE;
        }
    };
    let mut records: Vec<&[u8]> = if bytes.is_empty() {
        Vec::new()
    } else {
        bytes.split(|&b| b == b'\n').collect()
    };
    if bytes.ends_with(b"\n") {
        records.pop(); // trailing newline, not a final empty record
    }

    let registry = config.metrics.then(|| Arc::new(Registry::new()));
    let started = Instant::now();
    let (clusters, totals, matched) = match config.metric {
        DedupMetric::Edit => {
            let tau = config.threshold as usize;
            let mut index = OnlineIndex::new(tau);
            if let Some(registry) = &registry {
                index.set_observability(Some(Arc::new(EngineObs::with_registry(Arc::clone(
                    registry,
                )))));
            }
            let mut uf = UnionFind::new(records.len());
            let mut totals = ExecStats::default();
            let mut matched = 0u64;
            for rec in &records {
                let outcome = index.search(&SearchRequest::borrowed(rec, tau));
                totals.merge(&outcome.stats);
                let id = index.insert(rec);
                for &(m, _) in outcome.matches.iter() {
                    uf.union(id, m);
                }
                if outcome.count > 0 {
                    matched += 1;
                }
            }
            (uf.clusters(), totals, matched)
        }
        set_metric => {
            let metric = match set_metric {
                DedupMetric::Jaccard => SetMetric::Jaccard,
                DedupMetric::Cosine => SetMetric::Cosine,
                DedupMetric::Overlap => SetMetric::Overlap,
                DedupMetric::Edit => unreachable!("handled above"),
            };
            let mode = if config.words {
                TokenMode::Words
            } else {
                TokenMode::Grams { q: config.q }
            };
            let mut pipeline = DedupPipeline::new(mode, metric, config.threshold);
            if let Some(registry) = &registry {
                pipeline = pipeline
                    .with_observability(Arc::new(SetSimObs::with_registry(Arc::clone(registry))));
            }
            for rec in &records {
                pipeline.push(rec);
            }
            let (stats, matched) = (*pipeline.stats(), pipeline.matched_records());
            (pipeline.clusters(), stats, matched)
        }
    };
    let elapsed = started.elapsed();

    let mut out: Box<dyn Write> = match &config.output {
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => Box::new(std::io::BufWriter::new(f)),
            Err(e) => {
                eprintln!("simjoin: cannot create {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        },
        None => Box::new(std::io::BufWriter::new(std::io::stdout().lock())),
    };
    for cluster in &clusters {
        let line = cluster
            .iter()
            .map(u32::to_string)
            .collect::<Vec<_>>()
            .join("\t");
        if writeln!(out, "{line}").is_err() {
            return ExitCode::FAILURE;
        }
    }
    if out.flush().is_err() {
        return ExitCode::FAILURE;
    }
    drop(out);

    if config.stats {
        let clustered: usize = clusters.iter().map(Vec::len).sum();
        eprintln!(
            "simjoin: dedup {} records -> {} clusters ({} members, {} matched on arrival) \
             in {:.3?} (candidates={} verifications={} matches={})",
            records.len(),
            clusters.len(),
            clustered,
            matched,
            elapsed,
            totals.candidates,
            totals.verifications,
            totals.segment_matches,
        );
    }
    if let Some(registry) = &registry {
        eprint!("{}", registry.render_prometheus());
    }

    if let Some(path) = &config.truth {
        // The expected partition is the transitive closure of the planted
        // pairs *that satisfy the requested predicate*: a planted edit on
        // a short record can push its similarity below the threshold, and
        // a correct engine must not match it.
        let similar: Box<SimilarPredicate> = match config.metric {
            DedupMetric::Edit => {
                let tau = config.threshold as usize;
                Box::new(move |a, b| editdist::banded_within(a, b, tau).is_some())
            }
            set_metric => {
                let metric = match set_metric {
                    DedupMetric::Jaccard => SetMetric::Jaccard,
                    DedupMetric::Cosine => SetMetric::Cosine,
                    DedupMetric::Overlap => SetMetric::Overlap,
                    DedupMetric::Edit => unreachable!("handled above"),
                };
                let mode = if config.words {
                    TokenMode::Words
                } else {
                    TokenMode::Grams { q: config.q }
                };
                let threshold = config.threshold;
                Box::new(move |a, b| {
                    let (x, y) = (mode.token_set(a), mode.token_set(b));
                    let o = sorted_overlap(&x, &y);
                    o > 0 && metric.accepts(threshold, o, x.len(), y.len())
                })
            }
        };
        match verify_truth(path, &records, &clusters, &similar) {
            Ok((n, dropped)) => eprintln!(
                "simjoin: clusters match truth ({n} clusters; {dropped} planted pairs below threshold)"
            ),
            Err(e) => {
                eprintln!("simjoin: cluster/truth mismatch: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// The similarity predicate a dedup run was configured with, rebuilt
/// for truth verification.
type SimilarPredicate = dyn Fn(&[u8], &[u8]) -> bool;

/// Checks the found clusters against a planted-duplicate truth file
/// (`dup<TAB>base` id pairs): the clusters must equal the transitive
/// closure of the truth pairs whose records actually satisfy the
/// requested similarity predicate (planted edits on short records can
/// land below the threshold, and a correct engine must not match
/// those). Returns the cluster count and how many planted pairs the
/// predicate dropped.
fn verify_truth(
    path: &std::path::Path,
    records: &[&[u8]],
    clusters: &[Vec<u32>],
    similar: &dyn Fn(&[u8], &[u8]) -> bool,
) -> Result<(usize, usize), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read truth file: {e}"))?;
    let mut uf = UnionFind::new(records.len());
    let mut dropped = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split('\t');
        let pair = (
            parts.next().and_then(|v| v.parse::<u32>().ok()),
            parts.next().and_then(|v| v.parse::<u32>().ok()),
        );
        let (Some(dup), Some(base)) = pair else {
            return Err(format!("truth line {} is not 'dup\\tbase'", lineno + 1));
        };
        if (dup as usize) >= records.len() || (base as usize) >= records.len() {
            return Err(format!("truth line {} out of range", lineno + 1));
        }
        if similar(records[dup as usize], records[base as usize]) {
            uf.union(dup, base);
        } else {
            dropped += 1;
        }
    }
    let expected = uf.clusters();
    if expected == clusters {
        Ok((expected.len(), dropped))
    } else {
        let divergent = expected
            .iter()
            .zip(clusters.iter())
            .position(|(a, b)| a != b)
            .unwrap_or(expected.len().min(clusters.len()));
        Err(format!(
            "expected {} clusters, found {}; first divergence at cluster #{divergent}",
            expected.len(),
            clusters.len(),
        ))
    }
}

fn run_join(config: &Config) -> ExitCode {
    let collection = match datagen::io::load_lines(&config.input) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("simjoin: cannot read {}: {e}", config.input.display());
            return ExitCode::FAILURE;
        }
    };

    let out = config.run(&collection);

    let mut pairs = out.pairs.clone();
    pairs.sort_unstable();
    let write_result = match &config.output {
        Some(path) => write_pairs(&pairs, std::fs::File::create(path)),
        None => write_pairs(&pairs, Ok(std::io::stdout().lock())),
    };
    if let Err(e) = write_result {
        eprintln!("simjoin: write failed: {e}");
        return ExitCode::FAILURE;
    }

    if config.stats {
        eprintln!(
            "simjoin: {} strings, tau={}, {} pairs in {:?} [{}]",
            collection.len(),
            config.tau,
            pairs.len(),
            out.elapsed,
            out.stats
        );
    }
    ExitCode::SUCCESS
}

fn write_pairs<W: Write>(pairs: &[(u32, u32)], sink: std::io::Result<W>) -> std::io::Result<()> {
    let mut w = std::io::BufWriter::new(sink?);
    for (a, b) in pairs {
        writeln!(w, "{a}\t{b}")?;
    }
    w.flush()
}

/// The index behind a serve-mode run: a plain [`OnlineIndex`], the
/// `--shards` router, or the storage subsystem's checkpointed wrapper
/// (any of `--mmap`, `--save-delta`, `--checkpoint-every`, or a loaded
/// snapshot with an existing delta chain). All are [`Queryable`], so
/// everything downstream of construction/persistence is shared.
enum AnyIndex {
    Single(OnlineIndex),
    Sharded(ShardedIndex),
    Checkpointed(Arc<CheckpointedIndex>),
}

impl AnyIndex {
    fn tau_max(&self) -> usize {
        match self {
            AnyIndex::Single(index) => index.tau_max(),
            AnyIndex::Sharded(router) => router.tau_max(),
            AnyIndex::Checkpointed(store) => Queryable::tau_max(&**store),
        }
    }

    fn save(&self, path: &std::path::Path) -> Result<u64, PersistError> {
        match self {
            AnyIndex::Single(index) => index.save(path),
            AnyIndex::Sharded(router) => router.save_sharded(path),
            // Compaction: a full snapshot of base + replayed chain +
            // session mutations; the new file starts an empty chain.
            AnyIndex::Checkpointed(store) => store.save_full(path),
        }
    }
}

fn run_serve(config: &ServeConfig) -> ExitCode {
    // One registry per process: `--metrics` dumps it after the run, the
    // repl serves it interactively via `:metrics`, and the network
    // server exposes it through the `metrics` protocol op (engine and
    // server metrics in one scrape). Absent all three, no observability
    // is attached and the engine runs uninstrumented.
    let registry = (config.mode == ServeMode::Serve).then(|| Arc::new(Registry::new()));
    let obs = match (&registry, config.metrics || config.mode == ServeMode::Repl) {
        (Some(registry), _) => Some(Arc::new(EngineObs::with_registry(Arc::clone(registry)))),
        (None, true) => Some(Arc::new(EngineObs::new())),
        (None, false) => None,
    };
    let mut index = match obtain_index(config, obs.as_ref()) {
        Ok(index) => index,
        Err(message) => {
            eprintln!("simjoin: {message}");
            return ExitCode::FAILURE;
        }
    };

    let tau = match config.resolve_tau(index.tau_max()) {
        Ok(tau) => tau,
        Err(message) => {
            eprintln!("simjoin: {message}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = &config.save {
        let started = Instant::now();
        match index.save(path) {
            Ok(bytes) => {
                if config.stats || config.mode == ServeMode::Index {
                    eprintln!(
                        "simjoin: saved snapshot to {} ({} KB in {:.3?})",
                        path.display(),
                        bytes / 1024,
                        started.elapsed(),
                    );
                }
            }
            Err(e) => {
                eprintln!("simjoin: cannot save snapshot {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }

    let code = match (config.mode, &mut index) {
        (ServeMode::Index, _) => ExitCode::SUCCESS,
        (ServeMode::Query, AnyIndex::Single(index)) => {
            // Loaded snapshots are served read-only through a `Snapshot`;
            // corpus builds are queried directly. `Queryable` is
            // object-safe, so one binding covers both source kinds.
            let snapshot;
            let source: &dyn Queryable = match &config.source {
                IndexSource::Snapshot(_) => {
                    snapshot = index.snapshot();
                    &snapshot
                }
                IndexSource::Corpus(_) => &*index,
            };
            run_query_batch(config, tau, source)
        }
        (ServeMode::Query, AnyIndex::Sharded(router)) => {
            // The router is already a read-composed view over its
            // shards; query it directly.
            run_query_batch(config, tau, &*router)
        }
        (ServeMode::Query, AnyIndex::Checkpointed(store)) => {
            // Base + replayed chain, served read-only through the
            // wrapper's read lock.
            run_query_batch(config, tau, &**store)
        }
        (ServeMode::Serve, index) => {
            // The background checkpointer drains the wrapper's mutation
            // log on the interval and once more after the server stops.
            let checkpointer = match (&*index, config.checkpoint_every) {
                (AnyIndex::Checkpointed(store), Some(secs)) => Some(Checkpointer::start(
                    Arc::clone(store),
                    Duration::from_secs(secs),
                )),
                _ => None,
            };
            let snapshot;
            let source: &(dyn Queryable + Sync) = match (&config.source, &*index) {
                (IndexSource::Snapshot(_), AnyIndex::Single(index)) => {
                    snapshot = index.snapshot();
                    &snapshot
                }
                (_, AnyIndex::Single(index)) => index,
                (_, AnyIndex::Sharded(router)) => router,
                (_, AnyIndex::Checkpointed(store)) => &**store,
            };
            let registry = registry
                .as_ref()
                .expect("serve mode always builds a registry");
            let code = run_server(config, tau, source, registry);
            match checkpointer.map(Checkpointer::stop) {
                Some(Some(e)) => {
                    eprintln!(
                        "simjoin: final checkpoint failed: {e} (mutations since the last \
                         completed delta are not persisted)"
                    );
                    ExitCode::FAILURE
                }
                _ => code,
            }
        }
        (ServeMode::Repl, AnyIndex::Single(index)) => {
            let obs = obs
                .as_ref()
                .expect("the repl always attaches observability");
            run_repl(tau, ReplIndex::Plain(index), obs)
        }
        (ServeMode::Repl, AnyIndex::Checkpointed(store)) => {
            let obs = obs
                .as_ref()
                .expect("the repl always attaches observability");
            let code = run_repl(tau, ReplIndex::Checkpointed(store), obs);
            if config.save_delta {
                let pending = store.pending_ops();
                match store.checkpoint() {
                    Ok(Some(path)) => {
                        eprintln!(
                            "simjoin: wrote delta checkpoint {} ({pending} ops)",
                            path.display()
                        );
                    }
                    Ok(None) => eprintln!("simjoin: no mutations to checkpoint"),
                    Err(e) => {
                        eprintln!("simjoin: delta checkpoint failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            code
        }
        (ServeMode::Repl, AnyIndex::Sharded(_)) => {
            eprintln!("simjoin: the repl cannot serve a sharded snapshot (it mutates one index)");
            ExitCode::FAILURE
        }
    };

    if config.metrics {
        if let Some(obs) = &obs {
            match &index {
                AnyIndex::Single(index) => obs.record_index_stats(&index.stats()),
                AnyIndex::Checkpointed(store) => obs.record_index_stats(&store.stats()),
                AnyIndex::Sharded(_) => {}
            }
            eprint!("{}", obs.render_prometheus());
        }
    }
    code
}

/// Builds the index from the corpus (single or `--shards` router), or
/// loads it from a snapshot (probing for a router manifest first) —
/// reporting failures (missing files, corrupt or incompatible snapshots)
/// as messages, never panics.
fn obtain_index(config: &ServeConfig, obs: Option<&Arc<EngineObs>>) -> Result<AnyIndex, String> {
    match &config.source {
        IndexSource::Corpus(corpus) => {
            let text = std::fs::read_to_string(corpus)
                .map_err(|e| format!("cannot read {}: {e}", corpus.display()))?;
            let lines = corpus_lines(&text);
            let built = Instant::now();
            if config.shards > 1 {
                let mut router = config.build_router(&lines);
                router.set_observability(obs.map(|o| Arc::clone(o.registry())));
                if config.stats || config.mode == ServeMode::Index {
                    eprintln!(
                        "simjoin: indexed {} strings across {} shards (tau_max={}, {} keys, \
                         {} partitioning) in {:.3?}",
                        router.len(),
                        router.shard_count(),
                        config.tau_max,
                        config.keys.name(),
                        config.shard_by.name(),
                        built.elapsed(),
                    );
                }
                return Ok(AnyIndex::Sharded(router));
            }
            let mut index = config.build_index(&lines);
            index.set_observability(obs.map(Arc::clone));
            if config.stats || config.mode == ServeMode::Index {
                let s = index.stats();
                eprintln!(
                    "simjoin: indexed {} strings (tau_max={}, {} keys) in {:.3?}: \
                     {} segment entries, {} short-lane, ~{} KB resident",
                    s.live,
                    config.tau_max,
                    index.key_backend().name(),
                    built.elapsed(),
                    s.segment_entries,
                    s.short_strings,
                    s.resident_bytes / 1024,
                );
            }
            Ok(AnyIndex::Single(index))
        }
        IndexSource::Snapshot(snapshot) => {
            let started = Instant::now();
            if is_sharded_snapshot(snapshot)
                .map_err(|e| format!("cannot open snapshot {}: {e}", snapshot.display()))?
            {
                if config.mmap || config.save_delta || config.checkpoint_every.is_some() {
                    return Err(
                        "--mmap/--save-delta/--checkpoint-every need a single-index snapshot; \
                         sharded snapshots are one file per shard"
                            .into(),
                    );
                }
                let mut router = ShardedIndex::load_sharded(snapshot)
                    .map_err(|e| format!("cannot load snapshot {}: {e}", snapshot.display()))?;
                router.set_observability(obs.map(|o| Arc::clone(o.registry())));
                if config.stats {
                    eprintln!(
                        "simjoin: loaded {} strings across {} shards (tau_max={}, {} keys, \
                         {} partitioning) in {:.3?} from {}",
                        router.len(),
                        router.shard_count(),
                        router.tau_max(),
                        router.key_backend().name(),
                        router.shard_by().name(),
                        started.elapsed(),
                        snapshot.display(),
                    );
                }
                return Ok(AnyIndex::Sharded(router));
            }
            // The storage subsystem takes over whenever its features are
            // asked for — or whenever the snapshot already owns a delta
            // chain, so `--load` alone recovers checkpointed state
            // instead of silently serving a stale base.
            let anchor = config.checkpoint_path.as_deref().unwrap_or(snapshot);
            let chain = find_chain(anchor);
            if config.mmap
                || config.save_delta
                || config.checkpoint_every.is_some()
                || !chain.is_empty()
            {
                // `--mmap` means the full instant-restart path: mapped
                // pages *and* deferred validation — the store's
                // background verifier runs the per-section CRCs and the
                // deep postings scan while queries are already served.
                let mut options = StoreOptions::new().mmap(config.mmap).instant(config.mmap);
                if let Some(path) = &config.checkpoint_path {
                    options = options.checkpoint_base(path.clone());
                }
                if let Some(obs) = obs {
                    options = options.registry(Arc::clone(obs.registry()));
                }
                let store = CheckpointedIndex::open(snapshot, options)
                    .map_err(|e| format!("cannot load snapshot {}: {e}", snapshot.display()))?;
                store.set_cache_capacity(config.cache);
                if config.stats {
                    let s = store.stats();
                    eprintln!(
                        "simjoin: loaded {} strings (tau_max={}, {} keys) in {:.3?} from {}{} \
                         (+{} delta checkpoint(s) replayed)",
                        s.live,
                        Queryable::tau_max(&store),
                        store.key_backend().name(),
                        started.elapsed(),
                        snapshot.display(),
                        if config.mmap { " [mmap]" } else { "" },
                        chain.len(),
                    );
                }
                return Ok(AnyIndex::Checkpointed(Arc::new(store)));
            }
            // `load_with` also attributes the load itself (read/decode/
            // validate timings, section bytes) to the registry.
            let mut index = match obs {
                Some(obs) => OnlineIndex::load_with(snapshot, Arc::clone(obs)),
                None => OnlineIndex::load(snapshot),
            }
            .map_err(|e| format!("cannot load snapshot {}: {e}", snapshot.display()))?;
            index.set_cache_capacity(config.cache);
            if config.stats {
                let s = index.stats();
                eprintln!(
                    "simjoin: loaded {} strings (tau_max={}, {} keys) in {:.3?} from {}: \
                     {} segment entries, {} short-lane, ~{} KB resident",
                    s.live,
                    index.tau_max(),
                    index.key_backend().name(),
                    started.elapsed(),
                    snapshot.display(),
                    s.segment_entries,
                    s.short_strings,
                    s.resident_bytes / 1024,
                );
            }
            Ok(AnyIndex::Single(index))
        }
    }
}

fn run_query_batch(config: &ServeConfig, tau: usize, source: &dyn Queryable) -> ExitCode {
    let queries: Vec<Vec<u8>> = match &config.queries {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => corpus_lines(&text),
            Err(e) => {
                eprintln!("simjoin: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        },
        None => {
            let mut lines = Vec::new();
            for line in std::io::stdin().lock().lines() {
                match line {
                    Ok(l) => lines.push(l.into_bytes()),
                    Err(e) => {
                        eprintln!("simjoin: stdin read failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            lines
        }
    };

    let parallelism = match config.threads {
        0 => Parallelism::Auto,
        1 => Parallelism::Serial,
        n => Parallelism::Threads(n),
    };
    // The deadline is absolute — `--deadline-ms N` means "N ms after the
    // batch starts", shared by every request, so a slow prefix leaves the
    // tail less time (the serving-latency semantics, not per-query slack).
    let ticker = config
        .deadline_ms
        .map(|_| Arc::new(WallClockTicks::millis()));
    let budget = if config.max_verify.is_some() || config.deadline_ms.is_some() {
        let mut budget = ExecBudget::new();
        if let Some(n) = config.max_verify {
            budget = budget.with_max_verifications(n);
        }
        if let (Some(ms), Some(ticker)) = (config.deadline_ms, &ticker) {
            let (source, expires_at) = wall_deadline(ticker, ms);
            budget = budget.with_deadline(source, expires_at);
        }
        Some(budget)
    } else {
        None
    };
    let requests: Vec<SearchRequest> = queries
        .iter()
        .map(|q| {
            let mut req = SearchRequest::borrowed(q, tau).with_parallelism(parallelism);
            if let Some(k) = config.limit {
                req = req.with_limit(k);
            }
            if config.count_only {
                req = req.count_only();
            }
            if let Some(b) = &budget {
                req = req.with_budget(b.clone());
            }
            req
        })
        .collect();

    let started = Instant::now();
    let response = if config.stream {
        // Push-based: each `q<TAB>id<TAB>dist` line goes out the moment
        // verification accepts the match (stdout is line-buffered), in
        // emission order — sort to compare with the buffered output. A
        // failed write saturates the sink, aborting the in-flight scan
        // and the rest of the batch, so `simjoin … --stream | head`
        // costs one query's tail, not the whole corpus.
        let mut w = std::io::stdout().lock();
        let mut failed = false;
        let mut outcomes = Vec::with_capacity(requests.len());
        for (q, req) in requests.iter().enumerate() {
            let mut sink = StreamWriter {
                w: &mut w,
                q,
                failed: &mut failed,
            };
            let outcome = source.search_streaming(req, &mut sink);
            if failed {
                return ExitCode::FAILURE;
            }
            if config.count_only && writeln!(w, "{q}\t{}", outcome.count).is_err() {
                return ExitCode::FAILURE;
            }
            outcomes.push(outcome);
        }
        SearchResponse { outcomes }
    } else {
        source.search_batch(&requests)
    };
    let elapsed = started.elapsed();

    if !config.stream {
        let stdout = std::io::stdout().lock();
        let mut w = std::io::BufWriter::new(stdout);
        for (q, outcome) in response.outcomes.iter().enumerate() {
            if config.count_only {
                if writeln!(w, "{q}\t{}", outcome.count).is_err() {
                    return ExitCode::FAILURE;
                }
                continue;
            }
            for (id, dist) in outcome.matches.iter() {
                if writeln!(w, "{q}\t{id}\t{dist}").is_err() {
                    return ExitCode::FAILURE;
                }
            }
        }
        if w.flush().is_err() {
            return ExitCode::FAILURE;
        }
    }

    if config.stats {
        let totals = response.totals();
        let per_sec = queries.len() as f64 / elapsed.as_secs_f64().max(f64::EPSILON);
        eprintln!(
            "simjoin: {} queries, tau={}, {} matches in {:.3?} ({:.0} queries/s; {}{})",
            queries.len(),
            tau,
            totals.matches,
            elapsed,
            per_sec,
            totals.stats,
            truncation_summary(&response),
        );
    }
    ExitCode::SUCCESS
}

/// Serves the index over TCP until shutdown (the protocol op, when
/// `--allow-shutdown`). The bind line goes to stderr so scripts can wait
/// for readiness without parsing the query stream.
fn run_server(
    config: &ServeConfig,
    tau: usize,
    source: &(dyn Queryable + Sync),
    registry: &Arc<Registry>,
) -> ExitCode {
    let server_config = ServerConfig {
        max_connections: if config.threads == 0 {
            ServerConfig::default().max_connections
        } else {
            config.threads
        },
        default_tau: tau,
        max_verify_ceiling: config.max_verify_ceiling,
        deadline_ms_ceiling: config.deadline_ms,
        allow_shutdown: config.allow_shutdown,
        ..ServerConfig::default()
    };
    let server = match Server::bind(config.addr.as_str(), server_config, Arc::clone(registry)) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("simjoin: cannot bind {}: {e}", config.addr);
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => eprintln!(
            "simjoin: serving on {addr} (tau={tau}, tau_max={}, shutdown op {})",
            source.tau_max(),
            if config.allow_shutdown {
                "enabled"
            } else {
                "disabled"
            },
        ),
        Err(e) => {
            eprintln!("simjoin: cannot resolve bound address: {e}");
            return ExitCode::FAILURE;
        }
    }
    match server.run(source) {
        Ok(()) => {
            eprintln!("simjoin: server stopped");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("simjoin: server failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Queries a running `serve` endpoint, printing the offline `query`
/// subcommand's output format: `q<TAB>id<TAB>dist` per match (or
/// `q<TAB>n` with `--count`), `q` being the 0-based query line number.
fn run_client(config: &ClientConfig) -> ExitCode {
    let queries: Vec<Vec<u8>> = match &config.queries {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => corpus_lines(&text),
            Err(e) => {
                eprintln!("simjoin: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        },
        None => {
            let mut lines = Vec::new();
            for line in std::io::stdin().lock().lines() {
                match line {
                    Ok(l) => lines.push(l.into_bytes()),
                    Err(e) => {
                        eprintln!("simjoin: stdin read failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            lines
        }
    };

    let mut client = match Client::connect(config.addr.as_str()) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("simjoin: cannot connect to {}: {e}", config.addr);
            return ExitCode::FAILURE;
        }
    };
    let options = QueryOptions {
        tau: config.tau,
        limit: config.limit,
        count: config.count_only,
        stream: config.stream,
        budget: BudgetSpec {
            max_verify: config.max_verify,
            max_candidates: config.max_candidates,
            deadline_ms: config.deadline_ms,
        },
        batch: config.batch_max_verify.map(|n| BudgetSpec {
            max_verify: Some(n),
            ..BudgetSpec::default()
        }),
    };

    let started = Instant::now();
    let mut totals = (0u64, 0u64, 0u64); // matches, truncated, verifications
    let stdout = std::io::stdout().lock();
    let mut w = std::io::BufWriter::new(stdout);
    for (chunk_index, chunk) in queries.chunks(config.chunk).enumerate() {
        // Each chunk is one request line; `q` on the wire is the index
        // within the line, offset back to the global line number here.
        let base = chunk_index * config.chunk;
        let events = match client.query(chunk, &options) {
            Ok(events) => events,
            Err(e) => {
                eprintln!("simjoin: request failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        for event in events {
            let written = match event {
                Event::Match { q, id, d } if !config.count_only => {
                    writeln!(w, "{}\t{id}\t{d}", base + q as usize)
                }
                Event::Eoq { q, n, .. } if config.count_only => {
                    writeln!(w, "{}\t{n}", base + q as usize)
                }
                Event::Match { .. } | Event::Eoq { .. } | Event::Metrics(_) => Ok(()),
                Event::Done {
                    matches,
                    truncated,
                    verifications,
                    ..
                } => {
                    totals.0 += matches;
                    totals.1 += truncated;
                    totals.2 += verifications;
                    Ok(())
                }
                Event::Error { code, msg } => {
                    eprintln!("simjoin: server error {code}: {msg}");
                    return ExitCode::FAILURE;
                }
            };
            if written.is_err() {
                eprintln!("simjoin: write failed");
                return ExitCode::FAILURE;
            }
        }
    }
    if w.flush().is_err() {
        return ExitCode::FAILURE;
    }
    let elapsed = started.elapsed();

    if config.stats {
        let per_sec = queries.len() as f64 / elapsed.as_secs_f64().max(f64::EPSILON);
        eprintln!(
            "simjoin: {} queries against {}, {} matches in {:.3?} ({:.0} queries/s, \
             {} verifications{})",
            queries.len(),
            config.addr,
            totals.0,
            elapsed,
            per_sec,
            totals.2,
            if totals.1 > 0 {
                format!("; {} truncated", totals.1)
            } else {
                String::new()
            },
        );
    }
    if config.metrics {
        match client.metrics(MetricsFormat::Prometheus) {
            Ok(dump) => eprint!("{dump}"),
            Err(e) => {
                eprintln!("simjoin: metrics scrape failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if config.shutdown {
        if let Err(e) = client.shutdown() {
            eprintln!("simjoin: shutdown failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Writes streamed matches as `q<TAB>id<TAB>dist` lines; a failed write
/// reports saturation, which stops the engine's scan mid-query.
struct StreamWriter<'a, W: Write> {
    w: &'a mut W,
    q: usize,
    failed: &'a mut bool,
}

impl<W: Write> MatchSink for StreamWriter<'_, W> {
    fn push(&mut self, id: u32, dist: usize) {
        if !*self.failed {
            *self.failed = writeln!(self.w, "{}\t{id}\t{dist}", self.q).is_err();
        }
    }

    fn saturated(&self) -> bool {
        *self.failed
    }
}

/// `"; N truncated (…reasons…)"` when any request's budget tripped,
/// empty otherwise.
fn truncation_summary(response: &SearchResponse) -> String {
    use std::collections::BTreeMap;
    let mut reasons: BTreeMap<String, usize> = BTreeMap::new();
    for outcome in &response.outcomes {
        if let Completion::Truncated { reason } = outcome.completion {
            *reasons.entry(reason.to_string()).or_default() += 1;
        }
    }
    if reasons.is_empty() {
        return String::new();
    }
    let total: usize = reasons.values().sum();
    let breakdown: Vec<String> = reasons
        .into_iter()
        .map(|(reason, n)| format!("{n} {reason}"))
        .collect();
    format!("; {total} truncated ({})", breakdown.join(", "))
}

const REPL_HELP: &str = "commands:
  <text>      query the index at the current tau
  :tau N      set the query tau (<= tau_max)
  :limit N    keep only the N closest matches (:limit off to reset)
  :count      toggle count-only mode (no match listing)
  :budget N   cap each query at N verifications (:budget off to reset);
              truncated answers are flagged and tallied in :stats
  :add TEXT   insert a string, printing its id
  :rm ID      remove a string by id
  :stats      print index, cache, and truncation statistics
  :metrics    dump the metrics registry (Prometheus text format)
  :help       this message
  :quit       exit";

/// The index a repl session drives: a plain in-memory index, or the
/// storage subsystem's wrapper when mutations are logged for delta
/// checkpoints (`--load … --save-delta`, or a loaded chain). One repl
/// loop serves both; only the mutation/inspection plumbing differs.
enum ReplIndex<'a> {
    Plain(&'a mut OnlineIndex),
    Checkpointed(&'a CheckpointedIndex),
}

impl ReplIndex<'_> {
    fn len(&self) -> usize {
        match self {
            ReplIndex::Plain(index) => index.len(),
            ReplIndex::Checkpointed(store) => Queryable::len(*store),
        }
    }

    fn tau_max(&self) -> usize {
        match self {
            ReplIndex::Plain(index) => index.tau_max(),
            ReplIndex::Checkpointed(store) => Queryable::tau_max(*store),
        }
    }

    fn search(&self, request: &SearchRequest) -> QueryOutcome {
        match self {
            ReplIndex::Plain(index) => index.search(request),
            ReplIndex::Checkpointed(store) => store.search(request),
        }
    }

    fn insert(&mut self, s: &[u8]) -> u32 {
        match self {
            ReplIndex::Plain(index) => index.insert(s),
            ReplIndex::Checkpointed(store) => store.insert(s),
        }
    }

    fn remove(&mut self, id: u32) -> bool {
        match self {
            ReplIndex::Plain(index) => index.remove(id),
            ReplIndex::Checkpointed(store) => store.remove(id),
        }
    }

    /// The live string for `id`, lossily decoded for display.
    fn text(&self, id: u32) -> Option<String> {
        match self {
            ReplIndex::Plain(index) => index
                .get(id)
                .map(|s| String::from_utf8_lossy(s).into_owned()),
            ReplIndex::Checkpointed(store) => store.with_index(|index| {
                index
                    .get(id)
                    .map(|s| String::from_utf8_lossy(s).into_owned())
            }),
        }
    }

    fn stats(&self) -> OnlineStats {
        match self {
            ReplIndex::Plain(index) => index.stats(),
            ReplIndex::Checkpointed(store) => store.stats(),
        }
    }

    fn cache_stats(&self) -> CacheStats {
        match self {
            ReplIndex::Plain(index) => index.cache_stats(),
            ReplIndex::Checkpointed(store) => store.with_index(OnlineIndex::cache_stats),
        }
    }
}

fn run_repl(tau: usize, mut index: ReplIndex<'_>, obs: &Arc<EngineObs>) -> ExitCode {
    let mut tau = tau;
    let mut limit: Option<usize> = None;
    let mut count_only = false;
    let mut max_verify: Option<u64> = None;
    let mut truncated_total: u64 = 0;
    eprintln!(
        "simjoin repl: {} strings, tau={tau} (tau_max={}), :help for commands",
        index.len(),
        index.tau_max()
    );
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("simjoin: stdin read failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let input = line.trim_end_matches(['\r', '\n']);
        if let Some(command) = input.strip_prefix(':') {
            let (verb, rest) = command.split_once(' ').unwrap_or((command, ""));
            match verb {
                "quit" | "q" | "exit" => break,
                "help" => println!("{REPL_HELP}"),
                "tau" => match rest.trim().parse::<usize>() {
                    Ok(t) if t <= index.tau_max() => {
                        tau = t;
                        println!("tau = {tau}");
                    }
                    Ok(t) => println!("error: tau {t} exceeds tau_max {}", index.tau_max()),
                    Err(_) => println!("error: :tau needs a number"),
                },
                "limit" => match rest.trim() {
                    "off" | "none" => {
                        limit = None;
                        println!("limit off");
                    }
                    n => match n.parse::<usize>() {
                        Ok(k) => {
                            limit = Some(k);
                            println!("limit = {k}");
                        }
                        Err(_) => println!("error: :limit needs a number or 'off'"),
                    },
                },
                "count" => {
                    count_only = !count_only;
                    println!("count-only {}", if count_only { "on" } else { "off" });
                }
                "budget" => match rest.trim() {
                    "off" | "none" => {
                        max_verify = None;
                        println!("budget off");
                    }
                    n => match n.parse::<u64>() {
                        Ok(v) => {
                            max_verify = Some(v);
                            println!("budget = {v} verifications");
                        }
                        Err(_) => println!("error: :budget needs a number or 'off'"),
                    },
                },
                "add" => {
                    let id = index.insert(rest.as_bytes());
                    println!("added id {id}");
                }
                "rm" => match rest.trim().parse::<u32>() {
                    Ok(id) if index.remove(id) => println!("removed id {id}"),
                    Ok(id) => println!("error: no live string with id {id}"),
                    Err(_) => println!("error: :rm needs an id"),
                },
                "stats" => {
                    println!(
                        "{} cache: {} truncated queries: {truncated_total}",
                        index.stats(),
                        index.cache_stats()
                    );
                }
                "metrics" => {
                    obs.record_index_stats(&index.stats());
                    print!("{}", obs.render_prometheus());
                }
                other => println!("error: unknown command :{other} (:help)"),
            }
            continue;
        }
        let mut request =
            SearchRequest::borrowed(input.as_bytes(), tau).with_cache(CachePolicy::Use);
        if let Some(k) = limit {
            request = request.with_limit(k);
        }
        if count_only {
            request = request.count_only();
        }
        if let Some(n) = max_verify {
            request = request.with_budget(ExecBudget::new().with_max_verifications(n));
        }
        let started = Instant::now();
        let outcome = index.search(&request);
        let elapsed = started.elapsed();
        for &(id, dist) in outcome.matches.iter() {
            let text = index.text(id).unwrap_or_default();
            println!("{id}\t{dist}\t{text}");
        }
        let cache = match outcome.cache {
            CacheOutcome::Hit => "cache hit",
            CacheOutcome::Miss => "cache miss",
            CacheOutcome::Bypass => "cache bypassed",
        };
        let completion = if outcome.completion.is_complete() {
            String::new()
        } else {
            truncated_total += 1;
            format!(", {}", outcome.completion)
        };
        println!(
            "({} matches, {elapsed:.1?}, {cache}{completion}, {})",
            outcome.count, outcome.stats
        );
    }
    ExitCode::SUCCESS
}
