//! Byte-string helpers shared by the verification kernels and the trie.
//!
//! All algorithms in this workspace operate on raw bytes. The evaluation
//! corpora (author names, query logs, titles) are ASCII, so byte-level edit
//! distance equals character-level edit distance there; non-ASCII callers get
//! well-defined byte-level semantics (documented on the join entry points).

/// Length of the longest common prefix of `a` and `b`.
///
/// Used by the shared-computation verification (paper §5.3): consecutive
/// strings on an inverted list are lexicographically sorted, so their left
/// parts share prefixes whose DP rows can be reused.
#[inline]
pub fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    let n = a.len().min(b.len());
    // Compare word-at-a-time; corpora strings are short but this is on the
    // hot verification path.
    let mut i = 0;
    while i + 8 <= n {
        let wa = u64::from_le_bytes(a[i..i + 8].try_into().unwrap());
        let wb = u64::from_le_bytes(b[i..i + 8].try_into().unwrap());
        let x = wa ^ wb;
        if x != 0 {
            return i + (x.trailing_zeros() / 8) as usize;
        }
        i += 8;
    }
    while i < n && a[i] == b[i] {
        i += 1;
    }
    i
}

/// Length of the longest common suffix of `a` and `b`.
#[inline]
pub fn common_suffix_len(a: &[u8], b: &[u8]) -> usize {
    let n = a.len().min(b.len());
    let mut i = 0;
    while i < n && a[a.len() - 1 - i] == b[b.len() - 1 - i] {
        i += 1;
    }
    i
}

/// Absolute difference of two lengths, as `usize`.
#[inline]
pub fn len_diff(a: usize, b: usize) -> usize {
    a.abs_diff(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_basic() {
        assert_eq!(common_prefix_len(b"", b""), 0);
        assert_eq!(common_prefix_len(b"abc", b""), 0);
        assert_eq!(common_prefix_len(b"abc", b"abc"), 3);
        assert_eq!(common_prefix_len(b"abcdef", b"abcxef"), 3);
        assert_eq!(common_prefix_len(b"abc", b"abcdef"), 3);
    }

    #[test]
    fn prefix_word_boundaries() {
        // Mismatches straddling the 8-byte fast path.
        let a = b"0123456789abcdef";
        for i in 0..a.len() {
            let mut b = a.to_vec();
            b[i] = b'#';
            assert_eq!(common_prefix_len(a, &b), i, "mismatch at {i}");
        }
        assert_eq!(common_prefix_len(a, a), a.len());
    }

    #[test]
    fn suffix_basic() {
        assert_eq!(common_suffix_len(b"", b""), 0);
        assert_eq!(common_suffix_len(b"abc", b"xbc"), 2);
        assert_eq!(common_suffix_len(b"abc", b"abc"), 3);
        assert_eq!(common_suffix_len(b"c", b"abc"), 1);
        assert_eq!(common_suffix_len(b"xyz", b"abc"), 0);
    }

    #[test]
    fn diff_basic() {
        assert_eq!(len_diff(3, 7), 4);
        assert_eq!(len_diff(7, 3), 4);
        assert_eq!(len_diff(5, 5), 0);
    }
}
