//! An immutable string corpus in Pass-Join visit order.
//!
//! Every join algorithm in this workspace consumes a [`StringCollection`]:
//! the input strings sorted first by length and second lexicographically
//! (paper §3.2, Algorithm 1 line 2). Sorting once up front gives
//!
//! * the incremental-index visit order Pass-Join relies on (a string only
//!   probes indices of *previously visited* strings, so every pair is
//!   enumerated exactly once);
//! * sorted inverted lists for free (ids ascend in insertion order), which
//!   the shared-prefix verification of §5.3 exploits;
//! * contiguous length ranges, so "all strings with length in `[l−τ, l]`"
//!   is a single id range.
//!
//! Strings are stored in one contiguous arena (offset table + byte buffer)
//! rather than per-string allocations: the corpora here hold up to ~10⁶
//! short strings and per-string `Vec`s would waste an allocation and a
//! cache miss each.

/// Identifier of a string inside a [`StringCollection`].
///
/// Ids are dense, start at 0, and ascend in (length, lexicographic) order.
/// They are *not* the positions of the strings in the input; use
/// [`StringCollection::original_index`] to translate back.
pub type StringId = u32;

/// An immutable corpus sorted by (length, lexicographic) order.
#[derive(Debug, Clone, Default)]
pub struct StringCollection {
    /// Concatenated string bytes.
    buf: Vec<u8>,
    /// `offsets[i]..offsets[i+1]` is the byte range of string `i`.
    offsets: Vec<u32>,
    /// `original[i]` is the position of string `i` in the constructor input.
    original: Vec<u32>,
}

impl StringCollection {
    /// Builds a collection from owned byte strings.
    ///
    /// The input order is remembered: join results are reported in terms of
    /// input positions, so two algorithms fed the same `Vec` produce
    /// directly comparable pairs.
    ///
    /// # Panics
    ///
    /// Panics if the corpus exceeds `u32::MAX` total bytes or strings, which
    /// is far beyond the paper's largest dataset (88 MB).
    pub fn new(strings: Vec<Vec<u8>>) -> Self {
        assert!(
            strings.len() < u32::MAX as usize,
            "corpus exceeds u32 string count"
        );
        let total: usize = strings.iter().map(Vec::len).sum();
        assert!(total < u32::MAX as usize, "corpus exceeds u32 total bytes");

        let mut order: Vec<u32> = (0..strings.len() as u32).collect();
        order.sort_by(|&a, &b| {
            let (sa, sb) = (&strings[a as usize], &strings[b as usize]);
            sa.len().cmp(&sb.len()).then_with(|| sa.cmp(sb))
        });

        let mut buf = Vec::with_capacity(total);
        let mut offsets = Vec::with_capacity(strings.len() + 1);
        offsets.push(0u32);
        for &idx in &order {
            buf.extend_from_slice(&strings[idx as usize]);
            offsets.push(buf.len() as u32);
        }
        Self {
            buf,
            offsets,
            original: order,
        }
    }

    /// Builds a collection from UTF-8 string slices (bytes are copied).
    pub fn from_strs<S: AsRef<str>>(strings: &[S]) -> Self {
        Self::new(
            strings
                .iter()
                .map(|s| s.as_ref().as_bytes().to_vec())
                .collect(),
        )
    }

    /// Builds a collection from the non-empty lines of a text blob, one
    /// string per line. Mirrors how the paper's datasets are distributed.
    pub fn from_lines(text: &str) -> Self {
        Self::new(
            text.lines()
                .filter(|l| !l.is_empty())
                .map(|l| l.as_bytes().to_vec())
                .collect(),
        )
    }

    /// Number of strings.
    #[inline]
    pub fn len(&self) -> usize {
        self.original.len()
    }

    /// True if the collection holds no strings.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.original.is_empty()
    }

    /// The bytes of string `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn get(&self, id: StringId) -> &[u8] {
        let lo = self.offsets[id as usize] as usize;
        let hi = self.offsets[id as usize + 1] as usize;
        &self.buf[lo..hi]
    }

    /// Length in bytes of string `id`.
    #[inline]
    pub fn str_len(&self, id: StringId) -> usize {
        (self.offsets[id as usize + 1] - self.offsets[id as usize]) as usize
    }

    /// Position of string `id` in the constructor input.
    #[inline]
    pub fn original_index(&self, id: StringId) -> u32 {
        self.original[id as usize]
    }

    /// Iterates `(id, bytes)` in (length, lexicographic) order.
    pub fn iter(&self) -> impl Iterator<Item = (StringId, &[u8])> {
        (0..self.len() as u32).map(move |id| (id, self.get(id)))
    }

    /// Length of the shortest string, or 0 for an empty collection.
    pub fn min_len(&self) -> usize {
        if self.is_empty() {
            0
        } else {
            self.str_len(0)
        }
    }

    /// Length of the longest string, or 0 for an empty collection.
    pub fn max_len(&self) -> usize {
        if self.is_empty() {
            0
        } else {
            self.str_len(self.len() as u32 - 1)
        }
    }

    /// Total corpus size in bytes (sum of string lengths).
    pub fn total_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Mean string length.
    pub fn avg_len(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.buf.len() as f64 / self.len() as f64
        }
    }

    /// The contiguous id range of strings whose length lies in
    /// `[min_len, max_len]`. Valid because ids ascend by length.
    pub fn ids_with_len_in(&self, min_len: usize, max_len: usize) -> std::ops::Range<StringId> {
        let lo = self.partition_by_len(min_len);
        let hi = self.partition_by_len(max_len + 1);
        lo..hi
    }

    /// First id whose string length is `>= len`.
    fn partition_by_len(&self, len: usize) -> StringId {
        let mut lo = 0u32;
        let mut hi = self.len() as u32;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.str_len(mid) < len {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Histogram of string lengths as `(length, count)`, ascending.
    /// Reproduces the paper's Figure 11 series.
    pub fn length_histogram(&self) -> Vec<(usize, usize)> {
        let mut hist: Vec<(usize, usize)> = Vec::new();
        for (_, s) in self.iter() {
            match hist.last_mut() {
                Some((len, count)) if *len == s.len() => *count += 1,
                _ => hist.push((s.len(), 1)),
            }
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table1() -> StringCollection {
        // Table 1 of the paper.
        StringCollection::from_strs(&[
            "avataresha",
            "caushik chakrabar",
            "kaushic chaduri",
            "kaushik chakrab",
            "kaushuk chadhui",
            "vankatesh",
        ])
    }

    #[test]
    fn sorts_by_length_then_alpha() {
        let c = table1();
        let sorted: Vec<&[u8]> = c.iter().map(|(_, s)| s).collect();
        assert_eq!(
            sorted,
            vec![
                b"vankatesh".as_slice(),
                b"avataresha",
                b"kaushic chaduri",
                b"kaushik chakrab",
                b"kaushuk chadhui",
                b"caushik chakrabar",
            ]
        );
    }

    #[test]
    fn original_indices_round_trip() {
        let input = vec![b"bb".to_vec(), b"a".to_vec(), b"ccc".to_vec()];
        let c = StringCollection::new(input.clone());
        for (id, s) in c.iter() {
            assert_eq!(&input[c.original_index(id) as usize][..], s);
        }
    }

    #[test]
    fn stats_match_table1() {
        let c = table1();
        assert_eq!(c.len(), 6);
        assert_eq!(c.min_len(), 9);
        assert_eq!(c.max_len(), 17);
        assert_eq!(c.total_bytes(), 9 + 10 + 15 * 3 + 17);
    }

    #[test]
    fn length_ranges() {
        let c = table1();
        // Strings of length 15: ids 2, 3, 4 in sorted order.
        assert_eq!(c.ids_with_len_in(15, 15), 2..5);
        assert_eq!(c.ids_with_len_in(9, 10), 0..2);
        assert_eq!(c.ids_with_len_in(0, 100), 0..6);
        assert_eq!(c.ids_with_len_in(18, 100), 6..6);
        assert_eq!(c.ids_with_len_in(16, 17), 5..6);
    }

    #[test]
    fn histogram_counts() {
        let c = table1();
        assert_eq!(
            c.length_histogram(),
            vec![(9, 1), (10, 1), (15, 3), (17, 1)]
        );
    }

    #[test]
    fn duplicate_strings_stay_distinct() {
        let c = StringCollection::from_strs(&["dup", "dup", "xyz"]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), b"dup");
        assert_eq!(c.get(1), b"dup");
        // Both original positions 0 and 1 must be represented.
        let mut orig: Vec<u32> = (0..2).map(|id| c.original_index(id)).collect();
        orig.sort_unstable();
        assert_eq!(orig, vec![0, 1]);
    }

    #[test]
    fn empty_collection() {
        let c = StringCollection::new(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.min_len(), 0);
        assert_eq!(c.max_len(), 0);
        assert_eq!(c.ids_with_len_in(0, 10), 0..0);
        assert!(c.length_histogram().is_empty());
    }

    #[test]
    fn from_lines_skips_empty() {
        let c = StringCollection::from_lines("abc\n\nde\n");
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(0), b"de");
        assert_eq!(c.get(1), b"abc");
    }
}
