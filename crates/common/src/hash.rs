//! A fast, non-cryptographic hasher for short byte-string keys.
//!
//! Segment and q-gram lookup tables are probed millions of times per join;
//! the standard library's SipHash dominates profiles there. This module
//! implements the FxHash algorithm (the multiply-and-rotate hash used by the
//! Rust compiler) from scratch, because the `rustc-hash` crate is not part of
//! the sanctioned dependency set. HashDoS resistance is irrelevant here: keys
//! come from the corpus being joined, not from an adversary.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit FxHash state. See the module docs for why this exists.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

/// Knuth-style multiplicative constant used by FxHash (`2^64 / phi`, odd).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let word = u64::from_le_bytes(bytes[..8].try_into().unwrap());
            self.add_to_hash(word);
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            let word = u32::from_le_bytes(bytes[..4].try_into().unwrap());
            self.add_to_hash(u64::from(word));
            bytes = &bytes[4..];
        }
        if bytes.len() >= 2 {
            let word = u16::from_le_bytes(bytes[..2].try_into().unwrap());
            self.add_to_hash(u64::from(word));
            bytes = &bytes[2..];
        }
        if let Some(&b) = bytes.first() {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s; usable anywhere
/// `BuildHasherDefault` is accepted.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` replacement keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` replacement keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: T) -> u64 {
        let mut hasher = FxHasher::default();
        value.hash(&mut hasher);
        hasher.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of("segment"), hash_of("segment"));
        assert_eq!(hash_of(42u64), hash_of(42u64));
    }

    #[test]
    fn distinguishes_close_keys() {
        assert_ne!(hash_of(b"abc".as_slice()), hash_of(b"abd".as_slice()));
        assert_ne!(hash_of(b"abc".as_slice()), hash_of(b"ab".as_slice()));
        assert_ne!(hash_of(0u64), hash_of(1u64));
    }

    #[test]
    fn handles_all_tail_lengths() {
        // Exercise the 8/4/2/1-byte tail paths of `write`.
        for len in 0..=17 {
            let a: Vec<u8> = (0..len).collect();
            let mut b = a.clone();
            if len > 0 {
                b[len as usize - 1] ^= 0xff;
                assert_ne!(hash_of(&a[..]), hash_of(&b[..]), "len {len}");
            } else {
                assert_eq!(hash_of(&a[..]), hash_of(&b[..]));
            }
        }
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut map: FxHashMap<&[u8], u32> = FxHashMap::default();
        map.insert(b"va", 1);
        map.insert(b"nk", 2);
        assert_eq!(map.get(b"va".as_slice()), Some(&1));

        let mut set: FxHashSet<u32> = FxHashSet::default();
        assert!(set.insert(7));
        assert!(!set.insert(7));
    }
}
