//! The common join interface and its observability types.
//!
//! Each algorithm crate (`passjoin`, `edjoin`, `triejoin`) exposes a config
//! struct implementing [`SimilarityJoin`]. The benchmark harness treats them
//! uniformly, and the integration tests assert that all of them produce the
//! same pair set as a naive ground-truth join.

use std::fmt;
use std::time::Duration;

use crate::collection::{StringCollection, StringId};

/// A similar pair, reported as *input positions* (not sorted ids), with
/// `0 <= first < second`. Input positions make results comparable across
/// algorithms regardless of their internal orderings.
pub type Pair = (u32, u32);

/// Counters describing the work a join performed.
///
/// Fields that an algorithm does not track are left at zero; the harness
/// prints only populated columns. These counters regenerate the paper's
/// Figure 12 (`selected_substrings`) and Table 3 (`index_bytes`), and back
/// the candidate-quality discussion of §6.3.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JoinStats {
    /// Number of strings in the (probe-side) collection.
    pub strings: u64,
    /// Substrings selected across all probes (Pass-Join §4; Figure 12).
    pub selected_substrings: u64,
    /// Index lookups performed (selected substrings or prefix grams probed).
    pub probes: u64,
    /// Candidate occurrences produced by the filter, counted with
    /// multiplicity (the same pair may be generated via several segments).
    pub candidate_occurrences: u64,
    /// Distinct candidate pairs passed to verification, where tracked.
    pub candidate_pairs: u64,
    /// Verification invocations (edit-distance computations, possibly
    /// early-terminated).
    pub verifications: u64,
    /// Result pairs found.
    pub results: u64,
    /// Estimated resident size of the filter index in bytes (Table 3).
    pub index_bytes: u64,
}

impl JoinStats {
    /// Adds every counter of `other` into `self` (for sharded runs).
    pub fn merge(&mut self, other: &JoinStats) {
        self.strings += other.strings;
        self.selected_substrings += other.selected_substrings;
        self.probes += other.probes;
        self.candidate_occurrences += other.candidate_occurrences;
        self.candidate_pairs += other.candidate_pairs;
        self.verifications += other.verifications;
        self.results += other.results;
        self.index_bytes += other.index_bytes;
    }
}

impl fmt::Display for JoinStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "strings={} selected={} probes={} cand_occ={} cand_pairs={} verifs={} results={} index={}B",
            self.strings,
            self.selected_substrings,
            self.probes,
            self.candidate_occurrences,
            self.candidate_pairs,
            self.verifications,
            self.results,
            self.index_bytes
        )
    }
}

/// The outcome of a join: result pairs plus work counters and wall time.
#[derive(Debug, Clone, Default)]
pub struct JoinOutput {
    /// Similar pairs as input positions, `first < second`. Order is
    /// algorithm-specific; call [`JoinOutput::normalized_pairs`] to compare.
    pub pairs: Vec<Pair>,
    /// Work counters.
    pub stats: JoinStats,
    /// Wall-clock time of the join (set by drivers that time themselves;
    /// zero otherwise).
    pub elapsed: Duration,
}

impl JoinOutput {
    /// Pairs sorted and deduplicated, for cross-algorithm comparison.
    ///
    /// A correct join never produces duplicates, so `normalized_pairs` has
    /// the same length as `pairs`; tests assert both.
    pub fn normalized_pairs(&self) -> Vec<Pair> {
        let mut pairs = self.pairs.clone();
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }
}

/// A string similarity self-join under an edit-distance threshold.
pub trait SimilarityJoin {
    /// Short human-readable algorithm name, e.g. `"pass-join"`.
    fn name(&self) -> &'static str;

    /// Finds all pairs `(r, s)` with `ed(r, s) <= tau` within `collection`.
    ///
    /// Pairs are reported as input positions with `first < second`; a pair
    /// of *equal* strings at different positions is a result (their edit
    /// distance is 0), but a string is never paired with itself.
    fn self_join(&self, collection: &StringCollection, tau: usize) -> JoinOutput;
}

/// Emits `(r, s)` as a normalized input-position pair.
///
/// Helper for join drivers: translates sorted ids to input positions and
/// orients the pair.
#[inline]
pub fn emit_pair(collection: &StringCollection, a: StringId, b: StringId, out: &mut Vec<Pair>) {
    let (x, y) = (collection.original_index(a), collection.original_index(b));
    out.push(if x < y { (x, y) } else { (y, x) });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_merge_adds_fields() {
        let mut a = JoinStats {
            strings: 1,
            selected_substrings: 2,
            probes: 3,
            candidate_occurrences: 4,
            candidate_pairs: 5,
            verifications: 6,
            results: 7,
            index_bytes: 8,
        };
        a.merge(&a.clone());
        assert_eq!(a.strings, 2);
        assert_eq!(a.index_bytes, 16);
        assert_eq!(a.results, 14);
    }

    #[test]
    fn normalized_pairs_sorts_and_dedupes() {
        let out = JoinOutput {
            pairs: vec![(3, 5), (0, 1), (3, 5)],
            ..Default::default()
        };
        assert_eq!(out.normalized_pairs(), vec![(0, 1), (3, 5)]);
    }

    #[test]
    fn emit_pair_orients_by_input_position() {
        let c = StringCollection::from_strs(&["bbbb", "a"]);
        // Sorted: id 0 = "a" (input 1), id 1 = "bbbb" (input 0).
        let mut out = Vec::new();
        emit_pair(&c, 0, 1, &mut out);
        emit_pair(&c, 1, 0, &mut out);
        assert_eq!(out, vec![(0, 1), (0, 1)]);
    }

    #[test]
    fn stats_display_is_stable() {
        let s = JoinStats::default();
        let text = s.to_string();
        assert!(text.contains("results=0"));
        assert!(text.contains("index=0B"));
    }
}
