//! Shared substrate for the Pass-Join reproduction.
//!
//! This crate holds everything the similarity-join algorithms (`passjoin`,
//! `edjoin`, `triejoin`) have in common so that benchmark comparisons isolate
//! the *algorithms*, not incidental infrastructure differences:
//!
//! * [`collection::StringCollection`] — an immutable corpus sorted by
//!   (length, lexicographic) order, the canonical visit order of Pass-Join
//!   (paper §3.2, Algorithm 1 line 2);
//! * [`join::SimilarityJoin`] — the one-call self-join interface every
//!   algorithm implements, returning pairs plus [`join::JoinStats`];
//! * [`hash`] — an FxHash-style fast hasher for segment/gram maps (the
//!   default SipHash is needlessly slow for short byte keys);
//! * [`stamp::StampSet`] — an O(1)-reset visited-set used to deduplicate
//!   candidates during a single probe;
//! * [`bytes`] — small byte-string helpers (common prefix/suffix lengths);
//! * [`shared::SharedBytes`] — a cloneable immutable byte buffer over a
//!   pluggable [`shared::ByteStore`] (heap or memory-mapped), the handle
//!   zero-copy snapshot loads and the string arena share.

pub mod bytes;
pub mod collection;
pub mod hash;
pub mod join;
pub mod shared;
pub mod stamp;

pub use collection::{StringCollection, StringId};
pub use join::{JoinOutput, JoinStats, SimilarityJoin};
pub use shared::{ByteStore, SharedBytes};
