//! Shared immutable byte buffers behind a pluggable backing store.
//!
//! [`SharedBytes`] is the `Arc<[u8]>`-shaped handle the zero-copy paths
//! (snapshot load, string arena) hold: cheaply cloneable, derefs to
//! `[u8]`, and never mutated after construction. The backing storage is
//! abstracted behind [`ByteStore`] so a heap buffer (`fs::read`) and a
//! memory-mapped file can flow through the same load path — callers
//! only ever see the byte slice.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable byte buffer that can back a [`SharedBytes`] handle.
///
/// Implementations must return the same slice (same address, same
/// length) for the lifetime of the value: downstream code caches spans
/// into the buffer and resolves them lazily.
pub trait ByteStore: Send + Sync {
    /// The stored bytes.
    fn as_bytes(&self) -> &[u8];
}

impl ByteStore for Vec<u8> {
    fn as_bytes(&self) -> &[u8] {
        self
    }
}

impl ByteStore for Box<[u8]> {
    fn as_bytes(&self) -> &[u8] {
        self
    }
}

impl ByteStore for Arc<[u8]> {
    fn as_bytes(&self) -> &[u8] {
        self
    }
}

/// A cheaply-cloneable, immutable, shareable byte buffer.
///
/// Equivalent in spirit to `Arc<[u8]>` — and convertible from one —
/// but the storage behind the slice is pluggable: a heap allocation, a
/// memory-mapped file, or anything else implementing [`ByteStore`].
/// Cloning clones the `Arc`, never the bytes.
#[derive(Clone)]
pub struct SharedBytes(Arc<dyn ByteStore>);

impl SharedBytes {
    /// Wraps an arbitrary backing store.
    pub fn from_store(store: Arc<dyn ByteStore>) -> Self {
        Self(store)
    }

    /// The stored bytes.
    pub fn as_bytes(&self) -> &[u8] {
        self.0.as_bytes()
    }

    /// Buffer length in bytes.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.as_bytes().len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.as_bytes().is_empty()
    }
}

impl Deref for SharedBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_bytes()
    }
}

impl AsRef<[u8]> for SharedBytes {
    fn as_ref(&self) -> &[u8] {
        self.as_bytes()
    }
}

impl From<Vec<u8>> for SharedBytes {
    fn from(bytes: Vec<u8>) -> Self {
        Self(Arc::new(bytes))
    }
}

impl From<Box<[u8]>> for SharedBytes {
    fn from(bytes: Box<[u8]>) -> Self {
        Self(Arc::new(bytes))
    }
}

impl From<Arc<[u8]>> for SharedBytes {
    fn from(bytes: Arc<[u8]>) -> Self {
        Self(Arc::new(bytes))
    }
}

impl From<&[u8]> for SharedBytes {
    fn from(bytes: &[u8]) -> Self {
        Self(Arc::new(bytes.to_vec()))
    }
}

impl fmt::Debug for SharedBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedBytes")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_storage() {
        let a = SharedBytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a.as_bytes().as_ptr(), b.as_bytes().as_ptr());
        assert_eq!(&b[..], &[1, 2, 3]);
    }

    #[test]
    fn conversions() {
        assert_eq!(&SharedBytes::from(&b"xy"[..])[..], b"xy");
        let arc: Arc<[u8]> = Arc::from(&b"abc"[..]);
        assert_eq!(SharedBytes::from(arc).len(), 3);
        assert!(SharedBytes::from(Vec::new()).is_empty());
    }
}
