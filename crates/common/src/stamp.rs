//! A visited-set with O(1) reset, used to deduplicate candidates per probe.
//!
//! During one probe string's candidate generation, the same indexed string
//! can surface through several segments. A `HashSet` per probe would
//! allocate and rehash millions of times across a join; clearing a bitmap
//! costs O(universe) per probe. A *stamp set* stores, per id, the epoch in
//! which it was last inserted: resetting is a single counter increment.

/// Dense-universe set of `u32` ids with O(1) `clear`.
#[derive(Debug, Clone)]
pub struct StampSet {
    stamps: Vec<u32>,
    epoch: u32,
}

impl StampSet {
    /// Creates an empty set over the universe `0..universe`.
    pub fn new(universe: usize) -> Self {
        // Stamps start at 0 and the epoch at 1, so a fresh set is empty
        // without requiring an initial `clear`.
        Self {
            stamps: vec![0; universe],
            epoch: 1,
        }
    }

    /// Number of ids the set can hold.
    pub fn universe(&self) -> usize {
        self.stamps.len()
    }

    /// Grows the universe to at least `universe` ids, keeping contents.
    pub fn grow(&mut self, universe: usize) {
        if universe > self.stamps.len() {
            self.stamps.resize(universe, 0);
        }
    }

    /// Empties the set. O(1) except once every `u32::MAX` clears, when the
    /// stamp array must be zeroed to avoid epoch collisions.
    #[inline]
    pub fn clear(&mut self) {
        if self.epoch == u32::MAX {
            self.stamps.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Inserts `id`; returns `true` if it was not yet present this epoch.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the universe.
    #[inline]
    pub fn insert(&mut self, id: u32) -> bool {
        let slot = &mut self.stamps[id as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }

    /// True if `id` was inserted since the last [`StampSet::clear`].
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        self.stamps[id as usize] == self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = StampSet::new(10);
        s.clear();
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.contains(3));
        assert!(!s.contains(4));
    }

    #[test]
    fn clear_resets() {
        let mut s = StampSet::new(4);
        s.clear();
        s.insert(0);
        s.insert(1);
        s.clear();
        assert!(!s.contains(0));
        assert!(!s.contains(1));
        assert!(s.insert(0));
    }

    #[test]
    fn fresh_set_contains_nothing() {
        // A fresh set must be empty without an explicit `clear`: the stamp
        // array starts at 0 while the epoch starts at 1.
        let s = StampSet::new(3);
        assert!(!s.contains(0), "fresh StampSet must be empty");
        assert!(!s.contains(2), "fresh StampSet must be empty");
    }

    #[test]
    fn grow_preserves_semantics() {
        let mut s = StampSet::new(2);
        s.clear();
        s.insert(1);
        s.grow(8);
        assert!(s.contains(1));
        assert!(!s.contains(7));
        assert!(s.insert(7));
    }

    #[test]
    fn epoch_wraparound_is_safe() {
        let mut s = StampSet::new(2);
        s.epoch = u32::MAX - 1;
        s.clear(); // epoch == MAX
        s.insert(0);
        assert!(s.contains(0));
        s.clear(); // wraps: zeroes stamps, epoch restarts
        assert!(!s.contains(0));
        assert!(s.insert(0));
    }
}
