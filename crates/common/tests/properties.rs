//! Property tests for the shared substrate: collection ordering
//! invariants, stamp-set set-semantics, and hash quality smoke checks.

use proptest::prelude::*;
use sj_common::hash::{FxHashMap, FxHashSet};
use sj_common::stamp::StampSet;
use sj_common::StringCollection;

fn corpus() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(32u8..127, 0..24), 0..40)
}

proptest! {
    #[test]
    fn collection_is_a_permutation_in_sorted_order(strings in corpus()) {
        let coll = StringCollection::new(strings.clone());
        prop_assert_eq!(coll.len(), strings.len());

        // (length, lex) sorted.
        let sorted: Vec<&[u8]> = coll.iter().map(|(_, s)| s).collect();
        for w in sorted.windows(2) {
            prop_assert!(
                (w[0].len(), w[0]) <= (w[1].len(), w[1]),
                "not sorted: {:?} then {:?}", w[0], w[1]
            );
        }

        // original_index is a bijection back to the input.
        let mut seen = vec![false; strings.len()];
        for (id, s) in coll.iter() {
            let orig = coll.original_index(id) as usize;
            prop_assert!(!seen[orig], "original index repeated");
            seen[orig] = true;
            prop_assert_eq!(&strings[orig][..], s);
        }

        // Aggregates agree with the raw input.
        let total: usize = strings.iter().map(Vec::len).sum();
        prop_assert_eq!(coll.total_bytes(), total);
        if !strings.is_empty() {
            prop_assert_eq!(coll.min_len(), strings.iter().map(Vec::len).min().unwrap());
            prop_assert_eq!(coll.max_len(), strings.iter().map(Vec::len).max().unwrap());
        }
    }

    #[test]
    fn length_ranges_partition_the_ids(strings in corpus()) {
        let coll = StringCollection::new(strings);
        let max = coll.max_len();
        // Concatenating the per-length ranges covers 0..n exactly once.
        let mut covered = 0u32;
        for len in 0..=max {
            let range = coll.ids_with_len_in(len, len);
            prop_assert_eq!(range.start, covered, "gap at length {}", len);
            for id in range.clone() {
                prop_assert_eq!(coll.str_len(id), len);
            }
            covered = range.end;
        }
        prop_assert_eq!(covered as usize, coll.len());
    }

    #[test]
    fn histogram_sums_to_collection_size(strings in corpus()) {
        let coll = StringCollection::new(strings);
        let hist = coll.length_histogram();
        let total: usize = hist.iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(total, coll.len());
        for w in hist.windows(2) {
            prop_assert!(w[0].0 < w[1].0, "histogram lengths not ascending");
        }
    }

    #[test]
    fn stamp_set_behaves_like_hashset(ops in proptest::collection::vec((0u32..32, any::<bool>()), 0..200)) {
        let mut stamp = StampSet::new(32);
        let mut model: FxHashSet<u32> = FxHashSet::default();
        for (id, clear) in ops {
            if clear {
                stamp.clear();
                model.clear();
            } else {
                prop_assert_eq!(stamp.insert(id), model.insert(id));
            }
            prop_assert_eq!(stamp.contains(id), model.contains(&id));
        }
    }

    #[test]
    fn fxhash_map_round_trips(entries in proptest::collection::vec((proptest::collection::vec(any::<u8>(), 0..12), any::<u32>()), 0..50)) {
        let mut map: FxHashMap<Vec<u8>, u32> = FxHashMap::default();
        for (k, v) in &entries {
            map.insert(k.clone(), *v);
        }
        // Last write wins, exactly as with the std hasher.
        let mut expected: std::collections::HashMap<Vec<u8>, u32> = std::collections::HashMap::new();
        for (k, v) in &entries {
            expected.insert(k.clone(), *v);
        }
        prop_assert_eq!(map.len(), expected.len());
        for (k, v) in &expected {
            prop_assert_eq!(map.get(k), Some(v));
        }
    }
}
