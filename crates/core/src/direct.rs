//! Direct-probe segment postings: binary search straight over a loaded
//! snapshot buffer, no hash-map rebuild.
//!
//! The hash-map backends ([`SegmentMap`](crate::SegmentMap),
//! [`InternedSegmentIndex`](crate::InternedSegmentIndex)) answer
//! `L_l^slot(seg)` in O(1) but must be *built* — every posting replayed
//! into a map — so loading a snapshot costs time proportional to the
//! index. [`DirectSegmentIndex`] is the third backend behind
//! [`SegmentProbe`](crate::SegmentProbe): the snapshot carries the
//! postings as sorted arrays (a per-length run directory, a fixed-width
//! run table ordered by `(l, slot, key)`, a key-bytes blob, and an id
//! blob), and a probe binary-searches those arrays in place. Constructing
//! one is O(#lengths): the buffer *is* the index.
//!
//! Safety model: the byte-level parsing happens upstream (in
//! `passjoin-persist`); this type receives pre-split ranges plus the
//! parsed length directory and re-checks every offset at probe time, so
//! a corrupt or hostile file can make probes return `None` (and the deep
//! validator reject it) but can never cause a panic or out-of-bounds
//! read. The id blob is viewed as `&[StringId]` only when the platform
//! is little-endian and the range is 4-byte aligned; otherwise the ids
//! are copied out once at construction.

use std::ops::Range;

use sj_common::{SharedBytes, StringId};

use crate::partition::PartitionScheme;

/// Bytes per run-table entry: slot u32 | key_len u32 | key_off u64 |
/// ids_off u64 | n_ids u32 (little-endian, byte-packed).
pub const RUN_ENTRY_LEN: usize = 28;

/// One length's contiguous span of run-table entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LengthRuns {
    /// The string length `l` this row serves.
    pub l: u32,
    /// First run-table index of the span.
    pub run_start: u64,
    /// Number of runs in the span.
    pub run_count: u64,
}

/// One decoded run-table entry.
#[derive(Debug, Clone, Copy)]
struct Run {
    slot: u32,
    key_len: u32,
    key_off: u64,
    ids_off: u64,
    n_ids: u32,
}

/// The id blob: a zero-copy aligned view when the platform allows it,
/// an owned copy otherwise.
#[derive(Debug, Clone)]
enum IdsView {
    /// 4-byte-aligned little-endian view into the shared buffer.
    Borrowed(Range<usize>),
    /// Ids copied out at construction (misaligned base or big-endian).
    Owned(Box<[StringId]>),
}

/// Sorted-array segment postings probed directly from a snapshot buffer.
///
/// Implements [`SegmentProbe`](crate::SegmentProbe) next to the owned and
/// interned backends; the query drivers cannot tell them apart (and the
/// differential suites pin that their answers are byte-identical).
#[derive(Debug, Clone)]
pub struct DirectSegmentIndex {
    buf: SharedBytes,
    scheme: PartitionScheme,
    tau: usize,
    max_len: usize,
    entries: u64,
    /// Per-length run spans, `l` strictly ascending (binary-searched).
    lengths: Vec<LengthRuns>,
    /// Byte range of the run table within `buf`.
    runs: Range<usize>,
    /// Byte range of the key blob within `buf`.
    keys: Range<usize>,
    ids: IdsView,
    /// Number of ids in the id blob (elements, not bytes).
    n_ids_total: usize,
}

impl DirectSegmentIndex {
    /// Assembles a direct index from pre-parsed snapshot ranges.
    ///
    /// Cheap (O(#lengths)) structural checks only — run spans must tile
    /// `[0, n_runs)` with `l` strictly ascending and partitionable under
    /// `tau`. Everything deeper (run ordering, key tiling, id bounds) is
    /// bounds-checked per probe and fully checked by
    /// [`DirectSegmentIndex::validate_deep`].
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw_parts(
        buf: SharedBytes,
        scheme: PartitionScheme,
        tau: usize,
        max_len: usize,
        entries: u64,
        lengths: Vec<LengthRuns>,
        runs: Range<usize>,
        keys: Range<usize>,
        ids: Range<usize>,
    ) -> Result<Self, &'static str> {
        if runs.start > runs.end
            || runs.end > buf.len()
            || !runs.len().is_multiple_of(RUN_ENTRY_LEN)
        {
            return Err("direct run table range is malformed");
        }
        if keys.start > keys.end || keys.end > buf.len() {
            return Err("direct key blob range is malformed");
        }
        if ids.start > ids.end || ids.end > buf.len() || !ids.len().is_multiple_of(4) {
            return Err("direct id blob range is malformed");
        }
        let n_runs = (runs.len() / RUN_ENTRY_LEN) as u64;
        let mut expected_start = 0u64;
        let mut prev_l: Option<u32> = None;
        for entry in &lengths {
            if prev_l.is_some_and(|p| entry.l <= p) {
                return Err("direct length directory is not strictly ascending");
            }
            prev_l = Some(entry.l);
            if (entry.l as usize) < tau + 1 || entry.l as usize > max_len {
                return Err("direct length directory entry is out of range");
            }
            if entry.run_start != expected_start || entry.run_count == 0 {
                return Err("direct run spans do not tile the run table");
            }
            expected_start = expected_start
                .checked_add(entry.run_count)
                .ok_or("direct run span overflows")?;
        }
        if expected_start != n_runs {
            return Err("direct run spans do not cover the run table");
        }
        let n_ids_total = ids.len() / 4;
        let ids = Self::ids_view(&buf, ids);
        Ok(Self {
            buf,
            scheme,
            tau,
            max_len,
            entries,
            lengths,
            runs,
            keys,
            ids,
            n_ids_total,
        })
    }

    /// Borrow the blob zero-copy when a `&[u8]` can be reinterpreted as
    /// `&[StringId]` in place; copy once otherwise.
    fn ids_view(buf: &SharedBytes, range: Range<usize>) -> IdsView {
        let bytes = &buf[range.clone()];
        if cfg!(target_endian = "little") && bytes.as_ptr().align_offset(4) == 0 {
            IdsView::Borrowed(range)
        } else {
            IdsView::Owned(
                bytes
                    .chunks_exact(4)
                    .map(|c| StringId::from_le_bytes(c.try_into().unwrap()))
                    .collect(),
            )
        }
    }

    /// The τ this index partitions for.
    pub fn tau(&self) -> usize {
        self.tau
    }

    /// The partition scheme used by every indexed string.
    pub fn scheme(&self) -> PartitionScheme {
        self.scheme
    }

    /// Live inverted-list entries (Σ list lengths), as recorded by the
    /// snapshot ([`DirectSegmentIndex::validate_deep`] cross-checks it
    /// against the actual lists).
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Number of distinct `(l, slot, key)` runs.
    pub fn distinct_keys(&self) -> u64 {
        (self.runs.len() / RUN_ENTRY_LEN) as u64
    }

    /// Total key bytes in the key blob.
    pub fn key_bytes(&self) -> u64 {
        self.keys.len() as u64
    }

    /// Estimated resident bytes, using the same estimator as
    /// [`SegmentMap::live_bytes`](crate::SegmentMap::live_bytes) so the
    /// backends report comparable sizes (the direct store's bytes live in
    /// the snapshot buffer rather than the heap, but they are resident
    /// all the same).
    pub fn live_bytes(&self) -> u64 {
        const LIST_HEADER: u64 = 12;
        self.entries * 4 + self.distinct_keys() * LIST_HEADER + self.key_bytes()
    }

    /// True if the id blob is served zero-copy out of the snapshot buffer
    /// (little-endian platform, 4-byte-aligned section) rather than from
    /// a construction-time copy.
    pub fn ids_are_zero_copy(&self) -> bool {
        matches!(self.ids, IdsView::Borrowed(_))
    }

    /// True if any string of length `l` is indexed.
    pub fn has_length(&self, l: usize) -> bool {
        u32::try_from(l).is_ok_and(|l| self.lengths.binary_search_by_key(&l, |e| e.l).is_ok())
    }

    /// Largest string length with an indexed run.
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    fn run_at(&self, index: u64) -> Option<Run> {
        let at = self.runs.start + usize::try_from(index).ok()?.checked_mul(RUN_ENTRY_LEN)?;
        let entry = self.buf.get(at..at + RUN_ENTRY_LEN)?;
        Some(Run {
            slot: u32::from_le_bytes(entry[0..4].try_into().unwrap()),
            key_len: u32::from_le_bytes(entry[4..8].try_into().unwrap()),
            key_off: u64::from_le_bytes(entry[8..16].try_into().unwrap()),
            ids_off: u64::from_le_bytes(entry[16..24].try_into().unwrap()),
            n_ids: u32::from_le_bytes(entry[24..28].try_into().unwrap()),
        })
    }

    fn key_of(&self, run: &Run) -> Option<&[u8]> {
        let start = self
            .keys
            .start
            .checked_add(usize::try_from(run.key_off).ok()?)?;
        let end = start.checked_add(run.key_len as usize)?;
        if end > self.keys.end {
            return None;
        }
        self.buf.get(start..end)
    }

    fn ids_of(&self, run: &Run) -> Option<&[StringId]> {
        let off = usize::try_from(run.ids_off).ok()?;
        let end = off.checked_add(run.n_ids as usize)?;
        if end > self.n_ids_total {
            return None;
        }
        match &self.ids {
            IdsView::Borrowed(range) => {
                let bytes = &self.buf[range.start + off * 4..range.start + end * 4];
                // Alignment was checked at construction and offsets are
                // element-scaled, so the prefix/suffix are always empty.
                let (head, ids, tail) = unsafe { bytes.align_to::<StringId>() };
                debug_assert!(head.is_empty() && tail.is_empty());
                (head.is_empty() && tail.is_empty()).then_some(ids)
            }
            IdsView::Owned(ids) => ids.get(off..end),
        }
    }

    /// The inverted list `L_l^slot(seg)`, if present: two binary searches
    /// (length directory, then `(slot, key)` over that length's runs)
    /// straight over the snapshot buffer.
    pub fn probe(&self, l: usize, slot: usize, seg: &[u8]) -> Option<&[StringId]> {
        let l32 = u32::try_from(l).ok()?;
        let slot32 = u32::try_from(slot).ok()?;
        let at = self.lengths.binary_search_by_key(&l32, |e| e.l).ok()?;
        let span = self.lengths[at];
        let (mut lo, mut hi) = (0u64, span.run_count);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let run = self.run_at(span.run_start + mid)?;
            let key = self.key_of(&run)?;
            match (run.slot, key).cmp(&(slot32, seg)) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return self.ids_of(&run),
            }
        }
        None
    }

    /// Visits every run as `(length, slot, key bytes, ids)` in stored
    /// order — `(l, slot, key)` ascending, which is exactly the
    /// deterministic order [`SegmentMap::visit_postings`] produces — or
    /// reports the first structural violation. The serialization visitor:
    /// re-saving a direct-loaded index re-encodes the hash-map section
    /// byte-identically through this.
    ///
    /// [`SegmentMap::visit_postings`]: crate::SegmentMap::visit_postings
    pub fn try_visit_postings(
        &self,
        mut f: impl FnMut(usize, usize, &[u8], &[StringId]),
    ) -> Result<(), &'static str> {
        for span in &self.lengths {
            for i in 0..span.run_count {
                let run = self
                    .run_at(span.run_start + i)
                    .ok_or("direct run table entry is out of bounds")?;
                let key = self.key_of(&run).ok_or("direct run key is out of bounds")?;
                let ids = self
                    .ids_of(&run)
                    .ok_or("direct run ids are out of bounds")?;
                f(span.l as usize, run.slot as usize, key, ids);
            }
        }
        Ok(())
    }

    /// Visits every `(length, id)` posting reference (the loader's
    /// coverage check); structural violations surface as `Err`, matching
    /// [`DirectSegmentIndex::try_visit_postings`].
    pub fn try_visit_posting_ids(
        &self,
        mut f: impl FnMut(usize, StringId),
    ) -> Result<(), &'static str> {
        self.try_visit_postings(|l, _, _, ids| {
            for &id in ids {
                f(l, id);
            }
        })
    }

    /// Full O(index) structural validation — everything the per-probe
    /// bounds checks tolerate lazily is rejected here: run `(slot, key)`
    /// order strictly ascending per length, slots in `1..=τ+1`, key
    /// lengths matching the partition geometry, the key blob tiled
    /// exactly, ids strictly ascending per run and below `universe`, and
    /// the recorded entry count equal to the actual total.
    ///
    /// The default (hash-map) load path never needs this — it decodes
    /// through the validating `restore_posting` API instead. The direct
    /// load path calls it eagerly by default; O(1) "instant" opens defer
    /// it to a background integrity pass.
    pub fn validate_deep(&self, universe: usize) -> Result<(), &'static str> {
        let mut total = 0u64;
        let mut key_end = 0u64;
        let mut ids_end = 0u64;
        for span in &self.lengths {
            let l = span.l as usize;
            let mut prev: Option<(u32, u64, u32)> = None; // (slot, key_off, key_len)
            for i in 0..span.run_count {
                let run = self
                    .run_at(span.run_start + i)
                    .ok_or("direct run table entry is out of bounds")?;
                if !(1..=self.tau as u32 + 1).contains(&run.slot) {
                    return Err("direct run slot out of range for tau");
                }
                let key = self.key_of(&run).ok_or("direct run key is out of bounds")?;
                let seg = self.scheme.segment(l, self.tau, run.slot as usize);
                if key.len() != seg.len {
                    return Err("direct run key does not match the partition geometry");
                }
                if let Some((pslot, pkey_off, pkey_len)) = prev {
                    let pkey =
                        &self.buf[self.keys.start + pkey_off as usize..][..pkey_len as usize];
                    if (pslot, pkey) >= (run.slot, key) {
                        return Err("direct runs are not sorted by (slot, key)");
                    }
                }
                prev = Some((run.slot, run.key_off, run.key_len));
                // Keys must tile the blob in run order: offsets strictly
                // sequential so no byte of the blob is unreferenced (every
                // byte of the file stays semantically covered).
                if run.key_off != key_end {
                    return Err("direct key blob is not tiled by the runs");
                }
                key_end += run.key_len as u64;
                if run.ids_off != ids_end {
                    return Err("direct id blob is not tiled by the runs");
                }
                ids_end += run.n_ids as u64;
                let ids = self
                    .ids_of(&run)
                    .ok_or("direct run ids are out of bounds")?;
                if ids.is_empty() {
                    return Err("direct run has an empty posting list");
                }
                let mut prev_id = None;
                for &id in ids {
                    if (id as usize) >= universe {
                        return Err("direct posting id exceeds the string table");
                    }
                    if prev_id.is_some_and(|p| id <= p) {
                        return Err("direct posting ids are not strictly ascending");
                    }
                    prev_id = Some(id);
                }
                total += ids.len() as u64;
            }
        }
        if key_end != self.keys.len() as u64 {
            return Err("direct key blob has unreferenced bytes");
        }
        if ids_end != self.n_ids_total as u64 {
            return Err("direct id blob has unreferenced entries");
        }
        if total != self.entries {
            return Err("direct entry count disagrees with the run table");
        }
        Ok(())
    }
}

impl crate::SegmentProbe for DirectSegmentIndex {
    #[inline]
    fn has_length(&self, l: usize) -> bool {
        DirectSegmentIndex::has_length(self, l)
    }

    #[inline]
    fn max_len(&self) -> usize {
        DirectSegmentIndex::max_len(self)
    }

    #[inline]
    fn probe_bytes(&self, l: usize, slot: usize, seg: &[u8]) -> Option<&[StringId]> {
        self.probe(l, slot, seg)
    }
}
