//! Inverted segment indices `L_l^i` with sliding-window eviction (§3.2).
//!
//! For every string length `l` and slot `i ∈ 1..=τ+1`, `L_l^i` maps an
//! i-th-segment byte string to the ids of the indexed strings whose i-th
//! segment equals it. Pass-Join visits strings in length order and only
//! probes lengths in `[|s|−τ, |s|]`, so indices for smaller lengths are
//! evicted as the scan advances — at most `(τ+1)²` maps are live at any
//! moment (τ+1 lengths × τ+1 slots).
//!
//! Keys borrow directly from the collection arena (`&'a [u8]`): segments
//! are never copied.

use sj_common::hash::FxHashMap;
use sj_common::StringId;

use crate::partition::PartitionScheme;

/// One inverted list family `L_l^*`, all τ+1 slots for one string length.
type PerLength<'a> = Vec<FxHashMap<&'a [u8], Vec<StringId>>>;

/// The live inverted indices of a Pass-Join scan.
#[derive(Debug)]
pub struct SegmentIndex<'a> {
    tau: usize,
    scheme: PartitionScheme,
    /// Indexed by string length `l`; `None` when empty or evicted.
    per_len: Vec<Option<PerLength<'a>>>,
    /// Inverted-list entries currently live (Σ list lengths).
    entries: u64,
    /// Distinct (l, i, segment) keys currently live.
    distinct_keys: u64,
    /// Live key bytes (Σ key lengths) — keys are borrowed, but the paper's
    /// integer encoding would materialize them; counted for Table 3.
    key_bytes: u64,
    /// Peak of the estimated index size over the scan (Table 3 reports the
    /// maximum resident index, matching the paper's max-over-j complexity).
    peak_bytes: u64,
}

impl<'a> SegmentIndex<'a> {
    /// Creates an empty index for strings of length up to `max_len`, using
    /// the paper's even partition.
    pub fn new(max_len: usize, tau: usize) -> Self {
        Self::with_scheme(max_len, tau, PartitionScheme::Even)
    }

    /// Creates an empty index with an explicit partition scheme (used by
    /// the partition ablation).
    pub fn with_scheme(max_len: usize, tau: usize, scheme: PartitionScheme) -> Self {
        Self {
            tau,
            scheme,
            per_len: vec![None; max_len + 1],
            entries: 0,
            distinct_keys: 0,
            key_bytes: 0,
            peak_bytes: 0,
        }
    }

    /// Partitions `s` (which must live as long as the index) into τ+1
    /// segments and appends `id` to each segment's inverted list.
    ///
    /// Ids must be inserted in ascending order — the lists then stay sorted,
    /// which the shared-prefix verification relies on.
    pub fn insert(&mut self, s: &'a [u8], id: StringId) {
        let l = s.len();
        debug_assert!(l > self.tau, "short strings use the fallback path");
        let slot_maps = self.per_len[l].get_or_insert_with(|| {
            (0..=self.tau).map(|_| FxHashMap::default()).collect()
        });
        for slot in 1..=self.tau + 1 {
            let seg = self.scheme.segment(l, self.tau, slot);
            let key = &s[seg.start..seg.end()];
            let list = slot_maps[slot - 1].entry(key).or_insert_with(|| {
                self.distinct_keys += 1;
                self.key_bytes += seg.len as u64;
                Vec::new()
            });
            debug_assert!(list.last().is_none_or(|&last| last < id));
            list.push(id);
            self.entries += 1;
        }
        self.peak_bytes = self.peak_bytes.max(self.live_bytes());
    }

    /// The inverted list `L_l^slot(key)`, if any string is indexed under it.
    #[inline]
    pub fn probe(&self, l: usize, slot: usize, key: &[u8]) -> Option<&[StringId]> {
        let slot_maps = self.per_len.get(l)?.as_ref()?;
        slot_maps[slot - 1].get(key).map(Vec::as_slice)
    }

    /// True if any string of length `l` is indexed.
    #[inline]
    pub fn has_length(&self, l: usize) -> bool {
        self.per_len.get(l).is_some_and(Option::is_some)
    }

    /// Drops all indices for lengths `< min_len` (the scan has advanced past
    /// the point where they can produce candidates).
    pub fn evict_below(&mut self, min_len: usize) {
        for l in 0..min_len.min(self.per_len.len()) {
            if let Some(slot_maps) = self.per_len[l].take() {
                for map in &slot_maps {
                    for (key, list) in map {
                        self.entries -= list.len() as u64;
                        self.distinct_keys -= 1;
                        self.key_bytes -= key.len() as u64;
                    }
                }
            }
        }
    }

    /// Estimated resident bytes of the live index: 4 bytes per inverted-list
    /// entry (a `StringId`) plus, per distinct segment, its key bytes and
    /// one list header. This mirrors the paper's accounting (segments
    /// encoded as integers plus inverted lists) rather than allocator-level
    /// truth; the same estimator is applied to all algorithms in Table 3.
    pub fn live_bytes(&self) -> u64 {
        const LIST_HEADER: u64 = 12; // key slot + length in a compact layout
        self.entries * 4 + self.distinct_keys * LIST_HEADER + self.key_bytes
    }

    /// Largest estimated resident size observed since construction.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// Live inverted-list entries (Σ list lengths).
    pub fn entries(&self) -> u64 {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_first_string() {
        // Figure 1: after inserting s1 = "vankatesh" (τ=3), the four lists
        // L_9^1..L_9^4 hold {"va"},{"nk"},{"at"},{"esh"}.
        let s1 = b"vankatesh";
        let mut idx = SegmentIndex::new(20, 3);
        idx.insert(s1, 0);
        assert_eq!(idx.probe(9, 1, b"va"), Some(&[0u32][..]));
        assert_eq!(idx.probe(9, 2, b"nk"), Some(&[0u32][..]));
        assert_eq!(idx.probe(9, 3, b"at"), Some(&[0u32][..]));
        assert_eq!(idx.probe(9, 4, b"esh"), Some(&[0u32][..]));
        assert_eq!(idx.probe(9, 1, b"nk"), None, "slots are separate indices");
        assert_eq!(idx.probe(10, 1, b"va"), None, "lengths are separate");
    }

    #[test]
    fn lists_accumulate_in_id_order() {
        let a = b"abcdxxxx";
        let b = b"abcdyyyy";
        let mut idx = SegmentIndex::new(10, 1);
        idx.insert(a, 0);
        idx.insert(b, 1);
        // τ=1 ⇒ two segments of length 4; both share "abcd" in slot 1.
        assert_eq!(idx.probe(8, 1, b"abcd"), Some(&[0u32, 1][..]));
        assert_eq!(idx.probe(8, 2, b"xxxx"), Some(&[0u32][..]));
        assert_eq!(idx.probe(8, 2, b"yyyy"), Some(&[1u32][..]));
    }

    #[test]
    fn eviction_reclaims_accounting() {
        let mut idx = SegmentIndex::new(16, 2);
        idx.insert(b"aaabbbccc", 0);
        idx.insert(b"dddeeefffg", 1);
        let live_before = idx.live_bytes();
        assert!(live_before > 0);
        assert!(idx.has_length(9));
        idx.evict_below(10);
        assert!(!idx.has_length(9));
        assert!(idx.has_length(10));
        assert!(idx.live_bytes() < live_before);
        assert_eq!(idx.probe(9, 1, b"aaa"), None);
        assert_eq!(idx.probe(10, 1, b"ddd"), Some(&[1u32][..]));
        // Peak keeps the high-water mark.
        assert!(idx.peak_bytes() >= live_before);
    }

    #[test]
    fn entries_counts_all_segments() {
        let mut idx = SegmentIndex::new(16, 3);
        idx.insert(b"abcdefgh", 0);
        assert_eq!(idx.entries(), 4);
        idx.insert(b"abcdefgi", 1);
        assert_eq!(idx.entries(), 8);
    }
}
