//! Inverted segment indices `L_l^i` (§3.2), generic over key storage.
//!
//! For every string length `l` and slot `i ∈ 1..=τ+1`, `L_l^i` maps an
//! i-th-segment key to the ids of the indexed strings whose i-th segment
//! equals it. The map structure is [`SegmentMap<K>`], generic over how
//! segment keys are stored:
//!
//! * [`SegmentIndex`] (`K = &[u8]`) — the paper's scan index. Keys borrow
//!   directly from the collection arena: segments are never copied. Ids are
//!   appended in ascending order, and indices for lengths the length-ordered
//!   scan has passed are dropped with [`SegmentMap::evict_below`] — at most
//!   `(τ+1)²` maps are live at any moment.
//! * [`OwnedSegmentIndex`] (`K = Box<[u8]>`) — the online index. Keys own
//!   copies of the segment bytes, so the index is self-contained, covers
//!   every length at once, and supports out-of-order
//!   [`SegmentMap::insert_owned`] and [`SegmentMap::remove_owned`] — the
//!   substrate of the `passjoin-online` crate's dynamic collections.
//! * [`crate::InternedSegmentIndex`] (`K = SegId`) — the paper's §6
//!   "encode segments as integers" optimization: a [`crate::SegmentInterner`]
//!   maps each distinct segment byte string to a dense `u32` id once, and
//!   the per-`(l, slot)` maps are keyed by that integer (see the
//!   [`crate::intern`] module).
//!
//! All variants share probing, accounting, and eviction code; they differ
//! only in how a segment key is materialized at insertion time. Probing
//! code that only needs byte-string lookups is generic over
//! [`SegmentProbe`], which every variant implements.

use std::borrow::Borrow;
use std::hash::Hash;

use sj_common::hash::FxHashMap;
use sj_common::StringId;

use crate::partition::PartitionScheme;

/// A segment key: hashable, comparable, and accountable.
///
/// Implemented by `&[u8]` (borrowed from an arena), `Box<[u8]>` (owned),
/// and [`crate::SegId`] (interned integer). The two hooks let the shared
/// [`SegmentMap`] machinery stay byte-agnostic:
///
/// * [`SegmentKey::stored_bytes`] — what one distinct key of a
///   `seg_len`-byte segment costs in the [`SegmentMap::live_bytes`]
///   estimator (byte keys are charged their segment bytes, integer keys a
///   fixed 4 bytes — the interner's shared table is accounted separately);
/// * [`SegmentKey::matches_seg_len`] — the restore-path validation hook:
///   byte keys must be exactly as long as the partition geometry says,
///   while integer keys carry no bytes here (their geometry is validated
///   against the interner table instead).
pub trait SegmentKey: Hash + Eq {
    /// Estimator bytes charged per distinct key of a `seg_len`-byte segment.
    fn stored_bytes(seg_len: usize) -> u64;

    /// Whether this key is structurally consistent with a segment of
    /// `seg_len` bytes ([`SegmentMap::restore_posting`] validation).
    fn matches_seg_len(&self, seg_len: usize) -> bool;
}

impl SegmentKey for &[u8] {
    fn stored_bytes(seg_len: usize) -> u64 {
        // Borrowed keys don't own their bytes, but the paper's Table 3
        // accounting materializes them; counted so the scan and owned
        // indices report comparable sizes.
        seg_len as u64
    }

    fn matches_seg_len(&self, seg_len: usize) -> bool {
        self.len() == seg_len
    }
}

impl SegmentKey for Box<[u8]> {
    fn stored_bytes(seg_len: usize) -> u64 {
        // An owned key really stores a fat pointer in the map entry plus
        // its own heap bytes — counting both is what makes the estimator
        // comparable with the interned backend (4-byte in-map id + one
        // shared dictionary entry per distinct byte string).
        16 + seg_len as u64
    }

    fn matches_seg_len(&self, seg_len: usize) -> bool {
        self.len() == seg_len
    }
}

/// Byte-string probing over any segment index backend.
///
/// The join/query drivers probe with a substring of the query and neither
/// know nor care how the index stores its keys: byte-keyed maps look the
/// substring up directly, while the interned backend resolves it to an
/// integer id once and then does an integer-keyed lookup. `probe.rs` and
/// the online query path are generic over this trait.
pub trait SegmentProbe {
    /// True if any string of length `l` is indexed.
    fn has_length(&self, l: usize) -> bool;

    /// Largest string length the index currently has a table row for.
    fn max_len(&self) -> usize;

    /// The inverted list `L_l^slot(seg)`, if any string is indexed under
    /// the segment bytes `seg`.
    fn probe_bytes(&self, l: usize, slot: usize, seg: &[u8]) -> Option<&[StringId]>;
}

impl<K: SegmentKey + Borrow<[u8]>> SegmentProbe for SegmentMap<K> {
    #[inline]
    fn has_length(&self, l: usize) -> bool {
        SegmentMap::has_length(self, l)
    }

    #[inline]
    fn max_len(&self) -> usize {
        SegmentMap::max_len(self)
    }

    #[inline]
    fn probe_bytes(&self, l: usize, slot: usize, seg: &[u8]) -> Option<&[StringId]> {
        self.probe(l, slot, seg)
    }
}

/// One inverted list family `L_l^*`, all τ+1 slots for one string length.
type PerLength<K> = Vec<FxHashMap<K, Vec<StringId>>>;

/// The paper's scan index: keys borrow from the collection arena.
pub type SegmentIndex<'a> = SegmentMap<&'a [u8]>;

/// The online index substrate: keys own their segment bytes.
pub type OwnedSegmentIndex = SegmentMap<Box<[u8]>>;

/// What [`SegmentMap::remove_posting`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PostingRemoval {
    /// The id was not indexed under this key.
    Absent,
    /// The id was removed; other ids remain under the key.
    Removed,
    /// The id was removed and its list emptied, so the key was dropped.
    RemovedAndKeyDropped,
}

/// The inverted segment indices of a Pass-Join scan or online collection,
/// generic over key storage (see the module docs).
#[derive(Debug, Clone)]
pub struct SegmentMap<K: SegmentKey> {
    tau: usize,
    scheme: PartitionScheme,
    /// Indexed by string length `l`; `None` when empty or evicted.
    per_len: Vec<Option<PerLength<K>>>,
    /// Inverted-list entries currently live (Σ list lengths).
    entries: u64,
    /// Distinct (l, i, segment) keys currently live.
    distinct_keys: u64,
    /// Live key storage (Σ [`SegmentKey::stored_bytes`] over distinct keys).
    key_bytes: u64,
    /// Peak of the estimated index size over the scan (Table 3 reports the
    /// maximum resident index, matching the paper's max-over-j complexity).
    peak_bytes: u64,
}

impl<K: SegmentKey> SegmentMap<K> {
    /// Creates an empty index for strings of length up to `max_len`, using
    /// the paper's even partition. Inserting longer strings grows the
    /// length table on demand, so `max_len` is a pre-sizing hint.
    pub fn new(max_len: usize, tau: usize) -> Self {
        Self::with_scheme(max_len, tau, PartitionScheme::Even)
    }

    /// Creates an empty index with an explicit partition scheme (used by
    /// the partition ablation).
    pub fn with_scheme(max_len: usize, tau: usize, scheme: PartitionScheme) -> Self {
        let mut per_len = Vec::new();
        per_len.resize_with(max_len + 1, || None);
        Self {
            tau,
            scheme,
            per_len,
            entries: 0,
            distinct_keys: 0,
            key_bytes: 0,
            peak_bytes: 0,
        }
    }

    /// The threshold the index partitions for (strings split into
    /// `tau() + 1` segments).
    pub fn tau(&self) -> usize {
        self.tau
    }

    /// The partition scheme in use.
    pub fn scheme(&self) -> PartitionScheme {
        self.scheme
    }

    /// Largest string length the index currently has a (possibly empty)
    /// table row for.
    pub fn max_len(&self) -> usize {
        self.per_len.len().saturating_sub(1)
    }

    /// Appends `id` to the inverted list under `key` at `(len, slot)`,
    /// creating the list if the key is new; returns `true` exactly when
    /// the key was newly created (the interned backend syncs its liveness
    /// counts off this). `sorted` places the id by binary search instead
    /// of pushing; plain pushes keep the scan's ascending-id invariant
    /// assertion. `seg_len` is the segment's byte length (accounting).
    pub(crate) fn insert_posting(
        &mut self,
        len: usize,
        slot: usize,
        seg_len: usize,
        key: K,
        id: StringId,
        sorted: bool,
    ) -> bool {
        debug_assert!(len > self.tau, "short strings use the fallback path");
        debug_assert!((1..=self.tau + 1).contains(&slot));
        if len >= self.per_len.len() {
            self.per_len.resize_with(len + 1, || None);
        }
        let tau = self.tau;
        let slot_maps = self.per_len[len]
            .get_or_insert_with(|| (0..=tau).map(|_| FxHashMap::default()).collect());
        let mut new_key = false;
        let list = slot_maps[slot - 1].entry(key).or_insert_with(|| {
            new_key = true;
            Vec::new()
        });
        if sorted {
            match list.binary_search(&id) {
                Ok(_) => {
                    debug_assert!(false, "id {id} already indexed at length {len}");
                    return new_key;
                }
                Err(pos) => list.insert(pos, id),
            }
        } else {
            debug_assert!(list.last().is_none_or(|&last| last < id));
            list.push(id);
        }
        self.entries += 1;
        if new_key {
            self.distinct_keys += 1;
            self.key_bytes += K::stored_bytes(seg_len);
        }
        self.peak_bytes = self.peak_bytes.max(self.live_bytes());
        new_key
    }

    /// Removes `id` from the inverted list under `key` at `(l, slot)`,
    /// dropping the key when its list empties. `seg_len` is the segment's
    /// byte length (accounting). Callers that may empty a whole length row
    /// should follow up with [`SegmentMap::prune_length_row`].
    pub(crate) fn remove_posting<Q>(
        &mut self,
        l: usize,
        slot: usize,
        seg_len: usize,
        key: &Q,
        id: StringId,
    ) -> PostingRemoval
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let Some(Some(slot_maps)) = self.per_len.get_mut(l) else {
            return PostingRemoval::Absent;
        };
        let map = &mut slot_maps[slot - 1];
        let Some(list) = map.get_mut(key) else {
            return PostingRemoval::Absent;
        };
        let Ok(pos) = list.binary_search(&id) else {
            return PostingRemoval::Absent;
        };
        list.remove(pos);
        self.entries -= 1;
        if list.is_empty() {
            map.remove(key);
            self.distinct_keys -= 1;
            self.key_bytes -= K::stored_bytes(seg_len);
            PostingRemoval::RemovedAndKeyDropped
        } else {
            PostingRemoval::Removed
        }
    }

    /// Reclaims length row `l` if every slot map is empty (so `has_length`
    /// and the per-length scan skip it).
    pub(crate) fn prune_length_row(&mut self, l: usize) {
        if let Some(Some(slot_maps)) = self.per_len.get(l) {
            if slot_maps.iter().all(|map| map.is_empty()) {
                self.per_len[l] = None;
            }
        }
    }

    /// The inverted list under `key` at `(l, slot)`, for any borrowable
    /// view `Q` of the key type (bytes for byte-keyed maps, [`crate::SegId`]
    /// for the interned map).
    #[inline]
    pub fn probe_key<Q>(&self, l: usize, slot: usize, key: &Q) -> Option<&[StringId]>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let slot_maps = self.per_len.get(l)?.as_ref()?;
        slot_maps[slot - 1].get(key).map(Vec::as_slice)
    }

    /// True if any string of length `l` is indexed.
    #[inline]
    pub fn has_length(&self, l: usize) -> bool {
        self.per_len.get(l).is_some_and(Option::is_some)
    }

    /// Drops all indices for lengths `< min_len` (the scan has advanced past
    /// the point where they can produce candidates).
    pub fn evict_below(&mut self, min_len: usize) {
        for l in 0..min_len.min(self.per_len.len()) {
            if let Some(slot_maps) = self.per_len[l].take() {
                for (slot0, map) in slot_maps.iter().enumerate() {
                    // Every key in the (l, slot) map belongs to the same
                    // partition geometry, so its stored bytes are derived
                    // from the slot's segment spec rather than the key.
                    let seg = self.scheme.segment(l, self.tau, slot0 + 1);
                    for list in map.values() {
                        self.entries -= list.len() as u64;
                    }
                    self.distinct_keys -= map.len() as u64;
                    self.key_bytes -= K::stored_bytes(seg.len) * map.len() as u64;
                }
            }
        }
    }

    /// Estimated resident bytes of the live index: 4 bytes per inverted-list
    /// entry (a `StringId`) plus, per distinct segment, its stored key bytes
    /// and one list header. This mirrors the paper's accounting (segments
    /// encoded as integers plus inverted lists) rather than allocator-level
    /// truth; the same estimator is applied to all algorithms in Table 3.
    pub fn live_bytes(&self) -> u64 {
        const LIST_HEADER: u64 = 12; // key slot + length in a compact layout
        self.entries * 4 + self.distinct_keys * LIST_HEADER + self.key_bytes
    }

    /// Largest estimated resident size observed since construction.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// Live inverted-list entries (Σ list lengths).
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Visits every live inverted list as `(length, slot, key, ids)` in a
    /// **deterministic** order — lengths ascending, slots ascending, keys
    /// in `K`'s order — regardless of hash-map iteration order. The order
    /// guarantee is what makes saved snapshots byte-identical across runs.
    pub fn visit_postings_keys(&self, mut f: impl FnMut(usize, usize, &K, &[StringId]))
    where
        K: Ord,
    {
        for (l, row) in self.per_len.iter().enumerate() {
            let Some(slot_maps) = row else { continue };
            for (slot0, map) in slot_maps.iter().enumerate() {
                let mut lists: Vec<(&K, &Vec<StringId>)> = map.iter().collect();
                lists.sort_unstable_by(|a, b| a.0.cmp(b.0));
                for (key, ids) in lists {
                    f(l, slot0 + 1, key, ids);
                }
            }
        }
    }

    /// Visits every `(length, id)` posting reference in unspecified order
    /// — the fast sibling of [`SegmentMap::visit_postings`] for callers
    /// that only cross-validate ids (the snapshot loader checks each
    /// reference against its string table), skipping the deterministic
    /// sort the full visitor pays for.
    pub fn visit_posting_ids(&self, mut f: impl FnMut(usize, StringId)) {
        for (l, row) in self.per_len.iter().enumerate() {
            let Some(slot_maps) = row else { continue };
            for map in slot_maps {
                for ids in map.values() {
                    for &id in ids {
                        f(l, id);
                    }
                }
            }
        }
    }

    /// Pre-sizes the `(l, slot)` map for `additional` distinct keys, so a
    /// bulk [`SegmentMap::restore_posting`] replay (the snapshot loader)
    /// pays no incremental rehash growth. A no-op for out-of-range
    /// coordinates — reservation is an optimization, never a validation.
    pub fn reserve_keys(&mut self, l: usize, slot: usize, additional: usize) {
        if !(1..=self.tau + 1).contains(&slot) || l < self.tau + 1 {
            return;
        }
        if l >= self.per_len.len() {
            self.per_len.resize_with(l + 1, || None);
        }
        let tau = self.tau;
        let slot_maps = self.per_len[l]
            .get_or_insert_with(|| (0..=tau).map(|_| FxHashMap::default()).collect());
        slot_maps[slot - 1].reserve(additional);
    }

    /// Restores one inverted list — the inverse of
    /// [`SegmentMap::visit_postings`], used by the snapshot loader to
    /// rebuild an index without re-partitioning any string. Accounting
    /// (entries, distinct keys, key bytes) is restored alongside.
    ///
    /// Returns `Err` (instead of panicking) on structurally invalid input,
    /// since the caller may be feeding it attacker- or corruption-shaped
    /// data that passed checksums: the slot must exist for this τ, the
    /// length must be partitionable, the key must match the partition
    /// geometry (byte keys only — see [`SegmentKey::matches_seg_len`]),
    /// ids must be strictly ascending, and the `(l, slot, key)` triple
    /// must not already be present.
    pub fn restore_posting(
        &mut self,
        l: usize,
        slot: usize,
        key: K,
        ids: Vec<StringId>,
    ) -> Result<(), &'static str> {
        if !(1..=self.tau + 1).contains(&slot) {
            return Err("posting slot out of range for tau");
        }
        if l < self.tau + 1 {
            return Err("posting length is too short to partition");
        }
        if ids.is_empty() {
            return Err("posting list is empty");
        }
        if !ids.windows(2).all(|w| w[0] < w[1]) {
            return Err("posting ids are not strictly ascending");
        }
        let seg = self.scheme.segment(l, self.tau, slot);
        if !key.matches_seg_len(seg.len) {
            return Err("posting key does not match the partition geometry");
        }
        if l >= self.per_len.len() {
            self.per_len.resize_with(l + 1, || None);
        }
        let tau = self.tau;
        let slot_maps = self.per_len[l]
            .get_or_insert_with(|| (0..=tau).map(|_| FxHashMap::default()).collect());
        let count = ids.len() as u64;
        match slot_maps[slot - 1].entry(key) {
            std::collections::hash_map::Entry::Occupied(_) => {
                return Err("duplicate posting key");
            }
            std::collections::hash_map::Entry::Vacant(vacant) => {
                vacant.insert(ids);
            }
        }
        self.entries += count;
        self.distinct_keys += 1;
        self.key_bytes += K::stored_bytes(seg.len);
        self.peak_bytes = self.peak_bytes.max(self.live_bytes());
        Ok(())
    }
}

impl<K: SegmentKey + Borrow<[u8]>> SegmentMap<K> {
    /// The inverted list `L_l^slot(key)`, if any string is indexed under it.
    #[inline]
    pub fn probe(&self, l: usize, slot: usize, key: &[u8]) -> Option<&[StringId]> {
        self.probe_key(l, slot, key)
    }

    /// Visits every live inverted list as `(length, slot, segment bytes,
    /// ids)` in a **deterministic** order — lengths ascending, slots
    /// ascending, keys lexicographic. This is the serialization half of
    /// the raw-parts API used by `passjoin-persist`.
    pub fn visit_postings(&self, mut f: impl FnMut(usize, usize, &[u8], &[StringId]))
    where
        K: Ord,
    {
        // Byte keys order by `Ord` exactly as they order lexicographically,
        // so the generic visitor's determinism guarantee carries over.
        self.visit_postings_keys(|l, slot, key, ids| f(l, slot, key.borrow(), ids));
    }
}

impl<'a> SegmentMap<&'a [u8]> {
    /// Partitions `s` (which must live as long as the index) into τ+1
    /// segments and appends `id` to each segment's inverted list.
    ///
    /// Ids must be inserted in ascending order — the lists then stay sorted,
    /// which the shared-prefix verification relies on.
    pub fn insert(&mut self, s: &'a [u8], id: StringId) {
        for slot in 1..=self.tau + 1 {
            let seg = self.scheme.segment(s.len(), self.tau, slot);
            self.insert_posting(s.len(), slot, seg.len, &s[seg.start..seg.end()], id, false);
        }
    }
}

impl SegmentMap<Box<[u8]>> {
    /// Partitions `s` into τ+1 segments, copies each segment's bytes into
    /// an owned key, and inserts `id` in sorted position — ids may arrive
    /// in any order, so dynamic collections can index on insertion.
    pub fn insert_owned(&mut self, s: &[u8], id: StringId) {
        for slot in 1..=self.tau + 1 {
            let seg = self.scheme.segment(s.len(), self.tau, slot);
            self.insert_posting(
                s.len(),
                slot,
                seg.len,
                s[seg.start..seg.end()].into(),
                id,
                true,
            );
        }
    }

    /// Removes `id` from every inverted list the partition of `s` maps to,
    /// dropping keys whose lists become empty. Returns `true` if the id was
    /// present (under its first segment; the partition is deterministic, so
    /// presence is all-or-nothing).
    ///
    /// `s` must be the exact byte string `id` was inserted with.
    pub fn remove_owned(&mut self, s: &[u8], id: StringId) -> bool {
        let l = s.len();
        debug_assert!(l > self.tau, "short strings use the fallback path");
        if !self.has_length(l) {
            return false;
        }
        let mut found = false;
        for slot in 1..=self.tau + 1 {
            let seg = self.scheme.segment(l, self.tau, slot);
            let key = &s[seg.start..seg.end()];
            match self.remove_posting(l, slot, seg.len, key, id) {
                PostingRemoval::Absent => {
                    debug_assert!(
                        !found,
                        "segments of one id must be all present or all absent"
                    );
                }
                PostingRemoval::Removed | PostingRemoval::RemovedAndKeyDropped => found = true,
            }
        }
        if found {
            self.prune_length_row(l);
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_first_string() {
        // Figure 1: after inserting s1 = "vankatesh" (τ=3), the four lists
        // L_9^1..L_9^4 hold {"va"},{"nk"},{"at"},{"esh"}.
        let s1 = b"vankatesh";
        let mut idx = SegmentIndex::new(20, 3);
        idx.insert(s1, 0);
        assert_eq!(idx.probe(9, 1, b"va"), Some(&[0u32][..]));
        assert_eq!(idx.probe(9, 2, b"nk"), Some(&[0u32][..]));
        assert_eq!(idx.probe(9, 3, b"at"), Some(&[0u32][..]));
        assert_eq!(idx.probe(9, 4, b"esh"), Some(&[0u32][..]));
        assert_eq!(idx.probe(9, 1, b"nk"), None, "slots are separate indices");
        assert_eq!(idx.probe(10, 1, b"va"), None, "lengths are separate");
    }

    #[test]
    fn lists_accumulate_in_id_order() {
        let a = b"abcdxxxx";
        let b = b"abcdyyyy";
        let mut idx = SegmentIndex::new(10, 1);
        idx.insert(a, 0);
        idx.insert(b, 1);
        // τ=1 ⇒ two segments of length 4; both share "abcd" in slot 1.
        assert_eq!(idx.probe(8, 1, b"abcd"), Some(&[0u32, 1][..]));
        assert_eq!(idx.probe(8, 2, b"xxxx"), Some(&[0u32][..]));
        assert_eq!(idx.probe(8, 2, b"yyyy"), Some(&[1u32][..]));
    }

    #[test]
    fn eviction_reclaims_accounting() {
        let mut idx = SegmentIndex::new(16, 2);
        idx.insert(b"aaabbbccc", 0);
        idx.insert(b"dddeeefffg", 1);
        let live_before = idx.live_bytes();
        assert!(live_before > 0);
        assert!(idx.has_length(9));
        idx.evict_below(10);
        assert!(!idx.has_length(9));
        assert!(idx.has_length(10));
        assert!(idx.live_bytes() < live_before);
        assert_eq!(idx.probe(9, 1, b"aaa"), None);
        assert_eq!(idx.probe(10, 1, b"ddd"), Some(&[1u32][..]));
        // Peak keeps the high-water mark.
        assert!(idx.peak_bytes() >= live_before);
    }

    #[test]
    fn entries_counts_all_segments() {
        let mut idx = SegmentIndex::new(16, 3);
        idx.insert(b"abcdefgh", 0);
        assert_eq!(idx.entries(), 4);
        idx.insert(b"abcdefgi", 1);
        assert_eq!(idx.entries(), 8);
    }

    #[test]
    fn owned_inserts_in_any_order_stay_sorted() {
        let mut idx = OwnedSegmentIndex::new(0, 1);
        idx.insert_owned(b"abcdxxxx", 7);
        idx.insert_owned(b"abcdyyyy", 2);
        idx.insert_owned(b"abcdzzzz", 4);
        assert_eq!(idx.probe(8, 1, b"abcd"), Some(&[2u32, 4, 7][..]));
        assert_eq!(idx.entries(), 6);
        // Growing past the pre-sized table works.
        idx.insert_owned(b"a much longer string than the hint", 9);
        assert!(idx.has_length(34));
    }

    #[test]
    fn owned_remove_round_trips() {
        let mut idx = OwnedSegmentIndex::new(10, 1);
        idx.insert_owned(b"abcdxxxx", 0);
        idx.insert_owned(b"abcdyyyy", 1);
        let live_full = idx.live_bytes();

        assert!(idx.remove_owned(b"abcdyyyy", 1));
        assert_eq!(idx.probe(8, 1, b"abcd"), Some(&[0u32][..]));
        assert_eq!(idx.probe(8, 2, b"yyyy"), None, "emptied key is dropped");
        assert!(idx.live_bytes() < live_full);

        // Removing an absent id (or a never-inserted string) is a no-op.
        assert!(!idx.remove_owned(b"abcdyyyy", 1));
        assert!(!idx.remove_owned(b"qqqqqqqq", 5));

        assert!(idx.remove_owned(b"abcdxxxx", 0));
        assert!(!idx.has_length(8), "empty length rows are reclaimed");
        assert_eq!(idx.entries(), 0);
        assert_eq!(idx.live_bytes(), 0);

        // Re-insertion after removal works (the round trip of the online
        // index's insert → remove → insert cycle).
        idx.insert_owned(b"abcdxxxx", 0);
        assert_eq!(idx.probe(8, 1, b"abcd"), Some(&[0u32][..]));
    }

    #[test]
    fn visit_and_restore_round_trip() {
        let mut original = OwnedSegmentIndex::new(0, 2);
        original.insert_owned(b"aaabbbccc", 3);
        original.insert_owned(b"aaabbbccc", 7);
        original.insert_owned(b"aaabbbccd", 5);
        original.insert_owned(b"xxyyzzqqe", 1);

        // Replay the visited postings into a fresh index.
        let mut restored = OwnedSegmentIndex::new(0, 2);
        let mut visited = Vec::new();
        original.visit_postings(|l, slot, key, ids| {
            visited.push((l, slot, key.to_vec(), ids.to_vec()));
            restored
                .restore_posting(l, slot, key.into(), ids.to_vec())
                .unwrap();
        });
        assert!(!visited.is_empty());
        // Deterministic order: (length, slot, key) strictly ascending.
        for w in visited.windows(2) {
            let a = (&w[0].0, &w[0].1, &w[0].2);
            let b = (&w[1].0, &w[1].1, &w[1].2);
            assert!(a < b, "visit order must be strictly ascending");
        }

        assert_eq!(restored.entries(), original.entries());
        assert_eq!(restored.live_bytes(), original.live_bytes());
        for (l, slot, key, ids) in &visited {
            assert_eq!(restored.probe(*l, *slot, key), Some(&ids[..]));
        }
        // The restored index stays mutable: removal works as usual.
        assert!(restored.remove_owned(b"xxyyzzqqe", 1));
    }

    #[test]
    fn restore_posting_rejects_invalid_shapes() {
        let mut idx = OwnedSegmentIndex::new(0, 1);
        let key = |s: &[u8]| -> Box<[u8]> { s.into() };
        // Slot/length/geometry violations.
        assert!(idx.restore_posting(8, 0, key(b"abcd"), vec![1]).is_err());
        assert!(idx.restore_posting(8, 3, key(b"abcd"), vec![1]).is_err());
        assert!(idx.restore_posting(1, 1, key(b"a"), vec![1]).is_err());
        assert!(idx.restore_posting(8, 1, key(b"abc"), vec![1]).is_err());
        // List violations: empty, unsorted, duplicate key.
        assert!(idx.restore_posting(8, 1, key(b"abcd"), vec![]).is_err());
        assert!(idx.restore_posting(8, 1, key(b"abcd"), vec![2, 1]).is_err());
        assert!(idx.restore_posting(8, 1, key(b"abcd"), vec![1, 1]).is_err());
        assert!(idx.restore_posting(8, 1, key(b"abcd"), vec![1, 2]).is_ok());
        assert!(idx.restore_posting(8, 1, key(b"abcd"), vec![3]).is_err());
        // The valid restore landed and is probeable.
        assert_eq!(idx.probe(8, 1, b"abcd"), Some(&[1u32, 2][..]));
        assert_eq!(idx.entries(), 2);
    }

    #[test]
    fn owned_and_borrowed_agree_on_probes() {
        let strings: Vec<&[u8]> = vec![b"aaabbbccc", b"aaabbbccd", b"xxxyyyzzz"];
        let mut scan = SegmentIndex::new(16, 2);
        let mut owned = OwnedSegmentIndex::new(16, 2);
        for (id, s) in strings.iter().enumerate() {
            scan.insert(s, id as StringId);
            owned.insert_owned(s, id as StringId);
        }
        for l in 0..=16 {
            assert_eq!(scan.has_length(l), owned.has_length(l));
        }
        for slot in 1..=3 {
            for key in [&b"aaa"[..], b"bbb", b"ccc", b"ccd", b"xxx", b"zzz"] {
                assert_eq!(scan.probe(9, slot, key), owned.probe(9, slot, key));
            }
        }
        assert_eq!(scan.entries(), owned.entries());
        // Owned keys are charged their fat pointer on top of the segment
        // bytes a borrowed key is charged.
        assert!(scan.live_bytes() < owned.live_bytes());
    }
}
