//! Integer-interned segment keys (the paper's §6 "encode segments as
//! integers" optimization).
//!
//! The byte-keyed indices ([`crate::OwnedSegmentIndex`]) store every
//! distinct `(length, slot, segment)` key's bytes inside its map and hash
//! those bytes on every probe. Real corpora repeat segments heavily —
//! across strings, across slots, and across lengths — so the same byte
//! string is stored and hashed many times over. This module splits the
//! byte storage out into a single shared dictionary:
//!
//! * [`SegmentInterner`] — maps each distinct segment byte string to a
//!   dense `u32` id ([`SegId`]) exactly once. The reverse direction is an
//!   arena (one contiguous byte buffer plus spans), so `id → bytes` is a
//!   slice, not an allocation. Ids are **stable**: once a byte string has
//!   an id, it keeps that id for the interner's lifetime, even if every
//!   index entry referencing it is removed and re-added.
//! * [`InternedSegmentIndex`] — a [`SegmentMap`] keyed by [`SegId`] plus
//!   the interner that feeds it. A probe resolves the query's substring to
//!   an id once (one byte-string hash against the global dictionary —
//!   which also short-circuits: a substring that is no string's segment
//!   misses immediately), then does integer-keyed lookups; inserts intern
//!   each segment once and store a 4-byte key per distinct `(l, slot)`
//!   posting instead of a byte copy.
//!
//! The interner keeps per-id **liveness counts** (how many posting keys
//! currently reference each id) so the index can report live dictionary
//! bytes and so persistence can save exactly the referenced subset of the
//! table. Dead ids keep their arena bytes (monotone arena growth — the
//! price of id stability); a snapshot save/load cycle compacts them away.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};

use sj_common::hash::FxHasher;
use sj_common::StringId;

use crate::index::{PostingRemoval, SegmentKey, SegmentMap, SegmentProbe};
use crate::partition::PartitionScheme;

/// A dense interned-segment id: the integer the paper encodes segments as.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegId(u32);

impl SegId {
    /// Wraps a raw id (used by the snapshot codec, whose on-disk postings
    /// store table ranks).
    #[inline]
    pub fn from_raw(raw: u32) -> Self {
        Self(raw)
    }

    /// The raw integer.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }
}

impl SegmentKey for SegId {
    fn stored_bytes(_seg_len: usize) -> u64 {
        // The map stores a 4-byte integer per distinct key; the segment
        // bytes live once in the interner and are accounted there.
        4
    }

    fn matches_seg_len(&self, _seg_len: usize) -> bool {
        // An integer carries no bytes to check here; the snapshot decoder
        // validates the id's interner bytes against the geometry instead.
        true
    }
}

fn hash_bytes(bytes: &[u8]) -> u64 {
    // Raw `Hasher::write`, not `bytes.hash(..)`: the slice `Hash` impl
    // mixes in a length prefix, which costs an extra multiply round on
    // every dictionary probe — and the interner doesn't need it, because
    // hash equality is always confirmed by comparing arena bytes.
    let mut hasher = FxHasher::default();
    hasher.write(bytes);
    hasher.finish()
}

/// Pass-through hasher for the bucket map: its keys *are* already FxHash
/// values of the segment bytes, so hashing them again would put a second
/// multiply on every probe of the dictionary — the hottest instruction of
/// the interned backend's lookup path.
#[derive(Debug, Clone, Copy, Default)]
struct PrehashedU64(u64);

impl Hasher for PrehashedU64 {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("the bucket map only hashes u64 keys");
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.0 = i;
    }
}

/// A bucket value is one id inline (the overwhelmingly common case — a
/// 64-bit hash collision between *different* byte strings is rare), or,
/// with the high bit set, an index into the collision spill table. Inline
/// ids therefore live below [`SPILL_BIT`], which caps the id space at 2³¹
/// distinct segments — still far beyond any real collection.
const SPILL_BIT: u32 = 1 << 31;

type BucketMap = HashMap<u64, u32, BuildHasherDefault<PrehashedU64>>;

/// A byte-string → dense-`u32` dictionary with an arena-backed reverse
/// table and per-id liveness counts. See the module docs.
#[derive(Debug, Clone)]
pub struct SegmentInterner {
    /// Every interned byte string, concatenated in id order.
    arena: Vec<u8>,
    /// id → (start, len) into the arena.
    spans: Vec<(u32, u32)>,
    /// id → live posting keys referencing it.
    refs: Vec<u32>,
    /// Ids with `refs > 0`.
    live: usize,
    /// Σ byte lengths of live ids.
    live_bytes: u64,
    /// FxHash(bytes) → inline id or [`SPILL_BIT`]-tagged spill index
    /// (candidates are confirmed by comparing arena bytes — the map never
    /// stores a second byte copy).
    buckets: BucketMap,
    /// Ids sharing a 64-bit hash, for the rare true-collision buckets.
    spills: Vec<Vec<u32>>,
    /// Largest id count this interner accepts (the u32-overflow guard;
    /// lowered only by tests — see [`SegmentInterner::with_id_limit`]).
    id_limit: usize,
}

impl Default for SegmentInterner {
    fn default() -> Self {
        Self::new()
    }
}

impl SegmentInterner {
    /// An empty interner with the full `u32` id space.
    pub fn new() -> Self {
        Self::with_id_limit(u32::MAX as usize)
    }

    /// An empty interner accepting at most `id_limit` distinct segments —
    /// a testing hook: the overflow guard is unreachable through real
    /// corpora (it would need 2³¹ distinct segments), so tests lower the
    /// limit to prove interning degrades gracefully instead of wrapping.
    pub fn with_id_limit(id_limit: usize) -> Self {
        Self {
            arena: Vec::new(),
            spans: Vec::new(),
            refs: Vec::new(),
            live: 0,
            live_bytes: 0,
            buckets: BucketMap::default(),
            spills: Vec::new(),
            id_limit: id_limit.min((SPILL_BIT - 1) as usize),
        }
    }

    /// Distinct byte strings interned so far (live or not).
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Ids currently referenced by at least one posting key.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Total arena bytes (live and dead ids alike).
    pub fn arena_bytes(&self) -> u64 {
        self.arena.len() as u64
    }

    /// Estimated resident bytes of the live dictionary slice: each live
    /// id's bytes plus a fixed 12 bytes of table overhead (span + bucket
    /// entry). The same kind of estimator as [`SegmentMap::live_bytes`].
    pub fn live_table_bytes(&self) -> u64 {
        self.live_bytes + self.live as u64 * 12
    }

    /// The id of `bytes`, if it was ever interned.
    #[inline]
    pub fn lookup(&self, bytes: &[u8]) -> Option<SegId> {
        self.lookup_hashed(hash_bytes(bytes), bytes)
    }

    /// Interns `bytes`, returning its dense id — the existing one if the
    /// byte string was seen before (duplicates never mint a second id).
    ///
    /// Returns `None` when the id space or the arena's `u32` offset space
    /// is exhausted — the overflow guard; callers choose between failing
    /// the insert and falling back to a byte-keyed index.
    pub fn intern(&mut self, bytes: &[u8]) -> Option<SegId> {
        let hash = hash_bytes(bytes);
        if let Some(id) = self.lookup_hashed(hash, bytes) {
            return Some(id);
        }
        if self.spans.len() >= self.id_limit {
            return None;
        }
        let start = self.arena.len();
        if start
            .checked_add(bytes.len())
            .is_none_or(|end| end > u32::MAX as usize)
        {
            return None;
        }
        let id = self.spans.len() as u32;
        self.arena.extend_from_slice(bytes);
        self.spans.push((start as u32, bytes.len() as u32));
        self.refs.push(0);
        match self.buckets.entry(hash) {
            std::collections::hash_map::Entry::Vacant(entry) => {
                entry.insert(id);
            }
            std::collections::hash_map::Entry::Occupied(mut entry) => {
                // A true 64-bit collision between different byte strings:
                // move the bucket to (or extend) its spill list.
                let slot = *entry.get();
                if slot & SPILL_BIT == 0 {
                    self.spills.push(vec![slot, id]);
                    entry.insert((self.spills.len() - 1) as u32 | SPILL_BIT);
                } else {
                    self.spills[(slot & !SPILL_BIT) as usize].push(id);
                }
            }
        }
        Some(SegId(id))
    }

    #[inline]
    fn lookup_hashed(&self, hash: u64, bytes: &[u8]) -> Option<SegId> {
        let &slot = self.buckets.get(&hash)?;
        if slot & SPILL_BIT == 0 {
            return (self.span_bytes(slot) == bytes).then_some(SegId(slot));
        }
        self.spills[(slot & !SPILL_BIT) as usize]
            .iter()
            .copied()
            .find(|&id| self.span_bytes(id) == bytes)
            .map(SegId)
    }

    /// The bytes of `id`, if it is a known id.
    #[inline]
    pub fn bytes_of(&self, id: SegId) -> Option<&[u8]> {
        self.spans
            .get(id.index())
            .map(|&(start, len)| &self.arena[start as usize..start as usize + len as usize])
    }

    #[inline]
    fn span_bytes(&self, id: u32) -> &[u8] {
        let (start, len) = self.spans[id as usize];
        &self.arena[start as usize..start as usize + len as usize]
    }

    /// Records one more live posting key referencing `id`.
    pub fn acquire(&mut self, id: SegId) {
        let refs = &mut self.refs[id.index()];
        if *refs == 0 {
            self.live += 1;
            self.live_bytes += self.spans[id.index()].1 as u64;
        }
        *refs += 1;
    }

    /// Records one fewer live posting key referencing `id`. The id keeps
    /// its mapping: re-interning the same bytes later revives the same id.
    pub fn release(&mut self, id: SegId) {
        let refs = &mut self.refs[id.index()];
        debug_assert!(*refs > 0, "releasing an unreferenced interned id");
        *refs -= 1;
        if *refs == 0 {
            self.live -= 1;
            self.live_bytes -= self.spans[id.index()].1 as u64;
        }
    }

    /// Visits every **live** `(id, bytes)` pair, in ascending id order.
    pub fn visit_live(&self, mut f: impl FnMut(SegId, &[u8])) {
        for (idx, &refs) in self.refs.iter().enumerate() {
            if refs > 0 {
                f(SegId(idx as u32), self.span_bytes(idx as u32));
            }
        }
    }
}

/// An inverted segment index keyed by interned integer ids: a
/// [`SegmentMap`]`<SegId>` plus its [`SegmentInterner`]. Supports the same
/// dynamic surface as [`crate::OwnedSegmentIndex`] (out-of-order insert,
/// remove, restore) and implements [`SegmentProbe`] for the query drivers.
#[derive(Debug, Clone)]
pub struct InternedSegmentIndex {
    interner: SegmentInterner,
    map: SegmentMap<SegId>,
}

impl InternedSegmentIndex {
    /// An empty index for strings of length up to `max_len` (a pre-sizing
    /// hint) under the even partition.
    pub fn new(max_len: usize, tau: usize) -> Self {
        Self::with_scheme(max_len, tau, PartitionScheme::Even)
    }

    /// An empty index with an explicit partition scheme.
    pub fn with_scheme(max_len: usize, tau: usize, scheme: PartitionScheme) -> Self {
        Self {
            interner: SegmentInterner::new(),
            map: SegmentMap::with_scheme(max_len, tau, scheme),
        }
    }

    /// The threshold the index partitions for.
    pub fn tau(&self) -> usize {
        self.map.tau()
    }

    /// The partition scheme in use.
    pub fn scheme(&self) -> PartitionScheme {
        self.map.scheme()
    }

    /// Live inverted-list entries (Σ list lengths).
    pub fn entries(&self) -> u64 {
        self.map.entries()
    }

    /// The shared segment dictionary.
    pub fn interner(&self) -> &SegmentInterner {
        &self.interner
    }

    /// Estimated resident bytes: the integer-keyed maps (4 bytes per
    /// posting entry, 4-byte keys + list headers per distinct key) plus
    /// the live slice of the interner table. Directly comparable with
    /// [`SegmentMap::live_bytes`] — the difference is the paper's point:
    /// each distinct segment's bytes are stored once globally instead of
    /// once per `(l, slot)` key.
    pub fn live_bytes(&self) -> u64 {
        self.map.live_bytes() + self.interner.live_table_bytes()
    }

    /// Partitions `s` into τ+1 segments, interns each, and inserts `id` in
    /// sorted position — ids may arrive in any order.
    ///
    /// # Panics
    ///
    /// Panics if the interner's id or arena space is exhausted (needs 2³²
    /// distinct segments / 4 GiB of distinct segment bytes; collections
    /// that large should shard first).
    pub fn insert(&mut self, s: &[u8], id: StringId) {
        for slot in 1..=self.tau() + 1 {
            let seg = self.scheme().segment(s.len(), self.tau(), slot);
            let key = self
                .interner
                .intern(&s[seg.start..seg.end()])
                .expect("segment interner id space exhausted; shard the collection");
            if self
                .map
                .insert_posting(s.len(), slot, seg.len, key, id, true)
            {
                self.interner.acquire(key);
            }
        }
    }

    /// Removes `id` from every inverted list the partition of `s` maps to,
    /// releasing interner references for keys whose lists empty. Returns
    /// `true` if the id was present. `s` must be the exact byte string
    /// `id` was inserted with.
    pub fn remove(&mut self, s: &[u8], id: StringId) -> bool {
        let l = s.len();
        debug_assert!(l > self.tau(), "short strings use the fallback path");
        if !self.map.has_length(l) {
            return false;
        }
        let mut found = false;
        for slot in 1..=self.tau() + 1 {
            let seg = self.scheme().segment(l, self.tau(), slot);
            let Some(key) = self.interner.lookup(&s[seg.start..seg.end()]) else {
                debug_assert!(
                    !found,
                    "segments of one id must be all present or all absent"
                );
                continue;
            };
            match self.map.remove_posting(l, slot, seg.len, &key, id) {
                PostingRemoval::Absent => {
                    debug_assert!(
                        !found,
                        "segments of one id must be all present or all absent"
                    );
                }
                PostingRemoval::Removed => found = true,
                PostingRemoval::RemovedAndKeyDropped => {
                    found = true;
                    self.interner.release(key);
                }
            }
        }
        if found {
            self.map.prune_length_row(l);
        }
        found
    }

    /// Resolves segment bytes to their interned id, if any — the byte-hash
    /// half of a probe. Callers that probe the same substring against
    /// several `(l, slot)` indices (the online batch driver) resolve once
    /// and then stay integer-keyed via
    /// [`InternedSegmentIndex::probe_id`].
    #[inline]
    pub fn resolve(&self, seg: &[u8]) -> Option<SegId> {
        self.interner.lookup(seg)
    }

    /// The inverted list under an already-resolved id at `(l, slot)`.
    #[inline]
    pub fn probe_id(&self, l: usize, slot: usize, key: SegId) -> Option<&[StringId]> {
        self.map.probe_key(l, slot, &key)
    }

    /// Visits every live inverted list as `(length, slot, seg id, ids)`
    /// in deterministic (length, slot, id) order — the serialization
    /// visitor; pair it with [`InternedSegmentIndex::interner`] to resolve
    /// ids to bytes.
    pub fn visit_postings(&self, mut f: impl FnMut(usize, usize, SegId, &[StringId])) {
        self.map
            .visit_postings_keys(|l, slot, &key, ids| f(l, slot, key, ids));
    }

    /// Visits every `(length, id)` posting reference in unspecified order
    /// (see [`SegmentMap::visit_posting_ids`]).
    pub fn visit_posting_ids(&self, f: impl FnMut(usize, StringId)) {
        self.map.visit_posting_ids(f);
    }

    /// Pre-sizes the `(l, slot)` map for a bulk restore (see
    /// [`SegmentMap::reserve_keys`]).
    pub fn reserve_keys(&mut self, l: usize, slot: usize, additional: usize) {
        self.map.reserve_keys(l, slot, additional);
    }

    /// Interns one dictionary entry during a snapshot restore, rejecting
    /// byte strings that were already restored (a well-formed snapshot's
    /// table is duplicate-free) or that exhaust the id space.
    pub fn restore_segment(&mut self, bytes: &[u8]) -> Result<SegId, &'static str> {
        if self.interner.lookup(bytes).is_some() {
            return Err("duplicate interner table entry");
        }
        self.interner
            .intern(bytes)
            .ok_or("interner id space exhausted")
    }

    /// Restores one inverted list keyed by an interned id — the inverse of
    /// [`InternedSegmentIndex::visit_postings`]. On top of
    /// [`SegmentMap::restore_posting`]'s structural checks, the id must be
    /// a known dictionary entry whose byte length matches the partition
    /// geometry of `(l, slot)` — the byte-level check integer keys cannot
    /// do themselves.
    pub fn restore_posting(
        &mut self,
        l: usize,
        slot: usize,
        key: SegId,
        ids: Vec<StringId>,
    ) -> Result<(), &'static str> {
        if !(1..=self.tau() + 1).contains(&slot) {
            return Err("posting slot out of range for tau");
        }
        if l < self.tau() + 1 {
            return Err("posting length is too short to partition");
        }
        let Some(bytes) = self.interner.bytes_of(key) else {
            return Err("posting references an unknown interned segment");
        };
        let seg = self.scheme().segment(l, self.tau(), slot);
        if bytes.len() != seg.len {
            return Err("interned segment does not match the partition geometry");
        }
        self.map.restore_posting(l, slot, key, ids)?;
        self.interner.acquire(key);
        Ok(())
    }
}

impl SegmentProbe for InternedSegmentIndex {
    #[inline]
    fn has_length(&self, l: usize) -> bool {
        self.map.has_length(l)
    }

    #[inline]
    fn max_len(&self) -> usize {
        self.map.max_len()
    }

    #[inline]
    fn probe_bytes(&self, l: usize, slot: usize, seg: &[u8]) -> Option<&[StringId]> {
        // Resolve the substring to its integer id once; a miss here means
        // the substring is no indexed string's segment at *any* (l, slot).
        let key = self.interner.lookup(seg)?;
        self.map.probe_key(l, slot, &key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::OwnedSegmentIndex;

    #[test]
    fn interning_deduplicates_and_is_stable() {
        let mut interner = SegmentInterner::new();
        let a = interner.intern(b"esh").unwrap();
        let b = interner.intern(b"va").unwrap();
        assert_ne!(a, b);
        // Duplicate interning returns the same id, mints nothing.
        assert_eq!(interner.intern(b"esh"), Some(a));
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.lookup(b"esh"), Some(a));
        assert_eq!(interner.lookup(b"nk"), None);
        assert_eq!(interner.bytes_of(a), Some(&b"esh"[..]));
        assert_eq!(interner.bytes_of(SegId::from_raw(9)), None);
    }

    #[test]
    fn empty_segment_interns_like_any_other() {
        let mut interner = SegmentInterner::new();
        let empty = interner.intern(b"").unwrap();
        let other = interner.intern(b"x").unwrap();
        assert_ne!(empty, other);
        assert_eq!(interner.intern(b""), Some(empty));
        assert_eq!(interner.lookup(b""), Some(empty));
        assert_eq!(interner.bytes_of(empty), Some(&b""[..]));
        interner.acquire(empty);
        assert_eq!(interner.live(), 1);
        assert_eq!(interner.live_table_bytes(), 12, "zero bytes + overhead");
        interner.release(empty);
        assert_eq!(interner.live(), 0);
    }

    #[test]
    fn ids_are_stable_across_removals() {
        let mut interner = SegmentInterner::new();
        let id = interner.intern(b"abc").unwrap();
        interner.acquire(id);
        interner.acquire(id);
        assert_eq!(interner.live(), 1);
        interner.release(id);
        interner.release(id);
        assert_eq!(interner.live(), 0, "fully released id is dead");
        // Re-interning after full release revives the *same* id.
        assert_eq!(interner.intern(b"abc"), Some(id));
        assert_eq!(interner.len(), 1, "no second id was minted");
        interner.acquire(id);
        assert_eq!(interner.live(), 1);
    }

    #[test]
    fn overflow_guard_rejects_gracefully() {
        let mut interner = SegmentInterner::with_id_limit(2);
        let a = interner.intern(b"aa").unwrap();
        let b = interner.intern(b"bb").unwrap();
        // The table is full: new byte strings are rejected…
        assert_eq!(interner.intern(b"cc"), None);
        // …but the interner stays fully usable for existing entries.
        assert_eq!(interner.intern(b"aa"), Some(a));
        assert_eq!(interner.lookup(b"bb"), Some(b));
        assert_eq!(interner.len(), 2);
        // And a later rejection is still graceful (no state was corrupted).
        assert_eq!(interner.intern(b"cc"), None);
    }

    #[test]
    fn live_accounting_tracks_refs() {
        let mut interner = SegmentInterner::new();
        let a = interner.intern(b"aaaa").unwrap();
        let b = interner.intern(b"bb").unwrap();
        interner.acquire(a);
        interner.acquire(b);
        assert_eq!(interner.live(), 2);
        assert_eq!(interner.live_table_bytes(), 4 + 2 + 2 * 12);
        interner.release(a);
        assert_eq!(interner.live(), 1);
        assert_eq!(interner.live_table_bytes(), 2 + 12);
        let mut live = Vec::new();
        interner.visit_live(|id, bytes| live.push((id, bytes.to_vec())));
        assert_eq!(live, vec![(b, b"bb".to_vec())]);
        assert_eq!(interner.arena_bytes(), 6, "dead bytes stay in the arena");
    }

    #[test]
    fn interned_index_round_trips_inserts_and_removes() {
        let mut idx = InternedSegmentIndex::new(10, 1);
        idx.insert(b"abcdxxxx", 7);
        idx.insert(b"abcdyyyy", 2);
        assert_eq!(idx.probe_bytes(8, 1, b"abcd"), Some(&[2u32, 7][..]));
        assert_eq!(idx.entries(), 4);
        // "abcd" is stored once but referenced by one posting key.
        assert_eq!(idx.interner().len(), 3);
        assert_eq!(idx.interner().live(), 3);

        assert!(idx.remove(b"abcdyyyy", 2));
        assert_eq!(idx.probe_bytes(8, 1, b"abcd"), Some(&[7u32][..]));
        assert_eq!(idx.probe_bytes(8, 2, b"yyyy"), None);
        assert_eq!(idx.interner().live(), 2, "emptied key releases its id");

        assert!(!idx.remove(b"abcdyyyy", 2), "double remove is a no-op");
        assert!(!idx.remove(b"qqqqqqqq", 5), "unknown string is a no-op");

        assert!(idx.remove(b"abcdxxxx", 7));
        assert!(!idx.has_length(8), "empty length rows are reclaimed");
        assert_eq!(idx.entries(), 0);
        assert_eq!(idx.interner().live(), 0);

        // Re-insertion revives the same interned ids (id stability).
        let before = idx.interner().len();
        idx.insert(b"abcdxxxx", 7);
        assert_eq!(idx.interner().len(), before, "no new ids were minted");
        assert_eq!(idx.probe_bytes(8, 1, b"abcd"), Some(&[7u32][..]));
    }

    #[test]
    fn interned_and_owned_agree_on_probes() {
        let strings: Vec<&[u8]> = vec![b"aaabbbccc", b"aaabbbccd", b"xxxyyyzzz", b"aaabbbccc"];
        let mut owned = OwnedSegmentIndex::new(16, 2);
        let mut interned = InternedSegmentIndex::new(16, 2);
        for (id, s) in strings.iter().enumerate() {
            owned.insert_owned(s, id as StringId);
            interned.insert(s, id as StringId);
        }
        for l in 0..=16 {
            assert_eq!(
                SegmentProbe::has_length(&owned, l),
                SegmentProbe::has_length(&interned, l)
            );
        }
        for slot in 1..=3 {
            for key in [&b"aaa"[..], b"bbb", b"ccc", b"ccd", b"xxx", b"zzz", b"qqq"] {
                assert_eq!(
                    owned.probe(9, slot, key),
                    interned.probe_bytes(9, slot, key),
                    "slot {slot} key {key:?}"
                );
            }
        }
        assert_eq!(owned.entries(), interned.entries());
        // The dictionary dedups across slots: the 8 distinct (l, slot)
        // posting keys reference only 7 distinct byte strings ("aaa"…"zzz").
        assert_eq!(interned.interner().len(), 7);
        assert_eq!(interned.interner().live(), 7);
    }

    #[test]
    fn interned_restore_validates_geometry_and_ids() {
        let mut idx = InternedSegmentIndex::new(0, 1);
        let ab = idx.restore_segment(b"ab").unwrap();
        let cdef = idx.restore_segment(b"cdef").unwrap();
        assert!(idx.restore_segment(b"ab").is_err(), "duplicate entry");

        // Geometry: length-4 slot 1 under τ=1 is a 2-byte segment.
        assert!(idx.restore_posting(4, 1, ab, vec![0]).is_ok());
        assert!(idx.restore_posting(4, 2, ab, vec![0]).is_ok());
        assert!(idx.restore_posting(4, 1, cdef, vec![1]).is_err());
        assert!(idx
            .restore_posting(8, 1, SegId::from_raw(9), vec![0])
            .is_err());
        assert!(idx.restore_posting(4, 0, ab, vec![0]).is_err());
        assert!(idx.restore_posting(1, 1, ab, vec![0]).is_err());
        assert!(idx.restore_posting(4, 1, ab, vec![2]).is_err(), "dup key");

        assert_eq!(idx.probe_bytes(4, 1, b"ab"), Some(&[0u32][..]));
        assert_eq!(idx.interner().live(), 1, "one id live under two keys");
        // The restored index stays mutable.
        assert!(idx.remove(b"abab", 0));
        assert_eq!(idx.interner().live(), 0);
    }
}
