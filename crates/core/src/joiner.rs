//! The Pass-Join drivers: self-join (Algorithm 1) and R×S join (§3.2).
//!
//! Both drivers follow the paper's incremental scheme: strings are visited
//! in (length, lexicographic) order; each probe string looks up its
//! selected substrings in the inverted indices of *already visited* strings
//! (lengths `[|s|−τ, |s|]`), then inserts its own segments. Indices for
//! lengths that have slid out of the window are evicted, bounding the live
//! index to `(τ+1)²` maps.
//!
//! Strings shorter than τ+1 cannot be partitioned into τ+1 non-empty
//! segments (the paper's footnote assumes `|s| ≥ τ+1`). The drivers keep
//! them complete anyway: such strings are at most τ bytes long, so there
//! are few meaningfully distinct ones; they are collected in a side list
//! and verified brute-force against every probe within the length filter.

use std::time::Instant;

use editdist::length_aware_within_ws;
use sj_common::join::emit_pair;
use sj_common::{JoinOutput, JoinStats, SimilarityJoin, StringCollection, StringId};

use crate::index::SegmentIndex;
use crate::partition::PartitionScheme;
use crate::probe::ProbeState;
use crate::select::Selection;
use crate::sink::FnSink;
use crate::verify::Verification;

/// The Pass-Join algorithm, configured by a substring-selection strategy
/// (§4) and a verification strategy (§5).
///
/// ```
/// use passjoin::PassJoin;
/// use sj_common::{SimilarityJoin, StringCollection};
///
/// let strings = StringCollection::from_strs(&[
///     "avataresha", "caushik chakrabar", "kaushic chaduri",
///     "kaushik chakrab", "kaushuk chadhui", "vankatesh",
/// ]);
/// let out = PassJoin::new().self_join(&strings, 3);
/// // Figure 1: the only answer at τ=3 is ⟨s4, s6⟩ =
/// // ("kaushik chakrab", "caushik chakrabar") — input positions 3 and 1.
/// assert_eq!(out.normalized_pairs(), vec![(1, 3)]);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct PassJoin {
    selection: Selection,
    verification: Verification,
    partition: PartitionScheme,
}

impl PassJoin {
    /// Pass-Join with the paper's recommended configuration:
    /// multi-match-aware selection and prefix-sharing extension
    /// verification.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the substring-selection strategy.
    pub fn with_selection(mut self, selection: Selection) -> Self {
        self.selection = selection;
        self
    }

    /// Replaces the verification strategy.
    pub fn with_verification(mut self, verification: Verification) -> Self {
        self.verification = verification;
        self
    }

    /// Replaces the partition scheme (the ablation knob for §3.1's
    /// even-partition argument; correctness holds under any scheme).
    pub fn with_partition(mut self, partition: PartitionScheme) -> Self {
        self.partition = partition;
        self
    }

    /// The configured partition scheme.
    pub fn partition(&self) -> PartitionScheme {
        self.partition
    }

    /// The configured selection strategy.
    pub fn selection(&self) -> Selection {
        self.selection
    }

    /// The configured verification strategy.
    pub fn verification(&self) -> Verification {
        self.verification
    }

    /// Joins two distinct collections: finds all `(r, s) ∈ R × S` with
    /// `ed(r, s) ≤ tau`.
    ///
    /// Pairs are reported as `(position in R's input, position in S's
    /// input)` — unlike [`SimilarityJoin::self_join`], the two components
    /// index *different* collections and are not reordered.
    pub fn rs_join(
        &self,
        r_coll: &StringCollection,
        s_coll: &StringCollection,
        tau: usize,
    ) -> JoinOutput {
        let started = Instant::now();
        let mut pairs = Vec::new();
        let mut stats = JoinStats {
            strings: r_coll.len() as u64,
            ..JoinStats::default()
        };

        let mut state = ProbeState::new(self, s_coll.len(), tau);
        let mut index = SegmentIndex::with_scheme(s_coll.max_len(), tau, self.partition);
        let mut short_ids: Vec<StringId> = Vec::new();
        let mut next_insert: StringId = 0;

        for (r_id, r) in r_coll.iter() {
            // Advance the indexing pointer: S strings with length ≤ |r|+τ
            // must be indexed before r probes.
            while (next_insert as usize) < s_coll.len()
                && s_coll.str_len(next_insert) <= r.len() + tau
            {
                let s = s_coll.get(next_insert);
                if s.len() > tau {
                    index.insert(s, next_insert);
                } else {
                    short_ids.push(next_insert);
                }
                next_insert += 1;
            }
            index.evict_below(r.len().saturating_sub(tau));

            state.begin_probe();
            // Brute-force fallback against unpartitionable S strings.
            for &sid in &short_ids {
                let s = s_coll.get(sid);
                if r.len() > s.len() + tau {
                    continue;
                }
                stats.verifications += 1;
                if length_aware_within_ws(s, r, tau, &mut state.ws).is_some() {
                    pairs.push((r_coll.original_index(r_id), s_coll.original_index(sid)));
                    stats.results += 1;
                }
            }
            let lmin = (tau + 1).max(r.len().saturating_sub(tau));
            let lmax = r.len() + tau;
            state.probe_lengths(
                r,
                lmin,
                lmax,
                &index,
                |sid| s_coll.get(sid),
                &mut stats,
                &mut FnSink(|sid, _| {
                    pairs.push((r_coll.original_index(r_id), s_coll.original_index(sid)));
                }),
            );
        }

        stats.index_bytes = index.peak_bytes();
        JoinOutput {
            pairs,
            stats,
            elapsed: started.elapsed(),
        }
    }
}

impl PassJoin {
    /// The incremental self-join loop, reporting each result through
    /// `on_result(pair, certificate)`. The certificate is the exact edit
    /// distance for whole-pair verifiers and an upper bound ≤ τ for the
    /// extension verifiers.
    pub(crate) fn run_self_join(
        &self,
        collection: &StringCollection,
        tau: usize,
        mut on_result: impl FnMut((u32, u32), usize),
    ) -> JoinStats {
        let mut stats = JoinStats {
            strings: collection.len() as u64,
            ..JoinStats::default()
        };

        let mut state = ProbeState::new(self, collection.len(), tau);
        let mut index = SegmentIndex::with_scheme(collection.max_len(), tau, self.partition);
        let mut short_ids: Vec<StringId> = Vec::new();
        let mut prev_len = usize::MAX;
        let mut scratch_pair = Vec::with_capacity(1);

        for (id, s) in collection.iter() {
            if s.len() != prev_len {
                index.evict_below(s.len().saturating_sub(tau));
                prev_len = s.len();
            }

            state.begin_probe();
            // Brute-force fallback against unpartitionable strings.
            for &rid in &short_ids {
                let r = collection.get(rid);
                if s.len() > r.len() + tau {
                    continue;
                }
                stats.verifications += 1;
                if let Some(d) = length_aware_within_ws(r, s, tau, &mut state.ws) {
                    scratch_pair.clear();
                    emit_pair(collection, rid, id, &mut scratch_pair);
                    on_result(scratch_pair[0], d);
                    stats.results += 1;
                }
            }

            // Main partition-based probing over visited lengths.
            let lmin = (tau + 1).max(s.len().saturating_sub(tau));
            let lmax = s.len();
            state.probe_lengths(
                s,
                lmin,
                lmax,
                &index,
                |rid| collection.get(rid),
                &mut stats,
                &mut FnSink(|rid, d| {
                    scratch_pair.clear();
                    emit_pair(collection, rid, id, &mut scratch_pair);
                    on_result(scratch_pair[0], d);
                }),
            );

            // Index the probe string for subsequent (longer) strings.
            if s.len() > tau {
                index.insert(collection.get(id), id);
            } else {
                short_ids.push(id);
            }
        }

        stats.index_bytes = index.peak_bytes();
        stats
    }

    /// Self-join that also reports each result pair's **exact** edit
    /// distance. Verification is forced to the length-aware whole-pair
    /// kernel internally (extension certificates are only upper bounds);
    /// selection and partition configuration are honoured.
    pub fn self_join_distances(
        &self,
        collection: &StringCollection,
        tau: usize,
    ) -> Vec<((u32, u32), usize)> {
        let exact = self.with_verification(Verification::LengthAware);
        let mut out = Vec::new();
        exact.run_self_join(collection, tau, |pair, d| out.push((pair, d)));
        out
    }
}

impl SimilarityJoin for PassJoin {
    fn name(&self) -> &'static str {
        "pass-join"
    }

    fn self_join(&self, collection: &StringCollection, tau: usize) -> JoinOutput {
        let started = Instant::now();
        let mut pairs = Vec::new();
        let stats = self.run_self_join(collection, tau, |pair, _| pairs.push(pair));
        JoinOutput {
            pairs,
            stats,
            elapsed: started.elapsed(),
        }
    }
}
