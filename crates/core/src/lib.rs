//! **Pass-Join**: partition-based string similarity joins with
//! edit-distance constraints.
//!
//! Reproduction of Li, Deng, Wang, Feng — *"Pass-Join: A Partition-based
//! Method for Similarity Joins"*, PVLDB 5(3), 2011.
//!
//! Given a collection of strings and a threshold τ, the join finds every
//! pair within edit distance τ. Pass-Join partitions each indexed string
//! into τ+1 even segments (by the pigeonhole principle a similar string
//! must contain one of them verbatim — [`partition`]), probes a small,
//! provably minimal set of substrings of each probe string against
//! per-(length, slot) inverted indices ([`select`], [`index`]), and
//! verifies candidates with a cascade of banded, early-terminating,
//! extension-based dynamic programs ([`verify`], implemented in the
//! [`editdist`] crate).
//!
//! # Quick start
//!
//! ```
//! use passjoin::PassJoin;
//! use sj_common::{SimilarityJoin, StringCollection};
//!
//! let strings = StringCollection::from_strs(&["vldb", "pvldb", "icde", "sigmod"]);
//! let out = PassJoin::new().self_join(&strings, 1);
//! assert_eq!(out.normalized_pairs(), vec![(0, 1)]); // ⟨vldb, pvldb⟩
//! ```
//!
//! # Configuration
//!
//! Every strategy ablated in the paper is available:
//!
//! ```
//! use passjoin::{PassJoin, Selection, Verification};
//! let join = PassJoin::new()
//!     .with_selection(Selection::Position)
//!     .with_verification(Verification::LengthAware);
//! assert_eq!(join.selection(), Selection::Position);
//! ```
//!
//! Two collections are joined with [`PassJoin::rs_join`]; the threshold is
//! per-call, so one configured `PassJoin` serves any τ.
//!
//! Strings are compared as byte strings. The paper's corpora are ASCII;
//! for non-ASCII UTF-8 input the edit distance is over bytes, not
//! codepoints.

pub mod direct;
pub mod index;
pub mod intern;
pub mod joiner;
mod parallel;
pub mod partition;
mod probe;
pub mod search;
pub mod select;
pub mod sink;
pub mod topk;
pub mod verify;

pub use direct::DirectSegmentIndex;
pub use index::{OwnedSegmentIndex, SegmentIndex, SegmentKey, SegmentMap, SegmentProbe};
pub use intern::{InternedSegmentIndex, SegId, SegmentInterner};
pub use joiner::PassJoin;
pub use partition::PartitionScheme;
pub use search::SearchIndex;
pub use select::{online_window, Selection};
pub use sink::{
    BudgetSink, CollectSink, CountSink, FnSink, ManualTicks, MatchSink, TickSource, TopKSink,
    TruncationReason,
};
pub use topk::TopK;
pub use verify::Verification;
