//! A multi-threaded Pass-Join self-join driver.
//!
//! The paper defers parallelism to future work; this driver shows the
//! partition-based design parallelizes naturally. The sequential algorithm
//! interleaves probing and indexing (a string probes only *earlier*
//! strings); here the segment index is instead built **once over the whole
//! collection**, and probes run concurrently, each probe `s` restricting
//! candidate lists to ids smaller than its own — the same "every pair
//! exactly once" discipline, enforced by id comparison instead of by
//! insertion order. Verification is unchanged, so the result set is
//! byte-identical to the sequential join.
//!
//! Work is distributed dynamically in blocks of probe ids (long strings
//! cluster at high ids, so static range splits would be imbalanced);
//! workers keep private pair buffers and stats, merged at the end.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use editdist::{length_aware_within_ws, DpWorkspace};
use sj_common::join::emit_pair;
use sj_common::{JoinOutput, JoinStats, SimilarityJoin, StringCollection, StringId};

use crate::index::SegmentIndex;
use crate::joiner::PassJoin;
use crate::probe::ProbeState;
use crate::sink::FnSink;

/// Probe ids are handed to workers in blocks of this size: large enough to
/// amortize the atomic fetch, small enough to balance skewed tails.
const BLOCK: usize = 256;

impl PassJoin {
    /// Multi-threaded [`SimilarityJoin::self_join`]; `threads = 0` uses the
    /// available parallelism. Produces exactly the sequential result set
    /// (tested), with near-linear speedup on candidate-heavy workloads.
    pub fn par_self_join(
        &self,
        collection: &StringCollection,
        tau: usize,
        threads: usize,
    ) -> JoinOutput {
        let started = Instant::now();
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        };
        if threads <= 1 || collection.len() < 2 * BLOCK {
            let mut out = self.self_join(collection, tau);
            out.elapsed = started.elapsed();
            return out;
        }

        // Shared, immutable index over the whole collection.
        let mut index = SegmentIndex::with_scheme(collection.max_len(), tau, self.partition());
        let mut short_ids: Vec<StringId> = Vec::new();
        for (id, s) in collection.iter() {
            if s.len() > tau {
                index.insert(s, id);
            } else {
                short_ids.push(id);
            }
        }
        let index = &index;
        let short_ids = &short_ids;

        let cursor = AtomicUsize::new(0);
        let n = collection.len();

        let (pairs, stats) = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for _ in 0..threads {
                let cursor = &cursor;
                handles.push(scope.spawn(move || {
                    let mut pairs = Vec::new();
                    let mut stats = JoinStats::default();
                    let mut state = ProbeState::new(self, n, tau);
                    let mut ws = DpWorkspace::new();
                    loop {
                        let start = cursor.fetch_add(BLOCK, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        for id in start as u32..((start + BLOCK).min(n)) as u32 {
                            let s = collection.get(id);
                            state.begin_probe();
                            // Short-string fallback: earlier ids only.
                            for &rid in short_ids.iter().take_while(|&&rid| rid < id) {
                                let r = collection.get(rid);
                                if s.len() > r.len() + tau {
                                    continue;
                                }
                                stats.verifications += 1;
                                if length_aware_within_ws(r, s, tau, &mut ws).is_some() {
                                    emit_pair(collection, rid, id, &mut pairs);
                                    stats.results += 1;
                                }
                            }
                            let lmin = (tau + 1).max(s.len().saturating_sub(tau));
                            state.probe_lengths_bounded(
                                s,
                                lmin,
                                s.len(),
                                index,
                                id,
                                |rid| collection.get(rid),
                                &mut stats,
                                &mut FnSink(|rid, _| emit_pair(collection, rid, id, &mut pairs)),
                            );
                        }
                    }
                    (pairs, stats)
                }));
            }
            let mut pairs = Vec::new();
            let mut stats = JoinStats {
                strings: n as u64,
                ..JoinStats::default()
            };
            for handle in handles {
                let (p, s) = handle.join().expect("probe worker panicked");
                pairs.extend_from_slice(&p);
                stats.merge(&s);
            }
            stats.strings = n as u64; // merge() double-counts the zeroes
            (pairs, stats)
        });

        let mut stats = stats;
        stats.index_bytes = index.peak_bytes();
        JoinOutput {
            pairs,
            stats,
            elapsed: started.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Selection, Verification};

    fn corpus() -> StringCollection {
        // Mix of lengths, duplicates, and short strings.
        let mut strings: Vec<Vec<u8>> = Vec::new();
        for i in 0..900u32 {
            strings.push(format!("synthetic record {:03}", i % 450).into_bytes());
            if i % 7 == 0 {
                strings.push(format!("synthetic recrd {:03}", i % 450).into_bytes());
            }
            if i % 31 == 0 {
                strings.push(b"ab".to_vec());
            }
        }
        StringCollection::new(strings)
    }

    #[test]
    fn parallel_matches_sequential() {
        let c = corpus();
        for tau in [0usize, 1, 2] {
            let seq = PassJoin::new().self_join(&c, tau);
            for threads in [2usize, 4] {
                let par = PassJoin::new().par_self_join(&c, tau, threads);
                assert_eq!(
                    par.normalized_pairs(),
                    seq.normalized_pairs(),
                    "threads={threads} tau={tau}"
                );
                assert_eq!(par.stats.results, seq.stats.results);
            }
        }
    }

    #[test]
    fn parallel_respects_configuration() {
        let c = corpus();
        let config = PassJoin::new()
            .with_selection(Selection::Position)
            .with_verification(Verification::LengthAware);
        let seq = config.self_join(&c, 2);
        let par = config.par_self_join(&c, 2, 3);
        assert_eq!(par.normalized_pairs(), seq.normalized_pairs());
    }

    #[test]
    fn single_thread_falls_back_to_sequential() {
        let c = StringCollection::from_strs(&["abcd", "abce", "zzzz"]);
        let par = PassJoin::new().par_self_join(&c, 1, 1);
        assert_eq!(par.normalized_pairs(), vec![(0, 1)]);
        let par0 = PassJoin::new().par_self_join(&c, 1, 0);
        assert_eq!(par0.normalized_pairs(), vec![(0, 1)]);
    }
}
