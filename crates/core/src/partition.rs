//! The even-partition scheme (paper §3.1).
//!
//! A string of length `l` is split into τ+1 disjoint segments whose lengths
//! differ by at most one: with `k = l − ⌊l/(τ+1)⌋·(τ+1)`, the *last* `k`
//! segments have length `⌈l/(τ+1)⌉` and the first `τ+1−k` have
//! `⌊l/(τ+1)⌋`. Balanced segments are as long as possible, which keeps
//! their selectivity high (short segments match everywhere and flood the
//! candidate set — the ablation bench `ablation-partition` quantifies this).
//!
//! By the pigeonhole principle (Lemma 1), any string within edit distance τ
//! of `s` must contain a substring equal to one of `s`'s τ+1 segments.

/// Position and length of one segment inside its string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SegmentSpec {
    /// 0-based start offset of the segment.
    pub start: usize,
    /// Segment length in bytes (≥ 1 whenever `len ≥ τ+1`).
    pub len: usize,
}

impl SegmentSpec {
    /// End offset (exclusive).
    #[inline]
    pub fn end(&self) -> usize {
        self.start + self.len
    }
}

/// Computes segment `slot` (1-based, `1 ..= tau+1`) of the even partition of
/// a string of length `len` under threshold `tau`, in O(1).
///
/// # Panics
///
/// Panics in debug builds when `len < tau + 1` (such strings cannot be
/// partitioned into τ+1 non-empty segments; the join driver routes them to
/// a brute-force fallback instead) or when `slot` is out of range.
///
/// ```
/// use passjoin::partition::segment;
/// // "vankatesh" (len 9) at τ=3 partitions into {"va","nk","at","esh"}.
/// let lens: Vec<usize> = (1..=4).map(|i| segment(9, 3, i).len).collect();
/// assert_eq!(lens, [2, 2, 2, 3]);
/// ```
#[inline]
pub fn segment(len: usize, tau: usize, slot: usize) -> SegmentSpec {
    let parts = tau + 1;
    debug_assert!(
        len >= parts,
        "string of length {len} cannot form {parts} segments"
    );
    debug_assert!(
        (1..=parts).contains(&slot),
        "slot {slot} out of 1..={parts}"
    );
    let base = len / parts;
    let k = len - base * parts;
    // The first `parts − k` segments have length `base`, the last `k` have
    // `base + 1`.
    let plain = parts - k;
    if slot <= plain {
        SegmentSpec {
            start: (slot - 1) * base,
            len: base,
        }
    } else {
        let extra = slot - plain - 1; // long segments before this one
        SegmentSpec {
            start: plain * base + extra * (base + 1),
            len: base + 1,
        }
    }
}

/// All τ+1 segments of the even partition, in order.
pub fn partition(len: usize, tau: usize) -> Vec<SegmentSpec> {
    (1..=tau + 1).map(|slot| segment(len, tau, slot)).collect()
}

/// A naive left-heavy partition used by the partition ablation: the first
/// τ segments get one byte each, the final segment takes the rest.
/// Satisfies Lemma 1 like any partition into τ+1 disjoint segments, but
/// its single-byte segments have terrible selectivity — quantifying §3.1's
/// argument for balanced segments.
pub fn left_heavy_partition(len: usize, tau: usize) -> Vec<SegmentSpec> {
    debug_assert!(len > tau);
    let mut segs: Vec<SegmentSpec> = (0..tau).map(|i| SegmentSpec { start: i, len: 1 }).collect();
    segs.push(SegmentSpec {
        start: tau,
        len: len - tau,
    });
    segs
}

/// How strings are split into τ+1 disjoint segments.
///
/// Every scheme satisfies the pigeonhole property (Lemma 1 holds for *any*
/// partition into τ+1 disjoint segments), and the selection windows and
/// extension budgets depend only on segment positions and counts — so the
/// join is correct under any scheme. They differ only in pruning power,
/// which is what the `ablation-partition` experiment measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionScheme {
    /// The paper's even partition (§3.1): segment lengths differ by ≤ 1.
    #[default]
    Even,
    /// A deliberately bad partition: τ single-byte segments plus the rest.
    LeftHeavy,
}

impl PartitionScheme {
    /// Short name used in benchmark tables.
    pub fn name(&self) -> &'static str {
        match self {
            PartitionScheme::Even => "even",
            PartitionScheme::LeftHeavy => "left-heavy",
        }
    }

    /// Segment `slot` (1-based) of a string of length `len` under this
    /// scheme, in O(1).
    #[inline]
    pub fn segment(&self, len: usize, tau: usize, slot: usize) -> SegmentSpec {
        match self {
            PartitionScheme::Even => segment(len, tau, slot),
            PartitionScheme::LeftHeavy => {
                debug_assert!(len > tau);
                debug_assert!((1..=tau + 1).contains(&slot));
                if slot <= tau {
                    SegmentSpec {
                        start: slot - 1,
                        len: 1,
                    }
                } else {
                    SegmentSpec {
                        start: tau,
                        len: len - tau,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_vankatesh() {
        // §3.1: "vankatesh", τ=3 ⇒ {"va", "nk", "at", "esh"}.
        let s = b"vankatesh";
        let segs = partition(s.len(), 3);
        let pieces: Vec<&[u8]> = segs.iter().map(|g| &s[g.start..g.end()]).collect();
        assert_eq!(pieces, vec![b"va".as_slice(), b"nk", b"at", b"esh"]);
    }

    #[test]
    fn paper_example_kaushuk() {
        // §5.2 example geometry: len 15, τ=3 ⇒ lengths [3,4,4,4] and the
        // third segment of "kaushuk chadhui" is " cha".
        let s = b"kaushuk chadhui";
        let segs = partition(s.len(), 3);
        let lens: Vec<usize> = segs.iter().map(|g| g.len).collect();
        assert_eq!(lens, [3, 4, 4, 4]);
        let third = segs[2];
        assert_eq!(&s[third.start..third.end()], b" cha");
    }

    #[test]
    fn segments_tile_the_string() {
        for len in 1..=64 {
            for tau in 0..8.min(len - 1) {
                let segs = partition(len, tau);
                assert_eq!(segs.len(), tau + 1);
                assert_eq!(segs[0].start, 0);
                for w in segs.windows(2) {
                    assert_eq!(w[0].end(), w[1].start, "len={len} tau={tau}");
                }
                assert_eq!(segs.last().unwrap().end(), len);
                // Even partition: lengths differ by at most one and are
                // non-decreasing (short segments first).
                let min = segs.iter().map(|g| g.len).min().unwrap();
                let max = segs.iter().map(|g| g.len).max().unwrap();
                assert!(max - min <= 1, "len={len} tau={tau}");
                assert!(min >= 1);
                for w in segs.windows(2) {
                    assert!(w[0].len <= w[1].len);
                }
            }
        }
    }

    #[test]
    fn slotwise_matches_partition() {
        for len in 4..=40 {
            for tau in 0..4.min(len - 1) {
                let all = partition(len, tau);
                for (idx, &spec) in all.iter().enumerate() {
                    assert_eq!(segment(len, tau, idx + 1), spec);
                }
            }
        }
    }

    #[test]
    fn left_heavy_tiles_too() {
        let segs = left_heavy_partition(10, 3);
        assert_eq!(segs.len(), 4);
        assert_eq!(segs[0], SegmentSpec { start: 0, len: 1 });
        assert_eq!(segs[3], SegmentSpec { start: 3, len: 7 });
        assert_eq!(segs.last().unwrap().end(), 10);
    }

    #[test]
    fn scheme_dispatch_matches_free_functions() {
        for len in 5..30usize {
            for tau in 0..4.min(len - 1) {
                for slot in 1..=tau + 1 {
                    assert_eq!(
                        PartitionScheme::Even.segment(len, tau, slot),
                        segment(len, tau, slot)
                    );
                    assert_eq!(
                        PartitionScheme::LeftHeavy.segment(len, tau, slot),
                        left_heavy_partition(len, tau)[slot - 1]
                    );
                }
            }
        }
    }

    #[test]
    fn exact_multiple_lengths() {
        // len divisible by τ+1: all segments equal.
        let segs = partition(12, 3);
        assert!(segs.iter().all(|g| g.len == 3));
        let segs = partition(12, 11);
        assert!(segs.iter().all(|g| g.len == 1));
    }
}
