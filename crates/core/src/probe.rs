//! Per-probe machinery shared by the self-, R×S, and parallel join drivers:
//! substring selection against a [`SegmentMap`], candidate deduplication,
//! and the verification cascade (§4–§5).
//!
//! Split out of the join drivers so the scan loop (visit order, eviction,
//! short-string fallback) is the only thing they own; the probing core is
//! generic over [`SegmentProbe`], so it serves the arena-borrowing scan
//! index, owned-key indices, and the integer-interned index alike — the
//! backend decides how a probed substring resolves to an inverted list
//! (direct byte lookup vs. intern-then-integer lookup).

use editdist::{
    banded_within_ws, length_aware_within_ws, myers_within, within_full, DpWorkspace,
    ExtensionVerifier, Occurrence,
};
use sj_common::stamp::StampSet;
use sj_common::{JoinStats, StringId};

use crate::index::SegmentProbe;
use crate::joiner::PassJoin;
use crate::partition::PartitionScheme;
use crate::select::Selection;
use crate::sink::MatchSink;
use crate::verify::Verification;

/// Reusable per-probe state: scratch sets, DP workspaces, and the
/// configured selection/verification strategies.
pub(crate) struct ProbeState {
    selection: Selection,
    verification: Verification,
    partition: PartitionScheme,
    tau: usize,
    /// Pairs already resolved for the current probe: results emitted (any
    /// verifier), or — for whole-pair verifiers only — pairs already
    /// checked. Occurrence-dependent (extension) verification must re-try
    /// other occurrences of a rejected pair, so rejections are only cached
    /// for whole-pair verifiers.
    resolved: StampSet,
    /// Distinct candidate pairs of the current probe (statistics).
    cand_seen: StampSet,
    ext: ExtensionVerifier,
    pub(crate) ws: DpWorkspace,
}

impl ProbeState {
    pub(crate) fn new(config: &PassJoin, indexed_universe: usize, tau: usize) -> Self {
        let share = matches!(
            config.verification(),
            Verification::Extension { share_prefix: true }
        );
        Self {
            selection: config.selection(),
            verification: config.verification(),
            partition: config.partition(),
            tau,
            resolved: StampSet::new(indexed_universe),
            cand_seen: StampSet::new(indexed_universe),
            ext: ExtensionVerifier::new(share),
            ws: DpWorkspace::new(),
        }
    }

    pub(crate) fn begin_probe(&mut self) {
        self.resolved.clear();
        self.cand_seen.clear();
    }

    /// [`ProbeState::probe_lengths_bounded`] with no id bound — for the
    /// incremental drivers, whose indices only ever hold earlier ids.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn probe_lengths<'c, I: SegmentProbe>(
        &mut self,
        s: &[u8],
        lmin: usize,
        lmax: usize,
        index: &I,
        resolve: impl Fn(StringId) -> &'c [u8],
        stats: &mut JoinStats,
        sink: &mut impl MatchSink,
    ) {
        self.probe_lengths_bounded(s, lmin, lmax, index, u32::MAX, resolve, stats, sink);
    }

    /// Probes the inverted indices of every length in `[lmin, lmax]` with
    /// the selected substrings of `s`, verifying candidates with id
    /// `< max_id` and pushing each `(indexed_id, certificate)` result into
    /// `sink`. `resolve` maps an indexed id to its bytes. The id bound lets
    /// the parallel driver share one full index while still enumerating
    /// every pair exactly once.
    ///
    /// The sink steers the scan: lengths outside its current
    /// [`MatchSink::bound`] are skipped, whole-pair verification runs
    /// under the (possibly tightened) bound, and a saturated sink stops
    /// probing entirely. Every candidate and verification is announced
    /// through [`MatchSink::note_candidate`] /
    /// [`MatchSink::note_verification`] *before* it runs, so a
    /// [`crate::sink::BudgetSink`] can cap probe work. Collecting sinks
    /// leave all hooks at their defaults, so the join drivers are
    /// byte-for-byte unchanged.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn probe_lengths_bounded<'c, I: SegmentProbe>(
        &mut self,
        s: &[u8],
        lmin: usize,
        lmax: usize,
        index: &I,
        max_id: StringId,
        resolve: impl Fn(StringId) -> &'c [u8],
        stats: &mut JoinStats,
        sink: &mut impl MatchSink,
    ) {
        let tau = self.tau;
        for l in lmin..=lmax {
            if sink.saturated() {
                return;
            }
            if !index.has_length(l) || s.len().abs_diff(l) > sink.bound(tau) {
                continue;
            }
            for slot in 1..=tau + 1 {
                let seg = self.partition.segment(l, tau, slot);
                let window = self.selection.window(s.len(), l, seg, slot, tau);
                stats.selected_substrings += window.len() as u64;
                for p in window {
                    stats.probes += 1;
                    let w = &s[p..p + seg.len];
                    let Some(list) = index.probe_bytes(l, slot, w) else {
                        continue;
                    };
                    // Lists are sorted by id; keep only ids below the bound.
                    let list = &list[..list.partition_point(|&rid| rid < max_id)];
                    let occ = Occurrence {
                        slot,
                        seg_start: seg.start,
                        seg_len: seg.len,
                        probe_start: p,
                    };
                    // The sink's bound only ever shrinks, so verifying
                    // under the value read at occurrence entry is sound:
                    // any match it rejects has distance above every later
                    // acceptance bound too. The extension verifier keeps
                    // the full τ — its per-side budgets come from the
                    // occurrence geometry (slots run 1..=τ+1) — and its
                    // certificates are *upper bounds* ≤ τ, not exact
                    // distances, so this branch cannot honor a tightened
                    // bound: a bounded sink (top-k, capped count) must be
                    // paired with a whole-pair verifier here. The join
                    // drivers only pass collecting FnSinks (bound = τ);
                    // the exact-distance sink paths live in core::search
                    // and the online engine.
                    let bound = sink.bound(tau);
                    match self.verification {
                        Verification::Extension { .. } => {
                            debug_assert_eq!(
                                bound, tau,
                                "extension verification reports upper-bound certificates, \
                                 not exact distances: pair bounded sinks with a whole-pair \
                                 verifier"
                            );
                            self.ext.begin_scan(s, &occ, tau, l);
                            for &rid in list {
                                sink.note_candidate();
                                if sink.saturated() {
                                    return; // budget tripped: candidate skipped
                                }
                                stats.candidate_occurrences += 1;
                                if self.cand_seen.insert(rid) {
                                    stats.candidate_pairs += 1;
                                }
                                if self.resolved.contains(rid) {
                                    continue; // already emitted for this probe
                                }
                                sink.note_verification();
                                if sink.saturated() {
                                    return; // budget tripped: check skipped
                                }
                                stats.verifications += 1;
                                if let Some(cert) = self.ext.verify(resolve(rid), s, &occ) {
                                    self.resolved.insert(rid);
                                    sink.push(rid, cert);
                                    stats.results += 1;
                                }
                            }
                        }
                        whole => {
                            for &rid in list {
                                sink.note_candidate();
                                if sink.saturated() {
                                    return; // budget tripped: candidate skipped
                                }
                                stats.candidate_occurrences += 1;
                                if !self.cand_seen.insert(rid) {
                                    continue; // pair already checked: sound
                                              // for whole-pair verifiers
                                }
                                stats.candidate_pairs += 1;
                                sink.note_verification();
                                if sink.saturated() {
                                    return; // budget tripped: check skipped
                                }
                                stats.verifications += 1;
                                let r = resolve(rid);
                                let verdict = match whole {
                                    Verification::Full => within_full(r, s, bound),
                                    Verification::Banded => {
                                        banded_within_ws(r, s, bound, &mut self.ws)
                                    }
                                    Verification::LengthAware => {
                                        length_aware_within_ws(r, s, bound, &mut self.ws)
                                    }
                                    Verification::Myers => myers_within(r, s, bound),
                                    Verification::Extension { .. } => unreachable!(),
                                };
                                if let Some(d) = verdict {
                                    self.resolved.insert(rid);
                                    sink.push(rid, d);
                                    stats.results += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::OwnedSegmentIndex;
    use crate::intern::InternedSegmentIndex;

    /// The probing core must be strictly backend-agnostic: the same probe
    /// over an owned-key and an interned-key index with identical contents
    /// must emit identical (id, certificate) sequences and stats.
    #[test]
    fn probe_lengths_is_backend_agnostic() {
        let strings: &[&[u8]] = &[
            b"kaushik chakrab",
            b"caushik chakrabar",
            b"kaushic chaduri",
            b"kaushuk chadhui",
            b"vankatesh",
            b"avataresha",
        ];
        let tau = 3;
        let config = PassJoin::new();
        let mut owned = OwnedSegmentIndex::new(0, tau);
        let mut interned = InternedSegmentIndex::new(0, tau);
        for (id, s) in strings.iter().enumerate() {
            owned.insert_owned(s, id as StringId);
            interned.insert(s, id as StringId);
        }
        for probe in strings {
            let lmin = (tau + 1).max(probe.len().saturating_sub(tau));
            let lmax = probe.len() + tau;
            let mut state = ProbeState::new(&config, strings.len(), tau);
            let mut stats_a = JoinStats::default();
            let mut got_a = Vec::new();
            state.begin_probe();
            state.probe_lengths(
                probe,
                lmin,
                lmax,
                &owned,
                |rid| strings[rid as usize],
                &mut stats_a,
                &mut crate::sink::FnSink(|rid, cert| got_a.push((rid, cert))),
            );
            let mut state = ProbeState::new(&config, strings.len(), tau);
            let mut stats_b = JoinStats::default();
            let mut got_b = Vec::new();
            state.begin_probe();
            state.probe_lengths(
                probe,
                lmin,
                lmax,
                &interned,
                |rid| strings[rid as usize],
                &mut stats_b,
                &mut crate::sink::FnSink(|rid, cert| got_b.push((rid, cert))),
            );
            assert_eq!(got_a, got_b, "probe {:?}", String::from_utf8_lossy(probe));
            assert_eq!(stats_a.probes, stats_b.probes);
            assert_eq!(stats_a.candidate_pairs, stats_b.candidate_pairs);
            assert_eq!(stats_a.results, stats_b.results);
        }
    }
}
