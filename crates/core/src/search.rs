//! Similarity *search*: one indexed dictionary, many ad-hoc queries.
//!
//! The join (§3.2) streams both sides; many applications instead fix a
//! dictionary once (spell-checking, entity lookup, autocomplete backends —
//! the "approximate string searching" problem of the paper's related work
//! [14, 26]) and ask for all entries within τ of each query. The same
//! partition machinery applies directly: partition every dictionary string
//! into τ+1 segments up front, then run the multi-match-aware selection
//! from the query side. Unlike the join there is no visit order, so the
//! index covers every length and is immutable after construction.

use editdist::{length_aware_within_ws, DpWorkspace, ExtensionVerifier, Occurrence};
use sj_common::stamp::StampSet;
use sj_common::{StringCollection, StringId};

use crate::index::SegmentIndex;
use crate::select::Selection;
use crate::sink::{CollectSink, FnSink, MatchSink, TopKSink};

/// An immutable similarity-search index over a dictionary.
///
/// ```
/// use passjoin::search::SearchIndex;
/// use sj_common::StringCollection;
///
/// let dict = StringCollection::from_strs(&["sigmod", "vldb", "icde", "pvldb"]);
/// let index = SearchIndex::build(&dict, 1);
/// let mut hits = index.query(b"vldbb");
/// hits.sort();
/// // Matches are (input position, distance).
/// assert_eq!(hits, vec![(1, 1)]);
/// ```
pub struct SearchIndex<'a> {
    dictionary: &'a StringCollection,
    tau: usize,
    segments: SegmentIndex<'a>,
    /// Dictionary entries shorter than τ+1 (checked brute force).
    short_ids: Vec<StringId>,
}

impl<'a> SearchIndex<'a> {
    /// Partitions every dictionary string; O(Σ τ+1) time and space.
    pub fn build(dictionary: &'a StringCollection, tau: usize) -> Self {
        let mut segments = SegmentIndex::new(dictionary.max_len(), tau);
        let mut short_ids = Vec::new();
        for (id, s) in dictionary.iter() {
            if s.len() > tau {
                segments.insert(s, id);
            } else {
                short_ids.push(id);
            }
        }
        Self {
            dictionary,
            tau,
            segments,
            short_ids,
        }
    }

    /// The search threshold the index was built for.
    pub fn tau(&self) -> usize {
        self.tau
    }

    /// Estimated resident index size in bytes.
    pub fn index_bytes(&self) -> u64 {
        self.segments.peak_bytes()
    }

    /// All dictionary entries within τ of `query`, as
    /// `(input position, distance)` pairs (unordered). Allocation-heavy
    /// convenience wrapper over [`Searcher::query_into`].
    pub fn query(&self, query: &[u8]) -> Vec<(u32, usize)> {
        let mut searcher = Searcher::new(self);
        let mut out = Vec::new();
        searcher.query_into(query, &mut out);
        out
    }

    /// The `k` dictionary entries closest to `query` among those within τ,
    /// as `(input position, distance)` ascending by `(distance, position)`.
    /// Runs on a bounded heap whose worst retained distance tightens the
    /// verification budget as it fills (see [`crate::sink::TopKSink`]).
    pub fn query_topk(&self, query: &[u8], k: usize) -> Vec<(u32, usize)> {
        let mut searcher = Searcher::new(self);
        let mut sink = TopKSink::new(k);
        searcher.query_sink(query, &mut sink);
        sink.into_matches()
    }

    /// Creates a reusable searcher holding the per-query scratch state
    /// (the right choice when issuing many queries).
    pub fn searcher(&self) -> Searcher<'_, 'a> {
        Searcher::new(self)
    }
}

/// Per-query scratch state for a [`SearchIndex`]; create once per thread
/// via [`SearchIndex::searcher`].
pub struct Searcher<'i, 'a> {
    index: &'i SearchIndex<'a>,
    seen: StampSet,
    ext: ExtensionVerifier,
    ws: DpWorkspace,
}

impl<'i, 'a> Searcher<'i, 'a> {
    fn new(index: &'i SearchIndex<'a>) -> Self {
        Self {
            index,
            seen: StampSet::new(index.dictionary.len()),
            ext: ExtensionVerifier::new(true),
            ws: DpWorkspace::new(),
        }
    }

    /// Appends all `(input position, distance)` matches of `query` to
    /// `out`. Distances are exact.
    pub fn query_into(&mut self, query: &[u8], out: &mut Vec<(u32, usize)>) {
        self.query_sink(query, &mut CollectSink::new(out));
    }

    /// Streams `(input position, distance)` matches into a closure.
    pub fn query_each(&mut self, query: &[u8], on_match: impl FnMut(u32, usize)) {
        self.query_sink(query, &mut FnSink(on_match));
    }

    /// Runs one query against an arbitrary [`MatchSink`]: the sink's
    /// [`bound`](MatchSink::bound) tightens verification as results
    /// accumulate (a filling top-k heap), and a
    /// [`saturated`](MatchSink::saturated) sink stops the scan. Work is
    /// reported through [`MatchSink::note_candidate`] /
    /// [`MatchSink::note_verification`] before it runs, so a
    /// [`crate::sink::BudgetSink`] caps exactly how much screening one
    /// query may do. Distances are exact; ids pushed into the sink are
    /// input positions.
    pub fn query_sink<S: MatchSink>(&mut self, query: &[u8], sink: &mut S) {
        let tau = self.index.tau;
        let dict = self.index.dictionary;
        self.seen.clear();

        // Brute-force lane for unpartitionable dictionary entries.
        for &rid in &self.index.short_ids {
            if sink.saturated() {
                return;
            }
            let bound = sink.bound(tau);
            let r = dict.get(rid);
            if query.len().abs_diff(r.len()) > bound {
                continue;
            }
            sink.note_verification();
            if sink.saturated() {
                return; // budget tripped: this check is skipped
            }
            if let Some(d) = length_aware_within_ws(r, query, bound, &mut self.ws) {
                sink.push(dict.original_index(rid), d);
            }
        }

        // Partition-based lane, both length directions (dictionary entries
        // may be longer or shorter than the query).
        let lmin = (tau + 1).max(query.len().saturating_sub(tau));
        let lmax = query.len() + tau;
        for l in lmin..=lmax {
            if sink.saturated() {
                return;
            }
            if !self.index.segments.has_length(l) || query.len().abs_diff(l) > sink.bound(tau) {
                continue;
            }
            for slot in 1..=tau + 1 {
                let seg = crate::partition::segment(l, tau, slot);
                let window = Selection::MultiMatch.window(query.len(), l, seg, slot, tau);
                for p in window {
                    let w = &query[p..p + seg.len];
                    let Some(list) = self.index.segments.probe(l, slot, w) else {
                        continue;
                    };
                    let occ = Occurrence {
                        slot,
                        seg_start: seg.start,
                        seg_len: seg.len,
                        probe_start: p,
                    };
                    // The extension screen runs under the full τ (its
                    // per-side budgets are slot geometry, slots 1..=τ+1);
                    // the sink's bound — which only ever shrinks — is
                    // applied at the exact-distance step, so a certified
                    // candidate beyond the bound is dropped there.
                    let bound = sink.bound(tau);
                    self.ext.begin_scan(query, &occ, tau, l);
                    for &rid in list {
                        sink.note_candidate();
                        if sink.saturated() {
                            return; // budget tripped: candidate skipped
                        }
                        if self.seen.contains(rid) {
                            continue;
                        }
                        sink.note_verification();
                        if sink.saturated() {
                            return; // budget tripped: verification skipped
                        }
                        if self.ext.verify(dict.get(rid), query, &occ).is_some() {
                            self.seen.insert(rid);
                            // The extension certificate is an upper bound;
                            // report the exact distance (cheap: one banded
                            // run over an accepted pair). Under a tightened
                            // bound the exact run may reject — the match is
                            // beyond anything the sink can still use.
                            if let Some(d) =
                                length_aware_within_ws(dict.get(rid), query, bound, &mut self.ws)
                            {
                                sink.push(dict.original_index(rid), d);
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use editdist::edit_distance;

    fn dict() -> StringCollection {
        StringCollection::from_strs(&[
            "partition",
            "petition",
            "position",
            "partitions",
            "parting",
            "station",
            "ab",
            "a",
            "",
        ])
    }

    fn brute(dictionary: &StringCollection, query: &[u8], tau: usize) -> Vec<(u32, usize)> {
        let mut out: Vec<(u32, usize)> = dictionary
            .iter()
            .filter_map(|(id, s)| {
                let d = edit_distance(s, query);
                (d <= tau).then_some((dictionary.original_index(id), d))
            })
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn matches_bruteforce_on_word_dictionary() {
        let d = dict();
        for tau in 0..=3usize {
            let index = SearchIndex::build(&d, tau);
            for query in [
                &b"partition"[..],
                b"partitio",
                b"petitions",
                b"b",
                b"",
                b"pos1tion",
                b"zzzzzzzzz",
            ] {
                let mut got = index.query(query);
                got.sort_unstable();
                assert_eq!(got, brute(&d, query, tau), "tau={tau} query={query:?}");
            }
        }
    }

    #[test]
    fn queries_shorter_and_longer_than_entries() {
        let d = StringCollection::from_strs(&["abcdefgh"]);
        let index = SearchIndex::build(&d, 2);
        assert_eq!(index.query(b"abcdef"), vec![(0, 2)]); // two deletions
        assert_eq!(index.query(b"abcdefghij"), vec![(0, 2)]); // two insertions
        assert_eq!(index.query(b"abcde"), vec![]);
    }

    #[test]
    fn searcher_reuse_is_clean() {
        let d = dict();
        let index = SearchIndex::build(&d, 2);
        let mut searcher = index.searcher();
        let mut out = Vec::new();
        searcher.query_into(b"partition", &mut out);
        let first = out.len();
        assert!(first >= 2); // itself + "petition"/"position"
        out.clear();
        searcher.query_into(b"zzzz", &mut out);
        assert!(out.is_empty());
        out.clear();
        searcher.query_into(b"partition", &mut out);
        assert_eq!(out.len(), first);
    }

    #[test]
    fn distances_are_exact() {
        let d = dict();
        let index = SearchIndex::build(&d, 3);
        for (pos, dist) in index.query(b"partitain") {
            let entry = d
                .iter()
                .find(|(id, _)| d.original_index(*id) == pos)
                .unwrap()
                .1;
            assert_eq!(dist, edit_distance(entry, b"partitain"));
        }
    }

    #[test]
    fn topk_equals_truncated_sorted_full_result() {
        let d = dict();
        for tau in 0..=3usize {
            let index = SearchIndex::build(&d, tau);
            for query in [&b"partition"[..], b"petitions", b"a", b"", b"zzzz"] {
                let mut full: Vec<(usize, u32)> = index
                    .query(query)
                    .into_iter()
                    .map(|(pos, d)| (d, pos))
                    .collect();
                full.sort_unstable();
                for k in [0usize, 1, 2, 5, 100] {
                    let expected: Vec<(u32, usize)> =
                        full.iter().take(k).map(|&(d, pos)| (pos, d)).collect();
                    assert_eq!(
                        index.query_topk(query, k),
                        expected,
                        "tau={tau} k={k} query={query:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn sink_saturation_stops_the_scan() {
        let d = dict();
        let index = SearchIndex::build(&d, 2);
        let mut searcher = index.searcher();
        let mut sink = crate::sink::CountSink::capped(1);
        searcher.query_sink(b"partition", &mut sink);
        assert_eq!(sink.count(), 1);
        assert!(sink.saturated());
    }

    #[test]
    fn budget_sink_truncates_the_scan() {
        use crate::sink::{BudgetSink, CollectSink};
        let d = dict();
        let index = SearchIndex::build(&d, 2);
        let mut full = index.query(b"partition");
        full.sort_unstable();

        // An effectively-unlimited budget changes nothing…
        let mut unlimited = Vec::new();
        {
            let mut inner = CollectSink::new(&mut unlimited);
            let mut sink = BudgetSink::new(&mut inner).with_max_verifications(1_000_000);
            index.searcher().query_sink(b"partition", &mut sink);
            assert_eq!(sink.tripped(), None);
        }
        unlimited.sort_unstable();
        assert_eq!(unlimited, full);

        // …while a one-verification budget trips and yields a subset.
        let mut capped = Vec::new();
        {
            let mut inner = CollectSink::new(&mut capped);
            let mut sink = BudgetSink::new(&mut inner).with_max_verifications(1);
            index.searcher().query_sink(b"partition", &mut sink);
            assert!(sink.tripped().is_some(), "more than one check is needed");
        }
        assert!(capped.len() < full.len());
        assert!(capped.iter().all(|m| full.contains(m)));
    }

    #[test]
    fn index_bytes_reported() {
        let d = dict();
        let index = SearchIndex::build(&d, 2);
        assert!(index.index_bytes() > 0);
        assert_eq!(index.tau(), 2);
    }
}
