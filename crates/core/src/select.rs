//! Substring selection strategies (paper §4).
//!
//! For a probe string `s` and an inverted index `L_l^i` (the i-th segments
//! of the indexed strings of length `l`), a selection strategy decides which
//! substrings of `s` to look up. All four strategies from the paper are
//! implemented; each returns a window of start positions, every strategy's
//! window containing the next one's (Lemma 3):
//!
//! * [`Selection::Length`] — every substring of the segment length
//!   (`|s|−l_i+1` positions);
//! * [`Selection::Shift`] — positions within τ of the segment start
//!   (`2τ+1` positions, after Wang et al.'s entity-extraction filter);
//! * [`Selection::Position`] — positions consistent with the edit budget
//!   split across the left/right parts (§4.1, ≤ τ+1 positions);
//! * [`Selection::MultiMatch`] — additionally discards occurrences whose
//!   left part already needs ≥ i edits (a later segment must then match)
//!   and symmetrically from the right (§4.2); proved minimal among complete
//!   methods (Theorems 3–4), `⌊(τ²−Δ²)/2⌋ + τ + 1` positions per probe
//!   length (Lemma 2).
//!
//! Windows are computed in O(1) per (length, slot); the returned range is
//! already clamped to valid substring starts.

use crate::partition::SegmentSpec;
use std::ops::Range;

/// Substring-selection strategy (paper §4). `MultiMatch` is the paper's
/// recommended default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Selection {
    /// All substrings with the segment length (`Length` in Figure 12).
    Length,
    /// Start positions within `[p_i − τ, p_i + τ]` (`Shift` in Figure 12).
    Shift,
    /// Position-aware windows of §4.1 (`Position` in Figure 12).
    Position,
    /// Multi-match-aware windows of §4.2 (`Multi-Match` in Figure 12);
    /// minimal among complete selections.
    #[default]
    MultiMatch,
}

impl Selection {
    /// Short name used in benchmark tables.
    pub fn name(&self) -> &'static str {
        match self {
            Selection::Length => "length",
            Selection::Shift => "shift",
            Selection::Position => "position",
            Selection::MultiMatch => "multi-match",
        }
    }

    /// All four strategies, in the paper's Figure 12 order.
    pub fn all() -> [Selection; 4] {
        [
            Selection::Length,
            Selection::Shift,
            Selection::Position,
            Selection::MultiMatch,
        ]
    }

    /// The window of substring start positions (0-based) of a probe string
    /// of length `s_len` to look up in `L_l^i`, where `seg` is segment
    /// `slot` (1-based) of the even partition of length `l` and
    /// `|s_len − l| ≤ tau`.
    ///
    /// The returned range is clamped to `[0, s_len − seg.len]`; it is empty
    /// when no position can produce a similar pair (e.g. `s_len < seg.len`).
    pub fn window(
        &self,
        s_len: usize,
        l: usize,
        seg: SegmentSpec,
        slot: usize,
        tau: usize,
    ) -> Range<usize> {
        debug_assert!(s_len.abs_diff(l) <= tau, "length filter must hold");
        if s_len < seg.len {
            return 0..0;
        }
        let max_start = s_len - seg.len; // inclusive upper clamp
        let p = seg.start as isize;
        let delta = s_len as isize - l as isize; // Δ = |s| − l, signed
        let tau_i = tau as isize;
        let slot_i = slot as isize;

        let (lo, hi) = match self {
            Selection::Length => (0, max_start as isize),
            Selection::Shift => (p - tau_i, p + tau_i),
            Selection::Position => {
                // p_min = p − ⌊(τ−Δ)/2⌋, p_max = p + ⌊(τ+Δ)/2⌋ (§4.1).
                // Both numerators are ≥ 0 because |Δ| ≤ τ.
                (p - (tau_i - delta) / 2, p + (tau_i + delta) / 2)
            }
            Selection::MultiMatch => {
                // Left-side pigeonhole: |pos − p| ≤ i − 1 (§4.2).
                let (l_lo, l_hi) = (p - (slot_i - 1), p + (slot_i - 1));
                // Right-side pigeonhole: |pos − (p + Δ)| ≤ τ + 1 − i.
                let r_reach = tau_i + 1 - slot_i;
                let (r_lo, r_hi) = (p + delta - r_reach, p + delta + r_reach);
                (l_lo.max(r_lo), l_hi.min(r_hi))
            }
        };

        let lo = lo.clamp(0, max_start as isize + 1) as usize;
        let hi_exclusive = (hi + 1).clamp(lo as isize, max_start as isize + 1) as usize;
        lo..hi_exclusive
    }
}

/// The substring window for probing a **τ_max-partitioned index with a
/// smaller per-query threshold** (the online-index case: one index built at
/// `tau_index`, queries at any `tau_query ≤ tau_index`).
///
/// The paper's multi-match window ties the partition granularity and the
/// edit budget to the same τ; here they differ, so the window is the
/// intersection of two independently complete bounds:
///
/// * the multi-match pigeonhole of the **index geometry** (§4.2 with
///   `m = tau_index + 1` segments): some preserved segment `i` matches at a
///   shift within `i − 1` from the left and `tau_index + 1 − i` from the
///   right — the proof only needs `m ≥ e + 1`, which `e ≤ tau_query ≤
///   tau_index` guarantees;
/// * the position-aware bound of the **query budget** (§4.1): any segment
///   preserved by a ≤ `tau_query` transcript matches within
///   `[p − ⌊(τ_q−Δ)/2⌋, p + ⌊(τ_q+Δ)/2⌋]`.
///
/// The multi-match witness occurrence is transcript-aligned, hence inside
/// both bounds, so the intersection is complete. For
/// `tau_query == tau_index` it is at least as tight as
/// [`Selection::MultiMatch`].
pub fn online_window(
    s_len: usize,
    l: usize,
    seg: SegmentSpec,
    slot: usize,
    tau_index: usize,
    tau_query: usize,
) -> Range<usize> {
    debug_assert!(
        tau_query <= tau_index,
        "per-query τ exceeds the index τ_max"
    );
    debug_assert!(s_len.abs_diff(l) <= tau_query, "length filter must hold");
    if s_len < seg.len {
        return 0..0;
    }
    let max_start = s_len - seg.len; // inclusive upper clamp
    let p = seg.start as isize;
    let delta = s_len as isize - l as isize; // Δ = |s| − l, signed
    let ti = tau_index as isize;
    let tq = tau_query as isize;
    let slot_i = slot as isize;

    // Multi-match pigeonhole over the index geometry.
    let r_reach = ti + 1 - slot_i;
    let mut lo = (p - (slot_i - 1)).max(p + delta - r_reach);
    let mut hi = (p + (slot_i - 1)).min(p + delta + r_reach);
    // Position-aware bound for the query budget.
    lo = lo.max(p - (tq - delta) / 2);
    hi = hi.min(p + (tq + delta) / 2);

    let lo = lo.clamp(0, max_start as isize + 1) as usize;
    let hi_exclusive = (hi + 1).clamp(lo as isize, max_start as isize + 1) as usize;
    lo..hi_exclusive
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::segment;

    /// Collects the selected substrings of `s` against index length `l` for
    /// all τ+1 slots, as (slot, start) pairs.
    fn selected(strategy: Selection, s: &[u8], l: usize, tau: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for slot in 1..=tau + 1 {
            let seg = segment(l, tau, slot);
            for start in strategy.window(s.len(), l, seg, slot, tau) {
                out.push((slot, start));
            }
        }
        out
    }

    /// The worked example of §4: r = "vankatesh" (l = 9), s = "avataresha"
    /// (|s| = 10), τ = 3, Δ = 1.
    const S: &[u8] = b"avataresha";
    const L: usize = 9;
    const TAU: usize = 3;

    #[test]
    fn position_windows_match_paper() {
        // §4.1: segment 1 ⇒ substrings "av","va","at" (starts 0,1,2);
        // segment 2 ⇒ "va","at","ta","ar" (starts 1..=4 in 1-based ⇒ 0-based
        // starts 1,2,3... the paper lists 4 substrings starting at p_min=2
        // (1-based) ⇒ 0-based 1.
        let w1 = Selection::Position.window(S.len(), L, segment(L, TAU, 1), 1, TAU);
        assert_eq!(w1, 0..3);
        let w2 = Selection::Position.window(S.len(), L, segment(L, TAU, 2), 2, TAU);
        assert_eq!(w2, 1..5);
        // Total across slots: the paper counts 14 selected substrings.
        assert_eq!(selected(Selection::Position, S, L, TAU).len(), 14);
    }

    #[test]
    fn multi_match_windows_match_paper() {
        // §4.2 final example: slot 1 ⇒ {"av"}; slot 2 ⇒ {"va","at","ta"};
        // slot 3 ⇒ {"ar","re","es"}; slot 4 ⇒ {"sha"}; 8 substrings total.
        let got = selected(Selection::MultiMatch, S, L, TAU);
        let strings: Vec<&[u8]> = got
            .iter()
            .map(|&(slot, start)| {
                let seg = segment(L, TAU, slot);
                &S[start..start + seg.len]
            })
            .collect();
        assert_eq!(
            strings,
            vec![
                b"av".as_slice(),
                b"va",
                b"at",
                b"ta",
                b"ar",
                b"re",
                b"es",
                b"sha",
            ]
        );
        assert_eq!(got.len(), 8);
    }

    #[test]
    fn shift_windows_match_paper_count() {
        // §4: the shift-based method selects 28 substrings in this example
        // before clamping... the paper reports reducing "from 28 to 14" with
        // the position-aware method. With boundary clamping the shift count
        // can only shrink; it must still dominate the position count.
        let shift = selected(Selection::Shift, S, L, TAU).len();
        let position = selected(Selection::Position, S, L, TAU).len();
        assert!(shift >= position);
        assert_eq!(position, 14);
        // Unclamped interior slots have exactly 2τ+1 positions: slot 3
        // starts at p=4, so [4−τ, 4+τ] = [1, 7] fits inside [0, 8].
        let w3 = Selection::Shift.window(S.len(), L, segment(L, TAU, 3), 3, TAU);
        assert_eq!(w3.len(), 2 * TAU + 1);
    }

    #[test]
    fn length_selects_everything() {
        for slot in 1..=TAU + 1 {
            let seg = segment(L, TAU, slot);
            let w = Selection::Length.window(S.len(), L, seg, slot, TAU);
            assert_eq!(w, 0..S.len() - seg.len + 1);
        }
    }

    #[test]
    fn windows_nest_lemma3() {
        // W_m ⊆ W_p ⊆ W_f ⊆ W_ℓ for many geometries.
        for s_len in 4..24usize {
            for tau in 1..5usize {
                for l in s_len.saturating_sub(tau).max(tau + 1)..=s_len + tau {
                    for slot in 1..=tau + 1 {
                        let seg = segment(l, tau, slot);
                        let wl = Selection::Length.window(s_len, l, seg, slot, tau);
                        let wf = Selection::Shift.window(s_len, l, seg, slot, tau);
                        let wp = Selection::Position.window(s_len, l, seg, slot, tau);
                        let wm = Selection::MultiMatch.window(s_len, l, seg, slot, tau);
                        let within = |inner: &Range<usize>, outer: &Range<usize>| {
                            inner.is_empty()
                                || (inner.start >= outer.start && inner.end <= outer.end)
                        };
                        assert!(within(&wm, &wp), "s={s_len} l={l} τ={tau} i={slot}");
                        assert!(within(&wp, &wf), "s={s_len} l={l} τ={tau} i={slot}");
                        assert!(within(&wf, &wl), "s={s_len} l={l} τ={tau} i={slot}");
                    }
                }
            }
        }
    }

    #[test]
    fn multi_match_total_matches_lemma2() {
        // |W_m(s, l)| = ⌊(τ²−Δ²)/2⌋ + τ + 1 when no clamping interferes
        // (long strings, l ≥ 2(τ+1)).
        for tau in 1..6usize {
            for delta in 0..=tau {
                let l = 4 * (tau + 1) + 7; // comfortably ≥ 2(τ+1)
                let s_len = l + delta;
                let total: usize = (1..=tau + 1)
                    .map(|slot| {
                        let seg = segment(l, tau, slot);
                        Selection::MultiMatch.window(s_len, l, seg, slot, tau).len()
                    })
                    .sum();
                assert_eq!(
                    total,
                    (tau * tau - delta * delta) / 2 + tau + 1,
                    "tau={tau} delta={delta}"
                );
            }
        }
    }

    #[test]
    fn position_total_is_tau_plus_one_squared_bound() {
        // |W_p(s, L_l^i)| ≤ τ+1 per slot (§4.1).
        for tau in 1..6usize {
            for delta in 0..=tau {
                let l = 4 * (tau + 1) + 7;
                let s_len = l + delta;
                for slot in 1..=tau + 1 {
                    let seg = segment(l, tau, slot);
                    let w = Selection::Position.window(s_len, l, seg, slot, tau);
                    assert!(w.len() <= tau + 1);
                    assert!(!w.is_empty());
                }
            }
        }
    }

    #[test]
    fn online_window_matches_multi_match_at_equal_taus_up_to_tightening() {
        // With tau_query == tau_index the online window is contained in the
        // paper's multi-match window (it additionally intersects the
        // position bound) and always contains the multi-match ∩ position
        // intersection — i.e. it loses nothing a complete selector keeps.
        for s_len in 4..24usize {
            for tau in 1..5usize {
                for l in s_len.saturating_sub(tau).max(tau + 1)..=s_len + tau {
                    for slot in 1..=tau + 1 {
                        let seg = segment(l, tau, slot);
                        let mm = Selection::MultiMatch.window(s_len, l, seg, slot, tau);
                        let pos = Selection::Position.window(s_len, l, seg, slot, tau);
                        let online = online_window(s_len, l, seg, slot, tau, tau);
                        let within = |inner: &Range<usize>, outer: &Range<usize>| {
                            inner.is_empty()
                                || (inner.start >= outer.start && inner.end <= outer.end)
                        };
                        assert!(within(&online, &mm), "s={s_len} l={l} τ={tau} i={slot}");
                        let both = mm.start.max(pos.start)..mm.end.min(pos.end);
                        assert!(within(&both, &online), "s={s_len} l={l} τ={tau} i={slot}");
                    }
                }
            }
        }
    }

    #[test]
    fn online_window_shrinks_with_query_tau() {
        // Smaller per-query budgets can only shrink the window.
        for s_len in 6..20usize {
            let tau_index = 4usize;
            for l in s_len.saturating_sub(2).max(tau_index + 1)..=s_len + 2 {
                for slot in 1..=tau_index + 1 {
                    let seg = segment(l, tau_index, slot);
                    let delta = s_len.abs_diff(l);
                    let mut prev: Option<Range<usize>> = None;
                    for tq in (delta..=tau_index).rev() {
                        let w = online_window(s_len, l, seg, slot, tau_index, tq);
                        if let Some(prev) = prev {
                            assert!(
                                w.is_empty() || (w.start >= prev.start && w.end <= prev.end),
                                "τ_q={tq} window {w:?} not inside {prev:?}"
                            );
                        }
                        prev = Some(w);
                    }
                }
            }
        }
    }

    #[test]
    fn degenerate_windows_are_empty_not_panicking() {
        // Probe shorter than the segment: nothing to select.
        let seg = SegmentSpec { start: 0, len: 5 };
        assert_eq!(Selection::MultiMatch.window(3, 5, seg, 1, 2).len(), 0);
        // τ = 0: the only valid start aligns exactly with the segment.
        let seg = segment(6, 0, 1);
        assert_eq!(seg, SegmentSpec { start: 0, len: 6 });
        assert_eq!(Selection::MultiMatch.window(6, 6, seg, 1, 0), 0..1);
    }
}
