//! Match sinks: where verified matches go, and how they steer the search.
//!
//! Every probing path (the join drivers' probing core, the
//! [`crate::search::SearchIndex`] query loop, and the online subsystem's
//! execution engine) ends the same way: a candidate survives the
//! verification cascade and a `(string id, distance)` match is produced.
//! What happens *next* used to be hard-coded as "push onto a `Vec`" — which
//! forces full materialization even when the caller wants only a count, the
//! k closest matches, or a streaming callback.
//!
//! [`MatchSink`] inverts that: verification reports matches *into* a sink,
//! and the sink reports back two pieces of steering information:
//!
//! * [`MatchSink::bound`] — the largest distance still worth verifying.
//!   A full top-k heap whose worst entry is at distance `w` has no use for
//!   matches beyond `w`, so verification can tighten its DP budgets and
//!   skip candidates whose length difference already exceeds `w`. The
//!   bound must never grow over a query's lifetime (sinks only get more
//!   selective), which is what makes skipping permanently sound.
//! * [`MatchSink::saturated`] — true once additional matches cannot change
//!   the outcome (e.g. a capped count that has reached its cap), letting
//!   the whole probe loop stop early.
//!
//! Collecting sinks ([`CollectSink`], [`FnSink`]) leave both hooks at their
//! defaults, so threading a sink through a previously `Vec`-pushing path
//! changes nothing byte-for-byte.
//!
//! Beyond matches, probing paths also report *work* into the sink —
//! [`MatchSink::note_candidate`] per scanned posting entry and
//! [`MatchSink::note_verification`] per edit-distance computation, both
//! default no-ops. [`BudgetSink`] composes over any inner sink and turns
//! those events into hard per-query execution caps: once a cap (or a
//! [`TickSource`] deadline) is exhausted, the next unit of work trips the
//! budget, the sink reports [`saturated`](MatchSink::saturated), and the
//! probing loop aborts through the exact same early-exit path a capped
//! count uses. A tripped budget therefore *always* means work was
//! actually skipped.
//!
//! Two serving-layer pieces build on those hooks:
//!
//! * [`BudgetPool`] — an atomically drained *shared* budget: several
//!   queries (a whole request batch, possibly on several threads) draw
//!   their work units from one pool through a per-query
//!   [`PoolBudgetSink`], so the batch's total work is capped even though
//!   each query trips — and reports its truncation — individually.
//! * [`pull_channel`] / [`PullMatchSink`] — a bounded backpressure
//!   adapter inverting push to pull: verification pushes into a
//!   fixed-capacity queue and *blocks* when the consumer lags, so a slow
//!   consumer (a network socket) never forces unbounded buffering; a
//!   dropped consumer saturates the sink and aborts the scan.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use sj_common::StringId;

use crate::topk::TopK;

/// Receiver of verified `(id, exact distance)` matches; see the module
/// docs for the steering contract.
pub trait MatchSink {
    /// Records a verified match. `dist` is exact and `≤ bound(tau)` as of
    /// the verification that produced it; the sink is free to discard the
    /// match (a full top-k heap does). One caveat: the batch joiners'
    /// *extension*-verified probe path reports upper-bound certificates,
    /// not exact distances — bounded sinks must not be combined with it
    /// (see the note in `probe.rs`); every exact-distance path
    /// (`core::search`, the online engine) upholds the contract.
    fn push(&mut self, id: StringId, dist: usize);

    /// The largest distance still worth verifying, given the query
    /// threshold `tau`. Must be `≤ tau` and non-increasing over a query.
    fn bound(&self, tau: usize) -> usize {
        tau
    }

    /// True once further matches cannot change the outcome; probing stops.
    fn saturated(&self) -> bool {
        false
    }

    /// Reports that a posting-list candidate is about to be screened.
    /// Called *before* the candidate is processed; a sink that saturates
    /// in response (a tripped candidate budget) causes that candidate —
    /// and everything after it — to be skipped. Default: no-op.
    fn note_candidate(&mut self) {}

    /// Reports that an edit-distance verification (short-lane check or
    /// segment-lane cascade entry) is about to run. Called *before* the
    /// work happens; a sink that saturates in response (a tripped
    /// verification budget or an expired deadline) causes that
    /// verification — and everything after it — to be skipped.
    /// Default: no-op.
    fn note_verification(&mut self) {}
}

/// Appends every match to a borrowed vector — the classic materializing
/// path. No bound tightening, no early exit.
pub struct CollectSink<'a> {
    out: &'a mut Vec<(StringId, usize)>,
}

impl<'a> CollectSink<'a> {
    /// A sink appending to `out`.
    pub fn new(out: &'a mut Vec<(StringId, usize)>) -> Self {
        Self { out }
    }
}

impl MatchSink for CollectSink<'_> {
    fn push(&mut self, id: StringId, dist: usize) {
        self.out.push((id, dist));
    }
}

/// Forwards every match to a closure (streaming consumers; also how the
/// join drivers' emit-closures ride the sink-shaped probing core).
pub struct FnSink<F>(pub F);

impl<F: FnMut(StringId, usize)> MatchSink for FnSink<F> {
    fn push(&mut self, id: StringId, dist: usize) {
        (self.0)(id, dist);
    }
}

/// Counts matches without materializing them; an optional cap turns it
/// into an existence test that saturates (and stops the search) as soon as
/// the cap is reached.
pub struct CountSink {
    count: usize,
    cap: Option<usize>,
}

impl CountSink {
    /// Counts every match.
    pub fn new() -> Self {
        Self {
            count: 0,
            cap: None,
        }
    }

    /// Counts up to `cap` matches, then reports saturation ("are there at
    /// least `cap` matches?" without finding the rest).
    pub fn capped(cap: usize) -> Self {
        Self {
            count: 0,
            cap: Some(cap),
        }
    }

    /// Matches counted so far.
    pub fn count(&self) -> usize {
        self.count
    }
}

impl Default for CountSink {
    fn default() -> Self {
        Self::new()
    }
}

impl MatchSink for CountSink {
    fn push(&mut self, _id: StringId, _dist: usize) {
        self.count += 1;
    }

    fn saturated(&self) -> bool {
        self.cap.is_some_and(|cap| self.count >= cap)
    }
}

/// Keeps the `k` matches smallest by `(distance, id)` on a bounded heap
/// ([`TopK`]); once full, its [`MatchSink::bound`] shrinks to the worst
/// retained distance, so verification stops paying for matches that could
/// never displace anything.
pub struct TopKSink {
    top: TopK<(usize, StringId)>,
}

impl TopKSink {
    /// A sink retaining the `k` best matches.
    pub fn new(k: usize) -> Self {
        Self { top: TopK::new(k) }
    }

    /// The retained matches as `(id, distance)`, ascending by
    /// `(distance, id)`.
    pub fn into_matches(self) -> Vec<(StringId, usize)> {
        self.top
            .into_sorted_vec()
            .into_iter()
            .map(|(d, id)| (id, d))
            .collect()
    }
}

impl MatchSink for TopKSink {
    fn push(&mut self, id: StringId, dist: usize) {
        self.top.offer((dist, id));
    }

    fn bound(&self, tau: usize) -> usize {
        match self.top.worst() {
            Some(&(worst, _)) => tau.min(worst),
            None => tau,
        }
    }

    fn saturated(&self) -> bool {
        // k = 0 retains nothing: no match can change the outcome.
        self.top.k() == 0
    }
}

/// A monotonic tick counter for budget deadlines.
///
/// Deadlines are expressed against an abstract tick source rather than a
/// wall clock so tests stay deterministic: production code can back one
/// with a timer thread or a coarse clock, tests use [`ManualTicks`] and
/// advance it by hand. Ticks are unitless — only `ticks() >= expires_at`
/// comparisons matter.
pub trait TickSource: Send + Sync {
    /// The current tick. Must be monotonically non-decreasing.
    fn ticks(&self) -> u64;
}

/// A [`TickSource`] advanced explicitly — the deterministic clock for
/// tests and for callers that count work units themselves.
///
/// ```
/// use passjoin::sink::{ManualTicks, TickSource};
///
/// let clock = ManualTicks::new();
/// assert_eq!(clock.ticks(), 0);
/// clock.advance(5);
/// assert_eq!(clock.ticks(), 5);
/// ```
#[derive(Debug, Default)]
pub struct ManualTicks(AtomicU64);

impl ManualTicks {
    /// A clock starting at tick 0.
    pub fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Advances the clock by `n` ticks.
    pub fn advance(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Sets the clock to an absolute tick (must not move it backwards).
    pub fn set(&self, ticks: u64) {
        self.0.fetch_max(ticks, Ordering::Relaxed);
    }
}

impl TickSource for ManualTicks {
    fn ticks(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Why a [`BudgetSink`] stopped a scan early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TruncationReason {
    /// The verification cap was exhausted.
    VerificationCap,
    /// The candidate cap was exhausted.
    CandidateCap,
    /// The tick-source deadline expired.
    Deadline,
}

impl std::fmt::Display for TruncationReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TruncationReason::VerificationCap => "verification cap",
            TruncationReason::CandidateCap => "candidate cap",
            TruncationReason::Deadline => "deadline",
        })
    }
}

/// Composes execution budgets over any inner sink: caps on candidates
/// scanned and verifications run, plus an optional [`TickSource`]
/// deadline. Matches, bounds, and saturation delegate to the inner sink;
/// the budget only *adds* reasons to stop.
///
/// A cap of `N` permits exactly `N` units of work — the `N+1`th unit
/// trips the budget *before* it runs, so [`BudgetSink::tripped`] implies
/// that at least one unit of work was skipped (never "the budget happened
/// to equal the total work").
///
/// ```
/// use passjoin::sink::{BudgetSink, CollectSink, MatchSink};
///
/// let mut out = Vec::new();
/// let mut inner = CollectSink::new(&mut out);
/// let mut sink = BudgetSink::new(&mut inner).with_max_verifications(2);
/// sink.note_verification(); // 1st unit: allowed
/// sink.note_verification(); // 2nd unit: allowed
/// assert!(!sink.saturated());
/// sink.note_verification(); // 3rd unit: trips, must be skipped
/// assert!(sink.saturated());
/// assert!(sink.tripped().is_some());
/// ```
pub struct BudgetSink<'a, S: MatchSink + ?Sized> {
    inner: &'a mut S,
    max_verifications: Option<u64>,
    max_candidates: Option<u64>,
    deadline: Option<(&'a dyn TickSource, u64)>,
    verifications: u64,
    candidates: u64,
    tripped: Option<TruncationReason>,
}

impl<'a, S: MatchSink + ?Sized> BudgetSink<'a, S> {
    /// An unlimited budget over `inner` (never trips until a cap or
    /// deadline is attached).
    pub fn new(inner: &'a mut S) -> Self {
        Self {
            inner,
            max_verifications: None,
            max_candidates: None,
            deadline: None,
            verifications: 0,
            candidates: 0,
            tripped: None,
        }
    }

    /// Permits at most `n` verifications (edit-distance computations,
    /// short-lane and segment-lane alike).
    pub fn with_max_verifications(mut self, n: u64) -> Self {
        self.max_verifications = Some(n);
        self
    }

    /// Permits at most `n` scanned posting-list candidates.
    pub fn with_max_candidates(mut self, n: u64) -> Self {
        self.max_candidates = Some(n);
        self
    }

    /// Trips once `source.ticks() >= expires_at` (checked before each
    /// verification, the unit deadlines exist to bound).
    pub fn with_deadline(mut self, source: &'a dyn TickSource, expires_at: u64) -> Self {
        self.deadline = Some((source, expires_at));
        self
    }

    /// Why the budget stopped the scan, if it did.
    pub fn tripped(&self) -> Option<TruncationReason> {
        self.tripped
    }

    /// Verifications actually permitted so far.
    pub fn verifications(&self) -> u64 {
        self.verifications
    }

    /// Candidates actually permitted so far.
    pub fn candidates(&self) -> u64 {
        self.candidates
    }
}

impl<S: MatchSink + ?Sized> MatchSink for BudgetSink<'_, S> {
    fn push(&mut self, id: StringId, dist: usize) {
        self.inner.push(id, dist);
    }

    fn bound(&self, tau: usize) -> usize {
        self.inner.bound(tau)
    }

    fn saturated(&self) -> bool {
        self.tripped.is_some() || self.inner.saturated()
    }

    fn note_candidate(&mut self) {
        if self.tripped.is_some() {
            return;
        }
        if self
            .max_candidates
            .is_some_and(|cap| self.candidates >= cap)
        {
            self.tripped = Some(TruncationReason::CandidateCap);
            return;
        }
        self.candidates += 1;
        self.inner.note_candidate();
    }

    fn note_verification(&mut self) {
        if self.tripped.is_some() {
            return;
        }
        if let Some((source, expires_at)) = self.deadline {
            if source.ticks() >= expires_at {
                self.tripped = Some(TruncationReason::Deadline);
                return;
            }
        }
        if self
            .max_verifications
            .is_some_and(|cap| self.verifications >= cap)
        {
            self.tripped = Some(TruncationReason::VerificationCap);
            return;
        }
        self.verifications += 1;
        self.inner.note_verification();
    }
}

/// A *shared* execution budget drained atomically by several queries at
/// once — the batch-level counterpart of [`BudgetSink`].
///
/// A pool holds the remaining verification/candidate allowance (and an
/// optional deadline) behind atomics; each query in the batch wraps its
/// own sink in a [`PoolBudgetSink`] borrowing the pool, so the *sum* of
/// work across the batch is capped at exactly the pool's caps no matter
/// how the engine interleaves or parallelizes the queries. Draining is
/// first-come-first-served: queries that run early (or fast) consume more
/// of the pool than stragglers — the guarantee is the total, not a fair
/// split.
///
/// Like [`BudgetSink`], a cap of `N` permits exactly `N` units: the
/// `N+1`th request fails without consuming anything, so a tripped query
/// always skipped real work.
pub struct BudgetPool {
    verifications_left: Option<AtomicU64>,
    candidates_left: Option<AtomicU64>,
    deadline: Option<(Arc<dyn TickSource>, u64)>,
}

impl std::fmt::Debug for BudgetPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BudgetPool")
            .field("verifications_left", &self.verifications_left())
            .field("candidates_left", &self.candidates_left())
            .field("deadline_at", &self.deadline.as_ref().map(|(_, at)| *at))
            .finish()
    }
}

impl BudgetPool {
    /// An unlimited pool (never denies work until a cap or deadline is
    /// attached).
    pub fn new() -> Self {
        Self {
            verifications_left: None,
            candidates_left: None,
            deadline: None,
        }
    }

    /// Permits at most `n` verifications *in total* across every query
    /// drawing from this pool.
    pub fn with_max_verifications(mut self, n: u64) -> Self {
        self.verifications_left = Some(AtomicU64::new(n));
        self
    }

    /// Permits at most `n` scanned candidates in total.
    pub fn with_max_candidates(mut self, n: u64) -> Self {
        self.candidates_left = Some(AtomicU64::new(n));
        self
    }

    /// Denies all further work once `source.ticks() >= expires_at` — a
    /// whole-batch deadline (checked before each verification, like
    /// [`BudgetSink`]'s).
    pub fn with_deadline(mut self, source: Arc<dyn TickSource>, expires_at: u64) -> Self {
        self.deadline = Some((source, expires_at));
        self
    }

    /// True if no cap or deadline is attached (the pool can never trip).
    pub fn is_unlimited(&self) -> bool {
        self.verifications_left.is_none()
            && self.candidates_left.is_none()
            && self.deadline.is_none()
    }

    /// Remaining verification allowance (`None` = uncapped).
    pub fn verifications_left(&self) -> Option<u64> {
        self.verifications_left
            .as_ref()
            .map(|left| left.load(Ordering::Relaxed))
    }

    /// Remaining candidate allowance (`None` = uncapped).
    pub fn candidates_left(&self) -> Option<u64> {
        self.candidates_left
            .as_ref()
            .map(|left| left.load(Ordering::Relaxed))
    }

    /// Claims one unit from `left`, failing (without consuming) at zero.
    fn take(left: &AtomicU64) -> bool {
        left.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok()
    }

    /// Claims permission for one verification; on denial reports why.
    pub fn take_verification(&self) -> Result<(), TruncationReason> {
        if let Some((source, expires_at)) = &self.deadline {
            if source.ticks() >= *expires_at {
                return Err(TruncationReason::Deadline);
            }
        }
        match &self.verifications_left {
            Some(left) if !Self::take(left) => Err(TruncationReason::VerificationCap),
            _ => Ok(()),
        }
    }

    /// Claims permission for one candidate scan; on denial reports why.
    pub fn take_candidate(&self) -> Result<(), TruncationReason> {
        match &self.candidates_left {
            Some(left) if !Self::take(left) => Err(TruncationReason::CandidateCap),
            _ => Ok(()),
        }
    }
}

impl Default for BudgetPool {
    fn default() -> Self {
        Self::new()
    }
}

/// One query's view of a shared [`BudgetPool`]: mirrors [`BudgetSink`]
/// (work hooks ask permission *before* the unit runs; denial saturates
/// this sink and records the reason locally) but the allowance lives in
/// the pool, shared with every sibling sink.
pub struct PoolBudgetSink<'a, S: MatchSink + ?Sized> {
    inner: &'a mut S,
    pool: &'a BudgetPool,
    tripped: Option<TruncationReason>,
}

impl<'a, S: MatchSink + ?Sized> PoolBudgetSink<'a, S> {
    /// A sink drawing `inner`'s work allowance from `pool`.
    pub fn new(inner: &'a mut S, pool: &'a BudgetPool) -> Self {
        Self {
            inner,
            pool,
            tripped: None,
        }
    }

    /// Why the pool stopped *this query's* scan, if it did.
    pub fn tripped(&self) -> Option<TruncationReason> {
        self.tripped
    }
}

impl<S: MatchSink + ?Sized> MatchSink for PoolBudgetSink<'_, S> {
    fn push(&mut self, id: StringId, dist: usize) {
        self.inner.push(id, dist);
    }

    fn bound(&self, tau: usize) -> usize {
        self.inner.bound(tau)
    }

    fn saturated(&self) -> bool {
        self.tripped.is_some() || self.inner.saturated()
    }

    fn note_candidate(&mut self) {
        if self.tripped.is_some() {
            return;
        }
        match self.pool.take_candidate() {
            Ok(()) => self.inner.note_candidate(),
            Err(reason) => self.tripped = Some(reason),
        }
    }

    fn note_verification(&mut self) {
        if self.tripped.is_some() {
            return;
        }
        match self.pool.take_verification() {
            Ok(()) => self.inner.note_verification(),
            Err(reason) => self.tripped = Some(reason),
        }
    }
}

/// State shared between a [`PullSender`] and its [`PullReceiver`].
#[derive(Debug)]
struct PullShared<T> {
    queue: Mutex<VecDeque<T>>,
    /// Signalled when the queue shrinks (or the receiver hangs up).
    not_full: Condvar,
    /// Signalled when the queue grows (or the sender closes).
    not_empty: Condvar,
    /// The receiver was dropped: sends fail, the producer should stop.
    hung_up: AtomicBool,
    /// The sender was dropped: the receiver drains and then ends.
    closed: AtomicBool,
    capacity: usize,
    /// Largest queue length ever observed — lets tests pin boundedness.
    high_water: AtomicU64,
}

/// A bounded blocking channel built for pull-style result streaming: the
/// producing side (the engine pushing verified matches) **blocks** when
/// the queue is full, so the consumer's pace — not the match rate — bounds
/// memory. Created by [`pull_channel`].
#[derive(Debug)]
pub struct PullSender<T> {
    shared: Arc<PullShared<T>>,
}

/// The consuming half of [`pull_channel`]; iterate to drain. Dropping it
/// hangs up: blocked and future sends fail immediately, which a
/// [`PullMatchSink`] surfaces as saturation so the producing scan aborts.
#[derive(Debug)]
pub struct PullReceiver<T> {
    shared: Arc<PullShared<T>>,
}

/// A bounded blocking channel; see [`PullSender`]. `capacity` is clamped
/// to at least 1 (a zero-capacity queue could never transfer anything).
pub fn pull_channel<T>(capacity: usize) -> (PullSender<T>, PullReceiver<T>) {
    let shared = Arc::new(PullShared {
        queue: Mutex::new(VecDeque::new()),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
        hung_up: AtomicBool::new(false),
        closed: AtomicBool::new(false),
        capacity: capacity.max(1),
        high_water: AtomicU64::new(0),
    });
    (
        PullSender {
            shared: Arc::clone(&shared),
        },
        PullReceiver { shared },
    )
}

impl<T> PullSender<T> {
    /// Enqueues `value`, blocking while the queue is at capacity. Fails
    /// (returning the value) once the receiver has hung up.
    pub fn send(&self, value: T) -> Result<(), T> {
        let shared = &*self.shared;
        if shared.hung_up.load(Ordering::Acquire) {
            return Err(value);
        }
        let mut queue = shared.queue.lock().unwrap();
        loop {
            if shared.hung_up.load(Ordering::Acquire) {
                return Err(value);
            }
            if queue.len() < shared.capacity {
                queue.push_back(value);
                shared
                    .high_water
                    .fetch_max(queue.len() as u64, Ordering::Relaxed);
                drop(queue);
                shared.not_empty.notify_one();
                return Ok(());
            }
            queue = shared.not_full.wait(queue).unwrap();
        }
    }

    /// True once the receiver was dropped — a non-blocking probe for
    /// producers that want to stop *between* sends.
    pub fn is_hung_up(&self) -> bool {
        self.shared.hung_up.load(Ordering::Acquire)
    }

    /// Largest queue length ever reached. With a consumer slower than the
    /// producer this converges to the channel capacity — and never beyond
    /// it, which is the boundedness guarantee tests pin.
    pub fn high_water(&self) -> u64 {
        self.shared.high_water.load(Ordering::Relaxed)
    }
}

impl<T> Drop for PullSender<T> {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::Release);
        // Wake a receiver blocked on an empty queue so it can end.
        self.shared.not_empty.notify_all();
    }
}

impl<T> PullReceiver<T> {
    /// Dequeues the next value, blocking while the queue is empty and the
    /// sender is still alive. `None` once the sender is gone and the
    /// queue is drained.
    pub fn recv(&self) -> Option<T> {
        let shared = &*self.shared;
        let mut queue = shared.queue.lock().unwrap();
        loop {
            if let Some(value) = queue.pop_front() {
                drop(queue);
                shared.not_full.notify_one();
                return Some(value);
            }
            if shared.closed.load(Ordering::Acquire) {
                return None;
            }
            queue = shared.not_empty.wait(queue).unwrap();
        }
    }
}

impl<T> Iterator for PullReceiver<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.recv()
    }
}

impl<T> Drop for PullReceiver<T> {
    fn drop(&mut self) {
        self.shared.hung_up.store(true, Ordering::Release);
        // Wake senders blocked on a full queue so they can fail fast.
        self.shared.not_full.notify_all();
    }
}

/// A [`MatchSink`] pushing each verified match into a [`PullSender`] —
/// the backpressure adapter between the engine's push-based streaming and
/// a pull-paced consumer (a socket writer). When the consumer hangs up,
/// the sink saturates, aborting the scan through the standard early-exit
/// path instead of verifying matches nobody will read.
pub struct PullMatchSink {
    tx: PullSender<(StringId, usize)>,
    disconnected: bool,
    pushed: u64,
}

impl PullMatchSink {
    /// A sink feeding `tx`.
    pub fn new(tx: PullSender<(StringId, usize)>) -> Self {
        Self {
            tx,
            disconnected: false,
            pushed: 0,
        }
    }

    /// Matches successfully handed to the channel.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// True if the consumer hung up mid-stream (the result is partial
    /// through no fault of the query's own).
    pub fn disconnected(&self) -> bool {
        self.disconnected
    }
}

impl MatchSink for PullMatchSink {
    fn push(&mut self, id: StringId, dist: usize) {
        if self.disconnected {
            return;
        }
        match self.tx.send((id, dist)) {
            Ok(()) => self.pushed += 1,
            Err(_) => self.disconnected = true,
        }
    }

    fn saturated(&self) -> bool {
        self.disconnected || self.tx.is_hung_up()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_sink_appends() {
        let mut out = vec![(9, 9)];
        let mut sink = CollectSink::new(&mut out);
        sink.push(1, 2);
        assert_eq!(sink.bound(5), 5);
        assert!(!sink.saturated());
        assert_eq!(out, vec![(9, 9), (1, 2)]);
    }

    #[test]
    fn fn_sink_streams() {
        let mut seen = Vec::new();
        let mut sink = FnSink(|id, d| seen.push((id, d)));
        sink.push(3, 1);
        sink.push(4, 0);
        assert_eq!(seen, vec![(3, 1), (4, 0)]);
    }

    #[test]
    fn count_sink_counts_and_saturates() {
        let mut sink = CountSink::new();
        for id in 0..5 {
            sink.push(id, 0);
        }
        assert_eq!(sink.count(), 5);
        assert!(!sink.saturated());

        let mut capped = CountSink::capped(2);
        assert!(!capped.saturated());
        capped.push(0, 0);
        assert!(!capped.saturated());
        capped.push(1, 0);
        assert!(capped.saturated());
        assert_eq!(capped.count(), 2);
    }

    #[test]
    fn topk_sink_keeps_best_and_tightens_bound() {
        let mut sink = TopKSink::new(2);
        assert_eq!(sink.bound(4), 4, "not full: no tightening");
        sink.push(10, 3);
        sink.push(11, 1);
        assert_eq!(sink.bound(4), 3, "full: bound is the worst kept");
        sink.push(12, 2); // displaces (3, 10)
        assert_eq!(sink.bound(4), 2);
        sink.push(13, 4); // ignored
        assert_eq!(sink.into_matches(), vec![(11, 1), (12, 2)]);
    }

    #[test]
    fn topk_ties_break_by_id() {
        let mut sink = TopKSink::new(2);
        sink.push(7, 1);
        sink.push(5, 1);
        sink.push(3, 1);
        assert_eq!(sink.into_matches(), vec![(3, 1), (5, 1)]);
    }

    #[test]
    fn topk_zero_is_saturated() {
        let sink = TopKSink::new(0);
        assert!(sink.saturated());
        assert!(sink.into_matches().is_empty());
    }

    #[test]
    fn budget_sink_permits_exactly_the_cap() {
        let mut inner = CountSink::new();
        let mut sink = BudgetSink::new(&mut inner).with_max_candidates(3);
        for _ in 0..3 {
            sink.note_candidate();
            assert!(!sink.saturated());
        }
        assert_eq!(sink.candidates(), 3);
        sink.note_candidate(); // the 4th unit trips and is not counted
        assert!(sink.saturated());
        assert_eq!(sink.candidates(), 3);
        assert_eq!(sink.tripped(), Some(TruncationReason::CandidateCap));
        // Once tripped, further events are ignored, the reason sticks.
        sink.note_verification();
        assert_eq!(sink.tripped(), Some(TruncationReason::CandidateCap));
    }

    #[test]
    fn budget_sink_delegates_matches_and_steering() {
        let mut inner = TopKSink::new(1);
        let mut sink = BudgetSink::new(&mut inner).with_max_verifications(10);
        sink.push(4, 2);
        assert_eq!(sink.bound(5), 2, "inner top-k bound shines through");
        sink.push(9, 1);
        assert!(!sink.saturated());
        assert_eq!(inner.into_matches(), vec![(9, 1)]);
    }

    #[test]
    fn budget_sink_saturates_when_inner_does() {
        let mut inner = CountSink::capped(1);
        let mut sink = BudgetSink::new(&mut inner);
        assert!(!sink.saturated());
        sink.push(1, 0);
        assert!(sink.saturated(), "inner saturation passes through");
        assert_eq!(sink.tripped(), None, "…without claiming a budget trip");
    }

    #[test]
    fn deadline_trips_deterministically() {
        let clock = ManualTicks::new();
        let mut inner = CountSink::new();
        let mut sink = BudgetSink::new(&mut inner).with_deadline(&clock, 2);
        sink.note_verification();
        assert!(!sink.saturated(), "tick 0 < 2");
        clock.advance(1);
        sink.note_verification();
        assert!(!sink.saturated(), "tick 1 < 2");
        clock.set(2);
        sink.note_verification();
        assert!(sink.saturated());
        assert_eq!(sink.tripped(), Some(TruncationReason::Deadline));
        assert_eq!(sink.verifications(), 2);
    }

    #[test]
    fn truncation_reasons_display() {
        assert_eq!(
            TruncationReason::VerificationCap.to_string(),
            "verification cap"
        );
        assert_eq!(TruncationReason::CandidateCap.to_string(), "candidate cap");
        assert_eq!(TruncationReason::Deadline.to_string(), "deadline");
    }

    #[test]
    fn budget_pool_permits_exactly_the_cap_across_sinks() {
        let pool = BudgetPool::new().with_max_verifications(5);
        let mut a_inner = CountSink::new();
        let mut b_inner = CountSink::new();
        let mut a = PoolBudgetSink::new(&mut a_inner, &pool);
        let mut b = PoolBudgetSink::new(&mut b_inner, &pool);
        // Interleave: 3 units through a, 2 through b — the pool is dry.
        a.note_verification();
        b.note_verification();
        a.note_verification();
        b.note_verification();
        a.note_verification();
        assert!(!a.saturated() && !b.saturated());
        assert_eq!(pool.verifications_left(), Some(0));
        // The 6th unit trips whichever sink asks, without consuming.
        b.note_verification();
        assert!(b.saturated());
        assert_eq!(b.tripped(), Some(TruncationReason::VerificationCap));
        a.note_verification();
        assert_eq!(a.tripped(), Some(TruncationReason::VerificationCap));
        assert_eq!(pool.verifications_left(), Some(0));
    }

    #[test]
    fn budget_pool_candidate_cap_and_unlimited() {
        assert!(BudgetPool::new().is_unlimited());
        let pool = BudgetPool::new().with_max_candidates(1);
        assert!(!pool.is_unlimited());
        assert_eq!(pool.take_candidate(), Ok(()));
        assert_eq!(pool.take_candidate(), Err(TruncationReason::CandidateCap));
        assert_eq!(pool.take_verification(), Ok(()), "verifications uncapped");
        assert_eq!(pool.candidates_left(), Some(0));
        assert_eq!(pool.verifications_left(), None);
    }

    #[test]
    fn budget_pool_deadline_denies_verifications() {
        let clock = Arc::new(ManualTicks::new());
        let pool = BudgetPool::new().with_deadline(clock.clone(), 2);
        assert_eq!(pool.take_verification(), Ok(()));
        clock.set(2);
        assert_eq!(pool.take_verification(), Err(TruncationReason::Deadline));
        let mut inner = CountSink::new();
        let mut sink = PoolBudgetSink::new(&mut inner, &pool);
        sink.note_verification();
        assert!(sink.saturated());
        assert_eq!(sink.tripped(), Some(TruncationReason::Deadline));
    }

    #[test]
    fn pool_budget_sink_delegates_matches_and_steering() {
        let pool = BudgetPool::new().with_max_verifications(10);
        let mut inner = TopKSink::new(1);
        let mut sink = PoolBudgetSink::new(&mut inner, &pool);
        sink.push(4, 2);
        assert_eq!(sink.bound(5), 2, "inner top-k bound shines through");
        sink.push(9, 1);
        assert!(!sink.saturated());
        assert_eq!(inner.into_matches(), vec![(9, 1)]);
    }

    #[test]
    fn pull_channel_transfers_in_order_and_ends() {
        let (tx, rx) = pull_channel(4);
        for v in 0..3 {
            tx.send(v).unwrap();
        }
        drop(tx);
        assert_eq!(rx.collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn pull_channel_bounds_the_queue() {
        let (tx, rx) = pull_channel(2);
        let producer = std::thread::spawn(move || {
            for v in 0..100u32 {
                tx.send(v).unwrap();
            }
            tx.high_water()
        });
        // Drain slowly enough that the producer must block on capacity.
        let mut seen = Vec::new();
        for v in rx {
            std::thread::sleep(std::time::Duration::from_micros(200));
            seen.push(v);
        }
        let high_water = producer.join().unwrap();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
        assert!(
            high_water <= 2,
            "queue never exceeded capacity: {high_water}"
        );
    }

    #[test]
    fn pull_channel_receiver_drop_fails_senders() {
        let (tx, rx) = pull_channel(1);
        tx.send(1).unwrap();
        assert!(!tx.is_hung_up());
        drop(rx);
        assert!(tx.is_hung_up());
        assert_eq!(tx.send(2), Err(2));
    }

    #[test]
    fn pull_channel_receiver_drop_unblocks_a_full_sender() {
        let (tx, rx) = pull_channel(1);
        tx.send(0).unwrap();
        let producer = std::thread::spawn(move || tx.send(1));
        std::thread::sleep(std::time::Duration::from_millis(10));
        drop(rx); // producer is blocked on a full queue: wake + fail it
        assert_eq!(producer.join().unwrap(), Err(1));
    }

    #[test]
    fn pull_match_sink_streams_and_saturates_on_hangup() {
        let (tx, rx) = pull_channel(8);
        let mut sink = PullMatchSink::new(tx);
        sink.push(1, 0);
        sink.push(2, 1);
        assert!(!sink.saturated());
        assert_eq!(sink.pushed(), 2);
        drop(rx);
        assert!(sink.saturated(), "hang-up is visible before the next push");
        sink.push(3, 0);
        assert!(sink.disconnected());
        assert_eq!(sink.pushed(), 2, "post-hangup pushes are dropped");
    }
}
