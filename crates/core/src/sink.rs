//! Match sinks: where verified matches go, and how they steer the search.
//!
//! Every probing path (the join drivers' probing core, the
//! [`crate::search::SearchIndex`] query loop, and the online subsystem's
//! execution engine) ends the same way: a candidate survives the
//! verification cascade and a `(string id, distance)` match is produced.
//! What happens *next* used to be hard-coded as "push onto a `Vec`" — which
//! forces full materialization even when the caller wants only a count, the
//! k closest matches, or a streaming callback.
//!
//! [`MatchSink`] inverts that: verification reports matches *into* a sink,
//! and the sink reports back two pieces of steering information:
//!
//! * [`MatchSink::bound`] — the largest distance still worth verifying.
//!   A full top-k heap whose worst entry is at distance `w` has no use for
//!   matches beyond `w`, so verification can tighten its DP budgets and
//!   skip candidates whose length difference already exceeds `w`. The
//!   bound must never grow over a query's lifetime (sinks only get more
//!   selective), which is what makes skipping permanently sound.
//! * [`MatchSink::saturated`] — true once additional matches cannot change
//!   the outcome (e.g. a capped count that has reached its cap), letting
//!   the whole probe loop stop early.
//!
//! Collecting sinks ([`CollectSink`], [`FnSink`]) leave both hooks at their
//! defaults, so threading a sink through a previously `Vec`-pushing path
//! changes nothing byte-for-byte.

use sj_common::StringId;

use crate::topk::TopK;

/// Receiver of verified `(id, exact distance)` matches; see the module
/// docs for the steering contract.
pub trait MatchSink {
    /// Records a verified match. `dist` is exact and `≤ bound(tau)` as of
    /// the verification that produced it; the sink is free to discard the
    /// match (a full top-k heap does). One caveat: the batch joiners'
    /// *extension*-verified probe path reports upper-bound certificates,
    /// not exact distances — bounded sinks must not be combined with it
    /// (see the note in `probe.rs`); every exact-distance path
    /// (`core::search`, the online engine) upholds the contract.
    fn push(&mut self, id: StringId, dist: usize);

    /// The largest distance still worth verifying, given the query
    /// threshold `tau`. Must be `≤ tau` and non-increasing over a query.
    fn bound(&self, tau: usize) -> usize {
        tau
    }

    /// True once further matches cannot change the outcome; probing stops.
    fn saturated(&self) -> bool {
        false
    }
}

/// Appends every match to a borrowed vector — the classic materializing
/// path. No bound tightening, no early exit.
pub struct CollectSink<'a> {
    out: &'a mut Vec<(StringId, usize)>,
}

impl<'a> CollectSink<'a> {
    /// A sink appending to `out`.
    pub fn new(out: &'a mut Vec<(StringId, usize)>) -> Self {
        Self { out }
    }
}

impl MatchSink for CollectSink<'_> {
    fn push(&mut self, id: StringId, dist: usize) {
        self.out.push((id, dist));
    }
}

/// Forwards every match to a closure (streaming consumers; also how the
/// join drivers' emit-closures ride the sink-shaped probing core).
pub struct FnSink<F>(pub F);

impl<F: FnMut(StringId, usize)> MatchSink for FnSink<F> {
    fn push(&mut self, id: StringId, dist: usize) {
        (self.0)(id, dist);
    }
}

/// Counts matches without materializing them; an optional cap turns it
/// into an existence test that saturates (and stops the search) as soon as
/// the cap is reached.
pub struct CountSink {
    count: usize,
    cap: Option<usize>,
}

impl CountSink {
    /// Counts every match.
    pub fn new() -> Self {
        Self {
            count: 0,
            cap: None,
        }
    }

    /// Counts up to `cap` matches, then reports saturation ("are there at
    /// least `cap` matches?" without finding the rest).
    pub fn capped(cap: usize) -> Self {
        Self {
            count: 0,
            cap: Some(cap),
        }
    }

    /// Matches counted so far.
    pub fn count(&self) -> usize {
        self.count
    }
}

impl Default for CountSink {
    fn default() -> Self {
        Self::new()
    }
}

impl MatchSink for CountSink {
    fn push(&mut self, _id: StringId, _dist: usize) {
        self.count += 1;
    }

    fn saturated(&self) -> bool {
        self.cap.is_some_and(|cap| self.count >= cap)
    }
}

/// Keeps the `k` matches smallest by `(distance, id)` on a bounded heap
/// ([`TopK`]); once full, its [`MatchSink::bound`] shrinks to the worst
/// retained distance, so verification stops paying for matches that could
/// never displace anything.
pub struct TopKSink {
    top: TopK<(usize, StringId)>,
}

impl TopKSink {
    /// A sink retaining the `k` best matches.
    pub fn new(k: usize) -> Self {
        Self { top: TopK::new(k) }
    }

    /// The retained matches as `(id, distance)`, ascending by
    /// `(distance, id)`.
    pub fn into_matches(self) -> Vec<(StringId, usize)> {
        self.top
            .into_sorted_vec()
            .into_iter()
            .map(|(d, id)| (id, d))
            .collect()
    }
}

impl MatchSink for TopKSink {
    fn push(&mut self, id: StringId, dist: usize) {
        self.top.offer((dist, id));
    }

    fn bound(&self, tau: usize) -> usize {
        match self.top.worst() {
            Some(&(worst, _)) => tau.min(worst),
            None => tau,
        }
    }

    fn saturated(&self) -> bool {
        // k = 0 retains nothing: no match can change the outcome.
        self.top.k() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_sink_appends() {
        let mut out = vec![(9, 9)];
        let mut sink = CollectSink::new(&mut out);
        sink.push(1, 2);
        assert_eq!(sink.bound(5), 5);
        assert!(!sink.saturated());
        assert_eq!(out, vec![(9, 9), (1, 2)]);
    }

    #[test]
    fn fn_sink_streams() {
        let mut seen = Vec::new();
        let mut sink = FnSink(|id, d| seen.push((id, d)));
        sink.push(3, 1);
        sink.push(4, 0);
        assert_eq!(seen, vec![(3, 1), (4, 0)]);
    }

    #[test]
    fn count_sink_counts_and_saturates() {
        let mut sink = CountSink::new();
        for id in 0..5 {
            sink.push(id, 0);
        }
        assert_eq!(sink.count(), 5);
        assert!(!sink.saturated());

        let mut capped = CountSink::capped(2);
        assert!(!capped.saturated());
        capped.push(0, 0);
        assert!(!capped.saturated());
        capped.push(1, 0);
        assert!(capped.saturated());
        assert_eq!(capped.count(), 2);
    }

    #[test]
    fn topk_sink_keeps_best_and_tightens_bound() {
        let mut sink = TopKSink::new(2);
        assert_eq!(sink.bound(4), 4, "not full: no tightening");
        sink.push(10, 3);
        sink.push(11, 1);
        assert_eq!(sink.bound(4), 3, "full: bound is the worst kept");
        sink.push(12, 2); // displaces (3, 10)
        assert_eq!(sink.bound(4), 2);
        sink.push(13, 4); // ignored
        assert_eq!(sink.into_matches(), vec![(11, 1), (12, 2)]);
    }

    #[test]
    fn topk_ties_break_by_id() {
        let mut sink = TopKSink::new(2);
        sink.push(7, 1);
        sink.push(5, 1);
        sink.push(3, 1);
        assert_eq!(sink.into_matches(), vec![(3, 1), (5, 1)]);
    }

    #[test]
    fn topk_zero_is_saturated() {
        let sink = TopKSink::new(0);
        assert!(sink.saturated());
        assert!(sink.into_matches().is_empty());
    }
}
