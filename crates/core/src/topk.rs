//! Top-k similarity join: the k closest pairs, no threshold required.
//!
//! The paper's related work highlights top-k similarity joins (Xiao et
//! al., ICDE 2009) as the variant users reach for when no sensible τ is
//! known a priori. Pass-Join's machinery supports it directly with a
//! progressive threshold: run the join at τ = 0, 1, 2, 4, … until at least
//! k pairs are found; every unfound pair then has distance > τ, while the
//! found pairs all have distance ≤ τ, so the k smallest found pairs are
//! exactly the global top-k. Geometric growth keeps the total work within
//! a constant factor of the final (successful) join.

use std::collections::BinaryHeap;

use sj_common::StringCollection;

use crate::joiner::PassJoin;

/// A top-k result: the pair (as input positions, `first < second`) and its
/// exact edit distance.
pub type ScoredPair = ((u32, u32), usize);

/// A bounded selection heap: retains the `k` smallest items offered (by
/// `Ord`), in O(log k) per offer and O(k) space.
///
/// Shared by [`PassJoin::topk_self_join`] and the online subsystem's
/// top-k sink (`passjoin_online`): both need "the k best by
/// (distance, tiebreak)" without materializing everything first, and both
/// need the current worst retained item to tighten further work.
#[derive(Debug, Clone)]
pub struct TopK<T: Ord> {
    k: usize,
    /// Max-heap: the *worst* retained item is at the top, ready to be
    /// displaced (or to bound further search).
    heap: BinaryHeap<T>,
}

impl<T: Ord> TopK<T> {
    /// A heap retaining the `k` smallest items.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            heap: BinaryHeap::with_capacity(k.min(1024).saturating_add(1)),
        }
    }

    /// The retention capacity.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Items currently retained.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// True once `k` items are retained (every further offer must displace
    /// one to be kept). Vacuously true for `k = 0`.
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.k
    }

    /// The worst retained item — only meaningful as a pruning bound once
    /// the heap [`is full`](TopK::is_full); `None` before that.
    pub fn worst(&self) -> Option<&T> {
        if self.is_full() {
            self.heap.peek()
        } else {
            None
        }
    }

    /// Offers an item; returns whether it was retained.
    pub fn offer(&mut self, item: T) -> bool {
        if self.heap.len() < self.k {
            self.heap.push(item);
            return true;
        }
        match self.heap.peek() {
            Some(worst) if item < *worst => {
                self.heap.pop();
                self.heap.push(item);
                true
            }
            _ => false,
        }
    }

    /// The retained items in ascending order.
    pub fn into_sorted_vec(self) -> Vec<T> {
        self.heap.into_sorted_vec()
    }
}

impl PassJoin {
    /// The `k` pairs with the smallest edit distances (ties broken by pair
    /// position, ascending), found by progressively raising the threshold.
    ///
    /// Returns fewer than `k` pairs only when the collection itself has
    /// fewer than `k` unordered pairs.
    ///
    /// ```
    /// use passjoin::PassJoin;
    /// use sj_common::StringCollection;
    ///
    /// let c = StringCollection::from_strs(&["vldb", "pvldb", "icde", "vldb journal"]);
    /// let top = PassJoin::new().topk_self_join(&c, 1);
    /// assert_eq!(top, vec![((0, 1), 1)]); // ⟨vldb, pvldb⟩ at distance 1
    /// ```
    pub fn topk_self_join(&self, collection: &StringCollection, k: usize) -> Vec<ScoredPair> {
        let n = collection.len();
        let total_pairs = n.saturating_mul(n.saturating_sub(1)) / 2;
        let want = k.min(total_pairs);
        if want == 0 {
            return Vec::new();
        }
        // Any pair is within max_len edits (replace everything + insert).
        let tau_ceiling = collection.max_len().max(1);

        let mut tau = 0usize;
        loop {
            // Select on a bounded heap instead of materializing every pair
            // found at this threshold: O(k) space however dense the join.
            let mut top: TopK<(usize, (u32, u32))> = TopK::new(want);
            let exact = self.with_verification(crate::verify::Verification::LengthAware);
            exact.run_self_join(collection, tau, |pair, d| {
                top.offer((d, pair));
            });
            if top.is_full() || tau >= tau_ceiling {
                // Exact top-k: unfound pairs all have distance > τ ≥ any
                // retained distance.
                return top
                    .into_sorted_vec()
                    .into_iter()
                    .map(|(d, pair)| (pair, d))
                    .collect();
            }
            tau = (tau.max(1) * 2).min(tau_ceiling);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use editdist::edit_distance;

    fn brute_topk(strings: &[&str], k: usize) -> Vec<ScoredPair> {
        let mut all = Vec::new();
        for i in 0..strings.len() {
            for j in i + 1..strings.len() {
                all.push((
                    (i as u32, j as u32),
                    edit_distance(strings[i].as_bytes(), strings[j].as_bytes()),
                ));
            }
        }
        all.sort_unstable_by_key(|&(pair, d)| (d, pair));
        all.truncate(k);
        all
    }

    #[test]
    fn matches_bruteforce_topk() {
        let strings = [
            "partition",
            "petition",
            "position",
            "partitions",
            "parting",
            "station",
            "startion",
            "ab",
            "ax",
            "completely different text",
        ];
        let coll = StringCollection::from_strs(&strings);
        for k in [1usize, 3, 5, 10, 45, 100] {
            let got = PassJoin::new().topk_self_join(&coll, k);
            let expected = brute_topk(&strings, k);
            // Distances must agree position-by-position; the pairs
            // themselves may differ where distances tie.
            assert_eq!(
                got.iter().map(|&(_, d)| d).collect::<Vec<_>>(),
                expected.iter().map(|&(_, d)| d).collect::<Vec<_>>(),
                "k={k}"
            );
            // And every reported distance must be exact.
            for ((a, b), d) in got {
                assert_eq!(
                    d,
                    edit_distance(
                        strings[a as usize].as_bytes(),
                        strings[b as usize].as_bytes()
                    )
                );
            }
        }
    }

    #[test]
    fn exact_duplicates_rank_first() {
        let coll = StringCollection::from_strs(&["dup", "dup", "xyz", "dup"]);
        let top = PassJoin::new().topk_self_join(&coll, 3);
        assert_eq!(
            top,
            vec![((0, 1), 0), ((0, 3), 0), ((1, 3), 0)],
            "the three duplicate pairs come first, at distance 0"
        );
    }

    #[test]
    fn bounded_heap_retains_k_smallest() {
        let mut top = TopK::new(3);
        assert!(!top.is_full());
        assert_eq!(top.worst(), None);
        for x in [9, 4, 7, 1, 8, 2] {
            top.offer(x);
        }
        assert!(top.is_full());
        assert_eq!(top.len(), 3);
        assert_eq!(top.worst(), Some(&4));
        assert!(!top.offer(5), "worse than the worst retained");
        assert!(top.offer(3));
        assert_eq!(top.into_sorted_vec(), vec![1, 2, 3]);

        let mut zero: TopK<u32> = TopK::new(0);
        assert!(zero.is_full() && zero.is_empty());
        assert!(!zero.offer(1));
        assert!(zero.into_sorted_vec().is_empty());
    }

    #[test]
    fn degenerate_inputs() {
        let empty = StringCollection::new(vec![]);
        assert!(PassJoin::new().topk_self_join(&empty, 5).is_empty());
        let single = StringCollection::from_strs(&["solo"]);
        assert!(PassJoin::new().topk_self_join(&single, 5).is_empty());
        let pairless = StringCollection::from_strs(&["a", "b"]);
        assert_eq!(PassJoin::new().topk_self_join(&pairless, 0), vec![]);
        // k exceeding the number of pairs returns them all.
        let top = PassJoin::new().topk_self_join(&pairless, 10);
        assert_eq!(top, vec![((0, 1), 1)]);
    }
}
