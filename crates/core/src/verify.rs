//! Verification strategy configuration (paper §5, Figure 14).
//!
//! The join driver dispatches candidate verification to one of four
//! strategies. `Extension { share_prefix: true }` is the paper's best
//! configuration and the default; the others exist for the Figure 14
//! ablation and as simpler fallbacks.

/// How candidate pairs are verified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verification {
    /// Unrestricted O(nm) dynamic program over the full strings.
    Full,
    /// The `2τ+1` band with naive row-minimum early termination
    /// (Figure 14's `2τ+1` series).
    Banded,
    /// The `τ+1` length-aware band with expected-edit-distance early
    /// termination (§5.1; Figure 14's `τ+1` series).
    LengthAware,
    /// Myers' bit-parallel algorithm over the whole pair — not in the
    /// paper; included because it is the strongest practical alternative
    /// to banded DP and makes the verification ablation more informative.
    Myers,
    /// Extension-based verification around the shared segment (§5.2), with
    /// per-side budgets `τ_l = i−1` and `τ_r = τ+1−i`. With
    /// `share_prefix = true`, DP rows are additionally reused across the
    /// common prefixes of consecutive list entries (§5.3; Figure 14's
    /// `SharePrefix`, the paper's fastest).
    Extension {
        /// Reuse DP rows across consecutive strings of an inverted list.
        share_prefix: bool,
    },
}

impl Default for Verification {
    fn default() -> Self {
        Verification::Extension { share_prefix: true }
    }
}

impl Verification {
    /// Short name used in benchmark tables, matching Figure 14's legend.
    pub fn name(&self) -> &'static str {
        match self {
            Verification::Full => "full-dp",
            Verification::Banded => "2tau+1",
            Verification::LengthAware => "tau+1",
            Verification::Myers => "myers",
            Verification::Extension {
                share_prefix: false,
            } => "extension",
            Verification::Extension { share_prefix: true } => "share-prefix",
        }
    }

    /// The four configurations of Figure 14, in the paper's order.
    pub fn figure14() -> [Verification; 4] {
        [
            Verification::Banded,
            Verification::LengthAware,
            Verification::Extension {
                share_prefix: false,
            },
            Verification::Extension { share_prefix: true },
        ]
    }

    /// True for the strategies that verify the *whole* string pair (their
    /// verdict is independent of the matching occurrence, so a pair needs
    /// to be verified at most once per probe).
    pub fn is_whole_pair(&self) -> bool {
        !matches!(self, Verification::Extension { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_share_prefix_extension() {
        assert_eq!(
            Verification::default(),
            Verification::Extension { share_prefix: true }
        );
    }

    #[test]
    fn names_are_distinct() {
        let mut names: Vec<&str> = Verification::figure14().iter().map(|v| v.name()).collect();
        names.push(Verification::Full.name());
        names.push(Verification::Myers.name());
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len());
    }

    #[test]
    fn whole_pair_classification() {
        assert!(Verification::Full.is_whole_pair());
        assert!(Verification::Banded.is_whole_pair());
        assert!(Verification::LengthAware.is_whole_pair());
        assert!(Verification::Myers.is_whole_pair());
        assert!(!Verification::Extension { share_prefix: true }.is_whole_pair());
        assert!(!Verification::Extension {
            share_prefix: false
        }
        .is_whole_pair());
    }
}
