//! Correctness: every Pass-Join configuration (4 selectors × 5 verifiers)
//! must produce exactly the naive ground-truth join on arbitrary corpora,
//! including corpora full of unpartitionably short strings, duplicates, and
//! planted near-duplicates.

use editdist::NaiveJoin;
use passjoin::{PartitionScheme, PassJoin, Selection, Verification};
use proptest::prelude::*;
use sj_common::{SimilarityJoin, StringCollection};

fn all_configs() -> Vec<PassJoin> {
    let verifications = [
        Verification::Full,
        Verification::Banded,
        Verification::LengthAware,
        Verification::Myers,
        Verification::Extension {
            share_prefix: false,
        },
        Verification::Extension { share_prefix: true },
    ];
    let mut configs = Vec::new();
    for selection in Selection::all() {
        for verification in verifications {
            configs.push(
                PassJoin::new()
                    .with_selection(selection)
                    .with_verification(verification),
            );
        }
    }
    // The partition ablation must be just as correct (Lemma 1 holds for
    // any disjoint partition into τ+1 segments).
    configs.push(PassJoin::new().with_partition(PartitionScheme::LeftHeavy));
    configs.push(
        PassJoin::new()
            .with_partition(PartitionScheme::LeftHeavy)
            .with_selection(Selection::Position)
            .with_verification(Verification::LengthAware),
    );
    configs
}

fn check_against_naive(strings: &[Vec<u8>], tau: usize) {
    let coll = StringCollection::new(strings.to_vec());
    let expected = NaiveJoin.self_join(&coll, tau).normalized_pairs();
    for config in all_configs() {
        let out = config.self_join(&coll, tau);
        let got = out.normalized_pairs();
        assert_eq!(
            got,
            expected,
            "selection={:?} verification={:?} tau={} corpus={:?}",
            config.selection(),
            config.verification(),
            tau,
            strings
                .iter()
                .map(|s| String::from_utf8_lossy(s).into_owned())
                .collect::<Vec<_>>()
        );
        // A correct join also never emits duplicates.
        assert_eq!(got.len(), out.pairs.len(), "duplicate pairs emitted");
        assert_eq!(out.stats.results as usize, out.pairs.len());
    }
}

/// Random short strings over a 3-letter alphabet: maximal collision density.
fn dense_corpus() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(
        proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 0..12),
        0..24,
    )
}

/// Longer, more realistic strings over the lowercase alphabet.
fn wide_corpus() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(97u8..=122, 0..30), 0..16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matches_ground_truth_dense(strings in dense_corpus(), tau in 0usize..5) {
        check_against_naive(&strings, tau);
    }

    #[test]
    fn matches_ground_truth_wide(strings in wide_corpus(), tau in 0usize..7) {
        check_against_naive(&strings, tau);
    }

    #[test]
    fn rs_join_with_self_matches_self_join(strings in dense_corpus(), tau in 0usize..4) {
        let coll = StringCollection::new(strings.clone());
        let expected = NaiveJoin.self_join(&coll, tau).normalized_pairs();
        let rs = PassJoin::new().rs_join(&coll, &coll, tau);
        // R×S with R = S reports each unordered pair twice (once per
        // orientation) plus every identity pair (i, i); strip those.
        let mut got: Vec<(u32, u32)> = rs
            .pairs
            .iter()
            .filter(|(a, b)| a != b)
            .map(|&(a, b)| if a < b { (a, b) } else { (b, a) })
            .collect();
        got.sort_unstable();
        got.dedup();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn rs_join_matches_bruteforce(
        left in dense_corpus(),
        right in dense_corpus(),
        tau in 0usize..4,
    ) {
        let r_coll = StringCollection::new(left.clone());
        let s_coll = StringCollection::new(right.clone());
        let mut expected = Vec::new();
        for (i, r) in left.iter().enumerate() {
            for (j, s) in right.iter().enumerate() {
                if editdist::edit_distance(r, s) <= tau {
                    expected.push((i as u32, j as u32));
                }
            }
        }
        expected.sort_unstable();
        let mut got = PassJoin::new().rs_join(&r_coll, &s_coll, tau).pairs;
        got.sort_unstable();
        prop_assert_eq!(got, expected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_matches_sequential_on_random_corpora(
        strings in dense_corpus(),
        tau in 0usize..4,
        threads in 2usize..5,
    ) {
        let coll = StringCollection::new(strings);
        let seq = PassJoin::new().self_join(&coll, tau);
        let par = PassJoin::new().par_self_join(&coll, tau, threads);
        prop_assert_eq!(par.normalized_pairs(), seq.normalized_pairs());
    }

    #[test]
    fn search_index_matches_bruteforce(
        dictionary in dense_corpus(),
        query in proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 0..12),
        tau in 0usize..4,
    ) {
        let dict = StringCollection::new(dictionary.clone());
        let index = passjoin::SearchIndex::build(&dict, tau);
        let mut got = index.query(&query);
        got.sort_unstable();
        let mut expected: Vec<(u32, usize)> = dictionary
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                let d = editdist::edit_distance(s, &query);
                (d <= tau).then_some((i as u32, d))
            })
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn self_join_distances_are_exact(strings in dense_corpus(), tau in 0usize..4) {
        let coll = StringCollection::new(strings.clone());
        for ((a, b), d) in PassJoin::new().self_join_distances(&coll, tau) {
            prop_assert_eq!(
                d,
                editdist::edit_distance(&strings[a as usize], &strings[b as usize])
            );
            prop_assert!(d <= tau);
        }
    }
}

#[test]
fn planted_duplicates_are_all_recovered() {
    // Deterministic regression: seed strings plus controlled mutations.
    let seeds: &[&str] = &[
        "similarity joins with edit distance",
        "partition based framework",
        "inverted segment indices",
        "query logs from search engines",
    ];
    let mut strings: Vec<Vec<u8>> = Vec::new();
    for seed in seeds {
        let bytes = seed.as_bytes();
        strings.push(bytes.to_vec());
        // One deletion.
        let mut del = bytes.to_vec();
        del.remove(bytes.len() / 2);
        strings.push(del);
        // One substitution + one insertion (distance 2).
        let mut sub = bytes.to_vec();
        sub[1] = b'#';
        sub.insert(4, b'!');
        strings.push(sub);
    }
    let coll = StringCollection::new(strings.clone());
    for tau in 0..=4 {
        check_against_naive(&strings, tau);
        let out = PassJoin::new().self_join(&coll, tau);
        if tau >= 1 {
            // Every seed must pair with its deletion variant.
            for k in 0..seeds.len() as u32 {
                let pair = (3 * k, 3 * k + 1);
                assert!(
                    out.normalized_pairs().contains(&pair),
                    "tau={tau}: missing planted pair {pair:?}"
                );
            }
        }
    }
}

#[test]
fn all_short_strings_corpus() {
    // Every string shorter than τ+1: the partition path is never usable and
    // the brute-force fallback must carry the whole join.
    let strings: Vec<Vec<u8>> = ["a", "b", "ab", "ba", "", "aa", "b"]
        .iter()
        .map(|s| s.as_bytes().to_vec())
        .collect();
    for tau in 0..=4 {
        check_against_naive(&strings, tau);
    }
}

#[test]
fn mixed_short_and_long_corpus() {
    let strings: Vec<Vec<u8>> = ["ab", "abcdef", "abdef", "a", "abcdefg", "", "zzzzz"]
        .iter()
        .map(|s| s.as_bytes().to_vec())
        .collect();
    for tau in 0..=5 {
        check_against_naive(&strings, tau);
    }
}

#[test]
fn stats_are_internally_consistent() {
    let strings: Vec<Vec<u8>> = (0..40u8)
        .map(|i| format!("record number {i:02} payload").into_bytes())
        .collect();
    let coll = StringCollection::new(strings);
    let out = PassJoin::new().self_join(&coll, 2);
    let s = &out.stats;
    assert_eq!(s.strings, 40);
    assert!(s.probes <= s.selected_substrings);
    assert!(s.candidate_pairs <= s.candidate_occurrences);
    assert!(s.results <= s.candidate_pairs + s.verifications);
    assert!(s.index_bytes > 0);
}
