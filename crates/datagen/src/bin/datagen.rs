//! `datagen` — writes a synthetic corpus as a newline-delimited file, for
//! scripting the `simjoin` pipeline (CI smoke tests, benchmarks, demos).
//!
//! ```text
//! datagen --kind author --n 20000 --seed 42 --out corpus.txt
//! datagen --kind querylog --n 100000 --dup-rate 0.1 --max-edits 1 \
//!     --out corpus.txt --truth truth.tsv
//! ```
//!
//! Kinds mirror the paper's evaluation corpora: `author` (short strings),
//! `querylog` (medium), `authortitle` (long). Output is deterministic in
//! the seed. `--truth` additionally writes the planted-duplicate ground
//! truth as `dup<TAB>base` line-index pairs — the oracle the dedup smoke
//! tests recover. `--churn N --churn-out script.txt` writes a
//! deterministic insert/remove workload over the corpus in the repl's
//! `:add`/`:rm` syntax, for delta-checkpoint tests and benches:
//!
//! ```text
//! datagen --kind author --n 20000 --out base.txt --churn 1000 --churn-out churn.txt
//! simjoin index base.txt --tau-max 2 --save base.snap
//! simjoin repl --load base.snap --save-delta < churn.txt
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use datagen::{DatasetKind, DatasetSpec};

const USAGE: &str = "usage:
  datagen --kind author|querylog|authortitle --n N [--seed S] [--out corpus.txt]
          [--dup-rate R] [--max-edits K] [--truth truth.tsv]
          [--churn N --churn-out script.txt]";

struct Args {
    kind: DatasetKind,
    n: usize,
    seed: u64,
    out: Option<PathBuf>,
    dup_rate: Option<f64>,
    max_edits: Option<usize>,
    truth: Option<PathBuf>,
    churn: Option<usize>,
    churn_out: Option<PathBuf>,
}

fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Args, String> {
    let mut kind = None;
    let mut n = None;
    let mut seed = 42u64;
    let mut out = None;
    let mut dup_rate = None;
    let mut max_edits = None;
    let mut truth = None;
    let mut churn = None;
    let mut churn_out = None;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--kind" => {
                let v = it.next().ok_or("--kind requires a value")?;
                kind = Some(match v.as_str() {
                    "author" => DatasetKind::Author,
                    "querylog" => DatasetKind::QueryLog,
                    "authortitle" => DatasetKind::AuthorTitle,
                    other => {
                        return Err(format!(
                            "unknown kind '{other}' (expected author, querylog, authortitle)"
                        ))
                    }
                });
            }
            "--n" => {
                n = Some(
                    it.next()
                        .ok_or("--n requires a value")?
                        .parse()
                        .map_err(|_| "--n requires a non-negative integer")?,
                );
            }
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed requires a value")?
                    .parse()
                    .map_err(|_| "--seed requires a non-negative integer")?;
            }
            "--out" => {
                out = Some(PathBuf::from(it.next().ok_or("--out requires a path")?));
            }
            "--dup-rate" => {
                let v: f64 = it
                    .next()
                    .ok_or("--dup-rate requires a value")?
                    .parse()
                    .map_err(|_| "--dup-rate requires a number in [0, 1]")?;
                if !(0.0..=1.0).contains(&v) {
                    return Err("--dup-rate requires a number in [0, 1]".into());
                }
                dup_rate = Some(v);
            }
            "--max-edits" => {
                let v: usize = it
                    .next()
                    .ok_or("--max-edits requires a value")?
                    .parse()
                    .map_err(|_| "--max-edits requires a positive integer")?;
                if v == 0 {
                    return Err("--max-edits requires a positive integer".into());
                }
                max_edits = Some(v);
            }
            "--truth" => {
                truth = Some(PathBuf::from(it.next().ok_or("--truth requires a path")?));
            }
            "--churn" => {
                churn = Some(
                    it.next()
                        .ok_or("--churn requires a value")?
                        .parse()
                        .map_err(|_| "--churn requires a non-negative integer")?,
                );
            }
            "--churn-out" => {
                churn_out = Some(PathBuf::from(
                    it.next().ok_or("--churn-out requires a path")?,
                ));
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    if churn.is_some() != churn_out.is_some() {
        return Err("--churn and --churn-out go together".into());
    }
    Ok(Args {
        kind: kind.ok_or("missing required --kind")?,
        n: n.ok_or("missing required --n")?,
        seed,
        out,
        dup_rate,
        max_edits,
        truth,
        churn,
        churn_out,
    })
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("datagen: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let mut spec = DatasetSpec::new(args.kind, args.n).with_seed(args.seed);
    if let Some(rate) = args.dup_rate {
        spec = spec.with_duplicate_rate(rate);
    }
    if let Some(edits) = args.max_edits {
        spec = spec.with_max_planted_edits(edits);
    }
    let (strings, truth) = spec.generate_with_truth();
    if let (Some(n), Some(path)) = (args.churn, &args.churn_out) {
        // The churn script's seed is offset from the corpus seed so the
        // two streams stay independent but both derive from --seed.
        let ops = datagen::churn_ops(&strings, n, args.seed.wrapping_add(1));
        let lines = datagen::churn_script(&ops);
        if let Err(e) = datagen::io::save_lines(path, &lines) {
            eprintln!("datagen: churn script write failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &args.truth {
        let lines: Vec<Vec<u8>> = truth
            .iter()
            .map(|(dup, base)| format!("{dup}\t{base}").into_bytes())
            .collect();
        if let Err(e) = datagen::io::save_lines(path, &lines) {
            eprintln!("datagen: truth write failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    let result = match &args.out {
        Some(path) => datagen::io::save_lines(path, &strings),
        None => {
            use std::io::Write;
            let mut stdout = std::io::BufWriter::new(std::io::stdout().lock());
            strings
                .iter()
                .try_for_each(|s| stdout.write_all(s).and_then(|()| stdout.write_all(b"\n")))
                .and_then(|()| stdout.flush())
        }
    };
    if let Err(e) = result {
        eprintln!("datagen: write failed: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
