//! Deterministic churn scripts: a mutation workload over a base corpus.
//!
//! Delta-checkpoint tests and benches need a reproducible stream of
//! inserts and removes *against a known base* — inserts that look like
//! real drift (near-duplicate copies of live strings, the same model the
//! corpus generators use for planted duplicates) and removes that only
//! ever target ids that are live at that point in the script.
//!
//! [`churn_ops`] generates the op list; [`churn_script`] renders it in
//! the repl's command syntax (`:add <string>` / `:rm <id>`), so a script
//! file replays directly:
//!
//! ```text
//! datagen --kind author --n 20000 --out base.txt --churn 1000 --churn-out churn.txt
//! simjoin index base.txt --tau-max 2 --save base.snap
//! simjoin repl --load base.snap --save-delta < churn.txt
//! ```
//!
//! Everything is deterministic in the seed, and id assignment follows
//! the engine's contract (dense ids from the universe size, tombstones
//! never reused), so the same script always produces the same index.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::mutate::mutate;

/// One churn step against the evolving index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChurnOp {
    /// Insert this string; the engine will assign the next dense id.
    Insert(Vec<u8>),
    /// Remove this id, which is live when the script reaches this step.
    Remove(u32),
}

/// Generates `n` churn ops over `base`, deterministic in `seed`.
///
/// Roughly two thirds of the ops are inserts (mutated near-duplicate
/// copies of strings live at that point, 1–2 edits), the rest removes of
/// random live ids. The mix keeps the index growing — the workload a
/// checkpointed server actually sees. Removes are skipped (in favour of
/// inserts) if the live set would run dry.
pub fn churn_ops(base: &[Vec<u8>], n: usize, seed: u64) -> Vec<ChurnOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    // The live set, as (id, string) — base ids are 0-based line numbers,
    // inserts extend the universe densely.
    let mut live: Vec<(u32, Vec<u8>)> = base
        .iter()
        .enumerate()
        .map(|(id, s)| (id as u32, s.clone()))
        .collect();
    let mut next_id = base.len() as u32;
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        let remove = !live.is_empty() && rng.gen_range(0..3) == 0;
        if remove {
            let slot = rng.gen_range(0..live.len());
            let (id, _) = live.swap_remove(slot);
            ops.push(ChurnOp::Remove(id));
        } else {
            let copy = if live.is_empty() {
                // Degenerate base: churn over nothing still inserts.
                b"churn seed string".to_vec()
            } else {
                let source = &live[rng.gen_range(0..live.len())].1;
                let edits = rng.gen_range(1..=2);
                mutate(source, edits, &mut rng)
            };
            ops.push(ChurnOp::Insert(copy.clone()));
            live.push((next_id, copy));
            next_id += 1;
        }
    }
    ops
}

/// Renders churn ops as repl command lines: `:add <string>` / `:rm <id>`,
/// one per line, ready for `simjoin repl --save-delta < script`.
pub fn churn_script(ops: &[ChurnOp]) -> Vec<Vec<u8>> {
    ops.iter()
        .map(|op| match op {
            ChurnOp::Insert(s) => {
                let mut line = b":add ".to_vec();
                line.extend_from_slice(s);
                line
            }
            ChurnOp::Remove(id) => format!(":rm {id}").into_bytes(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Vec<Vec<u8>> {
        (0..50)
            .map(|i| format!("base record number {i}").into_bytes())
            .collect()
    }

    #[test]
    fn churn_is_deterministic_in_the_seed() {
        let base = base();
        assert_eq!(churn_ops(&base, 200, 7), churn_ops(&base, 200, 7));
        assert_ne!(churn_ops(&base, 200, 7), churn_ops(&base, 200, 8));
    }

    #[test]
    fn removes_only_target_live_ids() {
        let base = base();
        let ops = churn_ops(&base, 500, 42);
        assert_eq!(ops.len(), 500);
        let mut live: Vec<u32> = (0..base.len() as u32).collect();
        let mut next_id = base.len() as u32;
        let mut inserts = 0;
        for op in &ops {
            match op {
                ChurnOp::Insert(s) => {
                    assert!(!s.is_empty());
                    live.push(next_id);
                    next_id += 1;
                    inserts += 1;
                }
                ChurnOp::Remove(id) => {
                    let slot = live
                        .iter()
                        .position(|x| x == id)
                        .expect("remove of a dead id");
                    live.swap_remove(slot);
                }
            }
        }
        // The 2:1 mix keeps the index growing.
        assert!(
            inserts > ops.len() / 2,
            "{inserts} inserts of {}",
            ops.len()
        );
    }

    #[test]
    fn script_lines_replay_the_ops() {
        let ops = vec![
            ChurnOp::Insert(b"jim gray".to_vec()),
            ChurnOp::Remove(3),
            ChurnOp::Insert(b"  leading spaces kept".to_vec()),
        ];
        let lines = churn_script(&ops);
        assert_eq!(lines[0], b":add jim gray");
        assert_eq!(lines[1], b":rm 3");
        assert_eq!(lines[2], b":add   leading spaces kept");
    }

    #[test]
    fn empty_base_still_inserts() {
        let ops = churn_ops(&[], 10, 1);
        assert!(ops.iter().any(|op| matches!(op, ChurnOp::Insert(_))));
    }
}
