//! The three evaluation corpora (paper Table 2 / Figure 11), synthesized.
//!
//! The paper evaluates on DBLP Author, AOL Query Log, and DBLP
//! Author+Title, none of which can be redistributed here. These generators
//! produce corpora matching each dataset's published statistics
//! (cardinality scaled, average/min/max lengths kept) and qualitative
//! length-distribution shape, built from Zipf-weighted vocabularies so
//! that segment/gram sharing — the property join performance actually
//! depends on — resembles real text. See DESIGN.md §4 for the substitution
//! rationale.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sj_common::StringCollection;

use crate::mutate::mutate;
use crate::vocab::Vocab;

/// Which evaluation corpus to synthesize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// Short strings: person names (paper: DBLP Author, avg length 14.8).
    Author,
    /// Medium strings: search-engine queries (paper: AOL Query Log,
    /// avg length 44.75, minimum 30).
    QueryLog,
    /// Long strings: author list + paper title (paper: DBLP Author+Title,
    /// avg length 105.8).
    AuthorTitle,
}

impl DatasetKind {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Author => "Author",
            DatasetKind::QueryLog => "Query Log",
            DatasetKind::AuthorTitle => "Author+Title",
        }
    }

    /// All three corpora in the paper's order.
    pub fn all() -> [DatasetKind; 3] {
        [
            DatasetKind::Author,
            DatasetKind::QueryLog,
            DatasetKind::AuthorTitle,
        ]
    }

    /// The paper's Table 2 row: (cardinality, avg len, max len, min len).
    pub fn paper_stats(&self) -> (usize, f64, usize, usize) {
        match self {
            DatasetKind::Author => (612_781, 14.826, 46, 6),
            DatasetKind::QueryLog => (464_189, 44.75, 522, 30),
            DatasetKind::AuthorTitle => (863_073, 105.82, 886, 21),
        }
    }

    /// Length bounds `[min, max]` enforced on generated strings.
    pub fn length_bounds(&self) -> (usize, usize) {
        match self {
            DatasetKind::Author => (6, 46),
            DatasetKind::QueryLog => (30, 522),
            DatasetKind::AuthorTitle => (21, 886),
        }
    }

    /// The τ values the paper sweeps for this dataset in Figures 12–14.
    pub fn figure12_taus(&self) -> &'static [usize] {
        match self {
            DatasetKind::Author => &[1, 2, 3, 4],
            DatasetKind::QueryLog => &[4, 5, 6, 7, 8],
            DatasetKind::AuthorTitle => &[5, 6, 7, 8, 9, 10],
        }
    }

    /// The τ values the paper sweeps for this dataset in Figure 15.
    pub fn figure15_taus(&self) -> &'static [usize] {
        match self {
            DatasetKind::Author => &[1, 2, 3, 4],
            DatasetKind::QueryLog => &[1, 2, 3, 4, 5, 6, 7, 8],
            DatasetKind::AuthorTitle => &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10],
        }
    }
}

/// A reproducible recipe for one synthetic corpus.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    /// Which corpus shape to generate.
    pub kind: DatasetKind,
    /// Number of strings.
    pub cardinality: usize,
    /// RNG seed; equal specs generate byte-identical corpora.
    pub seed: u64,
    /// Fraction of strings emitted as mutated copies of earlier strings
    /// (the planted near-duplicates a similarity join is meant to find).
    pub duplicate_rate: f64,
    /// Mutated copies receive `1..=max_planted_edits` random edits.
    pub max_planted_edits: usize,
}

impl DatasetSpec {
    /// A spec with the defaults used throughout the benchmark harness:
    /// seed 42, 20% near-duplicates within 4 edits.
    pub fn new(kind: DatasetKind, cardinality: usize) -> Self {
        Self {
            kind,
            cardinality,
            seed: 42,
            duplicate_rate: 0.20,
            max_planted_edits: 4,
        }
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the near-duplicate fraction.
    pub fn with_duplicate_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate));
        self.duplicate_rate = rate;
        self
    }

    /// Overrides the edit cap on planted duplicates (`≥ 1`). A cap of 1
    /// plants duplicates exactly one edit from their base — the regime
    /// set-similarity dedup at high thresholds is expected to recover.
    pub fn with_max_planted_edits(mut self, edits: usize) -> Self {
        assert!(edits >= 1, "planted duplicates need at least one edit");
        self.max_planted_edits = edits;
        self
    }

    /// Generates the corpus as raw strings, in generation order.
    pub fn generate(&self) -> Vec<Vec<u8>> {
        self.generate_with_truth().0
    }

    /// Generates the corpus plus the planted-duplicate ground truth:
    /// `(duplicate index, base index)` pairs, one per mutated copy that
    /// made it into the corpus. The corpus is byte-identical to
    /// [`DatasetSpec::generate`] for the same spec — the truth is a free
    /// side channel, not a different generator.
    pub fn generate_with_truth(&self) -> (Vec<Vec<u8>>, Vec<(u32, u32)>) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let gen = Generator::new(self.kind, self.seed);
        let (min_len, max_len) = self.kind.length_bounds();
        let mut out: Vec<Vec<u8>> = Vec::with_capacity(self.cardinality);
        let mut truth: Vec<(u32, u32)> = Vec::new();
        while out.len() < self.cardinality {
            if !out.is_empty() && rng.gen_bool(self.duplicate_rate) {
                let base = rng.gen_range(0..out.len());
                let edits = rng.gen_range(1..=self.max_planted_edits);
                let m = mutate(&out[base], edits, &mut rng);
                if m.len() < min_len || m.len() > max_len {
                    continue; // mutation pushed it out of bounds; retry
                }
                truth.push((out.len() as u32, base as u32));
                out.push(m);
            } else {
                out.push(gen.fresh(&mut rng));
            }
        }
        (out, truth)
    }

    /// Generates the corpus already wrapped in a sorted
    /// [`StringCollection`].
    pub fn collection(&self) -> StringCollection {
        StringCollection::new(self.generate())
    }
}

/// Vocabulary bundle for one dataset kind.
struct Generator {
    kind: DatasetKind,
    given: Vocab,
    family: Vocab,
    words: Vocab,
}

impl Generator {
    fn new(kind: DatasetKind, seed: u64) -> Self {
        // Separate, seed-derived vocabularies so the three corpora differ
        // even under the same seed.
        let salt = match kind {
            DatasetKind::Author => 0x0a,
            DatasetKind::QueryLog => 0x0b,
            DatasetKind::AuthorTitle => 0x0c,
        };
        Self {
            kind,
            given: Vocab::new(4_000, 2, 3, 0.9, seed ^ (salt << 8)),
            family: Vocab::new(12_000, 2, 4, 0.9, seed ^ (salt << 16)),
            words: Vocab::new(30_000, 1, 4, 1.05, seed ^ (salt << 24)),
        }
    }

    fn fresh<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<u8> {
        let (min_len, max_len) = self.kind.length_bounds();
        // Rejection-sample until the string is in bounds; the target
        // distributions make rejections rare.
        loop {
            let s = match self.kind {
                DatasetKind::Author => self.author(rng),
                DatasetKind::QueryLog => self.query(rng),
                DatasetKind::AuthorTitle => self.author_title(rng),
            };
            if s.len() >= min_len && s.len() <= max_len {
                return s;
            }
        }
    }

    /// A person name: "given family" with occasional initials, middle
    /// names, and hyphenated families — the mixture that produces the
    /// unimodal Figure 11(a) hump around length 13–16.
    fn author<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<u8> {
        let mut s = Vec::with_capacity(24);
        match rng.gen_range(0..10) {
            // "g. family"
            0 => {
                s.push(self.given.sample(rng)[0]);
                s.extend_from_slice(b". ");
                s.extend_from_slice(self.family.sample(rng));
            }
            // "given m. family"
            1 | 2 => {
                s.extend_from_slice(self.given.sample(rng));
                s.push(b' ');
                s.push(self.given.sample(rng)[0]);
                s.extend_from_slice(b". ");
                s.extend_from_slice(self.family.sample(rng));
            }
            // "given family-family"
            3 => {
                s.extend_from_slice(self.given.sample(rng));
                s.push(b' ');
                s.extend_from_slice(self.family.sample(rng));
                s.push(b'-');
                s.extend_from_slice(self.family.sample(rng));
            }
            // "given family"
            _ => {
                s.extend_from_slice(self.given.sample(rng));
                s.push(b' ');
                s.extend_from_slice(self.family.sample(rng));
            }
        }
        s
    }

    /// A search query: words appended until a log-normal target length is
    /// reached (right-skewed like Figure 11(b); the ≥30 floor matches the
    /// AOL extract the paper used).
    fn query<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<u8> {
        let target = lognormal_len(rng, 40.0, 0.35);
        let mut s = Vec::with_capacity(target + 8);
        while s.len() < target.max(30) {
            if !s.is_empty() {
                s.push(b' ');
            }
            s.extend_from_slice(self.words.sample(rng));
        }
        s
    }

    /// An author list plus a title: "given family, given family. title
    /// words …" — long strings with a heavy tail like Figure 11(c).
    fn author_title<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<u8> {
        let mut s = Vec::with_capacity(128);
        let authors = 1 + rng.gen_range(0..3);
        for a in 0..authors {
            if a > 0 {
                s.extend_from_slice(b", ");
            }
            s.extend_from_slice(self.given.sample(rng));
            s.push(b' ');
            s.extend_from_slice(self.family.sample(rng));
        }
        s.extend_from_slice(b". ");
        let target = s.len() + lognormal_len(rng, 68.0, 0.45);
        while s.len() < target {
            s.extend_from_slice(self.words.sample(rng));
            s.push(b' ');
        }
        s.pop();
        s
    }
}

/// Samples ⌊exp(N(ln median, σ))⌋, a right-skewed length target.
fn lognormal_len<R: Rng + ?Sized>(rng: &mut R, median: f64, sigma: f64) -> usize {
    // Box–Muller from two uniforms; StdRng is seedable and portable.
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (median * (sigma * z).exp()) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn author_stats_track_table2() {
        let spec = DatasetSpec::new(DatasetKind::Author, 5_000);
        let c = spec.collection();
        assert_eq!(c.len(), 5_000);
        let (_, paper_avg, paper_max, paper_min) = DatasetKind::Author.paper_stats();
        assert!(
            c.min_len() >= paper_min,
            "min {} < {}",
            c.min_len(),
            paper_min
        );
        assert!(c.max_len() <= paper_max);
        let avg = c.avg_len();
        assert!(
            (paper_avg - 4.0..=paper_avg + 4.0).contains(&avg),
            "avg len {avg:.1} far from paper's {paper_avg}"
        );
    }

    #[test]
    fn querylog_stats_track_table2() {
        let spec = DatasetSpec::new(DatasetKind::QueryLog, 3_000);
        let c = spec.collection();
        let (_, paper_avg, _, paper_min) = DatasetKind::QueryLog.paper_stats();
        assert!(c.min_len() >= paper_min);
        assert!(c.max_len() <= 522);
        let avg = c.avg_len();
        assert!(
            (paper_avg - 10.0..=paper_avg + 10.0).contains(&avg),
            "avg len {avg:.1} far from paper's {paper_avg}"
        );
    }

    #[test]
    fn author_title_stats_track_table2() {
        let spec = DatasetSpec::new(DatasetKind::AuthorTitle, 3_000);
        let c = spec.collection();
        let (_, paper_avg, _, paper_min) = DatasetKind::AuthorTitle.paper_stats();
        assert!(c.min_len() >= paper_min);
        assert!(c.max_len() <= 886);
        let avg = c.avg_len();
        assert!(
            (paper_avg - 25.0..=paper_avg + 25.0).contains(&avg),
            "avg len {avg:.1} far from paper's {paper_avg}"
        );
    }

    #[test]
    fn deterministic_generation() {
        let a = DatasetSpec::new(DatasetKind::Author, 200).generate();
        let b = DatasetSpec::new(DatasetKind::Author, 200).generate();
        assert_eq!(a, b);
        let c = DatasetSpec::new(DatasetKind::Author, 200)
            .with_seed(7)
            .generate();
        assert_ne!(a, c);
    }

    #[test]
    fn duplicate_rate_plants_near_duplicates() {
        // With near-duplicates planted, a τ=4 join finds far more similar
        // pairs than a duplicate-free corpus of the same size.
        let count_similar = |rate: f64| {
            let v = DatasetSpec::new(DatasetKind::Author, 400)
                .with_duplicate_rate(rate)
                .generate();
            let mut pairs = 0usize;
            for i in 0..v.len() {
                for j in i + 1..v.len() {
                    if v[i].len().abs_diff(v[j].len()) <= 4
                        && editdist::edit_distance(&v[i], &v[j]) <= 4
                    {
                        pairs += 1;
                    }
                }
            }
            pairs
        };
        let with = count_similar(0.4);
        let without = count_similar(0.0);
        assert!(
            with >= without + 50,
            "planted duplicates missing: with={with} without={without}"
        );
    }

    #[test]
    fn ascii_only_output() {
        for kind in DatasetKind::all() {
            let strings = DatasetSpec::new(kind, 300).generate();
            for s in &strings {
                assert!(s.iter().all(u8::is_ascii), "{kind:?} produced non-ASCII");
            }
        }
    }

    #[test]
    fn truth_is_a_free_side_channel() {
        let spec = DatasetSpec::new(DatasetKind::QueryLog, 2_000)
            .with_seed(9)
            .with_duplicate_rate(0.15)
            .with_max_planted_edits(1);
        let (corpus, truth) = spec.generate_with_truth();
        // Same spec, plain generate: byte-identical corpus.
        assert_eq!(corpus, spec.generate());
        assert!(!truth.is_empty(), "15% of 2000 should plant duplicates");
        for &(dup, base) in &truth {
            assert!(base < dup, "a duplicate must come after its base");
            let d = editdist::edit_distance(&corpus[dup as usize], &corpus[base as usize]);
            assert!(d <= 1, "max_planted_edits=1 but pair is {d} edits apart");
        }
    }
}
