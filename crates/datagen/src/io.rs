//! Loading and saving corpora as newline-delimited text files — the format
//! the paper's datasets are distributed in.

use std::fs;
use std::io::{self, Write};
use std::path::Path;

use sj_common::StringCollection;

/// Loads a corpus from a newline-delimited file; empty lines are skipped.
pub fn load_lines(path: &Path) -> io::Result<StringCollection> {
    let bytes = fs::read(path)?;
    let strings: Vec<Vec<u8>> = bytes
        .split(|&b| b == b'\n')
        .map(|line| line.strip_suffix(b"\r").unwrap_or(line))
        .filter(|line| !line.is_empty())
        .map(<[u8]>::to_vec)
        .collect();
    Ok(StringCollection::new(strings))
}

/// Writes strings (in the given order) as a newline-delimited file.
pub fn save_lines<S: AsRef<[u8]>>(path: &Path, strings: &[S]) -> io::Result<()> {
    let mut out = io::BufWriter::new(fs::File::create(path)?);
    for s in strings {
        out.write_all(s.as_ref())?;
        out.write_all(b"\n")?;
    }
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let dir = std::env::temp_dir().join("datagen_io_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.txt");
        let strings = vec![b"alpha".to_vec(), b"beta gamma".to_vec(), b"x".to_vec()];
        save_lines(&path, &strings).unwrap();
        let coll = load_lines(&path).unwrap();
        assert_eq!(coll.len(), 3);
        // Original positions survive the round trip.
        let mut seen: Vec<&[u8]> = coll.iter().map(|(_, s)| s).collect();
        seen.sort();
        assert_eq!(seen, vec![b"alpha".as_slice(), b"beta gamma", b"x"]);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn skips_blank_and_crlf_lines() {
        let dir = std::env::temp_dir().join("datagen_io_test2");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("crlf.txt");
        fs::write(&path, b"one\r\n\r\ntwo\n\nthree").unwrap();
        let coll = load_lines(&path).unwrap();
        assert_eq!(coll.len(), 3);
        assert_eq!(coll.get(0), b"one");
        fs::remove_file(&path).unwrap();
    }
}
