//! Synthetic corpora reproducing the Pass-Join evaluation datasets.
//!
//! The paper (§6) evaluates on three corpora that cannot be redistributed
//! with this workspace: DBLP Author (short strings), AOL Query Log (medium)
//! and DBLP Author+Title (long). [`DatasetSpec`] synthesizes stand-ins that
//! match the published Table 2 statistics and the Figure 11 length-
//! distribution shapes, built from Zipf-weighted pronounceable
//! vocabularies plus planted near-duplicates. Everything is deterministic
//! in the seed.
//!
//! ```
//! use datagen::{DatasetKind, DatasetSpec};
//! let corpus = DatasetSpec::new(DatasetKind::Author, 1000).collection();
//! assert_eq!(corpus.len(), 1000);
//! assert!(corpus.min_len() >= 6 && corpus.max_len() <= 46); // Table 2 bounds
//! ```
//!
//! Users with the real datasets can load them instead via [`io::load_lines`]
//! — every downstream API consumes a plain `StringCollection`.

pub mod churn;
pub mod corpora;
pub mod io;
pub mod mutate;
pub mod vocab;
pub mod zipf;

pub use churn::{churn_ops, churn_script, ChurnOp};
pub use corpora::{DatasetKind, DatasetSpec};
pub use mutate::mutate;
