//! Controlled edit mutations for planting near-duplicate pairs.
//!
//! Real data-cleaning corpora contain misspelled and OCR-damaged copies of
//! the same entities; the generators reproduce that by emitting mutated
//! copies of earlier strings. `mutate(s, k, …)` applies exactly `k` random
//! single-character edits, so the copy is within edit distance `k` of its
//! source (possibly less, if edits cancel).

use rand::Rng;

/// Alphabet used for substitutions and insertions (lowercase + space, the
/// character set of the evaluation corpora).
const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz ";

/// Applies exactly `edits` random insert/delete/substitute operations.
///
/// The result length never drops below 1 (deletions are skipped on
/// single-byte strings in favour of substitutions).
pub fn mutate<R: Rng + ?Sized>(s: &[u8], edits: usize, rng: &mut R) -> Vec<u8> {
    let mut out = s.to_vec();
    for _ in 0..edits {
        let op = rng.gen_range(0..3);
        match op {
            // substitute
            0 if !out.is_empty() => {
                let i = rng.gen_range(0..out.len());
                out[i] = ALPHABET[rng.gen_range(0..ALPHABET.len())];
            }
            // delete
            1 if out.len() > 1 => {
                let i = rng.gen_range(0..out.len());
                out.remove(i);
            }
            // insert (also the fallback for empty/short strings)
            _ => {
                let i = rng.gen_range(0..=out.len());
                out.insert(i, ALPHABET[rng.gen_range(0..ALPHABET.len())]);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use editdist::edit_distance as dist;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mutation_stays_within_budget() {
        let mut rng = StdRng::seed_from_u64(99);
        let base = b"partition based similarity join";
        for edits in 0..=6 {
            for _ in 0..50 {
                let m = mutate(base, edits, &mut rng);
                assert!(dist(base, &m) <= edits, "edits={edits}");
                assert!(!m.is_empty());
            }
        }
    }

    #[test]
    fn zero_edits_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(mutate(b"abc", 0, &mut rng), b"abc");
    }

    #[test]
    fn survives_tiny_inputs() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let m = mutate(b"x", 3, &mut rng);
            assert!(!m.is_empty());
        }
    }
}
