//! Synthetic vocabularies: pronounceable words sampled Zipfian-ly.
//!
//! Words are built from consonant/vowel syllables so they look like names
//! and English-ish tokens, giving the corpora realistic character n-gram
//! statistics (important for the q-gram baseline: uniformly random bytes
//! would make every gram rare and flatter ED-Join's filtering than reality).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;

const CONSONANTS: &[u8] = b"bcdfghjklmnprstvwz";
const VOWELS: &[u8] = b"aeiou";

/// A fixed vocabulary plus a Zipf law over it.
#[derive(Debug, Clone)]
pub struct Vocab {
    words: Vec<Vec<u8>>,
    zipf: Zipf,
}

impl Vocab {
    /// Builds `n` distinct pronounceable words of `min_syll..=max_syll`
    /// syllables, deterministically from `seed`, with a Zipf(`s`) law.
    pub fn new(n: usize, min_syll: usize, max_syll: usize, s: f64, seed: u64) -> Self {
        assert!(n > 0 && min_syll >= 1 && max_syll >= min_syll);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut words = Vec::with_capacity(n);
        let mut seen = std::collections::HashSet::with_capacity(n);
        while words.len() < n {
            let sylls = rng.gen_range(min_syll..=max_syll);
            let mut w = Vec::with_capacity(sylls * 3);
            for _ in 0..sylls {
                w.push(CONSONANTS[rng.gen_range(0..CONSONANTS.len())]);
                w.push(VOWELS[rng.gen_range(0..VOWELS.len())]);
                if rng.gen_bool(0.3) {
                    w.push(CONSONANTS[rng.gen_range(0..CONSONANTS.len())]);
                }
            }
            if seen.insert(w.clone()) {
                words.push(w);
            }
        }
        Self {
            words,
            zipf: Zipf::new(n, s),
        }
    }

    /// Samples a word by Zipf rank.
    pub fn sample<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> &'a [u8] {
        &self.words[self.zipf.sample(rng)]
    }

    /// The word at a fixed rank (rank 0 = most frequent).
    pub fn word(&self, rank: usize) -> &[u8] {
        &self.words[rank]
    }

    /// Vocabulary size.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if the vocabulary is empty (never: the constructor requires
    /// `n > 0`).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_are_distinct_and_lowercase() {
        let v = Vocab::new(500, 1, 3, 1.0, 42);
        assert_eq!(v.len(), 500);
        let mut set = std::collections::HashSet::new();
        for i in 0..v.len() {
            let w = v.word(i);
            assert!(!w.is_empty());
            assert!(w.iter().all(|c| c.is_ascii_lowercase()));
            assert!(set.insert(w.to_vec()), "duplicate word");
        }
    }

    #[test]
    fn deterministic() {
        let a = Vocab::new(50, 1, 2, 1.0, 9);
        let b = Vocab::new(50, 1, 2, 1.0, 9);
        for i in 0..50 {
            assert_eq!(a.word(i), b.word(i));
        }
    }

    #[test]
    fn sampling_reuses_head_words() {
        let v = Vocab::new(1000, 1, 3, 1.0, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let mut head = 0;
        for _ in 0..1000 {
            let w = v.sample(&mut rng);
            if w == v.word(0) || w == v.word(1) || w == v.word(2) {
                head += 1;
            }
        }
        assert!(head > 100, "Zipf head not dominant: {head}");
    }
}
