//! A Zipf-distributed sampler over ranks `0..n`.
//!
//! Token frequencies in names, queries, and titles are famously Zipfian;
//! sampling vocabulary ranks from a Zipf law is what gives the synthetic
//! corpora their realistic shared-substring structure (and hence realistic
//! inverted-list length distributions — the quantity that actually drives
//! similarity-join cost).

use rand::Rng;

/// Zipf sampler using an inverse-CDF table: O(n) setup, O(log n) sampling.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative (unnormalized) weights; `cdf[k]` = Σ_{j≤k} 1/(j+1)^s.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler over ranks `0..n` with exponent `s` (≈1.0 for
    /// natural language tokens).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over an empty domain");
        assert!(s.is_finite(), "non-finite Zipf exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the domain has a single rank.
    pub fn is_empty(&self) -> bool {
        false // constructor rejects n == 0
    }

    /// Samples a rank in `0..n`; rank 0 is the most likely.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cdf.last().expect("non-empty cdf");
        let u = rng.gen_range(0.0..total);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rank_zero_dominates() {
        let zipf = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 1000];
        for _ in 0..20_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[0] > counts[10] * 4);
        // Head mass: the first 100 ranks carry most samples at s=1.
        let head: usize = counts[..100].iter().sum();
        assert!(head > 12_000, "head mass too small: {head}");
    }

    #[test]
    fn all_ranks_reachable_in_small_domain() {
        let zipf = Zipf::new(4, 1.0);
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..2000 {
            seen[zipf.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn deterministic_under_seed() {
        let zipf = Zipf::new(100, 1.2);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(3);
            (0..50).map(|_| zipf.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(3);
            (0..50).map(|_| zipf.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_exponent_zero() {
        let zipf = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = vec![0usize; 10];
        for _ in 0..10_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "not near-uniform: {counts:?}");
        }
    }
}
