//! The "2τ+1" kernel: classic band of `|i−j| ≤ τ` with naive row-minimum
//! early termination.
//!
//! This is the baseline the paper's Figure 14 labels `2τ+1` — the state of
//! the art *before* Pass-Join's length-aware improvement (§5.1 attributes
//! it to the length pruning of Trie-Join). Each row computes at most 2τ+1
//! cells; computation stops as soon as a whole row exceeds τ, because DP
//! values never decrease down a column.

use crate::{DpWorkspace, INF};

/// `Some(ed(a, b))` if it is at most `tau`, else `None`, computed with the
/// 2τ+1-wide band. Allocating convenience wrapper around
/// [`banded_within_ws`].
///
/// ```
/// use editdist::banded_within;
/// assert_eq!(banded_within(b"kitten", b"sitting", 3), Some(3));
/// assert_eq!(banded_within(b"kitten", b"sitting", 2), None);
/// ```
pub fn banded_within(a: &[u8], b: &[u8], tau: usize) -> Option<usize> {
    banded_within_ws(a, b, tau, &mut DpWorkspace::new())
}

/// [`banded_within`] with caller-provided row buffers (hot-path variant).
pub fn banded_within_ws(a: &[u8], b: &[u8], tau: usize, ws: &mut DpWorkspace) -> Option<usize> {
    // Rows iterate over the shorter string: O((2τ+1)·min(|a|,|b|)).
    let (r, s) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let (m, n) = (r.len(), s.len());
    if n - m > tau {
        return None;
    }
    if m == 0 {
        return Some(n); // n ≤ tau by the check above
    }

    let (prev, cur) = ws.rows(n + 2);
    let tau_u = tau.min(n); // widest usable band reach

    // Row 0: M(0, j) = j for j ≤ τ, sentinel just past the window.
    for (j, cell) in prev.iter_mut().enumerate().take(tau_u + 1) {
        *cell = j as u32;
    }
    if tau_u < n {
        prev[tau_u + 1] = INF;
    }

    for i in 1..=m {
        let wlo = i.saturating_sub(tau);
        let whi = (i + tau).min(n);
        if wlo > n {
            return None; // the band has slid off the matrix
        }
        let mut row_min = INF;

        let mut j = wlo;
        if j == 0 {
            // In-band only when i ≤ τ, which saturating_sub guarantees.
            cur[0] = i as u32;
            row_min = i as u32;
            j = 1;
        } else {
            cur[wlo - 1] = INF; // sentinel for our own left edge
        }
        let rc = r[i - 1];
        while j <= whi {
            let d = (prev[j] + 1)
                .min(cur[j - 1] + 1)
                .min(prev[j - 1] + u32::from(rc != s[j - 1]));
            cur[j] = d;
            row_min = row_min.min(d);
            j += 1;
        }
        if whi < n {
            cur[whi + 1] = INF; // sentinel for our right edge
        }
        if row_min > tau as u32 {
            return None;
        }
        std::mem::swap(prev, cur);
    }

    let d = prev[n] as usize;
    (d <= tau).then_some(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edit_distance;

    #[test]
    fn agrees_with_reference_on_known_pairs() {
        let cases: &[(&[u8], &[u8])] = &[
            (b"kitten", b"sitting"),
            (b"sunday", b"saturday"),
            (b"vankatesh", b"avataresha"),
            (b"kaushik chakrab", b"caushik chakrabar"),
            (b"", b""),
            (b"", b"abc"),
            (b"abc", b"abc"),
        ];
        for &(a, b) in cases {
            let d = edit_distance(a, b);
            for tau in 0..=8 {
                let got = banded_within(a, b, tau);
                assert_eq!(got, (d <= tau).then_some(d), "{a:?} {b:?} tau={tau}");
            }
        }
    }

    #[test]
    fn tau_zero_is_equality() {
        assert_eq!(banded_within(b"abc", b"abc", 0), Some(0));
        assert_eq!(banded_within(b"abc", b"abd", 0), None);
        assert_eq!(banded_within(b"abc", b"abcd", 0), None);
    }

    #[test]
    fn length_difference_rejects_fast() {
        assert_eq!(banded_within(b"a", b"abcdefgh", 3), None);
    }

    #[test]
    fn workspace_reuse_is_clean() {
        // Run a pair that early-terminates, then one that succeeds, with the
        // same workspace; stale buffer contents must not leak.
        let mut ws = DpWorkspace::new();
        assert_eq!(banded_within_ws(b"aaaaaaaa", b"zzzzzzzz", 2, &mut ws), None);
        assert_eq!(banded_within_ws(b"kitten", b"sitting", 3, &mut ws), Some(3));
        assert_eq!(banded_within_ws(b"abc", b"abc", 3, &mut ws), Some(0));
    }

    #[test]
    fn early_termination_does_not_lose_results() {
        // Distance exactly tau: termination must not fire prematurely.
        assert_eq!(banded_within(b"abcdef", b"ghijkl", 6), Some(6));
        assert_eq!(banded_within(b"abcdef", b"ghijkl", 5), None);
    }
}
