//! Extension-based verification (paper §5.2).
//!
//! A candidate pair shares a segment: `r[seg_start..seg_start+seg_len]`
//! equals `s[probe_start..probe_start+seg_len]`. Aligning the pair on that
//! segment splits each string into a left part, the matching part, and a
//! right part. The pair is similar *via this alignment* iff
//! `ed(r_l, s_l) + ed(r_r, s_r) ≤ τ`, and the paper derives per-side
//! budgets from the multi-match analysis:
//!
//! * left: `τ_l = i − 1` — if the left parts need ≥ i edits, a later
//!   segment must also match and that occurrence will be (or was) probed;
//! * right: `τ_r = τ + 1 − i` — symmetric argument on the τ+1−i segments
//!   to the right.
//!
//! Verifying an occurrence against these tight budgets cannot miss a
//! similar pair overall: for any similar pair some occurrence satisfies
//! both budgets (the pigeonhole witness), and every selector in this
//! workspace selects a superset of the multi-match windows that contain
//! that witness.

use crate::{length_aware_within_ws, DpWorkspace, SharedMatrix};

/// A candidate occurrence: *which* segment of the indexed string matched
/// *where* in the probe string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Occurrence {
    /// 1-based segment index `i` (1 ..= τ+1).
    pub slot: usize,
    /// Start of the segment in the indexed string `r` (0-based).
    pub seg_start: usize,
    /// Segment length in bytes.
    pub seg_len: usize,
    /// Start of the matching substring in the probe string `s` (0-based).
    pub probe_start: usize,
}

impl Occurrence {
    /// Left-side budget `τ_l = i − 1`.
    #[inline]
    pub fn tau_left(&self) -> usize {
        self.slot - 1
    }

    /// Right-side budget `τ_r = τ + 1 − i`.
    #[inline]
    pub fn tau_right(&self, tau: usize) -> usize {
        tau + 1 - self.slot
    }
}

/// Verifies candidate occurrences by extension, optionally sharing DP rows
/// across the strings of one inverted list (§5.3).
///
/// Protocol: call [`ExtensionVerifier::begin_scan`] once per
/// (probe string, occurrence) list probe, then
/// [`ExtensionVerifier::verify`] for each list entry in order.
///
/// ```
/// use editdist::{ExtensionVerifier, Occurrence};
/// // r = "kaushik chakrab" partitioned at τ=3; its 2nd segment "hik " is
/// // r[4..8]. s = "caushik chakrabar" contains "hik " at position 4.
/// let (r, s) = (b"kaushik chakrab", b"caushik chakrabar");
/// let occ = Occurrence { slot: 2, seg_start: 4, seg_len: 4, probe_start: 4 };
/// let mut v = ExtensionVerifier::new(true);
/// v.begin_scan(s, &occ, 3, r.len());
/// assert_eq!(v.verify(r, s, &occ), Some(3));
/// ```
#[derive(Debug)]
pub struct ExtensionVerifier {
    share_prefix: bool,
    left: SharedMatrix,
    right: SharedMatrix,
    ws: DpWorkspace,
    tau: usize,
}

impl ExtensionVerifier {
    /// Creates a verifier. With `share_prefix = true` the DP rows of
    /// consecutive [`ExtensionVerifier::verify`] calls are reused across
    /// common prefixes (the paper's best configuration, `SharePrefix` in
    /// Figure 14); with `false` every pair is verified from scratch
    /// (`Extension` in Figure 14).
    pub fn new(share_prefix: bool) -> Self {
        Self {
            share_prefix,
            left: SharedMatrix::new(),
            right: SharedMatrix::new(),
            ws: DpWorkspace::new(),
            tau: 0,
        }
    }

    /// True if this verifier shares DP rows across list entries.
    pub fn shares_prefix(&self) -> bool {
        self.share_prefix
    }

    /// Prepares for verifying the entries of one inverted list: fixes the
    /// probe string `s`, the occurrence geometry, the join threshold, and
    /// the (common) length `r_len` of the list strings.
    pub fn begin_scan(&mut self, s: &[u8], occ: &Occurrence, tau: usize, r_len: usize) {
        self.tau = tau;
        if self.share_prefix {
            let s_left = &s[..occ.probe_start];
            let s_right = &s[occ.probe_start + occ.seg_len..];
            let r_left_len = occ.seg_start;
            let r_right_len = r_len - occ.seg_start - occ.seg_len;
            self.left.begin_scan(s_left, r_left_len, occ.tau_left());
            self.right
                .begin_scan(s_right, r_right_len, occ.tau_right(tau));
        }
    }

    /// Verifies one candidate pair via the occurrence's alignment.
    ///
    /// Returns `Some(d_l + d_r)` — a certificate that `ed(r, s) ≤ τ` —
    /// iff `d_l ≤ τ_l` and `d_r ≤ τ_r`. The certificate upper-bounds the
    /// true edit distance (the alignment through the shared segment need
    /// not be optimal). `None` rejects *this occurrence only*; a similar
    /// pair is accepted through its pigeonhole-witness occurrence.
    pub fn verify(&mut self, r: &[u8], s: &[u8], occ: &Occurrence) -> Option<usize> {
        debug_assert_eq!(
            &r[occ.seg_start..occ.seg_start + occ.seg_len],
            &s[occ.probe_start..occ.probe_start + occ.seg_len],
            "occurrence does not describe a matching segment"
        );
        let (dl, dr) = if self.share_prefix {
            let dl = self.left.distance(&r[..occ.seg_start])?;
            let dr = self.right.distance(&r[occ.seg_start + occ.seg_len..])?;
            (dl, dr)
        } else {
            let dl = length_aware_within_ws(
                &r[..occ.seg_start],
                &s[..occ.probe_start],
                occ.tau_left(),
                &mut self.ws,
            )?;
            let dr = length_aware_within_ws(
                &r[occ.seg_start + occ.seg_len..],
                &s[occ.probe_start + occ.seg_len..],
                occ.tau_right(self.tau),
                &mut self.ws,
            )?;
            (dl, dr)
        };
        debug_assert!(dl + dr <= self.tau);
        Some(dl + dr)
    }
}

/// One-shot extension verification of a single occurrence (test/demo
/// convenience; join drivers use [`ExtensionVerifier`] for buffer reuse).
pub fn verify_extension(r: &[u8], s: &[u8], occ: &Occurrence, tau: usize) -> Option<usize> {
    let mut v = ExtensionVerifier::new(false);
    v.begin_scan(s, occ, tau, r.len());
    v.verify(r, s, occ)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edit_distance;

    #[test]
    fn paper_example_section_5_2() {
        // §5.2: s5 = "kaushuk chadhui", s6 = "caushik chakrabar" share the
        // segment " cha" (s5's 3rd segment at τ=3). The pair must be
        // rejected: d_l = ed("kaushuk", "caushik") = 2 ≤ τ_l = 2, but the
        // right parts "dhui" vs "krabar" need ≥ 2 > τ_r = 1 edits.
        let r = b"kaushuk chadhui"; // len 15, segments at τ=3: 3,4,4,4
        let s = b"caushik chakrabar";
        // Even partition of len 15 into 4: k=15-3*4=3 ⇒ lens [3,4,4,4],
        // starts [0,3,7,11]. Segment 3 (1-based) is r[7..11] = " cha".
        assert_eq!(&r[7..11], b" cha");
        let occ = Occurrence {
            slot: 3,
            seg_start: 7,
            seg_len: 4,
            probe_start: s.iter().position(|&c| c == b' ').unwrap(),
        };
        assert_eq!(&s[occ.probe_start..occ.probe_start + 4], b" cha");
        assert_eq!(verify_extension(r, s, &occ, 3), None);
        assert!(edit_distance(r, s) > 3);
    }

    #[test]
    fn accepting_occurrence_certifies_distance() {
        // r = "kaushik chakrab", s = "caushik chakrabar", ed = 3 = τ.
        let r = b"kaushik chakrab";
        let s = b"caushik chakrabar";
        // Even partition of len 15 at τ=3: lens [3,4,4,4], starts [0,3,7,11].
        // Segment 2 is r[3..7] = "shik"; s contains "shik" at position 3.
        let occ = Occurrence {
            slot: 2,
            seg_start: 3,
            seg_len: 4,
            probe_start: 3,
        };
        assert_eq!(&r[3..7], b"shik");
        assert_eq!(&s[3..7], b"shik");
        let got = verify_extension(r, s, &occ, 3);
        assert_eq!(got, Some(3));
        assert_eq!(edit_distance(r, s), 3);
    }

    #[test]
    fn share_and_no_share_agree() {
        let s = b"caushik chakrabar";
        let rs: &[&[u8]] = &[b"kaushik chakrab", b"kaushuk chadhui"];
        let occ = Occurrence {
            slot: 2,
            seg_start: 3,
            seg_len: 4,
            probe_start: 3,
        };
        for &r in rs {
            if r[3..7] != s[3..7] {
                continue;
            }
            let one_shot = verify_extension(r, s, &occ, 3);
            let mut sharing = ExtensionVerifier::new(true);
            sharing.begin_scan(s, &occ, 3, r.len());
            assert_eq!(sharing.verify(r, s, &occ), one_shot);
        }
    }

    #[test]
    fn slot_budgets() {
        let occ = Occurrence {
            slot: 3,
            seg_start: 0,
            seg_len: 1,
            probe_start: 0,
        };
        assert_eq!(occ.tau_left(), 2);
        assert_eq!(occ.tau_right(4), 2);
        let first = Occurrence { slot: 1, ..occ };
        assert_eq!(first.tau_left(), 0);
        assert_eq!(first.tau_right(4), 4);
    }

    #[test]
    fn first_slot_requires_equal_left_parts() {
        // slot 1 ⇒ τ_l = 0: any non-empty left difference rejects.
        let r = b"abXYZ";
        let s = b"cabXYZ"; // "ab" matches at probe position 1
        let occ = Occurrence {
            slot: 1,
            seg_start: 0,
            seg_len: 2,
            probe_start: 1,
        };
        // left parts: "" vs "c" → lengths differ → d_l > 0 = τ_l.
        assert_eq!(verify_extension(r, s, &occ, 2), None);
    }
}
