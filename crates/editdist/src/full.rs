//! The unrestricted O(nm) edit-distance dynamic program.
//!
//! This is the reference against which every optimized kernel is
//! property-tested, the "straightforward method" the paper's §5.1 starts
//! from, and the verifier of the naive ground-truth join used in tests.

/// Levenshtein distance between `a` and `b` (insertions, deletions,
/// substitutions, unit cost), computed with the classic two-row dynamic
/// program in O(|a|·|b|) time and O(min(|a|,|b|)) space.
///
/// ```
/// use editdist::edit_distance;
/// assert_eq!(edit_distance(b"kaushic chaduri", b"kaushuk chadhui"), 4);
/// assert_eq!(edit_distance(b"", b"abc"), 3);
/// assert_eq!(edit_distance(b"vldb", b"pvldb"), 1);
/// ```
pub fn edit_distance(a: &[u8], b: &[u8]) -> usize {
    // Keep the shorter string on the row axis: the working rows then have
    // min(|a|,|b|)+1 entries.
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return long.len();
    }

    let mut prev: Vec<u32> = (0..=short.len() as u32).collect();
    let mut cur: Vec<u32> = vec![0; short.len() + 1];

    for (j, &cb) in long.iter().enumerate() {
        cur[0] = j as u32 + 1;
        for (i, &ca) in short.iter().enumerate() {
            let delete = prev[i + 1] + 1;
            let insert = cur[i] + 1;
            let replace = prev[i] + u32::from(ca != cb);
            cur[i + 1] = delete.min(insert).min(replace);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()] as usize
}

/// `Some(ed(a, b))` if it is at most `tau`, else `None` — computed with the
/// *full* dynamic program. Semantically identical to the banded kernels but
/// with no pruning; exists as the correctness oracle.
pub fn within_full(a: &[u8], b: &[u8], tau: usize) -> Option<usize> {
    let d = edit_distance(a, b);
    (d <= tau).then_some(d)
}

/// The full DP matrix `M` with `|a|+1` rows and `|b|+1` columns;
/// `M[i][j] = ed(a[..i], b[..j])`. Used by tests and by the worked-example
/// reproductions of Figure 7.
pub fn edit_distance_matrix(a: &[u8], b: &[u8]) -> Vec<Vec<u32>> {
    let mut m = vec![vec![0u32; b.len() + 1]; a.len() + 1];
    for (i, row) in m.iter_mut().enumerate() {
        row[0] = i as u32;
    }
    for (j, cell) in m[0].iter_mut().enumerate() {
        *cell = j as u32;
    }
    for i in 1..=a.len() {
        for j in 1..=b.len() {
            let delta = u32::from(a[i - 1] != b[j - 1]);
            m[i][j] = (m[i - 1][j] + 1)
                .min(m[i][j - 1] + 1)
                .min(m[i - 1][j - 1] + delta);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_running_examples() {
        assert_eq!(edit_distance(b"vldb", b"pvldb"), 1);
        // §2 of the paper: ed("kaushic chaduri", "kaushuk chadhui") = 4.
        assert_eq!(edit_distance(b"kaushic chaduri", b"kaushuk chadhui"), 4);
        // ⟨s4, s6⟩ = ⟨"kaushik chakrab", "caushik chakrabar"⟩ is the only
        // answer at τ=3 in the paper's running example (Figure 1).
        assert_eq!(edit_distance(b"kaushik chakrab", b"caushik chakrabar"), 3);
    }

    #[test]
    fn trivial_cases() {
        assert_eq!(edit_distance(b"", b""), 0);
        assert_eq!(edit_distance(b"", b"xyz"), 3);
        assert_eq!(edit_distance(b"xyz", b""), 3);
        assert_eq!(edit_distance(b"same", b"same"), 0);
        assert_eq!(edit_distance(b"a", b"b"), 1);
    }

    #[test]
    fn known_distances() {
        assert_eq!(edit_distance(b"kitten", b"sitting"), 3);
        assert_eq!(edit_distance(b"sunday", b"saturday"), 3);
        assert_eq!(edit_distance(b"flaw", b"lawn"), 2);
        assert_eq!(edit_distance(b"intention", b"execution"), 5);
    }

    #[test]
    fn symmetric() {
        let cases: &[(&[u8], &[u8])] = &[
            (b"abcdef", b"azced"),
            (b"", b"abc"),
            (b"vankatesh", b"avataresha"),
        ];
        for &(a, b) in cases {
            assert_eq!(edit_distance(a, b), edit_distance(b, a));
        }
    }

    #[test]
    fn within_full_thresholds() {
        assert_eq!(within_full(b"kitten", b"sitting", 3), Some(3));
        assert_eq!(within_full(b"kitten", b"sitting", 2), None);
        assert_eq!(within_full(b"abc", b"abc", 0), Some(0));
    }

    #[test]
    fn matrix_matches_two_row() {
        let a = b"vankatesh";
        let b = b"avataresha";
        let m = edit_distance_matrix(a, b);
        assert_eq!(m[a.len()][b.len()] as usize, edit_distance(a, b));
        // First row and column are the base cases.
        assert_eq!(m[0][4], 4);
        assert_eq!(m[5][0], 5);
    }
}
