//! The "τ+1" kernel: length-aware band plus expected-edit-distance early
//! termination (paper §5.1).
//!
//! Two refinements over the classic 2τ+1 band:
//!
//! 1. **Length-aware band.** Any transformation passing through `M(i, j)`
//!    costs at least `|i−j|` for the consumed prefixes *plus*
//!    `|Δ − (j−i)|` for the remaining suffixes (Δ = length difference), so
//!    row `i` only needs `j ∈ [i − ⌊(τ−Δ)/2⌋, i + ⌊(τ+Δ)/2⌋]` — at most
//!    τ+1 cells instead of 2τ+1.
//! 2. **Expected edit distance.** `E(i,j) = M(i,j) + |Δ − (j−i)|` lower-
//!    bounds the cost of any full transformation through `(i,j)`; when every
//!    cell of a row has `E > τ` the pair is rejected without computing the
//!    remaining rows (Lemma 4). This fires much earlier than the naive
//!    "row minimum > τ" rule — the paper's Figure 7 example stops at row 6
//!    instead of row 13.

use crate::{band_reach, DpWorkspace, INF};

/// `Some(ed(a, b))` if it is at most `tau`, else `None`, computed with the
/// length-aware τ+1 band. Allocating convenience wrapper around
/// [`length_aware_within_ws`].
///
/// ```
/// use editdist::length_aware_within;
/// assert_eq!(length_aware_within(b"kitten", b"sitting", 3), Some(3));
/// assert_eq!(length_aware_within(b"kitten", b"sitting", 2), None);
/// ```
pub fn length_aware_within(a: &[u8], b: &[u8], tau: usize) -> Option<usize> {
    length_aware_within_ws(a, b, tau, &mut DpWorkspace::new())
}

/// [`length_aware_within`] with caller-provided row buffers.
pub fn length_aware_within_ws(
    a: &[u8],
    b: &[u8],
    tau: usize,
    ws: &mut DpWorkspace,
) -> Option<usize> {
    // Rows iterate over the shorter string so Δ = n − m ≥ 0, matching the
    // paper's presentation (|s| ≥ |r|). Edit distance is symmetric.
    let (r, s) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let (m, n) = (r.len(), s.len());
    let delta = n - m;
    let (a_reach, b_reach) = band_reach(tau, delta as isize)?;
    if m == 0 {
        return Some(n); // n = Δ ≤ τ since band_reach accepted
    }
    let tau32 = tau as u32;

    let (prev, cur) = ws.rows(n + 2);

    // Row 0: M(0, j) = j for j ∈ [0, b_reach].
    let whi0 = b_reach.min(n);
    for (j, cell) in prev.iter_mut().enumerate().take(whi0 + 1) {
        *cell = j as u32;
    }
    if whi0 < n {
        prev[whi0 + 1] = INF;
    }

    for i in 1..=m {
        let wlo = i.saturating_sub(a_reach);
        let whi = (i + b_reach).min(n);
        // Row-minimum of E(i, j) = M(i, j) + |Δ − (j − i)|.
        let mut min_expected = INF;

        let mut j = wlo;
        if j == 0 {
            cur[0] = i as u32;
            min_expected = (i + delta + i) as u32;
            j = 1;
        } else {
            cur[wlo - 1] = INF;
        }
        let rc = r[i - 1];
        while j <= whi {
            let d = (prev[j] + 1)
                .min(cur[j - 1] + 1)
                .min(prev[j - 1] + u32::from(rc != s[j - 1]));
            cur[j] = d;
            // |Δ − (j − i)| without branching on sign.
            let remaining = (n - j).abs_diff(m - i) as u32;
            min_expected = min_expected.min(d + remaining);
            j += 1;
        }
        if whi < n {
            cur[whi + 1] = INF;
        }
        if min_expected > tau32 {
            return None;
        }
        std::mem::swap(prev, cur);
    }

    let d = prev[n] as usize;
    (d <= tau).then_some(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edit_distance;

    #[test]
    fn agrees_with_reference_on_known_pairs() {
        let cases: &[(&[u8], &[u8])] = &[
            (b"kitten", b"sitting"),
            (b"sunday", b"saturday"),
            (b"vankatesh", b"avataresha"),
            (b"kaushik chakrab", b"caushik chakrabar"),
            (b"kaushuk chadhui", b"caushik chakrabar"),
            (b"", b""),
            (b"", b"ab"),
            (b"abc", b"abc"),
            (b"abcdef", b"ghijkl"),
        ];
        for &(a, b) in cases {
            let d = edit_distance(a, b);
            for tau in 0..=8 {
                let got = length_aware_within(a, b, tau);
                assert_eq!(got, (d <= tau).then_some(d), "{a:?} {b:?} tau={tau}");
            }
        }
    }

    #[test]
    fn figure7_pair_terminates_and_rejects() {
        // Figure 7 of the paper: τ=3, the pair is rejected.
        let r = b"kaushuk chadhui";
        let s = b"caushik chakrabar";
        assert_eq!(length_aware_within(r, s, 3), None);
        let d = edit_distance(r, s);
        assert!(d > 3, "Figure 7 pair must be dissimilar at tau=3");
        assert_eq!(length_aware_within(r, s, d), Some(d));
        assert_eq!(length_aware_within(r, s, d - 1), None);
    }

    #[test]
    fn orientation_is_irrelevant() {
        let pairs: &[(&[u8], &[u8])] = &[
            (b"abcd", b"abcdefg"),
            (b"query log", b"querylog"),
            (b"xy", b"yx"),
        ];
        for &(a, b) in pairs {
            for tau in 0..=5 {
                assert_eq!(
                    length_aware_within(a, b, tau),
                    length_aware_within(b, a, tau)
                );
            }
        }
    }

    #[test]
    fn workspace_reuse_is_clean() {
        let mut ws = DpWorkspace::new();
        assert_eq!(
            length_aware_within_ws(b"aaaaaaaa", b"zzzzzzzz", 2, &mut ws),
            None
        );
        assert_eq!(
            length_aware_within_ws(b"kitten", b"sitting", 3, &mut ws),
            Some(3)
        );
        assert_eq!(length_aware_within_ws(b"", b"abc", 3, &mut ws), Some(3));
    }

    #[test]
    fn distance_equal_to_tau_survives() {
        assert_eq!(length_aware_within(b"abc", b"xyz", 3), Some(3));
        assert_eq!(length_aware_within(b"ab", b"ba", 2), Some(2));
    }
}
