//! Edit-distance verification kernels from Pass-Join §5.
//!
//! The paper's verification pipeline is a sequence of refinements over the
//! textbook dynamic program, each of which is exposed here as a separate
//! kernel so the Figure 14 ablation can benchmark them individually:
//!
//! | Paper name (Fig. 14) | Kernel | Idea |
//! |---|---|---|
//! | `2τ+1` | [`banded_within`] | compute only the `2τ+1` diagonals with `\|i−j\| ≤ τ`; stop when a whole row exceeds τ |
//! | `τ+1` | [`length_aware_within`] | §5.1: row `i` only needs `j ∈ [i−⌊(τ−Δ)/2⌋, i+⌊(τ+Δ)/2⌋]` (Δ = length difference), ≤ τ+1 cells; stop when every *expected* edit distance `E(i,j) = M(i,j) + \|(n−j)−(m−i)\|` exceeds τ (Lemma 4) |
//! | `Extension` | [`extension::ExtensionVerifier`] | §5.2: align the shared segment, verify left parts under `τ_l = i−1` and right parts under `τ_r = τ+1−i` |
//! | `SharePrefix` | [`shared::SharedMatrix`] | §5.3: consecutive strings on an inverted list share prefixes; keep the DP matrix and restart below the common prefix |
//!
//! All kernels operate on byte slices. The evaluation corpora are ASCII, so
//! byte edit distance equals character edit distance there; for non-ASCII
//! UTF-8 the semantics are byte-level (documented at the join entry points).
//!
//! [`edit_distance`] (the unrestricted O(nm) dynamic program) is the
//! reference implementation every other kernel is property-tested against.

pub mod banded;
pub mod extension;
pub mod full;
pub mod length_aware;
pub mod myers;
pub mod naive;
pub mod shared;

pub use banded::{banded_within, banded_within_ws};
pub use extension::{verify_extension, ExtensionVerifier, Occurrence};
pub use full::{edit_distance, within_full};
pub use length_aware::{length_aware_within, length_aware_within_ws};
pub use myers::{myers_distance, myers_within};
pub use naive::NaiveJoin;
pub use shared::SharedMatrix;

/// Cell value standing in for "outside the band / unreachable".
/// `u32::MAX / 2` leaves headroom so `INF + 1` cannot wrap.
pub(crate) const INF: u32 = u32::MAX / 2;

/// Reusable row buffers for the banded kernels.
///
/// Verification runs millions of times per join; allocating two rows per
/// call would dominate the profile. Join drivers own one workspace and pass
/// it to the `*_ws` kernel variants.
#[derive(Debug, Default, Clone)]
pub struct DpWorkspace {
    prev: Vec<u32>,
    cur: Vec<u32>,
}

impl DpWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures both rows can hold `cols` entries and returns them.
    #[inline]
    pub(crate) fn rows(&mut self, cols: usize) -> (&mut Vec<u32>, &mut Vec<u32>) {
        if self.prev.len() < cols {
            self.prev.resize(cols, INF);
            self.cur.resize(cols, INF);
        }
        (&mut self.prev, &mut self.cur)
    }
}

/// Computes the banded-row offsets of §5.1 for threshold `tau` and signed
/// length difference `delta = n − m` (right length minus left length).
///
/// Row `i` of the DP matrix only needs columns
/// `j ∈ [i − left_reach, i + right_reach]`; everything outside provably lies
/// on no transformation of cost ≤ τ (length pruning on both the consumed
/// prefixes and the remaining suffixes).
///
/// Returns `None` when `|delta| > tau`, in which case the strings cannot be
/// within `tau` at all.
#[inline]
pub(crate) fn band_reach(tau: usize, delta: isize) -> Option<(usize, usize)> {
    if delta.unsigned_abs() > tau {
        return None;
    }
    // τ − Δ and τ + Δ are both non-negative after the check above.
    let left = (tau as isize - delta) as usize / 2;
    let right = (tau as isize + delta) as usize / 2;
    Some((left, right))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_reach_matches_paper_examples() {
        // §5.1 example: τ=3, Δ=2 ⇒ compute j ∈ [i−0, i+2].
        assert_eq!(band_reach(3, 2), Some((0, 2)));
        // Symmetric orientation.
        assert_eq!(band_reach(3, -2), Some((2, 0)));
        // Δ=0 keeps ⌊τ/2⌋ on both sides.
        assert_eq!(band_reach(3, 0), Some((1, 1)));
        assert_eq!(band_reach(4, 0), Some((2, 2)));
    }

    #[test]
    fn band_reach_rejects_large_delta() {
        assert_eq!(band_reach(3, 4), None);
        assert_eq!(band_reach(3, -4), None);
        assert_eq!(band_reach(0, 1), None);
        assert_eq!(band_reach(0, 0), Some((0, 0)));
    }

    #[test]
    fn band_width_is_at_most_tau_plus_one() {
        for tau in 0..12usize {
            for delta in -(tau as isize)..=(tau as isize) {
                let (a, b) = band_reach(tau, delta).unwrap();
                assert!(a + b < tau + 1, "tau={tau} delta={delta}");
                // The band must at least contain the final cell's diagonal.
                assert!(a + b + 1 >= 1);
            }
        }
    }
}
