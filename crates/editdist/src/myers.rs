//! Myers' bit-parallel edit distance (Myers, JACM 1999).
//!
//! Not part of Pass-Join itself, but the strongest practical alternative to
//! banded dynamic programming for verification: the DP column is packed
//! into machine words (delta-encoded as horizontal/vertical +1/−1 bit
//! vectors), processing 64 pattern characters per word operation. The
//! `kernels` bench compares it against the paper's banded verifiers —
//! an ablation the paper does not run but that a production system would
//! want before committing to a verifier.
//!
//! This implementation handles patterns of arbitrary length by chaining
//! 64-bit blocks (the unbanded "multi-word" variant), tracking the score at
//! the last row only.

/// Levenshtein distance via Myers' bit-parallel algorithm.
///
/// ```
/// use editdist::myers_distance;
/// assert_eq!(myers_distance(b"kitten", b"sitting"), 3);
/// assert_eq!(myers_distance(b"", b"abc"), 3);
/// ```
pub fn myers_distance(a: &[u8], b: &[u8]) -> usize {
    // Pattern = shorter string (fewer blocks); text = longer.
    let (pattern, text) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let m = pattern.len();
    if m == 0 {
        return text.len();
    }

    let blocks = m.div_ceil(64);
    // peq[block][c] = bitmask of pattern positions in this block equal to c.
    // Rows beyond the pattern (the final block's padding) keep peq = 0;
    // since the DP only flows downward, padding rows below row m never
    // influence the tracked score bit.
    let mut peq = vec![[0u64; 256]; blocks];
    for (i, &c) in pattern.iter().enumerate() {
        peq[i / 64][c as usize] |= 1 << (i % 64);
    }

    // Per block: VP (vertical +1 deltas) and VN (vertical −1 deltas).
    let mut vp = vec![u64::MAX; blocks];
    let mut vn = vec![0u64; blocks];
    let last_block = blocks - 1;
    // The bit corresponding to the pattern's last row.
    let score_bit = 1u64 << ((m - 1) % 64);

    let mut score = m as isize;
    for &tc in text {
        // Horizontal delta entering block 0 is the top boundary
        // M(0, j) − M(0, j−1) = +1 (global edit distance).
        let mut hin: i32 = 1;
        for blk in 0..blocks {
            let eq0 = peq[blk][tc as usize];
            let pv = vp[blk];
            let nv = vn[blk];

            let xv = eq0 | nv;
            // A negative carry into the block acts like a match in row 0.
            let eq = eq0 | u64::from(hin < 0);
            let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;

            let mut ph = nv | !(xh | pv);
            let mut mh = pv & xh;

            if blk == last_block {
                if ph & score_bit != 0 {
                    score += 1;
                } else if mh & score_bit != 0 {
                    score -= 1;
                }
            }

            // Horizontal delta leaving this block (its top row).
            let hout = i32::from(ph >> 63 == 1) - i32::from(mh >> 63 == 1);
            ph = (ph << 1) | u64::from(hin > 0);
            mh = (mh << 1) | u64::from(hin < 0);

            vp[blk] = mh | !(xv | ph);
            vn[blk] = ph & xv;
            hin = hout;
        }
    }
    debug_assert!(score >= 0);
    score as usize
}

/// `Some(d)` iff `myers_distance(a, b) = d ≤ tau` (API parity with the
/// banded kernels; Myers has no early termination here, its win is raw
/// per-column throughput).
pub fn myers_within(a: &[u8], b: &[u8], tau: usize) -> Option<usize> {
    if a.len().abs_diff(b.len()) > tau {
        return None;
    }
    let d = myers_distance(a, b);
    (d <= tau).then_some(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edit_distance;

    #[test]
    fn known_values() {
        assert_eq!(myers_distance(b"kitten", b"sitting"), 3);
        assert_eq!(myers_distance(b"sunday", b"saturday"), 3);
        assert_eq!(myers_distance(b"", b""), 0);
        assert_eq!(myers_distance(b"abc", b""), 3);
        assert_eq!(myers_distance(b"same", b"same"), 0);
        assert_eq!(myers_distance(b"intention", b"execution"), 5);
    }

    #[test]
    fn agrees_with_reference_across_word_boundaries() {
        // Exercise patterns spanning 1..3 blocks (the carry chain).
        let base: Vec<u8> = (0..150u8).map(|i| b'a' + (i % 7)).collect();
        for m in [1usize, 8, 63, 64, 65, 100, 127, 128, 129, 150] {
            let p = &base[..m];
            let mut t = base.clone();
            t[m / 2] = b'z';
            t.truncate((m + 11).min(base.len()));
            assert_eq!(
                myers_distance(p, &t),
                edit_distance(p, &t),
                "pattern len {m}"
            );
        }
    }

    #[test]
    fn random_agreement_with_reference() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..400 {
            let n = rng.gen_range(0..180);
            let m = rng.gen_range(0..180);
            let a: Vec<u8> = (0..n).map(|_| rng.gen_range(b'a'..=b'd')).collect();
            let b: Vec<u8> = (0..m).map(|_| rng.gen_range(b'a'..=b'd')).collect();
            assert_eq!(myers_distance(&a, &b), edit_distance(&a, &b));
        }
    }

    #[test]
    fn within_matches_semantics() {
        assert_eq!(myers_within(b"kitten", b"sitting", 3), Some(3));
        assert_eq!(myers_within(b"kitten", b"sitting", 2), None);
        assert_eq!(myers_within(b"a", b"abcdef", 2), None); // length filter
    }
}
