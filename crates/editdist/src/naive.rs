//! The ground-truth join: verify every pair within the length filter.
//!
//! O(n²) candidate pairs, each verified with the length-aware kernel. Far
//! too slow for real corpora but unbeatable as a correctness oracle — every
//! filtering algorithm in this workspace is tested to produce exactly this
//! join's results.

use std::time::Instant;

use sj_common::join::emit_pair;
use sj_common::{JoinOutput, JoinStats, SimilarityJoin, StringCollection};

use crate::{length_aware_within_ws, DpWorkspace};

/// All-pairs similarity join with only the length filter (ground truth).
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveJoin;

impl SimilarityJoin for NaiveJoin {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn self_join(&self, collection: &StringCollection, tau: usize) -> JoinOutput {
        let started = Instant::now();
        let mut pairs = Vec::new();
        let mut stats = JoinStats {
            strings: collection.len() as u64,
            ..JoinStats::default()
        };
        let mut ws = DpWorkspace::new();

        for (id, s) in collection.iter() {
            // Ids ascend by length: only earlier ids within the length
            // window need checking, and the window is a contiguous range.
            let lo = collection
                .ids_with_len_in(s.len().saturating_sub(tau), s.len())
                .start;
            for rid in lo..id {
                let r = collection.get(rid);
                stats.candidate_pairs += 1;
                stats.verifications += 1;
                if length_aware_within_ws(r, s, tau, &mut ws).is_some() {
                    emit_pair(collection, rid, id, &mut pairs);
                    stats.results += 1;
                }
            }
        }

        JoinOutput {
            pairs,
            stats,
            elapsed: started.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_answer_at_tau3() {
        let c = StringCollection::from_strs(&[
            "avataresha",
            "caushik chakrabar",
            "kaushic chaduri",
            "kaushik chakrab",
            "kaushuk chadhui",
            "vankatesh",
        ]);
        let out = NaiveJoin.self_join(&c, 3);
        // Figure 1: the only similar pair is ⟨s4, s6⟩, i.e. input positions
        // 3 ("kaushik chakrab") and 1 ("caushik chakrabar").
        assert_eq!(out.normalized_pairs(), vec![(1, 3)]);
        assert_eq!(out.stats.results, 1);
    }

    #[test]
    fn duplicates_join_at_tau0() {
        let c = StringCollection::from_strs(&["abc", "abc", "abd", "abc"]);
        let out = NaiveJoin.self_join(&c, 0);
        assert_eq!(out.normalized_pairs(), vec![(0, 1), (0, 3), (1, 3)]);
    }

    #[test]
    fn empty_and_tiny_collections() {
        let out = NaiveJoin.self_join(&StringCollection::new(vec![]), 2);
        assert!(out.pairs.is_empty());
        let out = NaiveJoin.self_join(&StringCollection::from_strs(&["solo"]), 2);
        assert!(out.pairs.is_empty());
    }
}
