//! Shared-computation DP matrix (paper §5.3).
//!
//! When a selected substring `w` of the probe string hits an inverted list,
//! every string on the list is verified against the *same* probe-side part,
//! and the list entries are sorted, so consecutive entries often share long
//! prefixes. [`SharedMatrix`] keeps the banded DP rows of the previous
//! comparison; the next comparison restarts below the common prefix instead
//! of from row 1. Only a single matrix is kept — exactly the scheme the
//! paper describes ("we do not need to maintain multiple matrixes and only
//! keep a single matrix for the current string").

use sj_common::bytes::common_prefix_len;

use crate::{band_reach, INF};

/// A banded DP matrix that persists across comparisons against one fixed
/// right-hand string, reusing rows below the common prefix of consecutive
/// left-hand strings.
///
/// Scan protocol:
///
/// 1. [`SharedMatrix::begin_scan`] fixes the right-hand string, the
///    (constant) left-hand length, and the threshold;
/// 2. [`SharedMatrix::distance`] is called for each left-hand string in list
///    order and returns `Some(ed)` iff `ed ≤ τ`.
///
/// ```
/// use editdist::SharedMatrix;
/// let mut m = SharedMatrix::new();
/// m.begin_scan(b"kaushik", 7, 2);
/// assert_eq!(m.distance(b"kaushic"), Some(1));
/// assert_eq!(m.distance(b"kaushuk"), Some(1)); // reuses rows for "kaush"
/// assert_eq!(m.distance(b"zzzzzzz"), None);
/// ```
#[derive(Debug, Default, Clone)]
pub struct SharedMatrix {
    right: Vec<u8>,
    tau: usize,
    left_len: usize,
    a_reach: usize,
    b_reach: usize,
    /// False when the fixed length difference already exceeds τ.
    feasible: bool,
    /// Row stride; each row stores `right.len()+1` cells plus sentinel room.
    stride: usize,
    /// `(left_len + 1) × stride` cells; row `i` is the DP row for
    /// `prev_left[..i]` vs the fixed right string.
    rows: Vec<u32>,
    prev_left: Vec<u8>,
    /// Rows `0..valid_rows` are computed and consistent with `prev_left`.
    valid_rows: usize,
    /// True when row `valid_rows−1` proved "every expected distance > τ".
    terminated: bool,
}

impl SharedMatrix {
    /// Creates an empty matrix; call [`SharedMatrix::begin_scan`] before use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a scan: all subsequent [`SharedMatrix::distance`] calls compare
    /// left-hand strings of exactly `left_len` bytes against `right` under
    /// threshold `tau`.
    pub fn begin_scan(&mut self, right: &[u8], left_len: usize, tau: usize) {
        self.right.clear();
        self.right.extend_from_slice(right);
        self.tau = tau;
        self.left_len = left_len;
        self.prev_left.clear();
        self.valid_rows = 1;
        self.terminated = false;

        let delta = right.len() as isize - left_len as isize;
        match band_reach(tau, delta) {
            None => {
                self.feasible = false;
            }
            Some((a, b)) => {
                self.feasible = true;
                self.a_reach = a;
                self.b_reach = b;
                self.stride = right.len() + 2;
                let cells = (left_len + 1) * self.stride;
                if self.rows.len() < cells {
                    self.rows.resize(cells, INF);
                }
                // Row 0: M(0, j) = j for j ∈ [0, b_reach].
                let n = right.len();
                let whi0 = b.min(n);
                for j in 0..=whi0 {
                    self.rows[j] = j as u32;
                }
                if whi0 < n {
                    self.rows[whi0 + 1] = INF;
                }
            }
        }
    }

    /// `Some(ed(left, right))` if at most the scan threshold, else `None`.
    ///
    /// # Panics
    ///
    /// Debug-panics if `left.len()` differs from the scan's `left_len`.
    pub fn distance(&mut self, left: &[u8]) -> Option<usize> {
        debug_assert_eq!(left.len(), self.left_len, "scan left length is fixed");
        if !self.feasible {
            return None;
        }
        let (m, n) = (self.left_len, self.right.len());
        let tau32 = self.tau as u32;

        let lcp = common_prefix_len(left, &self.prev_left);
        let reuse = lcp.min(self.valid_rows - 1);

        // If the previous comparison terminated at a row we fully share,
        // that row still proves "expected distance > τ" for this string.
        if self.terminated && reuse == self.valid_rows - 1 {
            self.remember(left, self.valid_rows, true);
            return None;
        }

        let stride = self.stride;
        let (a_reach, b_reach) = (self.a_reach, self.b_reach);
        let right = &self.right;
        let rows = &mut self.rows;
        let mut terminated_at = None;

        for i in (reuse + 1)..=m {
            let wlo = i.saturating_sub(a_reach);
            let whi = (i + b_reach).min(n);
            let mut min_expected = INF;

            let (lo, hi) = rows.split_at_mut(i * stride);
            let prev_row = &lo[(i - 1) * stride..];
            let cur_row = &mut hi[..stride];

            let mut j = wlo;
            if j == 0 {
                cur_row[0] = i as u32;
                // E(i, 0) = i + |n − (m − i)|; n may be smaller than m here
                // (the left side of a scan can be the longer string).
                min_expected = (i + n.abs_diff(m - i)) as u32;
                j = 1;
            } else {
                cur_row[wlo - 1] = INF;
            }
            let lc = left[i - 1];
            while j <= whi {
                let d = (prev_row[j] + 1)
                    .min(cur_row[j - 1] + 1)
                    .min(prev_row[j - 1] + u32::from(lc != right[j - 1]));
                cur_row[j] = d;
                let remaining = (n - j).abs_diff(m - i) as u32;
                min_expected = min_expected.min(d + remaining);
                j += 1;
            }
            if whi < n {
                cur_row[whi + 1] = INF;
            }
            if min_expected > tau32 {
                terminated_at = Some(i);
                break;
            }
        }

        if let Some(i) = terminated_at {
            self.remember(left, i + 1, true);
            return None;
        }
        self.remember(left, m + 1, false);
        let d = self.rows[m * self.stride + n] as usize;
        (d <= self.tau).then_some(d)
    }

    fn remember(&mut self, left: &[u8], valid_rows: usize, terminated: bool) {
        self.prev_left.clear();
        self.prev_left.extend_from_slice(left);
        self.valid_rows = valid_rows;
        self.terminated = terminated;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edit_distance;

    fn check_scan(right: &[u8], lefts: &[&[u8]], tau: usize) {
        let mut m = SharedMatrix::new();
        m.begin_scan(right, lefts[0].len(), tau);
        for &left in lefts {
            let d = edit_distance(left, right);
            assert_eq!(
                m.distance(left),
                (d <= tau).then_some(d),
                "left={:?} right={:?} tau={}",
                std::str::from_utf8(left).unwrap(),
                std::str::from_utf8(right).unwrap(),
                tau
            );
        }
    }

    #[test]
    fn shares_prefixes_correctly() {
        check_scan(
            b"kaushik",
            &[b"kausham", b"kaushic", b"kaushuk", b"kzushik", b"zzzzzzz"],
            3,
        );
    }

    #[test]
    fn left_longer_than_right() {
        check_scan(b"abc", &[b"abcde", b"abcxy", b"vwxyz"], 2);
        check_scan(b"abc", &[b"abcde", b"abcxy"], 4);
    }

    #[test]
    fn left_shorter_than_right() {
        check_scan(b"abcdefg", &[b"abcd", b"abce", b"zbcd"], 3);
    }

    #[test]
    fn infeasible_length_difference() {
        let mut m = SharedMatrix::new();
        m.begin_scan(b"abcdefgh", 2, 3);
        assert_eq!(m.distance(b"ab"), None);
        assert_eq!(m.distance(b"gh"), None);
    }

    #[test]
    fn termination_caching_matches_fresh_computation() {
        // Two consecutive lefts sharing a long prefix that both fail: the
        // second must take the terminated-fast-path and still be correct.
        let right = b"aaaaaaaaaa";
        let mut m = SharedMatrix::new();
        m.begin_scan(right, 10, 2);
        assert_eq!(m.distance(b"zzzzzzzzzz"), None);
        assert_eq!(m.distance(b"zzzzzzzzzy"), None);
        // A passing string right after failures must still pass.
        assert_eq!(m.distance(b"aaaaaaaaaa"), Some(0));
        assert_eq!(m.distance(b"aaaaaaaazz"), Some(2));
    }

    #[test]
    fn rescans_reset_state() {
        let mut m = SharedMatrix::new();
        m.begin_scan(b"hello", 5, 1);
        assert_eq!(m.distance(b"hello"), Some(0));
        m.begin_scan(b"world", 5, 1);
        assert_eq!(m.distance(b"hello"), None);
        assert_eq!(m.distance(b"vorld"), Some(1));
        m.begin_scan(b"", 0, 0);
        assert_eq!(m.distance(b""), Some(0));
    }

    #[test]
    fn zero_tau_scan() {
        let mut m = SharedMatrix::new();
        m.begin_scan(b"abc", 3, 0);
        assert_eq!(m.distance(b"abc"), Some(0));
        assert_eq!(m.distance(b"abd"), None);
    }
}
