//! Property tests: every optimized kernel must agree with the O(nm)
//! reference dynamic program on arbitrary inputs, including the shared and
//! extension verifiers under their scan protocols.

use editdist::{
    banded_within, edit_distance, length_aware_within, myers_distance, verify_extension,
    ExtensionVerifier, Occurrence, SharedMatrix,
};
use proptest::prelude::*;

/// Short strings over a small alphabet maximize collision-rich cases.
fn small_string() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 0..14)
}

/// Longer strings over a wider alphabet for band geometry coverage.
fn wide_string() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(97u8..=122, 0..40)
}

proptest! {
    #[test]
    fn reference_is_a_metric(a in small_string(), b in small_string(), c in small_string()) {
        let ab = edit_distance(&a, &b);
        let bc = edit_distance(&b, &c);
        let ac = edit_distance(&a, &c);
        // identity, symmetry, triangle inequality
        prop_assert_eq!(edit_distance(&a, &a), 0);
        prop_assert_eq!(ab, edit_distance(&b, &a));
        prop_assert!(ac <= ab + bc);
        // length difference is a lower bound, max length an upper bound
        prop_assert!(ab >= a.len().abs_diff(b.len()));
        prop_assert!(ab <= a.len().max(b.len()));
    }

    #[test]
    fn banded_agrees_with_reference(a in small_string(), b in small_string(), tau in 0usize..8) {
        let d = edit_distance(&a, &b);
        prop_assert_eq!(banded_within(&a, &b, tau), (d <= tau).then_some(d));
    }

    #[test]
    fn banded_agrees_on_wide_inputs(a in wide_string(), b in wide_string(), tau in 0usize..12) {
        let d = edit_distance(&a, &b);
        prop_assert_eq!(banded_within(&a, &b, tau), (d <= tau).then_some(d));
    }

    #[test]
    fn myers_agrees_with_reference(a in small_string(), b in small_string()) {
        prop_assert_eq!(myers_distance(&a, &b), edit_distance(&a, &b));
    }

    #[test]
    fn myers_agrees_on_wide_inputs(a in wide_string(), b in wide_string()) {
        prop_assert_eq!(myers_distance(&a, &b), edit_distance(&a, &b));
    }

    #[test]
    fn length_aware_agrees_with_reference(a in small_string(), b in small_string(), tau in 0usize..8) {
        let d = edit_distance(&a, &b);
        prop_assert_eq!(length_aware_within(&a, &b, tau), (d <= tau).then_some(d));
    }

    #[test]
    fn length_aware_agrees_on_wide_inputs(a in wide_string(), b in wide_string(), tau in 0usize..12) {
        let d = edit_distance(&a, &b);
        prop_assert_eq!(length_aware_within(&a, &b, tau), (d <= tau).then_some(d));
    }

    #[test]
    fn shared_matrix_agrees_across_a_scan(
        right in small_string(),
        lefts in proptest::collection::vec(small_string(), 1..8),
        left_len in 0usize..12,
        tau in 0usize..6,
    ) {
        // Normalize every left string to the fixed scan length.
        let lefts: Vec<Vec<u8>> = lefts
            .into_iter()
            .map(|mut l| {
                l.resize(left_len, b'a');
                l
            })
            .collect();
        let mut m = SharedMatrix::new();
        m.begin_scan(&right, left_len, tau);
        for left in &lefts {
            let d = edit_distance(left, &right);
            prop_assert_eq!(m.distance(left), (d <= tau).then_some(d));
        }
    }

    #[test]
    fn extension_certificate_upper_bounds_distance(
        r in small_string(),
        s in small_string(),
        tau in 1usize..6,
        slot_minus_one in 0usize..6,
        seed in any::<u64>(),
    ) {
        // Manufacture an arbitrary valid occurrence: pick any common
        // substring alignment (possibly empty strings have none).
        let slot = (slot_minus_one % tau) + 1;
        if r.is_empty() || s.is_empty() {
            return Ok(());
        }
        let seg_start = (seed as usize) % r.len();
        let max_len = r.len() - seg_start;
        let seg_len = 1 + (seed as usize / 7) % max_len;
        let needle = &r[seg_start..seg_start + seg_len];
        let probe_start = match s
            .windows(seg_len)
            .position(|w| w == needle)
        {
            Some(p) => p,
            None => return Ok(()),
        };
        let occ = Occurrence { slot, seg_start, seg_len, probe_start };
        if let Some(cert) = verify_extension(&r, &s, &occ, tau) {
            let d = edit_distance(&r, &s);
            prop_assert!(cert >= d, "certificate below true distance");
            prop_assert!(cert <= tau, "certificate exceeds threshold");
        }
    }

    #[test]
    fn extension_share_matches_no_share(
        rs in proptest::collection::vec(small_string(), 1..6),
        s in small_string(),
        tau in 1usize..5,
        slot_minus_one in 0usize..5,
    ) {
        if s.len() < 2 {
            return Ok(());
        }
        let slot = (slot_minus_one % tau) + 1;
        // Fix a probe substring of s and find list strings containing it at
        // a fixed position, mirroring how inverted lists behave.
        let seg_len = 1 + s.len() % 3;
        if s.len() < seg_len {
            return Ok(());
        }
        let probe_start = s.len() / 3;
        if probe_start + seg_len > s.len() {
            return Ok(());
        }
        let needle = &s[probe_start..probe_start + seg_len];
        let seg_start = probe_start.min(2);
        // Build list entries of one fixed length embedding the needle.
        let r_len = seg_start + seg_len + 3;
        let entries: Vec<Vec<u8>> = rs
            .iter()
            .map(|r| {
                let mut e: Vec<u8> = r.iter().copied().chain(std::iter::repeat(b'x')).take(seg_start).collect();
                e.extend_from_slice(needle);
                e.extend(r.iter().copied().chain(std::iter::repeat(b'y')).take(r_len - e.len()));
                e
            })
            .collect();
        let occ = Occurrence { slot, seg_start, seg_len, probe_start };

        let mut share = ExtensionVerifier::new(true);
        let mut plain = ExtensionVerifier::new(false);
        share.begin_scan(&s, &occ, tau, r_len);
        plain.begin_scan(&s, &occ, tau, r_len);
        for e in &entries {
            prop_assert_eq!(share.verify(e, &s, &occ), plain.verify(e, &s, &occ));
        }
    }
}
