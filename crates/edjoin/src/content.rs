//! Content-based mismatch filtering (ED-Join §5).
//!
//! Location-based filtering is blind to *what* the mismatching characters
//! are; content-based filtering compares character frequency histograms.
//! One edit operation changes the histogram's L1 distance by at most 2
//! (a substitution decrements one character count and increments another),
//! so `ed(x, y) ≥ ⌈L1(hist(x), hist(y)) / 2⌉`. The filter trims the
//! common prefix and suffix first — edit distance is invariant under that —
//! which concentrates the histogram on the region the candidate pair
//! actually disagrees on, exactly the "probing window" idea of ED-Join.

/// `true` if the pair can be pruned: the histogram lower bound on the edit
/// distance of the trimmed strings already exceeds `tau`.
pub fn content_prune(x: &[u8], y: &[u8], tau: usize) -> bool {
    // Trim common prefix.
    let mut start = 0;
    let max_start = x.len().min(y.len());
    while start < max_start && x[start] == y[start] {
        start += 1;
    }
    // Trim common suffix of the remainder.
    let mut xe = x.len();
    let mut ye = y.len();
    while xe > start && ye > start && x[xe - 1] == y[ye - 1] {
        xe -= 1;
        ye -= 1;
    }
    let (mx, my) = (&x[start..xe], &y[start..ye]);

    // Signed character histogram of the differing regions.
    let mut hist = [0i32; 256];
    for &c in mx {
        hist[c as usize] += 1;
    }
    for &c in my {
        hist[c as usize] -= 1;
    }
    let l1: i64 = hist.iter().map(|&d| i64::from(d.unsigned_abs())).sum();
    // ed ≥ ⌈L1/2⌉; prune when that already exceeds τ.
    (l1 + 1) / 2 > tau as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use editdist::edit_distance;

    #[test]
    fn never_prunes_similar_pairs() {
        let cases: &[(&[u8], &[u8])] = &[
            (b"kitten", b"sitting"),
            (b"abcdef", b"abcdef"),
            (b"", b"ab"),
            (b"kaushik chakrab", b"caushik chakrabar"),
        ];
        for &(x, y) in cases {
            let d = edit_distance(x, y);
            for tau in d..d + 3 {
                assert!(
                    !content_prune(x, y, tau),
                    "pruned a pair with ed={d} at tau={tau}"
                );
            }
        }
    }

    #[test]
    fn prunes_character_disjoint_strings() {
        // Same length, completely different characters: L1 = 2·len.
        assert!(content_prune(b"aaaaaa", b"zzzzzz", 5));
        assert!(!content_prune(b"aaaaaa", b"zzzzzz", 6));
    }

    #[test]
    fn trimming_sees_through_shared_affixes() {
        // Long shared prefix/suffix with a small disjoint core.
        let x = b"prefix__aaaa__suffix";
        let y = b"prefix__zzzz__suffix";
        assert!(content_prune(x, y, 3)); // core needs 4 substitutions
        assert!(!content_prune(x, y, 4));
    }

    #[test]
    fn histogram_bound_is_sound_on_random_pairs() {
        // ⌈L1/2⌉ must never exceed the true edit distance.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..500 {
            let n = rng.gen_range(0..20);
            let m = rng.gen_range(0..20);
            let x: Vec<u8> = (0..n).map(|_| rng.gen_range(b'a'..=b'e')).collect();
            let y: Vec<u8> = (0..m).map(|_| rng.gen_range(b'a'..=b'e')).collect();
            let d = edit_distance(&x, &y);
            assert!(
                !content_prune(&x, &y, d),
                "pruned {:?} vs {:?} with true ed {d}",
                x,
                y
            );
        }
    }
}
