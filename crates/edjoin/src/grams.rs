//! Positional q-grams and the global gram order.
//!
//! ED-Join [Xiao et al., PVLDB 2008] and All-Pairs-Ed [Bayardo et al.,
//! WWW 2007] represent a string of length `l` as its `l−q+1` positional
//! q-grams. Count filtering bounds the damage of one edit operation at `q`
//! grams, so strings within edit distance τ share all but at most `qτ`
//! grams (position-shifted by at most τ). Prefix filtering exploits this
//! with a global gram order — rarest grams first — so that the `qτ+1`
//! rarest grams of each string form a signature: similar strings must
//! share a (position-compatible) gram between their signatures.

use sj_common::hash::FxHashMap;
use sj_common::StringCollection;

/// The overlapping q-grams of `s`, in position order: `|s| − q + 1`
/// windows of `q` bytes, or nothing when `|s| < q`.
///
/// This is the one gram-extraction primitive shared by every gram
/// consumer — the ED-Join order below and the `passjoin-setsim` q-gram
/// tokenizer — so "what counts as a gram" cannot drift between them. It
/// is byte-transparent: no UTF-8 assumption, any of the 256 byte values
/// may appear.
///
/// ```
/// let grams: Vec<&[u8]> = edjoin::grams::qgrams(b"vldb", 2).collect();
/// assert_eq!(grams, vec![&b"vl"[..], b"ld", b"db"]);
/// assert_eq!(edjoin::grams::qgrams(b"v", 2).count(), 0);
/// ```
pub fn qgrams(s: &[u8], q: usize) -> impl Iterator<Item = &[u8]> {
    assert!(q >= 1, "q must be positive");
    s.windows(q)
}

/// Assigns rarest-first ranks to `(key, frequency)` pairs: ascending
/// frequency, ties broken by the key's `Ord` so the order is
/// deterministic. Returns the pairs as `(key, rank)`, rank 0 = rarest.
///
/// This is the global-order construction of prefix filtering (ED-Join
/// [Xiao et al., PVLDB 2008]; All-Pairs [Bayardo et al., WWW 2007]):
/// signatures built from the rarest elements have the shortest posting
/// lists. [`GramOrder::build`] applies it to q-grams; the
/// `passjoin-setsim` token index applies it to whole tokens.
///
/// ```
/// let ranks = edjoin::grams::rarest_first_ranks(vec![("the", 90u32), ("zyzzyva", 1)]);
/// assert_eq!(ranks, vec![("zyzzyva", 0), ("the", 1)]);
/// ```
pub fn rarest_first_ranks<K: Ord>(freq: Vec<(K, u32)>) -> Vec<(K, u32)> {
    let mut pairs = freq;
    pairs.sort_unstable_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    pairs
        .into_iter()
        .enumerate()
        .map(|(rank, (key, _))| (key, rank as u32))
        .collect()
}

/// A q-gram occurrence inside one string: its global frequency rank and
/// its start position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gram {
    /// Rank in the global order (0 = rarest).
    pub rank: u32,
    /// 0-based start position in the string.
    pub pos: u32,
}

/// The global gram order of one collection: every distinct q-gram mapped to
/// a frequency rank (ascending document frequency, ties broken by bytes so
/// the order is deterministic).
#[derive(Debug)]
pub struct GramOrder<'a> {
    q: usize,
    ranks: FxHashMap<&'a [u8], u32>,
}

impl<'a> GramOrder<'a> {
    /// Counts all q-grams of `collection` and assigns global ranks.
    pub fn build(collection: &'a StringCollection, q: usize) -> Self {
        assert!(q >= 1, "q must be positive");
        let mut freq: FxHashMap<&[u8], u32> = FxHashMap::default();
        for (_, s) in collection.iter() {
            for w in qgrams(s, q) {
                *freq.entry(w).or_insert(0) += 1;
            }
        }
        let ranks = rarest_first_ranks(freq.into_iter().collect())
            .into_iter()
            .collect();
        Self { q, ranks }
    }

    /// The gram length.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Number of distinct grams in the collection.
    pub fn distinct(&self) -> usize {
        self.ranks.len()
    }

    /// The rank of a gram; `None` for grams outside the collection.
    pub fn rank(&self, gram: &[u8]) -> Option<u32> {
        self.ranks.get(gram).copied()
    }

    /// The positional grams of `s`, sorted by (rank, position) — i.e. the
    /// string's gram array in prefix-filtering order. Empty when
    /// `|s| < q`.
    ///
    /// # Panics
    ///
    /// Panics if `s` contains a gram absent from the order (i.e. `s` is not
    /// from the collection the order was built on).
    pub fn sorted_grams(&self, s: &[u8]) -> Vec<Gram> {
        let mut grams: Vec<Gram> = s
            .windows(self.q)
            .enumerate()
            .map(|(pos, w)| Gram {
                rank: self.ranks[w],
                pos: pos as u32,
            })
            .collect();
        grams.sort_unstable_by_key(|g| (g.rank, g.pos));
        grams
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_ascend_with_frequency() {
        // "ab" appears in three strings, "xy" in one: "xy" must rank first.
        let c = StringCollection::from_strs(&["abc", "abd", "abe", "xyz"]);
        let order = GramOrder::build(&c, 2);
        let ab = order.rank(b"ab").unwrap();
        let xy = order.rank(b"xy").unwrap();
        assert!(xy < ab, "rare gram must rank before frequent gram");
        assert_eq!(order.rank(b"zz"), None);
        assert_eq!(order.q(), 2);
    }

    #[test]
    fn sorted_grams_cover_all_positions() {
        let c = StringCollection::from_strs(&["abcabc"]);
        let order = GramOrder::build(&c, 3);
        let grams = order.sorted_grams(b"abcabc");
        assert_eq!(grams.len(), 4);
        let mut positions: Vec<u32> = grams.iter().map(|g| g.pos).collect();
        positions.sort_unstable();
        assert_eq!(positions, vec![0, 1, 2, 3]);
        // Equal grams ("abc" at 0 and 3) share a rank and sort by position.
        let abc_rank = order.rank(b"abc").unwrap();
        let abc: Vec<u32> = grams
            .iter()
            .filter(|g| g.rank == abc_rank)
            .map(|g| g.pos)
            .collect();
        assert_eq!(abc, vec![0, 3]);
    }

    #[test]
    fn short_strings_have_no_grams() {
        let c = StringCollection::from_strs(&["ab", "abcd"]);
        let order = GramOrder::build(&c, 3);
        assert!(order.sorted_grams(b"ab").is_empty());
        assert_eq!(order.sorted_grams(b"abcd").len(), 2);
    }

    #[test]
    fn deterministic_rank_assignment() {
        let c = StringCollection::from_strs(&["abcd", "bcda", "cdab"]);
        let a = GramOrder::build(&c, 2);
        let b = GramOrder::build(&c, 2);
        for gram in [&b"ab"[..], b"bc", b"cd", b"da"] {
            assert_eq!(a.rank(gram), b.rank(gram));
        }
    }
}
