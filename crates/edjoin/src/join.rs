//! The ED-Join / All-Pairs-Ed self-join driver.
//!
//! Both algorithms follow the prefix-filtering plan of Bayardo et al.'s
//! All-Pairs, adapted to edit distance by Xiao et al. (PVLDB 2008):
//!
//! 1. build the global gram order (rarest gram first);
//! 2. visit strings in (length, lexicographic) order; for each string,
//!    probe an inverted index with its *prefix* grams, collecting earlier
//!    strings that share a position-compatible prefix gram;
//! 3. filter candidates (length filter during probing; location-based and
//!    content-based mismatch filters for ED-Join);
//! 4. verify survivors with the length-aware kernel.
//!
//! [`EdJoin`] enables the location-based prefix shortening and both
//! mismatch filters; [`EdJoin::all_pairs_ed`] disables them, yielding the
//! plain All-Pairs-Ed baseline with fixed `qτ+1` prefixes.
//!
//! Strings shorter than `q(τ+1)` have so few grams that τ edits can erase
//! them all — prefix filtering is powerless there (the root cause of
//! ED-Join's poor short-string behaviour in the paper's Figure 15a). The
//! driver keeps them complete by brute-force joining them against every
//! string within the length filter.

use std::time::Instant;

use editdist::{length_aware_within_ws, DpWorkspace};
use sj_common::hash::FxHashMap;
use sj_common::join::emit_pair;
use sj_common::stamp::StampSet;
use sj_common::{JoinOutput, JoinStats, SimilarityJoin, StringCollection, StringId};

use crate::content::content_prune;
use crate::grams::GramOrder;
use crate::location::{calc_prefix_len, min_edit_ops_sorted, prefix_filter_applicable};

/// ED-Join configuration. Construct with [`EdJoin::new`] (full ED-Join) or
/// [`EdJoin::all_pairs_ed`] (the All-Pairs-Ed baseline), tuning `q` as the
/// paper does ("we tuned its parameter q and reported the best results").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdJoin {
    q: usize,
    /// Shorten probing/indexing prefixes with the location lower bound.
    location_prefix: bool,
    /// Apply the location-based mismatch filter to candidate pairs.
    location_filter: bool,
    /// Apply the content-based mismatch filter to candidate pairs.
    content_filter: bool,
}

impl EdJoin {
    /// Full ED-Join with gram length `q` (the original evaluation favours
    /// q ∈ [2, 5] depending on string length and τ).
    ///
    /// # Panics
    ///
    /// Panics if `q == 0`.
    pub fn new(q: usize) -> Self {
        assert!(q >= 1, "gram length must be positive");
        Self {
            q,
            location_prefix: true,
            location_filter: true,
            content_filter: true,
        }
    }

    /// All-Pairs-Ed: fixed `qτ+1` prefixes, no mismatch filters.
    pub fn all_pairs_ed(q: usize) -> Self {
        assert!(q >= 1, "gram length must be positive");
        Self {
            q,
            location_prefix: false,
            location_filter: false,
            content_filter: false,
        }
    }

    /// The configured gram length.
    pub fn q(&self) -> usize {
        self.q
    }
}

impl SimilarityJoin for EdJoin {
    fn name(&self) -> &'static str {
        if self.location_prefix {
            "ed-join"
        } else {
            "all-pairs-ed"
        }
    }

    fn self_join(&self, collection: &StringCollection, tau: usize) -> JoinOutput {
        let started = Instant::now();
        let q = self.q;
        let mut pairs = Vec::new();
        let mut stats = JoinStats {
            strings: collection.len() as u64,
            ..JoinStats::default()
        };

        let order = GramOrder::build(collection, q);
        // Inverted index: gram rank → postings of (string id, position).
        // Ids ascend in insertion order (= length order), enabling a
        // binary-searched length filter per list.
        let mut index: FxHashMap<u32, Vec<(StringId, u32)>> = FxHashMap::default();
        let mut index_entries: u64 = 0;

        let mut cand_seen = StampSet::new(collection.len());
        let mut candidates: Vec<StringId> = Vec::new();
        let mut ws = DpWorkspace::new();
        // Strings too short for complete prefix filtering, joined brute
        // force. `q(τ+1)` bytes is tiny, so this list stays short on the
        // paper's long-string corpora — and blows up on short strings,
        // reproducing ED-Join's known weakness there.
        let mut unfilterable: Vec<StringId> = Vec::new();
        let mut is_unfilterable = vec![false; collection.len()];
        // Scratch: y's grams by bytes → sorted positions (location filter).
        let mut y_gram_positions: FxHashMap<&[u8], Vec<u32>> = FxHashMap::default();
        let mut mismatch_positions: Vec<u32> = Vec::new();

        for (id, s) in collection.iter() {
            // --- brute-force lane for unfilterable strings ---
            for &rid in &unfilterable {
                let r = collection.get(rid);
                if s.len() > r.len() + tau {
                    continue;
                }
                stats.verifications += 1;
                if length_aware_within_ws(r, s, tau, &mut ws).is_some() {
                    emit_pair(collection, rid, id, &mut pairs);
                    stats.results += 1;
                }
            }

            let gram_count = s.len().saturating_sub(q - 1);
            if !prefix_filter_applicable(gram_count, q, tau) {
                // The string joins everything through the brute-force lane,
                // including *later* strings: it must see them, so it is the
                // later string's job only if that string is unfilterable
                // too. Keep completeness by checking this string against
                // all earlier filterable strings within the length window.
                let window = collection.ids_with_len_in(s.len().saturating_sub(tau), s.len());
                for rid in window.start..id {
                    if is_unfilterable[rid as usize] {
                        continue; // already handled by the lane above
                    }
                    stats.verifications += 1;
                    if length_aware_within_ws(collection.get(rid), s, tau, &mut ws).is_some() {
                        emit_pair(collection, rid, id, &mut pairs);
                        stats.results += 1;
                    }
                }
                unfilterable.push(id);
                is_unfilterable[id as usize] = true;
                continue;
            }

            let grams = order.sorted_grams(s);
            let prefix_len = if self.location_prefix {
                calc_prefix_len(&grams, q, tau)
            } else {
                (q * tau + 1).min(grams.len())
            };
            stats.selected_substrings += prefix_len as u64;

            // --- candidate generation from the prefix index ---
            cand_seen.clear();
            candidates.clear();
            for g in &grams[..prefix_len] {
                stats.probes += 1;
                let Some(list) = index.get(&g.rank) else {
                    continue;
                };
                // Length filter: ids ascend by length; skip entries whose
                // strings are shorter than |s| − τ.
                let cut = list.partition_point(|&(rid, _)| collection.str_len(rid) + tau < s.len());
                for &(rid, rpos) in &list[cut..] {
                    stats.candidate_occurrences += 1;
                    // Positional filter: a gram surviving ≤ τ edits shifts
                    // by at most τ.
                    if g.pos.abs_diff(rpos) > tau as u32 {
                        continue;
                    }
                    if cand_seen.insert(rid) {
                        candidates.push(rid);
                    }
                }
            }
            stats.candidate_pairs += candidates.len() as u64;

            // --- mismatch filters + verification ---
            for &rid in &candidates {
                let r = collection.get(rid);
                if self.location_filter {
                    // Mismatching prefix grams of s w.r.t. r's full gram
                    // set (position tolerance τ); if destroying them needs
                    // more than τ ops, prune.
                    y_gram_positions.clear();
                    for (pos, w) in r.windows(q).enumerate() {
                        y_gram_positions.entry(w).or_default().push(pos as u32);
                    }
                    mismatch_positions.clear();
                    for g in &grams[..prefix_len] {
                        let bytes = &s[g.pos as usize..g.pos as usize + q];
                        let matched = y_gram_positions
                            .get(bytes)
                            .is_some_and(|ps| ps.iter().any(|&p| p.abs_diff(g.pos) <= tau as u32));
                        if !matched {
                            mismatch_positions.push(g.pos);
                        }
                    }
                    mismatch_positions.sort_unstable();
                    if min_edit_ops_sorted(&mismatch_positions, q) > tau {
                        continue;
                    }
                }
                if self.content_filter && content_prune(r, s, tau) {
                    continue;
                }
                stats.verifications += 1;
                if length_aware_within_ws(r, s, tau, &mut ws).is_some() {
                    emit_pair(collection, rid, id, &mut pairs);
                    stats.results += 1;
                }
            }

            // --- index the probing prefix of s ---
            for g in &grams[..prefix_len] {
                index.entry(g.rank).or_default().push((id, g.pos));
                index_entries += 1;
            }
        }

        // Index accounting mirrors `SegmentIndex::live_bytes`: 8 bytes per
        // posting (id + position) plus a 12-byte header and the q key bytes
        // per distinct indexed gram.
        stats.index_bytes = index_entries * 8 + index.len() as u64 * (12 + q as u64);
        JoinOutput {
            pairs,
            stats,
            elapsed: started.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table1() -> StringCollection {
        StringCollection::from_strs(&[
            "avataresha",
            "caushik chakrabar",
            "kaushic chaduri",
            "kaushik chakrab",
            "kaushuk chadhui",
            "vankatesh",
        ])
    }

    #[test]
    fn finds_figure1_answer() {
        for q in 1..=4 {
            let out = EdJoin::new(q).self_join(&table1(), 3);
            assert_eq!(out.normalized_pairs(), vec![(1, 3)], "q={q}");
        }
    }

    #[test]
    fn all_pairs_ed_agrees() {
        for q in 1..=4 {
            let out = EdJoin::all_pairs_ed(q).self_join(&table1(), 3);
            assert_eq!(out.normalized_pairs(), vec![(1, 3)], "q={q}");
        }
    }

    #[test]
    fn exact_duplicates_at_tau_zero() {
        let c = StringCollection::from_strs(&["abcdefgh", "abcdefgh", "abcdefgx"]);
        let out = EdJoin::new(2).self_join(&c, 0);
        assert_eq!(out.normalized_pairs(), vec![(0, 1)]);
    }

    #[test]
    fn prefix_shortening_reduces_probes() {
        let strings: Vec<String> = (0..200)
            .map(|i| format!("record identifier number {i:03} with stable tail"))
            .collect();
        let c = StringCollection::from_strs(&strings);
        let full = EdJoin::all_pairs_ed(3).self_join(&c, 2);
        let shortened = EdJoin::new(3).self_join(&c, 2);
        assert_eq!(full.normalized_pairs(), shortened.normalized_pairs());
        assert!(
            shortened.stats.selected_substrings <= full.stats.selected_substrings,
            "location-based prefixes must not be longer"
        );
    }
}
