//! **ED-Join** and **All-Pairs-Ed**: the q-gram prefix-filtering baselines
//! Pass-Join is evaluated against (paper §6.3, Figure 15, Table 3).
//!
//! Reimplemented from Xiao, Wang, Lin — *"Ed-Join: an efficient algorithm
//! for similarity joins with edit distance constraints"* (PVLDB 2008) and
//! Bayardo, Ma, Srikant — *"Scaling up all pairs similarity search"*
//! (WWW 2007):
//!
//! * positional q-grams under a rarest-first global order ([`grams`]);
//! * prefix filtering with the count bound `qτ+1`, shortened by the
//!   location-based lower bound on destroying gram sets ([`location`]);
//! * the content-based (character-histogram) mismatch filter ([`content`]);
//! * a prefix inverted index with length and position filters ([`join`]).
//!
//! ```
//! use edjoin::EdJoin;
//! use sj_common::{SimilarityJoin, StringCollection};
//!
//! let c = StringCollection::from_strs(&["similarity join", "similarity joins", "edit distance"]);
//! let out = EdJoin::new(2).self_join(&c, 1);
//! assert_eq!(out.normalized_pairs(), vec![(0, 1)]);
//! ```

#![warn(missing_docs)]

pub mod content;
pub mod grams;
pub mod join;
pub mod location;

pub use join::EdJoin;
