//! Location-based mismatch filtering (ED-Join §4).
//!
//! An edit operation at string position `t` can only destroy the q-grams
//! whose spans `[pos, pos+q−1]` contain `t` — at most `q` of them, and all
//! adjacent. Therefore the minimum number of edit operations that can
//! destroy a given set of grams is the minimum number of points stabbing
//! all their spans, computable greedily in one pass over positions.
//!
//! ED-Join uses this bound twice:
//!
//! * **prefix shortening** — the probing prefix only needs to grow until
//!   destroying *all* its grams already costs more than τ operations; a
//!   candidate sharing none of those grams can be pruned, so the prefix is
//!   complete. This often cuts the prefix well below the count-filtering
//!   bound `qτ+1`.
//! * **candidate filtering** — for a candidate pair, the prefix grams of
//!   one string without a position-compatible match in the other must all
//!   be destroyed; if that needs more than τ operations the pair is pruned
//!   before verification.

use crate::grams::Gram;

/// Minimum number of edit operations that can destroy grams at the given
/// (sorted ascending) start positions, for gram length `q`: the greedy
/// point-stabbing cover of the spans `[pos, pos+q−1]`.
pub fn min_edit_ops_sorted(positions: &[u32], q: usize) -> usize {
    debug_assert!(positions.windows(2).all(|w| w[0] <= w[1]));
    let mut ops = 0;
    let mut covered_until: i64 = -1; // last stabbed point
    for &pos in positions {
        if i64::from(pos) > covered_until {
            // Stab the rightmost point of this span: pos + q − 1.
            covered_until = i64::from(pos) + q as i64 - 1;
            ops += 1;
        }
    }
    ops
}

/// [`min_edit_ops_sorted`] for unsorted positions (sorts in place).
pub fn min_edit_ops(positions: &mut [u32], q: usize) -> usize {
    positions.sort_unstable();
    min_edit_ops_sorted(positions, q)
}

/// The probing-prefix length for a gram array sorted by global rank
/// (ED-Join's `CalcPrefixLen`): the smallest `k` such that destroying
/// `grams[..k]` requires more than `tau` edit operations.
///
/// Always at most `min(qτ+1, grams.len())`: `qτ+1` grams need
/// `⌈(qτ+1)/q⌉ = τ+1` operations regardless of clustering. When the whole
/// array can be destroyed with ≤ τ operations (short strings — the regime
/// where ED-Join loses its filtering power), returns `grams.len()` and the
/// caller must treat the string as unfilterable.
pub fn calc_prefix_len(grams: &[Gram], q: usize, tau: usize) -> usize {
    let cap = (q * tau + 1).min(grams.len());
    let mut positions: Vec<u32> = Vec::with_capacity(cap);
    for (k, gram) in grams.iter().enumerate().take(cap) {
        let at = positions.partition_point(|&p| p <= gram.pos);
        positions.insert(at, gram.pos);
        if min_edit_ops_sorted(&positions, q) > tau {
            return k + 1;
        }
    }
    // Destroying qτ+1 grams always needs ⌈(qτ+1)/q⌉ = τ+1 > τ operations,
    // so the loop returns before exhausting a full-length cap; reaching
    // here means the array itself is shorter than qτ+1.
    cap
}

/// True when prefix filtering is *complete* for this gram array: destroying
/// every gram costs more than τ operations. Strings failing this (length
/// `< q(τ+1)`) can be similar to strings they share no gram with and must
/// be joined by brute force.
pub fn prefix_filter_applicable(gram_count: usize, q: usize, tau: usize) -> bool {
    // Grams of one string sit at contiguous positions 0..gram_count, so the
    // greedy cover needs ⌈gram_count / q⌉ operations.
    gram_count.div_ceil(q) > tau
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grams_at(positions: &[u32]) -> Vec<Gram> {
        positions
            .iter()
            .enumerate()
            .map(|(rank, &pos)| Gram {
                rank: rank as u32,
                pos,
            })
            .collect()
    }

    #[test]
    fn spread_grams_need_one_op_each() {
        // q=3, positions far apart: no op can destroy two.
        assert_eq!(min_edit_ops_sorted(&[0, 10, 20], 3), 3);
    }

    #[test]
    fn clustered_grams_share_an_op() {
        // q=3, positions 1,2,3: one edit at position 3 destroys all.
        assert_eq!(min_edit_ops_sorted(&[1, 2, 3], 3), 1);
        // positions 1,2,3,4: span [1..3] ∪ [4..6] — two ops.
        assert_eq!(min_edit_ops_sorted(&[1, 2, 3, 4], 3), 2);
        // q=1: each gram needs its own op.
        assert_eq!(min_edit_ops_sorted(&[1, 2, 3], 1), 3);
    }

    #[test]
    fn empty_set_needs_no_ops() {
        assert_eq!(min_edit_ops_sorted(&[], 4), 0);
    }

    #[test]
    fn unsorted_wrapper_sorts() {
        let mut pos = vec![20, 0, 10];
        assert_eq!(min_edit_ops(&mut pos, 3), 3);
        assert_eq!(pos, vec![0, 10, 20]);
    }

    #[test]
    fn prefix_len_spread_grams() {
        // Spread positions: each gram costs one op, so τ+1 grams suffice —
        // much shorter than qτ+1.
        let grams = grams_at(&[0, 10, 20, 30, 40, 50, 60]);
        assert_eq!(calc_prefix_len(&grams, 3, 2), 3); // 3 ops > τ=2
        assert_eq!(calc_prefix_len(&grams, 3, 1), 2);
    }

    #[test]
    fn prefix_len_clustered_grams_needs_more() {
        // All grams overlap: destroying k clustered grams costs ~⌈k/q⌉ ops.
        let grams = grams_at(&[0, 1, 2, 3, 4, 5, 6, 7, 8]);
        let k = calc_prefix_len(&grams, 3, 1);
        // Need > 1 op: first k with cover > 1. Positions 0..k−1 clustered:
        // cover = ⌈k/3⌉ ⇒ k = 4.
        assert_eq!(k, 4);
        assert!(k <= 3 + 1);
    }

    #[test]
    fn prefix_len_never_exceeds_count_bound() {
        for q in 1..5usize {
            for tau in 0..5usize {
                let grams = grams_at(&(0..40).collect::<Vec<u32>>());
                assert!(calc_prefix_len(&grams, q, tau) <= q * tau + 1);
            }
        }
    }

    #[test]
    fn short_arrays_return_everything() {
        let grams = grams_at(&[0, 1]);
        // q=3, τ=2: 2 clustered grams destroyable with 1 op ≤ τ.
        assert_eq!(calc_prefix_len(&grams, 3, 2), 2);
        assert!(!prefix_filter_applicable(2, 3, 2));
        assert!(prefix_filter_applicable(7, 3, 2));
    }
}
