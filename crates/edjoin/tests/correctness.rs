//! ED-Join and All-Pairs-Ed must produce exactly the ground-truth join for
//! every gram length and threshold, on dense random corpora (lots of short,
//! unfilterable strings) and wider realistic ones.

use editdist::NaiveJoin;
use edjoin::EdJoin;
use proptest::prelude::*;
use sj_common::{SimilarityJoin, StringCollection};

fn check(strings: &[Vec<u8>], q: usize, tau: usize) {
    let coll = StringCollection::new(strings.to_vec());
    let expected = NaiveJoin.self_join(&coll, tau).normalized_pairs();
    for join in [EdJoin::new(q), EdJoin::all_pairs_ed(q)] {
        let out = join.self_join(&coll, tau);
        assert_eq!(
            out.normalized_pairs(),
            expected,
            "{} q={q} tau={tau} corpus={:?}",
            join.name(),
            strings
                .iter()
                .map(|s| String::from_utf8_lossy(s).into_owned())
                .collect::<Vec<_>>()
        );
        assert_eq!(out.normalized_pairs().len(), out.pairs.len());
    }
}

fn dense_corpus() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(
        proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 0..12),
        0..20,
    )
}

fn wide_corpus() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(97u8..=122, 0..36), 0..14)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matches_ground_truth_dense(strings in dense_corpus(), q in 1usize..4, tau in 0usize..4) {
        check(&strings, q, tau);
    }

    #[test]
    fn matches_ground_truth_wide(strings in wide_corpus(), q in 1usize..5, tau in 0usize..6) {
        check(&strings, q, tau);
    }
}

#[test]
fn long_string_corpus_with_planted_edits() {
    let seeds: &[&str] = &[
        "an efficient algorithm for similarity joins with edit distance",
        "scaling up all pairs similarity search on the web",
        "trie join efficient trie based string similarity joins",
    ];
    let mut strings: Vec<Vec<u8>> = Vec::new();
    for seed in seeds {
        let b = seed.as_bytes();
        strings.push(b.to_vec());
        let mut v = b.to_vec();
        v[5] = b'!';
        strings.push(v);
        let mut v = b.to_vec();
        v.remove(8);
        v.remove(20);
        strings.push(v);
    }
    for q in 2..=5 {
        for tau in 0..=4 {
            check(&strings, q, tau);
        }
    }
}

#[test]
fn unfilterable_heavy_corpus() {
    // At q=4, τ=3 every string shorter than 16 bytes is unfilterable: the
    // brute-force lane must carry the join alone and stay complete.
    let strings: Vec<Vec<u8>> = ["abc", "abd", "xbd", "abcd", "ab", "", "abcde", "fghij"]
        .iter()
        .map(|s| s.as_bytes().to_vec())
        .collect();
    for tau in 0..=3 {
        check(&strings, 4, tau);
    }
}
