//! **passjoin-obs** — observability primitives for the Pass-Join engine.
//!
//! Everything here is `std`-only and dependency-free so the whole
//! workspace (core, online, persist, CLI, bench) can report through one
//! substrate without pulling an external metrics stack:
//!
//! * [`Counter`] / [`Gauge`] — lock-free atomic scalars shared by handle;
//! * [`Histogram`] — fixed-bucket log₂-scale distribution (atomic bucket
//!   counts plus exact `sum`/`count`), sized for nanosecond timings and
//!   byte counts alike;
//! * [`Registry`] — names metrics once, hands out cloneable handles, and
//!   renders the whole set as Prometheus text exposition
//!   ([`Registry::render_prometheus`]) or deterministic JSON
//!   ([`Registry::render_json`]);
//! * [`Clock`] / [`Span`] — a pluggable monotonic time source and a phase
//!   timer recording elapsed nanoseconds into a histogram;
//! * [`TraceSink`] / [`TraceEvent`] — a structured event hook the engine
//!   fires at plan/probe/verify/cache/flush boundaries, default no-op.
//!
//! Increment paths never take a lock: registration is the only guarded
//! operation, and handles are `Arc`-shared atomics after that. Rendering
//! iterates a sorted map, so two dumps of identical state are
//! byte-identical — diffable with ordinary text tools.
//!
//! ```
//! use passjoin_obs::Registry;
//!
//! let registry = Registry::new();
//! let requests = registry.counter("requests_total");
//! let latency = registry.histogram("request_ns");
//! requests.inc(1);
//! latency.observe(1_500);
//! let dump = registry.render_prometheus();
//! assert!(dump.contains("requests_total 1"));
//! ```

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of finite histogram buckets. Bucket `i` covers values whose bit
/// length is `i + 1`, i.e. `value <= 2^(i+1) - 1`; anything wider lands in
/// the implicit `+Inf` bucket. 40 buckets span `[0, 2^40)` — about 18
/// minutes in nanoseconds, or a terabyte in bytes.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A monotonically increasing `u64` metric, shared by cloneable handle.
///
/// Increments are single relaxed atomic adds — safe and cheap from any
/// thread, including parallel batch workers.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A standalone counter not tied to a [`Registry`].
    pub fn new() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn inc(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

/// A settable signed scalar metric (sizes, epochs, occupancy), shared by
/// cloneable handle.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A standalone gauge not tied to a [`Registry`].
    pub fn new() -> Self {
        Gauge(Arc::new(AtomicI64::new(0)))
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative) to the gauge.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    /// Observations wider than the last finite bucket (`+Inf`).
    overflow: AtomicU64,
    sum: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket log₂-scale histogram, shared by cloneable handle.
///
/// Bucket boundaries are powers of two minus one (`le = 1, 3, 7, 15, …`):
/// an observation lands in the bucket indexed by its bit length, so
/// recording is a couple of relaxed atomic adds and one `leading_zeros` —
/// no floating point, no lock. `sum` and `count` are exact; the buckets
/// give the shape.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// A standalone histogram not tied to a [`Registry`].
    pub fn new() -> Self {
        Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            overflow: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }))
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        let inner = &*self.0;
        let idx = (u64::BITS - value.leading_zeros()).saturating_sub(1) as usize;
        match inner.buckets.get(idx) {
            Some(bucket) => bucket.fetch_add(1, Ordering::Relaxed),
            None => inner.overflow.fetch_add(1, Ordering::Relaxed),
        };
        inner.sum.fetch_add(value, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Exact sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket `(inclusive upper bound, count)` pairs for the finite
    /// buckets, plus the overflow count as the final `(u64::MAX, n)` entry.
    /// Counts are *not* cumulative (rendering cumulates for Prometheus).
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        let inner = &*self.0;
        let mut out: Vec<(u64, u64)> = (0..HISTOGRAM_BUCKETS)
            .map(|i| {
                let le = (2u64 << i) - 1;
                (le, inner.buckets[i].load(Ordering::Relaxed))
            })
            .collect();
        out.push((u64::MAX, inner.overflow.load(Ordering::Relaxed)));
        out
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A named collection of metrics.
///
/// Registration (the first [`Registry::counter`] / [`Registry::gauge`] /
/// [`Registry::histogram`] call for a name) takes a short-lived lock;
/// every call after that returns a clone of the existing handle, and all
/// increments on handles are lock-free. Asking for an existing name with
/// a *different* metric kind panics — that is a naming bug, not a runtime
/// condition.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut metrics = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        metrics.entry(name.to_owned()).or_insert_with(make).clone()
    }

    /// The counter registered under `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        match self.register(name, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// The gauge registered under `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.register(name, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// The histogram registered under `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.register(name, || Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    fn snapshot(&self) -> BTreeMap<String, Metric> {
        self.metrics
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Renders every metric in Prometheus text-exposition style, sorted by
    /// name: `# TYPE` lines, plain `name value` samples, and cumulative
    /// `_bucket{le="…"}` / `_sum` / `_count` series for histograms.
    pub fn render_prometheus(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        for (name, metric) in self.snapshot() {
            let _ = writeln!(out, "# TYPE {name} {}", metric.kind());
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                Metric::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (le, n) in h.buckets() {
                        cumulative += n;
                        if le == u64::MAX {
                            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                        } else {
                            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
                        }
                    }
                    let _ = writeln!(out, "{name}_sum {}", h.sum());
                    let _ = writeln!(out, "{name}_count {}", h.count());
                }
            }
        }
        out
    }

    /// Renders every metric as one deterministic JSON object:
    /// `{"counters": {..}, "gauges": {..}, "histograms": {..}}`, keys
    /// sorted by name. Histogram buckets are `[le, count]` pairs with
    /// non-cumulative counts and `"+Inf"` for the overflow bound. Two
    /// renders of identical state are byte-identical, so dumps diff
    /// cleanly.
    pub fn render_json(&self) -> String {
        use fmt::Write as _;
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut histograms = String::new();
        let comma = |s: &mut String| {
            if !s.is_empty() {
                s.push(',');
            }
        };
        for (name, metric) in self.snapshot() {
            let name = json_escape(&name);
            match metric {
                Metric::Counter(c) => {
                    comma(&mut counters);
                    let _ = write!(counters, "\"{name}\":{}", c.get());
                }
                Metric::Gauge(g) => {
                    comma(&mut gauges);
                    let _ = write!(gauges, "\"{name}\":{}", g.get());
                }
                Metric::Histogram(h) => {
                    comma(&mut histograms);
                    let _ = write!(
                        histograms,
                        "\"{name}\":{{\"count\":{},\"sum\":{},\"buckets\":[",
                        h.count(),
                        h.sum()
                    );
                    let mut first = true;
                    for (le, n) in h.buckets() {
                        if n == 0 {
                            continue; // keep dumps small: empty buckets carry no information
                        }
                        if !first {
                            histograms.push(',');
                        }
                        first = false;
                        if le == u64::MAX {
                            let _ = write!(histograms, "[\"+Inf\",{n}]");
                        } else {
                            let _ = write!(histograms, "[{le},{n}]");
                        }
                    }
                    histograms.push_str("]}");
                }
            }
        }
        format!("{{\"counters\":{{{counters}}},\"gauges\":{{{gauges}}},\"histograms\":{{{histograms}}}}}")
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A monotonic nanosecond time source.
///
/// The engine times phases through this trait so tests can substitute a
/// deterministic clock ([`ManualNanos`]) while production uses the
/// [`Instant`]-backed [`MonotonicClock`].
pub trait Clock: Send + Sync {
    /// Nanoseconds since an arbitrary fixed origin; never decreases.
    fn now_nanos(&self) -> u64;
}

/// The production [`Clock`]: nanoseconds since the clock's creation,
/// measured with [`Instant`].
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock anchored at the current instant.
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A manually advanced [`Clock`] for deterministic tests.
#[derive(Debug, Default)]
pub struct ManualNanos(AtomicU64);

impl ManualNanos {
    /// A clock starting at 0 ns.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `ns` nanoseconds.
    pub fn advance(&self, ns: u64) {
        self.0.fetch_add(ns, Ordering::Relaxed);
    }

    /// Sets the clock to an absolute value.
    pub fn set(&self, ns: u64) {
        self.0.store(ns, Ordering::Relaxed);
    }
}

impl Clock for ManualNanos {
    fn now_nanos(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A phase timer: started on a [`Clock`], records elapsed nanoseconds
/// into a [`Histogram`] when finished (or when dropped, so early returns
/// and panics still account their time).
///
/// ```
/// use passjoin_obs::{Histogram, ManualNanos, Span};
///
/// let clock = ManualNanos::new();
/// let hist = Histogram::new();
/// let span = Span::start(&clock, &hist);
/// clock.advance(250);
/// assert_eq!(span.finish(), 250);
/// assert_eq!(hist.sum(), 250);
/// ```
#[must_use = "a span measures until finished or dropped"]
pub struct Span<'a> {
    clock: &'a dyn Clock,
    histogram: &'a Histogram,
    start: u64,
    finished: bool,
}

impl<'a> Span<'a> {
    /// Starts timing now.
    pub fn start(clock: &'a dyn Clock, histogram: &'a Histogram) -> Self {
        Self {
            clock,
            histogram,
            start: clock.now_nanos(),
            finished: false,
        }
    }

    /// Stops the timer, records the elapsed nanoseconds, and returns them.
    pub fn finish(mut self) -> u64 {
        self.finished = true;
        let elapsed = self.clock.now_nanos().saturating_sub(self.start);
        self.histogram.observe(elapsed);
        elapsed
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if !self.finished {
            let elapsed = self.clock.now_nanos().saturating_sub(self.start);
            self.histogram.observe(elapsed);
        }
    }
}

impl fmt::Debug for Span<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Span").field("start", &self.start).finish()
    }
}

/// One structured engine event, fired at a pipeline boundary.
///
/// Events are per *request* (or per snapshot operation), never per
/// candidate — a sink sees a handful of events per query, not one per
/// inverted-list entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceEvent {
    /// A length plan is ready: the probing skeleton for `(query_len, tau)`.
    PlanBuilt {
        /// Query length in bytes.
        query_len: u64,
        /// The request's edit-distance threshold.
        tau: u64,
        /// Number of `(length, slot, position)` probe windows in the plan.
        probes: u64,
        /// Short-lane ids the plan will brute-force check.
        short_ids: u64,
    },
    /// Probing and verification finished for one request.
    VerifyFinished {
        /// Candidates screened (inverted-list occurrences seen).
        candidates: u64,
        /// Extension-cascade verifications run.
        verifications: u64,
        /// Matches accepted.
        matches: u64,
    },
    /// The result cache was consulted for a request.
    CacheLookup {
        /// Whether the lookup hit.
        hit: bool,
    },
    /// A complete full result was stored in the cache.
    CacheStore,
    /// A streamed request finished flushing into the caller's sink.
    Flush {
        /// Matches emitted to the sink.
        emitted: u64,
    },
    /// A snapshot file was written.
    SnapshotSaved {
        /// File length in bytes.
        bytes: u64,
    },
    /// A snapshot file was loaded.
    SnapshotLoaded {
        /// File length in bytes.
        bytes: u64,
    },
}

/// A structured trace-event consumer.
///
/// The engine calls [`TraceSink::event`] at plan/verify/cache/flush/
/// snapshot boundaries. Implementations must be cheap and non-blocking —
/// they run on the query path (parallel batch workers included, hence
/// `Send + Sync`). The default wiring uses [`NoopTraceSink`]; a no-op
/// sink must not change any query result (pinned by the online crate's
/// metrics test suite).
pub trait TraceSink: Send + Sync {
    /// Receives one event.
    fn event(&self, event: TraceEvent);
}

/// The default [`TraceSink`]: discards every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopTraceSink;

impl TraceSink for NoopTraceSink {
    fn event(&self, _event: TraceEvent) {}
}

/// A [`TraceSink`] buffering every event behind a mutex — for tests and
/// ad-hoc debugging, not for hot production paths.
#[derive(Debug, Default)]
pub struct CollectingTraceSink {
    events: Mutex<Vec<TraceEvent>>,
}

impl CollectingTraceSink {
    /// An empty collecting sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drains and returns the events collected so far.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl TraceSink for CollectingTraceSink {
    fn event(&self, event: TraceEvent) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let registry = Registry::new();
        let c = registry.counter("c_total");
        c.inc(2);
        registry.counter("c_total").inc(3); // same handle by name
        assert_eq!(c.get(), 5);
        let g = registry.gauge("g");
        g.set(-7);
        g.add(3);
        assert_eq!(g.get(), -4);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let registry = Registry::new();
        registry.counter("metric");
        registry.gauge("metric");
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 1_000, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 7);
        let buckets = h.buckets();
        assert_eq!(buckets[0], (1, 2), "0 and 1 share the le=1 bucket");
        assert_eq!(buckets[1], (3, 2), "2 and 3 share the le=3 bucket");
        assert_eq!(buckets[2], (7, 1));
        assert_eq!(buckets[9], (1023, 1), "1000 has 10 bits");
        assert_eq!(
            buckets.last().copied(),
            Some((u64::MAX, 1)),
            "u64::MAX overflows the finite buckets"
        );
        assert_eq!(
            h.sum(),
            0u64.wrapping_add(1 + 2 + 3 + 4 + 1_000)
                .wrapping_add(u64::MAX)
        );
    }

    #[test]
    fn prometheus_render_is_cumulative_and_sorted() {
        let registry = Registry::new();
        registry.counter("b_total").inc(2);
        registry.gauge("a").set(1);
        let h = registry.histogram("lat_ns");
        h.observe(1);
        h.observe(5);
        let dump = registry.render_prometheus();
        let a = dump.find("# TYPE a gauge").expect("gauge rendered");
        let b = dump
            .find("# TYPE b_total counter")
            .expect("counter rendered");
        let l = dump
            .find("# TYPE lat_ns histogram")
            .expect("histogram rendered");
        assert!(a < b && b < l, "sorted by name:\n{dump}");
        assert!(dump.contains("lat_ns_bucket{le=\"1\"} 1"));
        assert!(
            dump.contains("lat_ns_bucket{le=\"7\"} 2"),
            "cumulative:\n{dump}"
        );
        assert!(dump.contains("lat_ns_bucket{le=\"+Inf\"} 2"));
        assert!(dump.contains("lat_ns_sum 6"));
        assert!(dump.contains("lat_ns_count 2"));
    }

    #[test]
    fn json_render_is_deterministic() {
        let registry = Registry::new();
        registry.counter("hits_total").inc(3);
        registry.gauge("live").set(12);
        registry.histogram("ns").observe(100);
        let one = registry.render_json();
        let two = registry.render_json();
        assert_eq!(one, two);
        assert_eq!(
            one,
            "{\"counters\":{\"hits_total\":3},\"gauges\":{\"live\":12},\
             \"histograms\":{\"ns\":{\"count\":1,\"sum\":100,\"buckets\":[[127,1]]}}}"
        );
    }

    #[test]
    fn json_escapes_names() {
        let registry = Registry::new();
        registry.counter("weird\"name\\").inc(1);
        assert!(registry.render_json().contains("\"weird\\\"name\\\\\":1"));
    }

    #[test]
    fn span_records_on_finish_and_drop() {
        let clock = ManualNanos::new();
        let hist = Histogram::new();
        let span = Span::start(&clock, &hist);
        clock.advance(40);
        assert_eq!(span.finish(), 40);
        {
            let _span = Span::start(&clock, &hist);
            clock.advance(2);
        } // dropped unfinished: still recorded
        assert_eq!(hist.count(), 2);
        assert_eq!(hist.sum(), 42);
    }

    #[test]
    fn monotonic_clock_advances() {
        let clock = MonotonicClock::new();
        let a = clock.now_nanos();
        let b = clock.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn collecting_sink_buffers_events() {
        let sink = CollectingTraceSink::new();
        sink.event(TraceEvent::CacheLookup { hit: true });
        sink.event(TraceEvent::Flush { emitted: 3 });
        assert_eq!(
            sink.take(),
            vec![
                TraceEvent::CacheLookup { hit: true },
                TraceEvent::Flush { emitted: 3 },
            ]
        );
        assert!(sink.take().is_empty(), "take drains");
        NoopTraceSink.event(TraceEvent::CacheStore); // compiles, discards
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let registry = Arc::new(Registry::new());
        let counter = registry.counter("par_total");
        let hist = registry.histogram("par_ns");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let counter = counter.clone();
                let hist = hist.clone();
                scope.spawn(move || {
                    for i in 0..1_000 {
                        counter.inc(1);
                        hist.observe(i);
                    }
                });
            }
        });
        assert_eq!(counter.get(), 4_000);
        assert_eq!(hist.count(), 4_000);
    }
}
