//! Batched query execution: length grouping + multi-threaded dispatch.
//!
//! A similarity query's control skeleton — which lengths to visit, which
//! slots exist, each slot's segment spec and selection window — depends
//! only on the **query length**, not the query bytes. Real query streams
//! are length-skewed (names, titles, and log queries concentrate on a few
//! dozen lengths), so the batch driver sorts queries by length and computes
//! that skeleton once per distinct length ([`LengthPlan`]), leaving only
//! substring hashing, list probing, and verification per query.
//!
//! Parallel execution reuses the workspace's join-driver idiom (see
//! `passjoin`'s parallel module): workers pull fixed-size blocks of the
//! length-sorted order off an atomic cursor — dynamic balancing without a
//! scheduler dependency — keep private scratch, and write results into
//! disjoint slots of the shared output.

use std::sync::atomic::{AtomicUsize, Ordering};

use passjoin::online_window;
use passjoin::partition::{PartitionScheme, SegmentSpec};
use sj_common::StringId;

use crate::index::{Inner, QueryScratch};
use crate::Match;

/// Queries per cursor pull: large enough to amortize the atomic, small
/// enough to balance length-skewed tails.
const BLOCK: usize = 32;

/// The per-length probing skeleton: every `(l, slot)` pair with a resident
/// index, its segment spec, and the selection window for this query length.
pub(crate) struct LengthPlan {
    query_len: usize,
    /// `(l, slot, segment, window)` — windows are already clamped.
    probes: Vec<(usize, usize, SegmentSpec, std::ops::Range<usize>)>,
    /// Short-lane ids passing the length filter for this query length.
    short_ids: Vec<StringId>,
}

impl LengthPlan {
    pub(crate) fn build(inner: &Inner, query_len: usize, tau: usize) -> Self {
        let tau_max = inner.tau_max();
        assert!(
            tau <= tau_max,
            "query τ = {tau} exceeds the index's τ_max = {tau_max}"
        );
        let mut probes = Vec::new();
        let lmin = (tau_max + 1).max(query_len.saturating_sub(tau));
        let lmax = (query_len + tau).min(inner.segments().max_len());
        for l in lmin..=lmax {
            if !inner.segments().has_length(l) {
                continue;
            }
            for slot in 1..=tau_max + 1 {
                let seg = PartitionScheme::Even.segment(l, tau_max, slot);
                let window = online_window(query_len, l, seg, slot, tau_max, tau);
                if !window.is_empty() {
                    probes.push((l, slot, seg, window));
                }
            }
        }
        let short_ids = inner
            .short_ids()
            .iter()
            .copied()
            .filter(|&id| {
                let len = inner.get(id).expect("short lane holds live ids").len();
                query_len.abs_diff(len) <= tau
            })
            .collect();
        Self {
            query_len,
            probes,
            short_ids,
        }
    }
}

/// Runs the plan for one query (must have length `plan.query_len`),
/// appending `(id, distance)` matches to `out` in ascending id order.
pub(crate) fn query_with_plan(
    inner: &Inner,
    plan: &LengthPlan,
    query: &[u8],
    tau: usize,
    scratch: &mut QueryScratch,
    out: &mut Vec<Match>,
) {
    debug_assert_eq!(query.len(), plan.query_len);
    let from = out.len();
    scratch.begin(inner.universe(), query.len());
    for &rid in &plan.short_ids {
        let r = inner.get(rid).expect("short lane holds live ids");
        if let Some(d) = scratch.exact_within(r, query, tau) {
            out.push((rid, d));
        }
    }
    for (l, slot, seg, window) in &plan.probes {
        inner.probe_occurrences(query, tau, *l, *slot, *seg, window.clone(), scratch, out);
    }
    out[from..].sort_unstable();
}

/// Executes `queries` against `inner` with `threads` workers (0 = available
/// parallelism, 1 = sequential). Results align with `queries` by position.
pub(crate) fn run<Q: AsRef<[u8]> + Sync>(
    inner: &Inner,
    queries: &[Q],
    tau: usize,
    threads: usize,
) -> Vec<Vec<Match>> {
    // Length-sorted execution order (stable within a length for cache
    // friendliness of identical repeated queries).
    let mut order: Vec<u32> = (0..queries.len() as u32).collect();
    order.sort_by_key(|&i| queries[i as usize].as_ref().len());

    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    };

    if threads <= 1 || queries.len() < 2 * BLOCK {
        let mut results: Vec<Vec<Match>> = vec![Vec::new(); queries.len()];
        let mut scratch = QueryScratch::default();
        let mut plan: Option<LengthPlan> = None;
        for &qi in &order {
            let query = queries[qi as usize].as_ref();
            let plan = match &mut plan {
                Some(p) if p.query_len == query.len() => p,
                slot => slot.insert(LengthPlan::build(inner, query.len(), tau)),
            };
            query_with_plan(
                inner,
                plan,
                query,
                tau,
                &mut scratch,
                &mut results[qi as usize],
            );
        }
        return results;
    }

    let cursor = AtomicUsize::new(0);
    let order = &order;
    let mut results: Vec<Vec<Match>> = vec![Vec::new(); queries.len()];
    // Workers own disjoint result slots, handed out as raw chunks through a
    // shared slice of per-query output cells is not possible without
    // interior mutability; instead each worker returns (index, matches)
    // pairs and the merge writes them — the pairs reuse the result Vecs, so
    // nothing is copied twice.
    let collected = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let cursor = &cursor;
            handles.push(scope.spawn(move || {
                let mut local: Vec<(u32, Vec<Match>)> = Vec::new();
                let mut scratch = QueryScratch::default();
                let mut plan: Option<LengthPlan> = None;
                loop {
                    let start = cursor.fetch_add(BLOCK, Ordering::Relaxed);
                    if start >= order.len() {
                        break;
                    }
                    for &qi in &order[start..(start + BLOCK).min(order.len())] {
                        let query = queries[qi as usize].as_ref();
                        let plan = match &mut plan {
                            Some(p) if p.query_len == query.len() => p,
                            slot => slot.insert(LengthPlan::build(inner, query.len(), tau)),
                        };
                        let mut out = Vec::new();
                        query_with_plan(inner, plan, query, tau, &mut scratch, &mut out);
                        local.push((qi, out));
                    }
                }
                local
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("batch worker panicked"))
            .collect::<Vec<_>>()
    });
    for (qi, matches) in collected {
        results[qi as usize] = matches;
    }
    results
}
