//! An epoch-validated LRU cache for query results.
//!
//! Serving workloads repeat queries (hot entities, retried lookups), and a
//! similarity query is orders of magnitude more expensive than a hash-map
//! hit — so [`crate::OnlineIndex`] keeps recent results keyed by
//! `(query bytes, τ)`. Correctness under mutation is handled by **epoch
//! validation** rather than fine-grained invalidation: every insert/remove
//! bumps the index's mutation epoch, and the first cache access under a
//! newer epoch drops everything. Fine-grained invalidation (which cached
//! queries does this inserted string match?) would itself be a similarity
//! query per mutation; the wholesale drop is the classic cheap alternative
//! and is exact.
//!
//! The cache is an intrusive doubly-linked LRU over a slab: hits are O(1)
//! (one small key allocation to probe the map — see
//! [`QueryCache::lookup`]), and values are `Arc`ed so a hit never copies
//! the result vector.
//!
//! Entries are always *complete full results* for their `(query, τ)` key:
//! the execution engine never stores shaped (top-k/count), streamed, or
//! budget-truncated outcomes — which is exactly what lets it *answer*
//! shaped requests from a hit by sort-truncate/len derivation, and replay
//! hits into streaming sinks, without ever serving a partial answer as an
//! exact one.

use std::fmt;
use std::sync::Arc;

use passjoin_obs::Counter;
use sj_common::hash::FxHashMap;

use crate::Match;

/// Slab-index sentinel for "no node".
const NIL: usize = usize::MAX;

type Key = (Box<[u8]>, u32);

#[derive(Debug)]
struct Node {
    key: Key,
    value: Arc<Vec<Match>>,
    prev: usize,
    next: usize,
}

/// Hit/miss counters of a [`QueryCache`] (monotonic over its lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to run the query.
    pub misses: u64,
    /// Wholesale drops triggered by a newer mutation epoch.
    pub invalidations: u64,
    /// Entries displaced by the LRU policy to make room for new ones.
    pub evictions: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups, in `[0, 1]` (0 when nothing has
    /// been looked up yet).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits / {} misses / {} invalidations / {} evictions ({:.1}% hit rate)",
            self.hits,
            self.misses,
            self.invalidations,
            self.evictions,
            self.hit_rate() * 100.0,
        )
    }
}

/// Registry mirrors of [`CacheStats`]: the cache bumps each counter at
/// the same site as its stats field, so registry values and `CacheStats`
/// agree by construction (pinned by the online metrics test suite).
#[derive(Debug, Clone)]
pub(crate) struct CacheCounters {
    pub(crate) hits: Counter,
    pub(crate) misses: Counter,
    pub(crate) invalidations: Counter,
    pub(crate) evictions: Counter,
}

/// The LRU result cache; see the module docs.
#[derive(Debug)]
pub struct QueryCache {
    capacity: usize,
    /// Mutation epoch of the index state the entries were computed under.
    epoch: u64,
    map: FxHashMap<Key, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    stats: CacheStats,
    /// Optional registry mirrors of `stats` (observability attached).
    counters: Option<CacheCounters>,
}

impl QueryCache {
    /// A cache holding at most `capacity` results (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            epoch: 0,
            map: FxHashMap::default(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            stats: CacheStats::default(),
            counters: None,
        }
    }

    /// Attaches (or clears) registry mirrors of the stats counters.
    /// Mirrors only see events from this point on; `CacheStats` keeps the
    /// full lifetime history.
    pub(crate) fn set_counters(&mut self, counters: Option<CacheCounters>) {
        self.counters = counters;
    }

    fn count_hit(&mut self) {
        self.stats.hits += 1;
        if let Some(c) = &self.counters {
            c.hits.inc(1);
        }
    }

    fn count_miss(&mut self) {
        self.stats.misses += 1;
        if let Some(c) = &self.counters {
            c.misses.inc(1);
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lifetime hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up `(query, tau)` computed under `epoch`; a newer epoch drops
    /// all entries first, and a lookup for an *older* epoch than the cache
    /// holds is a miss (entries from a newer index state must not answer
    /// it). Hits move the entry to the front and are counted; misses are
    /// counted too (callers computing a complete full result follow up
    /// with [`QueryCache::insert`]; shaped, streamed, or budget-truncated
    /// computations do not).
    pub fn lookup(&mut self, query: &[u8], tau: usize, epoch: u64) -> Option<Arc<Vec<Match>>> {
        if self.capacity == 0 {
            self.count_miss();
            return None;
        }
        self.validate(epoch);
        if epoch < self.epoch {
            self.count_miss();
            return None;
        }
        // The map is keyed by (Box<[u8]>, u32), which has no cheap borrowed
        // form, so probing builds a temporary key — one small allocation
        // per lookup; queries are short.
        let key: Key = (query.into(), tau as u32);
        match self.map.get(&key) {
            Some(&slot) => {
                self.count_hit();
                self.unlink(slot);
                self.push_front(slot);
                Some(Arc::clone(&self.nodes[slot].value))
            }
            None => {
                self.count_miss();
                None
            }
        }
    }

    /// Caches a result computed under `epoch`, evicting the least recently
    /// used entry if full. No-op when disabled or when `epoch` is already
    /// stale.
    pub fn insert(&mut self, query: &[u8], tau: usize, epoch: u64, value: Arc<Vec<Match>>) {
        if self.capacity == 0 {
            return;
        }
        self.validate(epoch);
        if epoch < self.epoch {
            return; // result from an older index state: never store it
        }
        let key: Key = (query.into(), tau as u32);
        if let Some(&slot) = self.map.get(&key) {
            self.nodes[slot].value = value;
            self.unlink(slot);
            self.push_front(slot);
            return;
        }
        if self.map.len() == self.capacity {
            let lru = self.tail;
            self.unlink(lru);
            let node = &mut self.nodes[lru];
            self.map.remove(&node.key);
            self.free.push(lru);
            self.stats.evictions += 1;
            if let Some(c) = &self.counters {
                c.evictions.inc(1);
            }
        }
        let node = Node {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot] = node;
                slot
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        };
        self.map.insert(key, slot);
        self.push_front(slot);
    }

    /// Drops every entry (also resets the stored epoch to `epoch`).
    pub fn clear(&mut self, epoch: u64) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.epoch = epoch;
    }

    /// Advances the cache to a newer epoch, dropping the outdated entries.
    /// An *older* caller epoch leaves the cache untouched — the caller's
    /// view is stale, not the cache (lookup/insert then reject it).
    fn validate(&mut self, epoch: u64) {
        if epoch > self.epoch {
            if !self.map.is_empty() {
                self.stats.invalidations += 1;
                if let Some(c) = &self.counters {
                    c.invalidations.inc(1);
                }
            }
            self.clear(epoch);
        }
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.nodes[slot].prev, self.nodes[slot].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.nodes[slot].prev = NIL;
        self.nodes[slot].next = NIL;
    }

    fn push_front(&mut self, slot: usize) {
        self.nodes[slot].prev = NIL;
        self.nodes[slot].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value(ids: &[u32]) -> Arc<Vec<Match>> {
        Arc::new(ids.iter().map(|&id| (id, 1usize)).collect())
    }

    #[test]
    fn hit_rate_and_display() {
        let mut stats = CacheStats::default();
        assert_eq!(stats.hit_rate(), 0.0, "no lookups yet");
        stats.hits = 3;
        stats.misses = 1;
        stats.invalidations = 2;
        stats.evictions = 4;
        assert_eq!(stats.hit_rate(), 0.75);
        assert_eq!(
            stats.to_string(),
            "3 hits / 1 misses / 2 invalidations / 4 evictions (75.0% hit rate)"
        );
    }

    #[test]
    fn hit_after_insert() {
        let mut cache = QueryCache::new(4);
        assert!(cache.lookup(b"abc", 1, 0).is_none());
        cache.insert(b"abc", 1, 0, value(&[7]));
        let hit = cache.lookup(b"abc", 1, 0).expect("hit");
        assert_eq!(hit[0].0, 7);
        // Different τ is a different key.
        assert!(cache.lookup(b"abc", 2, 0).is_none());
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 2,
                invalidations: 0,
                evictions: 0,
            }
        );
    }

    #[test]
    fn epoch_bump_invalidates() {
        let mut cache = QueryCache::new(4);
        cache.insert(b"abc", 1, 0, value(&[1]));
        assert!(cache.lookup(b"abc", 1, 0).is_some());
        assert!(
            cache.lookup(b"abc", 1, 1).is_none(),
            "newer epoch drops entries"
        );
        assert_eq!(cache.stats().invalidations, 1);
        // A stale insert (old epoch) is refused.
        cache.insert(b"abc", 1, 0, value(&[1]));
        assert!(cache.lookup(b"abc", 1, 1).is_none());
    }

    #[test]
    fn stale_operations_leave_current_entries_intact() {
        let mut cache = QueryCache::new(4);
        cache.insert(b"abc", 1, 7, value(&[1]));
        // A stale insert must neither wipe the epoch-7 entries nor be
        // stored and served later.
        cache.insert(b"abc", 1, 5, value(&[99]));
        assert!(
            cache.lookup(b"abc", 1, 5).is_none(),
            "stale lookup is a miss"
        );
        let current = cache.lookup(b"abc", 1, 7).expect("current entry survives");
        assert_eq!(current[0].0, 1);
        assert_eq!(cache.stats().invalidations, 0);
    }

    #[test]
    fn lru_eviction_order() {
        let mut cache = QueryCache::new(2);
        cache.insert(b"a", 0, 0, value(&[1]));
        cache.insert(b"b", 0, 0, value(&[2]));
        assert!(cache.lookup(b"a", 0, 0).is_some()); // refresh "a"
        cache.insert(b"c", 0, 0, value(&[3])); // evicts "b"
        assert!(cache.lookup(b"a", 0, 0).is_some());
        assert!(cache.lookup(b"b", 0, 0).is_none());
        assert!(cache.lookup(b"c", 0, 0).is_some());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1, "\"b\" was displaced by LRU");
    }

    #[test]
    fn reinsert_updates_value() {
        let mut cache = QueryCache::new(2);
        cache.insert(b"a", 0, 0, value(&[1]));
        cache.insert(b"a", 0, 0, value(&[1, 2]));
        assert_eq!(cache.lookup(b"a", 0, 0).unwrap().len(), 2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut cache = QueryCache::new(0);
        cache.insert(b"a", 0, 0, value(&[1]));
        assert!(cache.lookup(b"a", 0, 0).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn churn_exercises_slab_reuse() {
        let mut cache = QueryCache::new(3);
        for round in 0u32..50 {
            let key = [round as u8, (round % 7) as u8];
            cache.insert(&key, 0, 0, value(&[round]));
            assert!(cache.len() <= 3);
            assert_eq!(cache.lookup(&key, 0, 0).unwrap()[0].0, round);
        }
    }
}
