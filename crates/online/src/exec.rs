//! The one execution engine behind every query surface.
//!
//! [`OnlineIndex`](crate::OnlineIndex) and [`Snapshot`](crate::Snapshot)
//! used to carry near-duplicate `query*` method families; both now
//! implement [`Queryable`] by handing the engine an [`ExecSource`] (their
//! shared inner state, epoch, and — for the index — its cache), and
//! everything else lives here exactly once:
//!
//! * **Length plans** — a query's control skeleton (which `(length, slot)`
//!   indices to visit, each slot's segment spec and selection window)
//!   depends only on `(query length, τ)`, so batches sort by that key and
//!   rebuild the plan only when it changes ([`LengthPlan`]).
//! * **Sinks** — verification reports matches into a
//!   [`passjoin::sink::MatchSink`] chosen by the request shape: collect
//!   (plain), bounded top-k heap (`limit`, tightening verification as it
//!   fills), or a counter (`count_only`, saturating at an optional cap).
//!   [`Queryable::search_streaming`] instead threads a *caller-supplied*
//!   sink down to the verification loop, so matches are pushed as they
//!   are verified rather than buffered per query.
//! * **Budgets** — a request's [`ExecBudget`](crate::ExecBudget) wraps
//!   the shape sink in a composing [`passjoin::sink::BudgetSink`]; a
//!   tripped cap aborts probing through the sink saturation path and the
//!   outcome reports [`Completion::Truncated`](crate::Completion) with
//!   the reason.
//! * **Batch dispatch** — mixed-τ batches are first-class; workers pull
//!   blocks of the `(length, τ)`-sorted order off an atomic cursor, keep
//!   private scratch (dedup stamps, DP rows, the interned backend's
//!   substring-resolution memo), and write position-aligned outcomes.
//! * **Cache integration** — cacheable requests (plain shape, policy
//!   [`CachePolicy::Use`](crate::CachePolicy::Use)) consult the source's
//!   epoch-validated LRU cache; the per-request outcome is reported in
//!   [`QueryOutcome::cache`].
//!
//! The deprecated legacy methods are one-line wrappers over the
//! `legacy_*` helpers at the bottom — same engine, fixed shape.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use passjoin::online_window;
use passjoin::partition::{PartitionScheme, SegmentSpec};
use passjoin::sink::{
    BudgetPool, BudgetSink, CollectSink, CountSink, MatchSink, PoolBudgetSink, TopKSink,
    TruncationReason,
};
use passjoin_obs::TraceEvent;
use sj_common::StringId;

use crate::cache::QueryCache;
use crate::index::{Inner, KeyBackend, QueryScratch, SegmentStore};
use crate::obs::{trace, EngineObs};
use crate::request::{
    CacheOutcome, CachePolicy, Completion, ExecBudget, ExecStats, Parallelism, QueryOutcome,
    SearchRequest, SearchResponse,
};
use crate::Match;

/// Queries per cursor pull in parallel batches: large enough to amortize
/// the atomic, small enough to balance length-skewed tails.
const BLOCK: usize = 32;

/// A similarity-search source the engine can execute requests against.
///
/// Implemented by [`OnlineIndex`](crate::OnlineIndex) and
/// [`Snapshot`](crate::Snapshot); everything except
/// [`exec_source`](Queryable::exec_source) is provided, so both types
/// share one execution path by construction. The trait is object-safe —
/// callers that serve either a live index or a point-in-time snapshot can
/// hold `&dyn Queryable` (the CLI does).
///
/// ```
/// use passjoin_online::{OnlineIndex, Queryable, SearchRequest};
///
/// let mut index = OnlineIndex::new(1);
/// index.insert(b"vldb");
/// let snapshot = index.snapshot();
///
/// // One binding serves both source kinds.
/// let source: &dyn Queryable = &snapshot;
/// let outcome = source.search(&SearchRequest::new(b"pvldb", 1));
/// assert_eq!(*outcome.matches, vec![(0, 1)]);
/// ```
pub trait Queryable {
    /// The engine-facing view of this source (internal plumbing; exposed
    /// only so the provided methods can be defined once on the trait).
    ///
    /// Single-state sources ([`OnlineIndex`](crate::OnlineIndex),
    /// [`Snapshot`](crate::Snapshot)) return `Some`; a *composite* source
    /// with no single inner state — like the shard router
    /// ([`ShardedIndex`](crate::ShardedIndex)) — returns `None` and must
    /// override **every** provided method (the defaults panic loudly on a
    /// `None` source rather than answering from the wrong state).
    #[doc(hidden)]
    fn exec_source(&self) -> Option<ExecSource<'_>>;

    /// Executes one request; see [`SearchRequest`] for the knobs and
    /// [`QueryOutcome`] for what comes back.
    fn search(&self, req: &SearchRequest) -> QueryOutcome {
        let source = require_source(self.exec_source());
        let mut plans = PlanSlot::default();
        let mut scratch = QueryScratch::default();
        run_view(&source, ReqView::of(req), &mut plans, &mut scratch)
    }

    /// Executes a batch of requests — thresholds, limits, and cache
    /// policies may differ per request — sharing substring-selection work
    /// across requests with equal `(query length, τ)` and parallelizing
    /// across the strongest [`Parallelism`](crate::Parallelism) hint in
    /// the batch. Outcomes align with `reqs` by position.
    fn search_batch(&self, reqs: &[SearchRequest]) -> SearchResponse {
        run_batch(&require_source(self.exec_source()), reqs)
    }

    /// Executes one request, *pushing* matches into a caller-supplied
    /// [`MatchSink`] as they are verified instead of buffering them — the
    /// serving-layer shape: a server can emit each match onto the wire
    /// the moment verification accepts it.
    ///
    /// Semantics per request shape (the emitted multiset always equals
    /// [`Queryable::search`]'s matches for the same request):
    ///
    /// * **plain** — `(id, exact distance)` pairs are pushed in
    ///   verification order (*not* id order; sort the collected result to
    ///   compare with the buffered path);
    /// * **`with_limit(k)`** — retention is global (a later match can
    ///   displace an earlier one), so emission is deferred: the heap runs
    ///   to completion, then flushes into the sink in `(distance, id)`
    ///   order — exactly the buffered top-k result;
    /// * **`count_only`** — nothing is emitted; the count is in the
    ///   returned outcome.
    ///
    /// The caller's sink steers the scan like any engine sink (its
    /// `bound` tightens verification, `saturated` aborts probing), and
    /// the request's [`ExecBudget`](crate::ExecBudget) applies on top.
    /// The returned [`QueryOutcome`] carries the emitted-match count,
    /// stats, completion, and cache outcome, but an empty `matches`
    /// vector — the matches went to the sink. Cache hits replay the
    /// cached result (id order); computed streaming results are **never
    /// stored** in the cache, because the engine cannot prove the
    /// caller's sink did not steer or truncate the scan.
    ///
    /// ```
    /// use passjoin_online::{CollectSink, OnlineIndex, Queryable, SearchRequest};
    ///
    /// let mut index = OnlineIndex::new(1);
    /// index.insert(b"vldb");
    /// index.insert(b"pvldb");
    ///
    /// let mut emitted = Vec::new();
    /// let outcome = {
    ///     let mut sink = CollectSink::new(&mut emitted);
    ///     index.search_streaming(&SearchRequest::new(b"vldb", 1), &mut sink)
    /// };
    /// emitted.sort_unstable(); // plain emissions arrive in verification order
    /// assert_eq!(emitted, vec![(0, 0), (1, 1)]);
    /// assert_eq!(outcome.count, 2);
    /// assert!(outcome.matches.is_empty()); // the matches went to the sink
    /// ```
    fn search_streaming(&self, req: &SearchRequest, sink: &mut dyn MatchSink) -> QueryOutcome {
        let source = require_source(self.exec_source());
        let mut plans = PlanSlot::default();
        let mut scratch = QueryScratch::default();
        run_view_streaming(&source, ReqView::of(req), sink, &mut plans, &mut scratch)
    }

    /// Streaming over a batch: every request is executed with
    /// [`Queryable::search_streaming`] semantics, pushing its matches into
    /// its **own** sink — `sinks[i]` receives request `i`'s matches. With
    /// one sink per request nothing forces a global emission order, so the
    /// batch parallelizes exactly like [`Queryable::search_batch`]: the
    /// strongest [`Parallelism`](crate::Parallelism) hint in the batch
    /// wins and workers pull `(length, τ)`-sorted blocks off one cursor.
    /// Each request's own emissions keep the per-request streaming
    /// contract (plain in verification order, top-k flushed in
    /// `(distance, id)` order); different requests may interleave
    /// arbitrarily in time. Outcomes align with `reqs` by position.
    ///
    /// # Panics
    ///
    /// Panics if `sinks.len() != reqs.len()`.
    ///
    /// ```
    /// use passjoin::sink::MatchSink;
    /// use passjoin_online::{CollectSink, OnlineIndex, Queryable, SearchRequest};
    ///
    /// let mut index = OnlineIndex::new(1);
    /// index.insert(b"vldb");
    ///
    /// let (mut a, mut b) = (Vec::new(), Vec::new());
    /// let response = {
    ///     let mut sink_a = CollectSink::new(&mut a);
    ///     let mut sink_b = CollectSink::new(&mut b);
    ///     let mut sinks: [&mut (dyn MatchSink + Send); 2] = [&mut sink_a, &mut sink_b];
    ///     index.search_batch_streaming(
    ///         &[SearchRequest::new(b"vldb", 0), SearchRequest::new(b"pvldb", 1)],
    ///         &mut sinks,
    ///     )
    /// };
    /// assert_eq!(a, vec![(0, 0)]);
    /// assert_eq!(b, vec![(0, 1)]);
    /// assert_eq!(response.outcomes.len(), 2);
    /// ```
    fn search_batch_streaming(
        &self,
        reqs: &[SearchRequest],
        sinks: &mut [&mut (dyn MatchSink + Send)],
    ) -> SearchResponse {
        assert_eq!(
            reqs.len(),
            sinks.len(),
            "search_batch_streaming needs exactly one sink per request"
        );
        let source = require_source(self.exec_source());
        let views: Vec<ReqView<'_>> = reqs.iter().map(ReqView::of).collect();
        let threads = batch_threads(reqs);
        SearchResponse {
            outcomes: run_views_streaming(&source, &views, sinks, threads),
        }
    }

    /// Convenience for the plain one-query case: all matches within `tau`
    /// as `(id, exact distance)`, ascending by id. Equivalent to
    /// `search(&SearchRequest::new(query, tau)).matches`.
    fn matches(&self, query: &[u8], tau: usize) -> Vec<Match> {
        legacy_query(require_source(self.exec_source()).inner, query, tau)
    }

    /// The largest per-query threshold this source supports.
    fn tau_max(&self) -> usize {
        require_source(self.exec_source()).inner.tau_max()
    }

    /// Which segment-key backend the source was built with.
    fn key_backend(&self) -> KeyBackend {
        require_source(self.exec_source())
            .inner
            .segments()
            .backend()
    }

    /// Live strings visible to queries.
    fn len(&self) -> usize {
        require_source(self.exec_source()).inner.len()
    }

    /// True if no live strings are visible.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The mutation epoch of the visible state.
    fn epoch(&self) -> u64 {
        require_source(self.exec_source()).epoch
    }
}

/// Unwraps [`Queryable::exec_source`] for the provided methods. A source
/// returning `None` (a composite, like [`ShardedIndex`](crate::ShardedIndex))
/// must override every provided method; reaching this panic means one was
/// missed.
fn require_source(source: Option<ExecSource<'_>>) -> ExecSource<'_> {
    source.expect(
        "Queryable::exec_source returned None: a composite source must override \
         every provided Queryable method",
    )
}

/// The engine's view of a query source: shared index state, the epoch it
/// is valid for, and (for sources that have one) the query cache.
#[doc(hidden)]
pub struct ExecSource<'a> {
    pub(crate) inner: &'a Inner,
    pub(crate) epoch: u64,
    pub(crate) cache: Option<&'a Mutex<QueryCache>>,
    /// Observability bundle; `None` keeps the whole engine uninstrumented
    /// (one branch per request, nothing on the probe/verify loops).
    pub(crate) obs: Option<&'a EngineObs>,
}

/// Per-request phase accumulator for the instrumented path: collects the
/// explicitly measured plan and cache-lock time (verification time rides
/// in the scratch's timer, probing is the remainder — see
/// [`EngineObs::record_request`]).
struct ReqObs<'a> {
    obs: &'a EngineObs,
    plan_ns: u64,
    cache_ns: u64,
}

impl ReqObs<'_> {
    fn time_plan<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let start = self.obs.clock.now_nanos();
        let out = f();
        self.plan_ns += self.obs.clock.now_nanos().saturating_sub(start);
        out
    }

    fn time_cache<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let start = self.obs.clock.now_nanos();
        let out = f();
        self.cache_ns += self.obs.clock.now_nanos().saturating_sub(start);
        out
    }
}

/// The engine-internal view of one request: borrowed bytes plus the shape
/// flags, so legacy surfaces (borrowed query lists + one τ) run the same
/// loop without materializing `SearchRequest`s.
#[derive(Clone, Copy)]
struct ReqView<'a> {
    query: &'a [u8],
    tau: usize,
    limit: Option<usize>,
    count_only: bool,
    use_cache: bool,
    budget: Option<&'a ExecBudget>,
    /// Shared batch pool ([`crate::BatchBudget`]); unlimited pools are
    /// filtered out like unlimited budgets.
    pool: Option<&'a BudgetPool>,
}

impl<'a> ReqView<'a> {
    fn of(req: &'a SearchRequest) -> Self {
        Self {
            query: req.query(),
            tau: req.tau(),
            limit: req.limit(),
            count_only: req.is_count_only(),
            use_cache: req.cache() == CachePolicy::Use,
            budget: req.budget().filter(|b| !b.is_unlimited()),
            pool: req
                .batch_budget()
                .map(|b| b.pool().as_ref())
                .filter(|p| !p.is_unlimited()),
        }
    }

    fn plain(query: &'a [u8], tau: usize) -> Self {
        Self {
            query,
            tau,
            limit: None,
            count_only: false,
            use_cache: false,
            budget: None,
            pool: None,
        }
    }

    /// The unshaped full-result request — the only shape the cache
    /// *stores* (keyed by `(query, τ)`); shaped requests can still be
    /// *derived* from a stored full result on a hit.
    fn is_plain(&self) -> bool {
        self.limit.is_none() && !self.count_only
    }
}

/// The per-`(query length, τ)` probing skeleton: every `(l, slot)` pair
/// with a resident index, its segment spec, and the selection window.
pub(crate) struct LengthPlan {
    query_len: usize,
    tau: usize,
    /// `(l, slot, segment, window)` — windows are already clamped.
    probes: Vec<(usize, usize, SegmentSpec, std::ops::Range<usize>)>,
    /// Short-lane ids passing the τ length filter for this query length.
    short_ids: Vec<StringId>,
}

impl LengthPlan {
    pub(crate) fn build(inner: &Inner, query_len: usize, tau: usize) -> Self {
        let tau_max = inner.tau_max();
        assert!(
            tau <= tau_max,
            "query τ = {tau} exceeds the index's τ_max = {tau_max}"
        );
        let mut probes = Vec::new();
        let lmin = (tau_max + 1).max(query_len.saturating_sub(tau));
        let lmax = (query_len + tau).min(inner.segments().max_len());
        for l in lmin..=lmax {
            if !inner.segments().has_length(l) {
                continue;
            }
            for slot in 1..=tau_max + 1 {
                let seg = PartitionScheme::Even.segment(l, tau_max, slot);
                let window = online_window(query_len, l, seg, slot, tau_max, tau);
                if !window.is_empty() {
                    probes.push((l, slot, seg, window));
                }
            }
        }
        let short_ids = inner
            .short_ids()
            .iter()
            .copied()
            .filter(|&id| {
                let len = inner.get(id).expect("short lane holds live ids").len();
                query_len.abs_diff(len) <= tau
            })
            .collect();
        Self {
            query_len,
            tau,
            probes,
            short_ids,
        }
    }
}

/// A one-plan cache keyed by `(query length, τ)` — batches sorted by that
/// key rebuild only at group boundaries.
#[derive(Default)]
struct PlanSlot(Option<LengthPlan>);

impl PlanSlot {
    fn get(&mut self, inner: &Inner, query_len: usize, tau: usize) -> &LengthPlan {
        let stale = !matches!(&self.0, Some(p) if p.query_len == query_len && p.tau == tau);
        if stale {
            self.0 = Some(LengthPlan::build(inner, query_len, tau));
        }
        self.0.as_ref().expect("plan was just ensured")
    }
}

/// Runs one query's plan into a sink. The sink steers the scan: probes
/// whose length falls outside its current bound are skipped, verification
/// budgets tighten to the bound, and a saturated sink stops everything.
/// Work is announced through the sink's note hooks *before* it runs, so
/// a [`BudgetSink`] can cap it. For collecting sinks (bound = τ, never
/// saturated, no-op hooks) this is byte-for-byte the legacy probing loop.
fn run_plan<S: MatchSink + ?Sized>(
    inner: &Inner,
    plan: &LengthPlan,
    query: &[u8],
    tau: usize,
    scratch: &mut QueryScratch,
    sink: &mut S,
    stats: &mut ExecStats,
) {
    debug_assert_eq!(query.len(), plan.query_len);
    debug_assert_eq!(tau, plan.tau);
    scratch.begin(inner.universe(), query.len());
    for &rid in &plan.short_ids {
        if sink.saturated() {
            return;
        }
        let bound = sink.bound(tau);
        let r = inner.get(rid).expect("short lane holds live ids");
        if query.len().abs_diff(r.len()) > bound {
            continue; // plan filtered at τ; the sink may demand tighter
        }
        sink.note_verification();
        if sink.saturated() {
            return; // budget tripped: this check is skipped
        }
        stats.short_checked += 1;
        if let Some(d) = scratch.exact_within(r, query, bound) {
            stats.short_matches += 1;
            sink.push(rid, d);
        }
    }
    for (l, slot, seg, window) in &plan.probes {
        if sink.saturated() {
            return;
        }
        if l.abs_diff(query.len()) > sink.bound(tau) {
            continue; // no match of this length can beat the sink's worst
        }
        probe_occurrences(
            inner,
            query,
            tau,
            *l,
            *slot,
            *seg,
            window.clone(),
            scratch,
            sink,
            stats,
        );
    }
}

/// Probes one `(length, slot)` inverted index with the substrings of
/// `query` in `window`, screening candidates with the extension cascade
/// and pushing `(id, exact distance)` matches into the sink.
///
/// The owned backend looks each substring up by bytes; the interned
/// backend resolves it to a dictionary id once per `(position, length)` —
/// memoized in the scratch, because windows of adjacent lengths overlap —
/// and every (repeated) probe after that is integer-keyed. The direct
/// backend binary-searches each substring against the sorted run table in
/// the snapshot buffer.
#[allow(clippy::too_many_arguments)]
fn probe_occurrences<S: MatchSink + ?Sized>(
    inner: &Inner,
    query: &[u8],
    tau: usize,
    l: usize,
    slot: usize,
    seg: SegmentSpec,
    window: std::ops::Range<usize>,
    scratch: &mut QueryScratch,
    sink: &mut S,
    stats: &mut ExecStats,
) {
    match inner.segments() {
        SegmentStore::Owned(map) => {
            for p in window {
                if sink.saturated() {
                    return;
                }
                let w = &query[p..p + seg.len];
                let Some(list) = map.probe(l, slot, w) else {
                    continue;
                };
                screen_list(inner, query, tau, slot, seg, p, list, scratch, sink, stats);
            }
        }
        SegmentStore::Interned(index) => {
            for p in window {
                if sink.saturated() {
                    return;
                }
                let key = scratch.seg_memo.resolve(index, query, p, seg.len);
                let Some(list) = key.and_then(|key| index.probe_id(l, slot, key)) else {
                    continue;
                };
                screen_list(inner, query, tau, slot, seg, p, list, scratch, sink, stats);
            }
        }
        SegmentStore::Direct { index, .. } => {
            for p in window {
                if sink.saturated() {
                    return;
                }
                let w = &query[p..p + seg.len];
                let Some(list) = index.probe(l, slot, w) else {
                    continue;
                };
                screen_list(inner, query, tau, slot, seg, p, list, scratch, sink, stats);
            }
        }
    }
}

/// Screens one inverted list's candidates with the extension cascade
/// (§5.2) and pushes accepted `(id, exact distance)` matches.
#[allow(clippy::too_many_arguments)]
fn screen_list<S: MatchSink + ?Sized>(
    inner: &Inner,
    query: &[u8],
    tau: usize,
    slot: usize,
    seg: SegmentSpec,
    p: usize,
    list: &[StringId],
    scratch: &mut QueryScratch,
    sink: &mut S,
    stats: &mut ExecStats,
) {
    for &rid in list {
        if sink.saturated() {
            return;
        }
        sink.note_candidate();
        if sink.saturated() {
            return; // budget tripped: this candidate is skipped
        }
        stats.candidates += 1;
        if scratch.resolved.contains(rid) {
            continue; // already accepted this query
        }
        // The sink's bound only shrinks, so rejecting against the value
        // read here can never lose a match a later bound would accept.
        let bound = sink.bound(tau);
        // On a validated index every posting references a live id; with
        // deferred validation (instant opens) a hostile file's postings
        // may point at a span that reads as a tombstone — skipping is the
        // query-safe answer, and flagging the file is the background
        // verifier's job.
        let Some(r) = inner.get(rid) else {
            continue;
        };
        if r.len().abs_diff(query.len()) > bound {
            continue; // selection guaranteed ≤ τ; the bound is tighter
        }
        sink.note_verification();
        if sink.saturated() {
            return; // budget tripped: this verification is skipped
        }
        stats.verifications += 1;
        // Extension cascade (§5.2) under mixed budgets: the partition
        // geometry contributes i−1 / τ_max+1−i, the query budget
        // contributes the sink bound — the pigeonhole witness satisfies
        // both, so screening on their minimum never rejects a match the
        // sink could still use (see the index module docs).
        let tau_left = (slot - 1).min(bound);
        let Some(d_left) = scratch.exact_within(&r[..seg.start], &query[..p], tau_left) else {
            continue; // this occurrence fails; others may pass
        };
        let tau_right = (inner.tau_max() + 1 - slot).min(bound - d_left);
        if scratch
            .exact_within(&r[seg.end()..], &query[p + seg.len..], tau_right)
            .is_none()
        {
            continue;
        }
        // The alignment certifies ed ≤ bound; report it exactly.
        let d = scratch
            .exact_within(r, query, bound)
            .expect("extension certificate implies distance <= bound");
        scratch.resolved.insert(rid);
        stats.segment_matches += 1;
        sink.push(rid, d);
    }
}

/// Runs one query's plan under the view's per-request [`BudgetSink`];
/// returns why the *request* budget tripped, if it did (the inner sink —
/// possibly a [`PoolBudgetSink`] — keeps its own trip state).
fn run_request_budgeted<S: MatchSink + ?Sized>(
    inner: &Inner,
    plan: &LengthPlan,
    view: ReqView<'_>,
    budget: &ExecBudget,
    scratch: &mut QueryScratch,
    sink: &mut S,
    stats: &mut ExecStats,
) -> Option<TruncationReason> {
    let mut budgeted = BudgetSink::new(sink);
    if let Some(n) = budget.max_verifications() {
        budgeted = budgeted.with_max_verifications(n);
    }
    if let Some(n) = budget.max_candidates() {
        budgeted = budgeted.with_max_candidates(n);
    }
    if let Some((source, expires_at)) = budget.deadline() {
        budgeted = budgeted.with_deadline(source, expires_at);
    }
    run_plan(
        inner,
        plan,
        view.query,
        view.tau,
        scratch,
        &mut budgeted,
        stats,
    );
    budgeted.tripped()
}

/// Runs one query's plan into `sink`, wrapped in a [`BudgetSink`] when
/// the view carries a budget and a [`PoolBudgetSink`] when it carries a
/// shared batch pool (a unit of work must then clear both), and reports
/// whether the scan completed or a budget tripped. Unbudgeted views take
/// the raw path — no adapter, no per-event overhead.
fn run_plan_budgeted<S: MatchSink + ?Sized>(
    inner: &Inner,
    plan: &LengthPlan,
    view: ReqView<'_>,
    scratch: &mut QueryScratch,
    sink: &mut S,
    stats: &mut ExecStats,
) -> Completion {
    let tripped = match (view.budget, view.pool) {
        (None, None) => {
            run_plan(inner, plan, view.query, view.tau, scratch, sink, stats);
            None
        }
        (Some(budget), None) => {
            run_request_budgeted(inner, plan, view, budget, scratch, sink, stats)
        }
        (budget, Some(pool)) => {
            let mut pooled = PoolBudgetSink::new(sink, pool);
            let own = match budget {
                Some(budget) => {
                    run_request_budgeted(inner, plan, view, budget, scratch, &mut pooled, stats)
                }
                None => {
                    run_plan(
                        inner,
                        plan,
                        view.query,
                        view.tau,
                        scratch,
                        &mut pooled,
                        stats,
                    );
                    None
                }
            };
            // The request's own trip takes precedence over the pool's.
            own.or(pooled.tripped())
        }
    };
    match tripped {
        Some(reason) => Completion::Truncated { reason },
        None => Completion::Complete,
    }
}

/// Fetches (building if stale) the view's [`LengthPlan`], attributing the
/// build time to the plan phase and firing [`TraceEvent::PlanBuilt`] when
/// the request is instrumented.
fn timed_plan<'p>(
    inner: &Inner,
    view: ReqView<'_>,
    plans: &'p mut PlanSlot,
    robs: Option<&mut ReqObs<'_>>,
) -> &'p LengthPlan {
    match robs {
        Some(r) => {
            let plan = r.time_plan(|| plans.get(inner, view.query.len(), view.tau));
            trace(
                r.obs,
                TraceEvent::PlanBuilt {
                    query_len: view.query.len() as u64,
                    tau: view.tau as u64,
                    probes: plan.probes.len() as u64,
                    short_ids: plan.short_ids.len() as u64,
                },
            );
            plan
        }
        None => plans.get(inner, view.query.len(), view.tau),
    }
}

/// Executes one view (no cache involvement), picking the sink from the
/// request shape.
fn execute_shaped(
    inner: &Inner,
    view: ReqView<'_>,
    plans: &mut PlanSlot,
    scratch: &mut QueryScratch,
    robs: Option<&mut ReqObs<'_>>,
) -> QueryOutcome {
    let plan = timed_plan(inner, view, plans, robs);
    let mut stats = ExecStats::default();
    if view.count_only {
        let mut sink = match view.limit {
            Some(cap) => CountSink::capped(cap),
            None => CountSink::new(),
        };
        let completion = run_plan_budgeted(inner, plan, view, scratch, &mut sink, &mut stats);
        QueryOutcome {
            matches: Arc::default(),
            count: sink.count(),
            cache: CacheOutcome::Bypass,
            completion,
            stats,
        }
    } else if let Some(k) = view.limit {
        let mut sink = TopKSink::new(k);
        let completion = run_plan_budgeted(inner, plan, view, scratch, &mut sink, &mut stats);
        let matches = sink.into_matches();
        QueryOutcome {
            count: matches.len(),
            matches: Arc::new(matches),
            cache: CacheOutcome::Bypass,
            completion,
            stats,
        }
    } else {
        let mut out = Vec::new();
        let completion;
        {
            let mut sink = CollectSink::new(&mut out);
            completion = run_plan_budgeted(inner, plan, view, scratch, &mut sink, &mut stats);
        }
        out.sort_unstable();
        QueryOutcome {
            count: out.len(),
            matches: Arc::new(out),
            cache: CacheOutcome::Bypass,
            completion,
            stats,
        }
    }
}

pub(crate) fn lock(cache: &Mutex<QueryCache>) -> std::sync::MutexGuard<'_, QueryCache> {
    // A poisoned cache only means a panic elsewhere mid-operation; the
    // LRU's state is valid after every public call, so keep serving.
    cache.lock().unwrap_or_else(|e| e.into_inner())
}

/// Derives a shaped answer from a cached *full* result: plain requests
/// get the cached vector itself (zero-copy), top-k requests sort-truncate
/// it by `(distance, id)`, counts take its length (capped). Exactness is
/// free — only `Complete` full results are ever stored.
fn derive_from_cache(view: ReqView<'_>, hit: Arc<Vec<Match>>) -> QueryOutcome {
    let hit_outcome = |count, matches| QueryOutcome {
        count,
        matches,
        cache: CacheOutcome::Hit,
        completion: Completion::Complete,
        stats: ExecStats::default(),
    };
    if view.count_only {
        let count = match view.limit {
            Some(cap) => hit.len().min(cap),
            None => hit.len(),
        };
        hit_outcome(count, Arc::default())
    } else if let Some(k) = view.limit {
        let mut scored: Vec<(usize, StringId)> = hit.iter().map(|&(id, d)| (d, id)).collect();
        // Hot path (the cache exists for repeated queries): select the k
        // smallest in O(n), sort only those — not the whole result.
        if k == 0 {
            scored.clear();
        } else if k < scored.len() {
            scored.select_nth_unstable(k);
            scored.truncate(k);
        }
        scored.sort_unstable();
        let matches: Vec<Match> = scored.into_iter().map(|(d, id)| (id, d)).collect();
        hit_outcome(matches.len(), Arc::new(matches))
    } else {
        hit_outcome(hit.len(), hit)
    }
}

/// Executes one view, consulting the source's cache when the request
/// opts in. Any shape can be *answered* from a stored full result
/// ([`derive_from_cache`]); only plain [`Completion::Complete`] results
/// are ever *stored* — a truncated or shaped result must not masquerade
/// as the full answer for `(query, τ)`.
fn run_view(
    source: &ExecSource<'_>,
    view: ReqView<'_>,
    plans: &mut PlanSlot,
    scratch: &mut QueryScratch,
) -> QueryOutcome {
    let Some(obs) = source.obs else {
        return run_view_inner(source, view, plans, scratch, None);
    };
    let (outcome, _) = instrumented(obs, scratch, |scratch, robs| {
        run_view_inner(source, view, plans, scratch, Some(robs))
    });
    outcome
}

/// Brackets one request on the instrumented path: installs the scratch
/// verify timer, runs `f` with a fresh phase accumulator, and records the
/// finished request (counters, truncation, phase histograms, the
/// `VerifyFinished` trace event). Returns the outcome and total wall ns.
fn instrumented(
    obs: &EngineObs,
    scratch: &mut QueryScratch,
    f: impl FnOnce(&mut QueryScratch, &mut ReqObs<'_>) -> QueryOutcome,
) -> (QueryOutcome, u64) {
    let start = obs.clock.now_nanos();
    scratch.start_verify_timer(Arc::clone(&obs.clock));
    let mut robs = ReqObs {
        obs,
        plan_ns: 0,
        cache_ns: 0,
    };
    let outcome = f(scratch, &mut robs);
    let verify_ns = scratch.take_verify_ns();
    let total_ns = obs.clock.now_nanos().saturating_sub(start);
    obs.record_request(
        &outcome.stats,
        &outcome.completion,
        total_ns,
        robs.plan_ns,
        robs.cache_ns,
        verify_ns,
    );
    trace(
        obs,
        TraceEvent::VerifyFinished {
            candidates: outcome.stats.candidates,
            verifications: outcome.stats.verifications,
            matches: outcome.stats.segment_matches + outcome.stats.short_matches,
        },
    );
    (outcome, total_ns)
}

/// [`run_view`] minus the per-request bracketing — the shared body for
/// both the plain and instrumented paths (and for the shapes
/// [`run_view_streaming_inner`] answers buffered).
fn run_view_inner(
    source: &ExecSource<'_>,
    view: ReqView<'_>,
    plans: &mut PlanSlot,
    scratch: &mut QueryScratch,
    mut robs: Option<&mut ReqObs<'_>>,
) -> QueryOutcome {
    if view.use_cache {
        if let Some(cache) = source.cache {
            let hit = match robs.as_deref_mut() {
                Some(r) => {
                    let hit =
                        r.time_cache(|| lock(cache).lookup(view.query, view.tau, source.epoch));
                    trace(r.obs, TraceEvent::CacheLookup { hit: hit.is_some() });
                    hit
                }
                None => lock(cache).lookup(view.query, view.tau, source.epoch),
            };
            if let Some(hit) = hit {
                if let Some(r) = robs.as_deref_mut() {
                    if !view.is_plain() {
                        r.obs.cache_derived_hits.inc(1);
                    }
                }
                return derive_from_cache(view, hit);
            }
            // Compute outside the lock: parallel batch workers must not
            // serialize their probing on the cache mutex.
            let mut outcome =
                execute_shaped(source.inner, view, plans, scratch, robs.as_deref_mut());
            outcome.cache = CacheOutcome::Miss;
            if view.is_plain() && outcome.completion.is_complete() {
                let store = || {
                    lock(cache).insert(
                        view.query,
                        view.tau,
                        source.epoch,
                        Arc::clone(&outcome.matches),
                    )
                };
                match robs.as_deref_mut() {
                    Some(r) => {
                        r.time_cache(store);
                        trace(r.obs, TraceEvent::CacheStore);
                    }
                    None => store(),
                }
            }
            return outcome;
        }
    }
    execute_shaped(source.inner, view, plans, scratch, robs)
}

/// An adapter counting emissions into a caller-supplied streaming sink;
/// steering and work hooks pass straight through.
struct EmitCount<'s> {
    inner: &'s mut dyn MatchSink,
    emitted: usize,
}

impl MatchSink for EmitCount<'_> {
    fn push(&mut self, id: StringId, dist: usize) {
        self.emitted += 1;
        self.inner.push(id, dist);
    }

    fn bound(&self, tau: usize) -> usize {
        self.inner.bound(tau)
    }

    fn saturated(&self) -> bool {
        self.inner.saturated()
    }

    fn note_candidate(&mut self) {
        self.inner.note_candidate();
    }

    fn note_verification(&mut self) {
        self.inner.note_verification();
    }
}

/// Replays an already-materialized result into a streaming sink,
/// honouring its saturation; returns how many matches were emitted.
pub(crate) fn replay(matches: &[Match], sink: &mut dyn MatchSink) -> usize {
    let mut emitted = 0usize;
    for &(id, dist) in matches {
        if sink.saturated() {
            break;
        }
        sink.push(id, dist);
        emitted += 1;
    }
    emitted
}

/// Streams one plain view into the caller's sink (no cache involvement):
/// matches are pushed as verification accepts them.
fn stream_plain(
    inner: &Inner,
    view: ReqView<'_>,
    plans: &mut PlanSlot,
    scratch: &mut QueryScratch,
    sink: &mut dyn MatchSink,
    robs: Option<&mut ReqObs<'_>>,
) -> QueryOutcome {
    let plan = timed_plan(inner, view, plans, robs);
    let mut stats = ExecStats::default();
    let mut counting = EmitCount {
        inner: sink,
        emitted: 0,
    };
    let completion = run_plan_budgeted(inner, plan, view, scratch, &mut counting, &mut stats);
    QueryOutcome {
        matches: Arc::default(),
        count: counting.emitted,
        cache: CacheOutcome::Bypass,
        completion,
        stats,
    }
}

/// [`Queryable::search_streaming`]'s engine entry; see the trait method
/// for the per-shape semantics.
fn run_view_streaming(
    source: &ExecSource<'_>,
    view: ReqView<'_>,
    sink: &mut dyn MatchSink,
    plans: &mut PlanSlot,
    scratch: &mut QueryScratch,
) -> QueryOutcome {
    let Some(obs) = source.obs else {
        return run_view_streaming_inner(source, view, sink, plans, scratch, None);
    };
    let (outcome, _) = instrumented(obs, scratch, |scratch, robs| {
        run_view_streaming_inner(source, view, sink, plans, scratch, Some(robs))
    });
    if !view.count_only {
        trace(
            obs,
            TraceEvent::Flush {
                emitted: outcome.count as u64,
            },
        );
    }
    outcome
}

/// [`run_view_streaming`] minus the per-request bracketing. The buffered
/// shapes (count-only, top-k) route through [`run_view_inner`] — never
/// the instrumented [`run_view`] wrapper, which would double-record.
fn run_view_streaming_inner(
    source: &ExecSource<'_>,
    view: ReqView<'_>,
    sink: &mut dyn MatchSink,
    plans: &mut PlanSlot,
    scratch: &mut QueryScratch,
    mut robs: Option<&mut ReqObs<'_>>,
) -> QueryOutcome {
    // Count-only emits nothing: the buffered path *is* the streaming path.
    if view.count_only {
        return run_view_inner(source, view, plans, scratch, robs);
    }
    // Top-k retention is global, so emission defers to one flush of the
    // finished heap — including a flush of a derived/cached result.
    if view.limit.is_some() {
        let outcome = run_view_inner(source, view, plans, scratch, robs);
        let emitted = replay(&outcome.matches, sink);
        return QueryOutcome {
            count: emitted,
            matches: Arc::default(),
            ..outcome
        };
    }
    // Plain: serve hits by replaying the cached result; computed results
    // stream live and are never stored (the caller's sink may have
    // steered or truncated the scan in ways the engine cannot see).
    if view.use_cache {
        if let Some(cache) = source.cache {
            let hit = match robs.as_deref_mut() {
                Some(r) => {
                    let hit =
                        r.time_cache(|| lock(cache).lookup(view.query, view.tau, source.epoch));
                    trace(r.obs, TraceEvent::CacheLookup { hit: hit.is_some() });
                    hit
                }
                None => lock(cache).lookup(view.query, view.tau, source.epoch),
            };
            if let Some(hit) = hit {
                let emitted = replay(&hit, sink);
                return QueryOutcome {
                    count: emitted,
                    matches: Arc::default(),
                    cache: CacheOutcome::Hit,
                    completion: Completion::Complete,
                    stats: ExecStats::default(),
                };
            }
            let mut outcome = stream_plain(source.inner, view, plans, scratch, sink, robs);
            outcome.cache = CacheOutcome::Miss;
            return outcome;
        }
    }
    stream_plain(source.inner, view, plans, scratch, sink, robs)
}

/// Executes `views` with `threads` workers (callers resolve hints first),
/// returning position-aligned outcomes. Views are processed in
/// `(query length, τ)` order so plans are rebuilt only at group
/// boundaries; parallel workers pull blocks of that order off an atomic
/// cursor (dynamic balancing without a scheduler dependency).
fn run_views(source: &ExecSource<'_>, views: &[ReqView<'_>], threads: usize) -> Vec<QueryOutcome> {
    let mut order: Vec<u32> = (0..views.len() as u32).collect();
    // Stable within a group for cache friendliness of repeated queries.
    order.sort_by_key(|&i| {
        let v = &views[i as usize];
        (v.query.len(), v.tau)
    });

    if threads <= 1 || views.len() < 2 * BLOCK {
        let mut outcomes: Vec<QueryOutcome> = vec![QueryOutcome::default(); views.len()];
        let mut scratch = QueryScratch::default();
        let mut plans = PlanSlot::default();
        for &qi in &order {
            outcomes[qi as usize] = run_view(source, views[qi as usize], &mut plans, &mut scratch);
        }
        return outcomes;
    }

    let cursor = AtomicUsize::new(0);
    let order = &order;
    let mut outcomes: Vec<QueryOutcome> = vec![QueryOutcome::default(); views.len()];
    let collected = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let cursor = &cursor;
            handles.push(scope.spawn(move || {
                let mut local: Vec<(u32, QueryOutcome)> = Vec::new();
                let mut scratch = QueryScratch::default();
                let mut plans = PlanSlot::default();
                loop {
                    let start = cursor.fetch_add(BLOCK, Ordering::Relaxed);
                    if start >= order.len() {
                        break;
                    }
                    for &qi in &order[start..(start + BLOCK).min(order.len())] {
                        let outcome =
                            run_view(source, views[qi as usize], &mut plans, &mut scratch);
                        local.push((qi, outcome));
                    }
                }
                local
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("batch worker panicked"))
            .collect::<Vec<_>>()
    });
    for (qi, outcome) in collected {
        outcomes[qi as usize] = outcome;
    }
    outcomes
}

/// Streaming counterpart of [`run_views`]: the same `(length, τ)` sort
/// and block-cursor parallelism, but every view pushes into its own sink.
/// Sinks live behind per-request mutexes so the worker that pulls a view
/// can reach its sink across the scope; each mutex is locked exactly once
/// (requests never share a sink slot), so there is no contention.
fn run_views_streaming(
    source: &ExecSource<'_>,
    views: &[ReqView<'_>],
    sinks: &mut [&mut (dyn MatchSink + Send)],
    threads: usize,
) -> Vec<QueryOutcome> {
    debug_assert_eq!(views.len(), sinks.len());
    let mut order: Vec<u32> = (0..views.len() as u32).collect();
    order.sort_by_key(|&i| {
        let v = &views[i as usize];
        (v.query.len(), v.tau)
    });

    if threads <= 1 || views.len() < 2 * BLOCK {
        let mut outcomes: Vec<QueryOutcome> = vec![QueryOutcome::default(); views.len()];
        let mut scratch = QueryScratch::default();
        let mut plans = PlanSlot::default();
        for &qi in &order {
            let qi = qi as usize;
            outcomes[qi] =
                run_view_streaming(source, views[qi], &mut *sinks[qi], &mut plans, &mut scratch);
        }
        return outcomes;
    }

    let slots: Vec<Mutex<&mut (dyn MatchSink + Send)>> =
        sinks.iter_mut().map(|s| Mutex::new(&mut **s)).collect();
    let cursor = AtomicUsize::new(0);
    let order = &order;
    let slots = &slots;
    let mut outcomes: Vec<QueryOutcome> = vec![QueryOutcome::default(); views.len()];
    let collected = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let cursor = &cursor;
            handles.push(scope.spawn(move || {
                let mut local: Vec<(u32, QueryOutcome)> = Vec::new();
                let mut scratch = QueryScratch::default();
                let mut plans = PlanSlot::default();
                loop {
                    let start = cursor.fetch_add(BLOCK, Ordering::Relaxed);
                    if start >= order.len() {
                        break;
                    }
                    for &qi in &order[start..(start + BLOCK).min(order.len())] {
                        let mut sink = slots[qi as usize].lock().unwrap_or_else(|e| e.into_inner());
                        let outcome = run_view_streaming(
                            source,
                            views[qi as usize],
                            &mut **sink,
                            &mut plans,
                            &mut scratch,
                        );
                        drop(sink);
                        local.push((qi, outcome));
                    }
                }
                local
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("batch worker panicked"))
            .collect::<Vec<_>>()
    });
    for (qi, outcome) in collected {
        outcomes[qi as usize] = outcome;
    }
    outcomes
}

/// Resolves a batch's worker count from the strongest
/// [`Parallelism`] hint in it. `Auto` costs an
/// `available_parallelism()` syscall, so it is resolved once per batch,
/// never per request.
pub(crate) fn batch_threads(reqs: &[SearchRequest]) -> usize {
    let mut threads = 1usize;
    let mut auto = false;
    for req in reqs {
        match req.parallelism() {
            Parallelism::Serial => {}
            Parallelism::Auto | Parallelism::Threads(0) => auto = true,
            Parallelism::Threads(n) => threads = threads.max(n),
        }
    }
    if auto {
        threads = threads.max(Parallelism::Auto.resolve());
    }
    threads
}

/// [`Queryable::search_batch`]'s engine entry.
fn run_batch(source: &ExecSource<'_>, reqs: &[SearchRequest]) -> SearchResponse {
    let views: Vec<ReqView<'_>> = reqs.iter().map(ReqView::of).collect();
    let threads = batch_threads(reqs);
    SearchResponse {
        outcomes: run_views(source, &views, threads),
    }
}

// ---------------------------------------------------------------------
// Legacy-shaped helpers: the deprecated wrappers on `OnlineIndex` and
// `Snapshot` are one-liners over these, so the old surfaces keep their
// exact signatures and semantics while running on the engine above.
// ---------------------------------------------------------------------

/// Plain query, collected and id-sorted — the legacy `query` shape.
pub(crate) fn legacy_query(inner: &Inner, query: &[u8], tau: usize) -> Vec<Match> {
    let mut scratch = QueryScratch::default();
    let mut out = Vec::new();
    query_into(inner, query, tau, &mut scratch, &mut out);
    out
}

/// Plain query appending to a caller-owned vector with caller-owned
/// scratch — the legacy `query_with` shape.
pub(crate) fn query_into(
    inner: &Inner,
    query: &[u8],
    tau: usize,
    scratch: &mut QueryScratch,
    out: &mut Vec<Match>,
) {
    let mut plans = PlanSlot::default();
    let plan = plans.get(inner, query.len(), tau);
    let from = out.len();
    let mut stats = ExecStats::default();
    {
        let mut sink = CollectSink::new(out);
        run_plan(inner, plan, query, tau, scratch, &mut sink, &mut stats);
    }
    out[from..].sort_unstable();
}

/// Uniform-τ batch returning bare match vectors — the legacy
/// `query_batch`/`par_query_batch` shape (`threads = 0` ⇒ available
/// parallelism).
pub(crate) fn legacy_batch<Q: AsRef<[u8]> + Sync>(
    source: &ExecSource<'_>,
    queries: &[Q],
    tau: usize,
    threads: usize,
) -> Vec<Vec<Match>> {
    let views: Vec<ReqView<'_>> = queries
        .iter()
        .map(|q| ReqView::plain(q.as_ref(), tau))
        .collect();
    // The legacy 0-means-available convention is exactly Threads(0).
    let threads = Parallelism::Threads(threads).resolve();
    run_views(source, &views, threads)
        .into_iter()
        .map(QueryOutcome::into_matches)
        .collect()
}

/// Cached plain query returning the shared result — the legacy
/// `query_cached` shape (hits hand out the cached `Arc` itself).
pub(crate) fn legacy_cached(source: &ExecSource<'_>, query: &[u8], tau: usize) -> Arc<Vec<Match>> {
    let Some(cache) = source.cache else {
        return Arc::new(legacy_query(source.inner, query, tau));
    };
    if let Some(hit) = lock(cache).lookup(query, tau, source.epoch) {
        return hit;
    }
    let result = Arc::new(legacy_query(source.inner, query, tau));
    lock(cache).insert(query, tau, source.epoch, Arc::clone(&result));
    result
}
