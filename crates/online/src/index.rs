//! The dynamic Pass-Join index: [`OnlineIndex`] and [`Snapshot`].
//!
//! # Structure
//!
//! The index owns its strings (`Box<[u8]>` per entry, `None` tombstones for
//! removed ids) and keeps two lanes, mirroring the join drivers:
//!
//! * a **segment lane** — a [`SegmentStore`] partitioning every string of
//!   length > τ_max into τ_max+1 segments (§3.1/§3.2 of the paper, without
//!   the scan's sliding-window eviction: all lengths stay resident),
//!   behind one of two [`KeyBackend`]s: byte-owning keys
//!   ([`passjoin::OwnedSegmentIndex`]) or integer-interned keys
//!   ([`passjoin::InternedSegmentIndex`]);
//! * a **short lane** — ids of strings with length ≤ τ_max, which cannot be
//!   partitioned; queries check them brute-force (there are at most
//!   `O(|Σ|^τ_max)` meaningfully distinct ones).
//!
//! # Per-query thresholds
//!
//! The index is partitioned once for `τ_max`, but queries may use any
//! `τ ≤ τ_max`: [`passjoin::online_window`] intersects the multi-match
//! pigeonhole of the *index geometry* with the position bound of the
//! *query budget*, which stays complete (see its docs for the argument).
//! Candidates are screened with the extension cascade (§5.2) under mixed
//! budgets — left `min(i−1, τ)`, right `min(τ_max+1−i, τ−d_left)` — and
//! accepted matches are reported with their **exact** distance.
//!
//! # Concurrency
//!
//! All state lives behind an [`Arc`]; [`OnlineIndex::snapshot`] hands out a
//! cheap clone of the pointer. Mutations go through [`Arc::make_mut`]:
//! while no snapshot is alive they mutate in place (the common case), and
//! the first mutation under a live snapshot clones the state once
//! (copy-on-write), leaving readers on the old version — readers never
//! block and never observe partial mutations.

use std::fmt;
use std::sync::{Arc, Mutex};

use editdist::{length_aware_within_ws, DpWorkspace};
use passjoin::{
    DirectSegmentIndex, InternedSegmentIndex, OwnedSegmentIndex, PartitionScheme, SegmentProbe,
};
use sj_common::stamp::StampSet;
use sj_common::{SharedBytes, StringId};

use crate::cache::{CacheStats, QueryCache};
use crate::exec::{ExecSource, Queryable};
use crate::obs::EngineObs;
use crate::Match;

/// Default capacity of the per-index query cache.
pub(crate) const DEFAULT_CACHE_CAPACITY: usize = 1024;

/// How the segment lane stores its inverted-index keys.
///
/// Both backends answer every query byte-identically (pinned by the
/// `key_backends` differential suite); they trade memory layout:
///
/// * [`KeyBackend::Owned`] — every distinct `(length, slot, segment)` key
///   owns a copy of its segment bytes. Simple, no shared state, the
///   default since PR 1.
/// * [`KeyBackend::Interned`] — the paper's §6 "encode segments as
///   integers": segment bytes are interned once into a shared dictionary
///   (`passjoin::SegmentInterner`) and the maps are keyed by dense `u32`
///   ids. Smaller resident index on segment-heavy corpora (each distinct
///   byte string is stored once globally, not once per `(l, slot)`) and
///   faster probes (integer-keyed map hits after one dictionary lookup).
/// * [`KeyBackend::Direct`] — sorted-array postings binary-searched
///   straight out of a loaded snapshot buffer
///   ([`passjoin::DirectSegmentIndex`]), never built in memory. Only
///   reachable by loading a format-v3 snapshot's direct-probe appendix
///   (there is nothing to *build* — the buffer is the index); the first
///   mutation promotes the lane back to the backend the snapshot was
///   saved from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KeyBackend {
    /// Byte-owning keys (the default).
    #[default]
    Owned,
    /// Integer-interned keys over a shared segment dictionary.
    Interned,
    /// Snapshot-resident sorted arrays, probed in place (load-only).
    Direct,
}

impl KeyBackend {
    /// Short name used in CLI output and benchmark tables.
    pub fn name(&self) -> &'static str {
        match self {
            KeyBackend::Owned => "owned",
            KeyBackend::Interned => "interned",
            KeyBackend::Direct => "direct",
        }
    }
}

/// The segment lane behind one of the two key backends. Dispatch is by
/// enum rather than generics so `OnlineIndex` stays a single (non-generic)
/// type — backends are a runtime choice (CLI flag, snapshot metadata), and
/// the per-probe match is branch-predicted noise next to the hash lookup
/// it guards.
#[derive(Debug, Clone)]
pub(crate) enum SegmentStore {
    Owned(OwnedSegmentIndex),
    Interned(InternedSegmentIndex),
    /// Snapshot-resident sorted arrays ([`DirectSegmentIndex`]), plus the
    /// backend the snapshot was saved from — the first mutation promotes
    /// the lane back to `origin` (sorted arrays cannot absorb inserts),
    /// and a re-save writes `origin`'s section so save/load round-trips
    /// stay byte-identical regardless of how the index was loaded.
    Direct {
        index: DirectSegmentIndex,
        origin: KeyBackend,
    },
}

impl SegmentStore {
    pub(crate) fn new(tau_max: usize, backend: KeyBackend) -> Self {
        match backend {
            KeyBackend::Owned => SegmentStore::Owned(OwnedSegmentIndex::new(0, tau_max)),
            KeyBackend::Interned => SegmentStore::Interned(InternedSegmentIndex::new(0, tau_max)),
            // An empty direct store has no buffer to probe; the owned map
            // is the behavior-identical stand-in (`KeyBackend::Direct` is
            // load-only and unreachable from the builder, which rejects
            // it before construction).
            KeyBackend::Direct => SegmentStore::Owned(OwnedSegmentIndex::new(0, tau_max)),
        }
    }

    pub(crate) fn from_direct(index: DirectSegmentIndex, origin: KeyBackend) -> Self {
        SegmentStore::Direct { index, origin }
    }

    pub(crate) fn backend(&self) -> KeyBackend {
        match self {
            SegmentStore::Owned(_) => KeyBackend::Owned,
            SegmentStore::Interned(_) => KeyBackend::Interned,
            SegmentStore::Direct { .. } => KeyBackend::Direct,
        }
    }

    /// The backend a save should serialize: the store's own, except for a
    /// direct store, which re-encodes the backend its snapshot came from.
    pub(crate) fn save_backend(&self) -> KeyBackend {
        match self {
            SegmentStore::Direct { origin, .. } => *origin,
            other => other.backend(),
        }
    }

    pub(crate) fn tau(&self) -> usize {
        match self {
            SegmentStore::Owned(map) => map.tau(),
            SegmentStore::Interned(index) => index.tau(),
            SegmentStore::Direct { index, .. } => index.tau(),
        }
    }

    pub(crate) fn scheme(&self) -> PartitionScheme {
        match self {
            SegmentStore::Owned(map) => map.scheme(),
            SegmentStore::Interned(index) => index.scheme(),
            SegmentStore::Direct { index, .. } => index.scheme(),
        }
    }

    /// Rebuilds a direct store as its origin backend so it can absorb
    /// mutations; a no-op for the hash-map backends. O(index) once —
    /// exactly the replay cost [`OnlineIndex::load`] pays up front, paid
    /// here only when a buffer-resident index is actually mutated.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's direct sections are structurally corrupt
    /// — only reachable when deep validation was explicitly deferred (the
    /// instant-load path) *and* the background integrity pass has not yet
    /// rejected the file.
    pub(crate) fn promote_for_mutation(&mut self) {
        let SegmentStore::Direct { index, origin } = self else {
            return;
        };
        let mut rebuilt = SegmentStore::new(index.tau(), *origin);
        let replay = index.try_visit_postings(|l, slot, key, ids| match &mut rebuilt {
            SegmentStore::Owned(map) => map
                .restore_posting(l, slot, key.into(), ids.to_vec())
                .expect("direct postings replay into the owned backend"),
            SegmentStore::Interned(map) => {
                let seg = match map.interner().lookup(key) {
                    Some(seg) => seg,
                    None => map
                        .restore_segment(key)
                        .expect("direct postings replay into the interner"),
                };
                map.restore_posting(l, slot, seg, ids.to_vec())
                    .expect("direct postings replay into the interned backend");
            }
            SegmentStore::Direct { .. } => unreachable!("promotion target is a hash-map backend"),
        });
        replay.expect("snapshot direct postings are structurally valid");
        *self = rebuilt;
    }

    pub(crate) fn insert(&mut self, s: &[u8], id: StringId) {
        self.promote_for_mutation();
        match self {
            SegmentStore::Owned(map) => map.insert_owned(s, id),
            SegmentStore::Interned(index) => index.insert(s, id),
            SegmentStore::Direct { .. } => unreachable!("mutation on a promoted store"),
        }
    }

    pub(crate) fn remove(&mut self, s: &[u8], id: StringId) -> bool {
        self.promote_for_mutation();
        match self {
            SegmentStore::Owned(map) => map.remove_owned(s, id),
            SegmentStore::Interned(index) => index.remove(s, id),
            SegmentStore::Direct { .. } => unreachable!("mutation on a promoted store"),
        }
    }

    #[inline]
    pub(crate) fn has_length(&self, l: usize) -> bool {
        match self {
            SegmentStore::Owned(map) => map.has_length(l),
            SegmentStore::Interned(index) => SegmentProbe::has_length(index, l),
            SegmentStore::Direct { index, .. } => index.has_length(l),
        }
    }

    pub(crate) fn max_len(&self) -> usize {
        match self {
            SegmentStore::Owned(map) => map.max_len(),
            SegmentStore::Interned(index) => SegmentProbe::max_len(index),
            SegmentStore::Direct { index, .. } => index.max_len(),
        }
    }

    pub(crate) fn entries(&self) -> u64 {
        match self {
            SegmentStore::Owned(map) => map.entries(),
            SegmentStore::Interned(index) => index.entries(),
            SegmentStore::Direct { index, .. } => index.entries(),
        }
    }

    pub(crate) fn live_bytes(&self) -> u64 {
        match self {
            SegmentStore::Owned(map) => map.live_bytes(),
            SegmentStore::Interned(index) => index.live_bytes(),
            SegmentStore::Direct { index, .. } => index.live_bytes(),
        }
    }

    pub(crate) fn visit_posting_ids(&self, f: impl FnMut(usize, StringId)) {
        match self {
            SegmentStore::Owned(map) => map.visit_posting_ids(f),
            SegmentStore::Interned(index) => index.visit_posting_ids(f),
            // Only reached on validated stores (the loader validates
            // before it cross-checks coverage); structural violations
            // would already have been rejected.
            SegmentStore::Direct { index, .. } => index
                .try_visit_posting_ids(f)
                .expect("snapshot direct postings are structurally valid"),
        }
    }
}

/// Aggregate statistics of an [`OnlineIndex`] (for dashboards and the CLI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OnlineStats {
    /// Live (non-removed) strings.
    pub live: usize,
    /// Removed ids still occupying tombstones.
    pub tombstones: usize,
    /// Inverted-list entries in the segment lane.
    pub segment_entries: u64,
    /// Strings in the brute-force short lane.
    pub short_strings: usize,
    /// Estimated resident bytes: segment index + live string bytes +
    /// (for a snapshot-loaded index) the rest of the pinned file buffer.
    pub resident_bytes: u64,
    /// Mutation epoch (increments on every insert/remove).
    pub epoch: u64,
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "live={} tombstones={} segment_entries={} short={} resident={}KB epoch={}",
            self.live,
            self.tombstones,
            self.segment_entries,
            self.short_strings,
            self.resident_bytes / 1024,
            self.epoch,
        )
    }
}

/// One string's storage: its own heap allocation, or a zero-copy span of
/// the shared snapshot arena ([`Inner::arena`]). Strings inserted at
/// runtime are always `Owned`; strings loaded from a snapshot stay
/// `Arena` views for their whole life — loading never copies the corpus.
#[derive(Debug, Clone)]
enum Stored {
    Owned(Box<[u8]>),
    Arena { start: usize, len: usize },
}

/// A string table served straight out of a loaded snapshot buffer: per-id
/// `(offset, len)` span entries are decoded on access instead of being
/// materialized into [`Inner::strings`] up front. This is what keeps the
/// instant-restart open O(sections) — the span table (O(universe) to
/// decode) is never walked until a mutation forces
/// [`Inner::materialize`]. All offsets are relative to the whole file
/// buffer ([`Inner::arena`]).
///
/// Validation is deferred along with decoding: a span that escapes the
/// arena section reads as a tombstone rather than slicing out of bounds,
/// and the background verifier (not this accessor) is responsible for
/// flagging the file.
#[derive(Debug, Clone)]
struct MappedSpans {
    /// Byte offset of the span table within the buffer.
    spans_start: usize,
    /// Byte range of the string arena within the buffer.
    arena_start: usize,
    arena_len: usize,
    universe: usize,
}

impl MappedSpans {
    /// The whole-buffer span of `id`, or `None` for tombstones,
    /// out-of-universe ids, and (deferred validation) spans that escape
    /// the arena.
    fn span(&self, buf: &[u8], id: StringId) -> Option<(usize, usize)> {
        let id = id as usize;
        if id >= self.universe {
            return None;
        }
        let at = self.spans_start + id * crate::persist::SPAN_LEN;
        let start = u64::from_le_bytes(buf[at..at + 8].try_into().unwrap());
        if start == crate::persist::TOMBSTONE {
            return None;
        }
        let len = u32::from_le_bytes(buf[at + 8..at + 12].try_into().unwrap()) as usize;
        let start = usize::try_from(start).ok()?;
        if start
            .checked_add(len)
            .is_none_or(|end| end > self.arena_len)
        {
            return None;
        }
        Some((self.arena_start + start, len))
    }

    fn get<'a>(&self, buf: &'a [u8], id: StringId) -> Option<&'a [u8]> {
        let (start, len) = self.span(buf, id)?;
        Some(&buf[start..start + len])
    }
}

/// The shared, copy-on-write state of an index and its snapshots.
#[derive(Debug, Clone)]
pub(crate) struct Inner {
    tau_max: usize,
    /// The loaded snapshot buffer that `Stored::Arena` spans point into
    /// (`None` for indices built in memory). Shared, never mutated;
    /// cloning the `Inner` (snapshot copy-on-write) clones the `Arc`.
    /// Dropped once the last arena-backed string is removed.
    arena: Option<SharedBytes>,
    /// Live bytes still referencing the arena (stats accounting).
    arena_live_bytes: u64,
    /// Live strings still referencing the arena; reaching 0 releases it
    /// (counted separately from bytes: zero-length strings are live
    /// references too).
    arena_live_strings: usize,
    /// `strings[id]` is the string's bytes, or `None` once removed.
    /// Empty while `mapped` is `Some` (instant-restart open): per-id
    /// lookups go through the buffer-resident span table until the first
    /// mutation materializes it here.
    strings: Vec<Option<Stored>>,
    /// Total live string bytes (owned and arena-backed alike).
    string_bytes: u64,
    live: usize,
    segments: SegmentStore,
    /// Ascending ids of live strings with length ≤ τ_max. Empty while
    /// `mapped` is `Some`: the lazy table is only used for snapshots
    /// whose posting count proves every live string is long.
    short: Vec<StringId>,
    /// The lazy string table of an instant-restart open, `None` once
    /// materialized (or for indices built/loaded eagerly).
    mapped: Option<MappedSpans>,
}

/// Resolves a stored string against the arena. A free function (not a
/// method) so call sites can borrow `arena` and mutate sibling `Inner`
/// fields simultaneously.
fn resolve<'a>(arena: &'a Option<SharedBytes>, stored: &'a Stored) -> &'a [u8] {
    match stored {
        Stored::Owned(bytes) => bytes,
        Stored::Arena { start, len } => {
            let arena = arena.as_ref().expect("arena-backed string without arena");
            &arena[*start..*start + *len]
        }
    }
}

/// Per-query memo of `(position, segment length)` → resolved dictionary
/// id, for the interned backend. Probe windows of adjacent lengths overlap
/// heavily, so the same query substring is probed against several
/// `(l, slot)` indices; the memo pays the byte-hash once per distinct
/// substring and answers every repeat with a couple of integer compares
/// and an array load — cheaper than any re-hash. Rows are addressed by
/// segment-length rank (a query sees only a handful of distinct segment
/// lengths), columns by position.
#[derive(Debug, Default)]
pub(crate) struct SegMemo {
    query_len: usize,
    /// rank → segment length (tiny; scanned linearly).
    lens: Vec<u32>,
    /// `cells[rank * query_len + p]`: 0 = unresolved, 1 = resolved to
    /// nothing, otherwise `SegId::raw() + 2`.
    cells: Vec<u64>,
}

impl SegMemo {
    fn begin(&mut self, query_len: usize) {
        self.query_len = query_len;
        self.lens.clear();
        self.cells.clear();
    }

    /// The dictionary id of `query[p..p + len]`, resolved at most once.
    /// Only called with `p + len <= query.len()` (so `p < query_len`).
    #[inline]
    pub(crate) fn resolve(
        &mut self,
        index: &InternedSegmentIndex,
        query: &[u8],
        p: usize,
        len: usize,
    ) -> Option<passjoin::SegId> {
        let rank = match self.lens.iter().position(|&l| l == len as u32) {
            Some(rank) => rank,
            None => {
                self.lens.push(len as u32);
                self.cells.resize(self.cells.len() + self.query_len, 0);
                self.lens.len() - 1
            }
        };
        let cell = &mut self.cells[rank * self.query_len + p];
        if *cell == 0 {
            *cell = match index.resolve(&query[p..p + len]) {
                Some(id) => u64::from(id.raw()) + 2,
                None => 1,
            };
        }
        match *cell {
            1 => None,
            id => Some(passjoin::SegId::from_raw((id - 2) as u32)),
        }
    }
}

/// Reusable per-thread scratch for queries (dedup stamps + DP rows + the
/// interned backend's substring-resolution memo).
/// Create one per worker via [`OnlineIndex::scratch`]/[`Snapshot::scratch`]
/// and pass it to the `*_with` query variants to avoid per-query
/// allocation.
#[derive(Debug)]
pub struct QueryScratch {
    pub(crate) resolved: StampSet,
    pub(crate) ws: DpWorkspace,
    pub(crate) seg_memo: SegMemo,
    /// Installed per request by the instrumented engine path; accumulates
    /// nanoseconds spent inside exact edit-distance verification. `None`
    /// (observability detached) costs one predictable branch per DP call.
    pub(crate) vtimer: Option<VerifyTimer>,
}

/// Accumulates verification time for one instrumented request.
pub(crate) struct VerifyTimer {
    clock: Arc<dyn passjoin_obs::Clock>,
    ns: u64,
}

impl fmt::Debug for VerifyTimer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VerifyTimer").field("ns", &self.ns).finish()
    }
}

impl Default for QueryScratch {
    fn default() -> Self {
        Self {
            resolved: StampSet::new(0),
            ws: DpWorkspace::new(),
            seg_memo: SegMemo::default(),
            vtimer: None,
        }
    }
}

impl QueryScratch {
    fn new() -> Self {
        Self::default()
    }

    /// Prepares for one query of `query_len` bytes over an id universe of
    /// the given size.
    pub(crate) fn begin(&mut self, universe: usize, query_len: usize) {
        self.resolved.grow(universe);
        self.resolved.clear();
        self.seg_memo.begin(query_len);
    }

    /// Exact thresholded edit distance using the scratch DP rows. When a
    /// verify timer is installed (instrumented path), the DP time is
    /// accumulated into it.
    pub(crate) fn exact_within(&mut self, r: &[u8], s: &[u8], tau: usize) -> Option<usize> {
        match &mut self.vtimer {
            Some(timer) => {
                let start = timer.clock.now_nanos();
                let out = length_aware_within_ws(r, s, tau, &mut self.ws);
                timer.ns += timer.clock.now_nanos().saturating_sub(start);
                out
            }
            None => length_aware_within_ws(r, s, tau, &mut self.ws),
        }
    }

    /// Starts accumulating verification time for one request.
    pub(crate) fn start_verify_timer(&mut self, clock: Arc<dyn passjoin_obs::Clock>) {
        self.vtimer = Some(VerifyTimer { clock, ns: 0 });
    }

    /// Stops the verify timer and returns the accumulated nanoseconds.
    pub(crate) fn take_verify_ns(&mut self) -> u64 {
        self.vtimer.take().map_or(0, |timer| timer.ns)
    }
}

impl Inner {
    fn new(tau_max: usize, backend: KeyBackend) -> Self {
        Self {
            tau_max,
            arena: None,
            arena_live_bytes: 0,
            arena_live_strings: 0,
            strings: Vec::new(),
            string_bytes: 0,
            live: 0,
            segments: SegmentStore::new(tau_max, backend),
            short: Vec::new(),
            mapped: None,
        }
    }

    /// Reassembles an `Inner` from snapshot parts: the loaded file buffer,
    /// per-id spans into it (`None` = tombstone), and the already-decoded
    /// segment index. Strings stay zero-copy views of `arena`; the short
    /// lane and byte accounting are rebuilt from the spans. Returns `Err`
    /// when the parts are mutually inconsistent (checksums cannot catch a
    /// file written with lying metadata).
    pub(crate) fn from_loaded_parts(
        tau_max: usize,
        arena: SharedBytes,
        spans: Vec<Option<(usize, usize)>>,
        segments: SegmentStore,
    ) -> Result<Self, &'static str> {
        if segments.tau() != tau_max {
            return Err("segment index tau does not match tau_max");
        }
        let mut strings = Vec::with_capacity(spans.len());
        let mut short = Vec::new();
        let mut string_bytes = 0u64;
        let mut live = 0usize;
        let mut long = 0u64;
        for (id, span) in spans.into_iter().enumerate() {
            let Some((start, len)) = span else {
                strings.push(None);
                continue;
            };
            if start.checked_add(len).is_none_or(|end| end > arena.len()) {
                return Err("string span exceeds the arena");
            }
            if len > tau_max {
                long += 1;
            } else {
                short.push(id as StringId); // ids ascend: lane stays sorted
            }
            string_bytes += len as u64;
            live += 1;
            strings.push(Some(Stored::Arena { start, len }));
        }
        // Every long live string contributes exactly τ_max+1 postings; a
        // mismatch means the segment section and the string table describe
        // different collections.
        if segments.entries() != long * (tau_max as u64 + 1) {
            return Err("segment postings do not cover the live strings");
        }
        Ok(Self {
            tau_max,
            arena: Some(arena),
            arena_live_bytes: string_bytes,
            arena_live_strings: live,
            strings,
            string_bytes,
            live,
            segments,
            short,
            mapped: None,
        })
    }

    /// Reassembles an `Inner` without decoding the span table: per-id
    /// lookups read spans straight out of `buf` (the loaded file) until
    /// the first mutation materializes them. Only sound when the posting
    /// count proves every live string is long (`entries ==
    /// live·(τ_max+1)`) — then the short lane is provably empty and no
    /// O(universe) scan is needed to build it. `spans` and `arena` are
    /// the byte ranges of the respective sections within `buf`; the
    /// caller has already validated the span-table geometry against
    /// `universe`.
    pub(crate) fn from_mapped_parts(
        tau_max: usize,
        buf: SharedBytes,
        spans: std::ops::Range<usize>,
        arena: std::ops::Range<usize>,
        universe: usize,
        live: usize,
        segments: SegmentStore,
    ) -> Result<Self, &'static str> {
        if segments.tau() != tau_max {
            return Err("segment index tau does not match tau_max");
        }
        if segments.entries() != live as u64 * (tau_max as u64 + 1) {
            return Err("segment postings do not cover the live strings");
        }
        // The arena holds exactly the live strings' bytes back to back
        // (see `save_inner`), so byte accounting needs no span walk.
        let arena_len = arena.len();
        Ok(Self {
            tau_max,
            arena: Some(buf),
            arena_live_bytes: arena_len as u64,
            arena_live_strings: live,
            strings: Vec::new(),
            string_bytes: arena_len as u64,
            live,
            segments,
            short: Vec::new(),
            mapped: Some(MappedSpans {
                spans_start: spans.start,
                arena_start: arena.start,
                arena_len,
                universe,
            }),
        })
    }

    /// Converts a lazy span table into the materialized `strings` vector
    /// (the representation every mutation works on). Counts are recomputed
    /// from the spans actually decoded, so a file whose metadata lied
    /// about them converges to internally consistent accounting; the
    /// short lane is rebuilt the same way (normally empty — see
    /// [`Inner::from_mapped_parts`] — but a corrupt file's short spans
    /// land in it rather than desyncing `remove`).
    fn materialize(&mut self) {
        let Some(mapped) = self.mapped.take() else {
            return;
        };
        let buf = self.arena.as_ref().expect("mapped table without buffer");
        let mut strings = Vec::with_capacity(mapped.universe);
        let mut short = Vec::new();
        let mut string_bytes = 0u64;
        let mut live = 0usize;
        for id in 0..mapped.universe as StringId {
            match mapped.span(buf, id) {
                Some((start, len)) => {
                    if len <= self.tau_max {
                        short.push(id); // ids ascend: lane stays sorted
                    }
                    string_bytes += len as u64;
                    live += 1;
                    strings.push(Some(Stored::Arena { start, len }));
                }
                None => strings.push(None),
            }
        }
        self.strings = strings;
        self.short = short;
        self.string_bytes = string_bytes;
        self.arena_live_bytes = string_bytes;
        self.live = live;
        self.arena_live_strings = live;
    }

    pub(crate) fn tau_max(&self) -> usize {
        self.tau_max
    }

    pub(crate) fn len(&self) -> usize {
        self.live
    }

    pub(crate) fn get(&self, id: StringId) -> Option<&[u8]> {
        if let Some(mapped) = &self.mapped {
            let buf = self.arena.as_ref().expect("mapped table without buffer");
            return mapped.get(buf, id);
        }
        self.strings
            .get(id as usize)?
            .as_ref()
            .map(|stored| resolve(&self.arena, stored))
    }

    /// Size of the id universe (live strings + tombstones).
    pub(crate) fn universe(&self) -> usize {
        match &self.mapped {
            Some(mapped) => mapped.universe,
            None => self.strings.len(),
        }
    }

    pub(crate) fn segments(&self) -> &SegmentStore {
        &self.segments
    }

    pub(crate) fn short_ids(&self) -> &[StringId] {
        &self.short
    }

    pub(crate) fn stats(&self, epoch: u64) -> OnlineStats {
        OnlineStats {
            live: self.live,
            tombstones: self.universe() - self.live,
            segment_entries: self.segments.entries(),
            short_strings: self.short.len(),
            resident_bytes: self.segments.live_bytes()
                + self.string_bytes
                + self
                    .arena
                    .as_ref()
                    .map_or(0, |arena| arena.len() as u64 - self.arena_live_bytes),
            epoch,
        }
    }

    fn insert(&mut self, s: &[u8]) -> StringId {
        self.materialize();
        assert!(
            self.strings.len() < u32::MAX as usize,
            "online index exceeds u32 id space"
        );
        let id = self.strings.len() as StringId;
        if s.len() > self.tau_max {
            self.segments.insert(s, id);
        } else {
            self.short.push(id); // new ids are maximal: stays ascending
        }
        self.strings.push(Some(Stored::Owned(s.into())));
        self.string_bytes += s.len() as u64;
        self.live += 1;
        id
    }

    fn remove(&mut self, id: StringId) -> bool {
        self.materialize();
        let Some(slot) = self.strings.get_mut(id as usize) else {
            return false;
        };
        let Some(stored) = slot.take() else {
            return false;
        };
        let bytes = resolve(&self.arena, &stored);
        let len = bytes.len();
        if len > self.tau_max {
            let removed = self.segments.remove(bytes, id);
            debug_assert!(removed, "live string must be segment-indexed");
        } else {
            let pos = self.short.binary_search(&id).expect("live short id");
            self.short.remove(pos);
        }
        if let Stored::Arena { .. } = stored {
            self.arena_live_bytes -= len as u64;
            self.arena_live_strings -= 1;
            if self.arena_live_strings == 0 {
                // Nothing references the snapshot buffer any more: stop
                // pinning it (a fully churned loaded index converges to
                // the memory profile of a built one).
                debug_assert_eq!(self.arena_live_bytes, 0);
                self.arena = None;
            }
        }
        self.string_bytes -= len as u64;
        self.live -= 1;
        true
    }
}

/// Configures and builds an [`OnlineIndex`]: τ_max, segment-key backend,
/// and query-cache capacity in one place.
///
/// ```
/// use passjoin_online::{KeyBackend, OnlineIndex, Queryable};
///
/// let index = OnlineIndex::builder(2)
///     .key_backend(KeyBackend::Interned)
///     .cache_capacity(4096)
///     .build_from(["vldb", "pvldb"]);
/// assert_eq!(index.key_backend(), KeyBackend::Interned);
/// assert_eq!(index.matches(b"vldb", 1), vec![(0, 0), (1, 1)]);
/// ```
#[derive(Debug, Clone)]
pub struct OnlineIndexBuilder {
    tau_max: usize,
    key_backend: KeyBackend,
    cache_capacity: usize,
    obs: Option<Arc<EngineObs>>,
}

impl OnlineIndexBuilder {
    pub(crate) fn new(tau_max: usize) -> Self {
        Self {
            tau_max,
            key_backend: KeyBackend::Owned,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            obs: None,
        }
    }

    /// Selects the segment-key backend (see [`KeyBackend`] for the
    /// trade-off). Default: [`KeyBackend::Owned`].
    ///
    /// # Panics
    ///
    /// Panics on [`KeyBackend::Direct`]: that backend is load-only (the
    /// snapshot buffer *is* the index — there is nothing to build). Use
    /// [`OnlineIndex::load_direct`](crate::OnlineIndex::load_direct)
    /// instead.
    pub fn key_backend(mut self, backend: KeyBackend) -> Self {
        assert!(
            backend != KeyBackend::Direct,
            "KeyBackend::Direct is load-only; build with Owned or Interned \
             and load v3 snapshots via OnlineIndex::load_direct"
        );
        self.key_backend = backend;
        self
    }

    /// Sets the LRU query-cache capacity in results (0 disables caching).
    /// Default: 1024.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Attaches an observability bundle: the built index (and every
    /// snapshot taken from it) records metrics, phase timings, and trace
    /// events into it. Default: detached — queries pay no instrumentation
    /// cost beyond one `Option` check per request.
    pub fn observability(mut self, obs: Arc<EngineObs>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Builds an empty index.
    pub fn build(self) -> OnlineIndex {
        let mut cache = QueryCache::new(self.cache_capacity);
        if let Some(obs) = &self.obs {
            cache.set_counters(Some(obs.cache_counters()));
        }
        OnlineIndex {
            inner: Arc::new(Inner::new(self.tau_max, self.key_backend)),
            epoch: 0,
            cache: Mutex::new(cache),
            obs: self.obs,
        }
    }

    /// Builds an index over an initial collection (ids are assigned in
    /// iteration order, starting at 0).
    pub fn build_from<I, S>(self, strings: I) -> OnlineIndex
    where
        I: IntoIterator<Item = S>,
        S: AsRef<[u8]>,
    {
        let mut index = self.build();
        for s in strings {
            index.insert(s.as_ref());
        }
        index
    }
}

/// A dynamic Pass-Join index over an owned string collection, supporting
/// inserts, removes, per-query thresholds up to a build-time `τ_max`,
/// batched/parallel queries, an LRU result cache, and copy-on-write
/// snapshots for concurrent readers.
///
/// Queries go through the [`Queryable`] trait — one typed surface
/// ([`crate::SearchRequest`] → [`crate::QueryOutcome`]) shared with
/// [`Snapshot`]:
///
/// ```
/// use passjoin_online::{OnlineIndex, Queryable, SearchRequest};
///
/// let mut index = OnlineIndex::new(2);
/// let vldb = index.insert(b"vldb");
/// index.insert(b"pvldb");
/// index.insert(b"sigmod");
///
/// assert_eq!(index.matches(b"vldbb", 1), vec![(vldb, 1)]);
/// assert_eq!(index.matches(b"vldbb", 2), vec![(vldb, 1), (1, 2)]);
///
/// // The typed form adds limits, counts, caching, and per-query stats.
/// let outcome = index.search(&SearchRequest::new(b"vldbb", 2).with_limit(1));
/// assert_eq!(*outcome.matches, vec![(vldb, 1)]);
///
/// index.remove(vldb);
/// assert_eq!(index.matches(b"vldbb", 2), vec![(1, 2)]);
/// ```
#[derive(Debug)]
pub struct OnlineIndex {
    pub(crate) inner: Arc<Inner>,
    /// Mutation counter; validates cached results and tells snapshot users
    /// how stale they are.
    pub(crate) epoch: u64,
    /// Behind a mutex so cached queries work through `&self` (and from
    /// parallel batch workers); uncontended in the common case.
    pub(crate) cache: Mutex<QueryCache>,
    /// Observability bundle; `None` (the default) disables instrumentation.
    pub(crate) obs: Option<Arc<EngineObs>>,
}

impl Queryable for OnlineIndex {
    fn exec_source(&self) -> Option<ExecSource<'_>> {
        Some(self.source())
    }
}

impl OnlineIndex {
    /// The engine view of this index: its inner state, epoch, cache, and
    /// observability bundle.
    pub(crate) fn source(&self) -> ExecSource<'_> {
        ExecSource {
            inner: &self.inner,
            epoch: self.epoch,
            cache: Some(&self.cache),
            obs: self.obs.as_deref(),
        }
    }

    /// An empty index accepting queries with thresholds up to `tau_max`,
    /// with the default backend and cache (see [`OnlineIndex::builder`]
    /// for the knobs).
    ///
    /// Larger `tau_max` costs index space (τ_max+1 inverted entries per
    /// string) and candidate selectivity; the paper's workloads use τ ≤ 8.
    pub fn new(tau_max: usize) -> Self {
        Self::builder(tau_max).build()
    }

    /// A builder for an index with a non-default key backend or cache
    /// capacity.
    pub fn builder(tau_max: usize) -> OnlineIndexBuilder {
        OnlineIndexBuilder::new(tau_max)
    }

    /// Builds an index from an initial collection (ids are assigned in
    /// iteration order, starting at 0) with the default backend and cache.
    pub fn from_strings<I, S>(strings: I, tau_max: usize) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<[u8]>,
    {
        Self::builder(tau_max).build_from(strings)
    }

    /// An empty index with an explicit segment-key backend.
    #[deprecated(note = "use OnlineIndex::builder(tau_max).key_backend(..).build()")]
    pub fn with_key_backend(tau_max: usize, backend: KeyBackend) -> Self {
        Self::builder(tau_max).key_backend(backend).build()
    }

    /// [`OnlineIndex::from_strings`] with an explicit key backend.
    #[deprecated(note = "use OnlineIndex::builder(tau_max).key_backend(..).build_from(..)")]
    pub fn from_strings_with<I, S>(strings: I, tau_max: usize, backend: KeyBackend) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<[u8]>,
    {
        Self::builder(tau_max)
            .key_backend(backend)
            .build_from(strings)
    }

    /// Replaces the query cache with one holding `capacity` results
    /// (0 disables caching). Existing entries are dropped.
    #[deprecated(
        note = "use OnlineIndex::builder(..).cache_capacity(..) when building, or \
                         set_cache_capacity on an existing index"
    )]
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.set_cache_capacity(capacity);
        self
    }

    /// Replaces the query cache with one holding `capacity` results
    /// (0 disables caching). Existing entries and counters are dropped.
    /// For indices whose construction the caller does not control (e.g.
    /// [`OnlineIndex::load`](crate::OnlineIndex::load)); prefer
    /// [`OnlineIndex::builder`] when building.
    pub fn set_cache_capacity(&mut self, capacity: usize) {
        let mut cache = QueryCache::new(capacity);
        if let Some(obs) = &self.obs {
            cache.set_counters(Some(obs.cache_counters()));
        }
        self.cache = Mutex::new(cache);
    }

    /// Attaches (or, with `None`, detaches) an observability bundle; see
    /// [`OnlineIndexBuilder::observability`]. For indices whose
    /// construction the caller does not control (e.g.
    /// [`OnlineIndex::load`](crate::OnlineIndex::load)). Snapshots taken
    /// *after* this call inherit the bundle.
    pub fn set_observability(&mut self, obs: Option<Arc<EngineObs>>) {
        crate::exec::lock(&self.cache).set_counters(obs.as_ref().map(|obs| obs.cache_counters()));
        self.obs = obs;
    }

    /// The attached observability bundle, if any.
    pub fn observability(&self) -> Option<&Arc<EngineObs>> {
        self.obs.as_ref()
    }

    /// The largest per-query threshold this index supports.
    pub fn tau_max(&self) -> usize {
        self.inner.tau_max()
    }

    /// Which segment-key backend the index was built with.
    pub fn key_backend(&self) -> KeyBackend {
        self.inner.segments().backend()
    }

    /// Live (non-removed) strings.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True if no live strings are indexed.
    pub fn is_empty(&self) -> bool {
        self.inner.len() == 0
    }

    /// The bytes of string `id`, if it is live.
    pub fn get(&self, id: StringId) -> Option<&[u8]> {
        self.inner.get(id)
    }

    /// The mutation epoch: increments on every insert/remove. Comparing a
    /// snapshot's epoch with the index's tells how stale the snapshot is.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Aggregate statistics (sizes, lanes, epoch).
    pub fn stats(&self) -> OnlineStats {
        self.inner.stats(self.epoch)
    }

    /// Cache hit/miss counters.
    pub fn cache_stats(&self) -> CacheStats {
        crate::exec::lock(&self.cache).stats()
    }

    /// Inserts a string and returns its id. Ids are dense and ascending;
    /// removed ids are never reused.
    ///
    /// O(τ_max) hash-map insertions — plus, once per outstanding
    /// [`Snapshot`], a one-time copy-on-write clone of the whole state.
    pub fn insert(&mut self, s: &[u8]) -> StringId {
        self.epoch += 1;
        Arc::make_mut(&mut self.inner).insert(s)
    }

    /// Removes string `id`; returns `false` if it was never inserted or was
    /// already removed. Same cost shape as [`OnlineIndex::insert`].
    pub fn remove(&mut self, id: StringId) -> bool {
        // Bump the epoch only on an actual removal: a failed remove must
        // not invalidate the cache.
        let removed = Arc::make_mut(&mut self.inner).remove(id);
        if removed {
            self.epoch += 1;
        }
        removed
    }

    /// All live strings within edit distance `tau` of `query`, as
    /// `(id, exact distance)` in ascending id order.
    ///
    /// # Panics
    ///
    /// Panics if `tau > tau_max`.
    #[deprecated(note = "use Queryable::matches, or Queryable::search with a SearchRequest")]
    pub fn query(&self, query: &[u8], tau: usize) -> Vec<Match> {
        crate::exec::legacy_query(&self.inner, query, tau)
    }

    /// Cached plain query: repeated queries against an unmodified index
    /// are answered without probing. Results are shared (`Arc`), not
    /// copied.
    #[deprecated(note = "use Queryable::search with CachePolicy::Use")]
    pub fn query_cached(&self, query: &[u8], tau: usize) -> Arc<Vec<Match>> {
        crate::exec::legacy_cached(&self.source(), query, tau)
    }

    /// A reusable scratch buffer for [`OnlineIndex::query_with`].
    #[deprecated(note = "the SearchRequest engine manages scratch internally")]
    pub fn scratch(&self) -> QueryScratch {
        QueryScratch::new()
    }

    /// Allocation-free query variant: appends matches to `out` using a
    /// caller-owned scratch.
    #[deprecated(note = "use Queryable::search; batches reuse scratch internally")]
    pub fn query_with(
        &self,
        query: &[u8],
        tau: usize,
        scratch: &mut QueryScratch,
        out: &mut Vec<Match>,
    ) {
        crate::exec::query_into(&self.inner, query, tau, scratch, out);
    }

    /// Answers a batch of queries at one threshold, sequentially. Results
    /// align with `queries` by position.
    #[deprecated(note = "use Queryable::search_batch with SearchRequest::uniform")]
    pub fn query_batch<Q: AsRef<[u8]> + Sync>(&self, queries: &[Q], tau: usize) -> Vec<Vec<Match>> {
        crate::exec::legacy_batch(&self.source(), queries, tau, 1)
    }

    /// Batch queries across `threads` worker threads (0 = available
    /// parallelism).
    #[deprecated(note = "use Queryable::search_batch with a Parallelism hint")]
    pub fn par_query_batch<Q: AsRef<[u8]> + Sync>(
        &self,
        queries: &[Q],
        tau: usize,
        threads: usize,
    ) -> Vec<Vec<Match>> {
        crate::exec::legacy_batch(&self.source(), queries, tau, threads)
    }

    /// A cheap point-in-time view for concurrent readers: O(1) now; the
    /// *next* mutation of the index pays a one-time clone of the state
    /// (copy-on-write). Queries on the snapshot see exactly the state at
    /// snapshot time, regardless of later mutations.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            inner: Arc::clone(&self.inner),
            epoch: self.epoch,
            obs: self.obs.clone(),
        }
    }
}

/// An immutable point-in-time view of an [`OnlineIndex`], safe to query
/// from any thread (`Send + Sync`; queries take `&self`). Served through
/// the same [`Queryable`] engine as the index (it has no cache of its
/// own, so cache-policy requests record a bypass).
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub(crate) inner: Arc<Inner>,
    pub(crate) epoch: u64,
    /// Inherited from the index at snapshot time.
    pub(crate) obs: Option<Arc<EngineObs>>,
}

impl Queryable for Snapshot {
    fn exec_source(&self) -> Option<ExecSource<'_>> {
        Some(self.source())
    }
}

impl Snapshot {
    /// The engine view of this snapshot (no cache — snapshots answer
    /// without one, so cache-policy requests record a bypass).
    pub(crate) fn source(&self) -> ExecSource<'_> {
        ExecSource {
            inner: &self.inner,
            epoch: self.epoch,
            cache: None,
            obs: self.obs.as_deref(),
        }
    }

    /// The mutation epoch the snapshot was taken at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The largest per-query threshold the underlying index supports.
    pub fn tau_max(&self) -> usize {
        self.inner.tau_max()
    }

    /// Which segment-key backend the underlying index was built with.
    pub fn key_backend(&self) -> KeyBackend {
        self.inner.segments().backend()
    }

    /// Live strings at snapshot time.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True if the snapshot holds no live strings.
    pub fn is_empty(&self) -> bool {
        self.inner.len() == 0
    }

    /// The bytes of string `id` at snapshot time.
    pub fn get(&self, id: StringId) -> Option<&[u8]> {
        self.inner.get(id)
    }

    /// Plain query at snapshot time.
    #[deprecated(note = "use Queryable::matches, or Queryable::search with a SearchRequest")]
    pub fn query(&self, query: &[u8], tau: usize) -> Vec<Match> {
        crate::exec::legacy_query(&self.inner, query, tau)
    }

    /// Allocation-free query variant with caller-owned scratch.
    #[deprecated(note = "use Queryable::search; batches reuse scratch internally")]
    pub fn query_with(
        &self,
        query: &[u8],
        tau: usize,
        scratch: &mut QueryScratch,
        out: &mut Vec<Match>,
    ) {
        crate::exec::query_into(&self.inner, query, tau, scratch, out);
    }

    /// A reusable scratch buffer for [`Snapshot::query_with`].
    #[deprecated(note = "the SearchRequest engine manages scratch internally")]
    pub fn scratch(&self) -> QueryScratch {
        QueryScratch::new()
    }

    /// Answers a batch of queries at one threshold, sequentially.
    #[deprecated(note = "use Queryable::search_batch with SearchRequest::uniform")]
    pub fn query_batch<Q: AsRef<[u8]> + Sync>(&self, queries: &[Q], tau: usize) -> Vec<Vec<Match>> {
        crate::exec::legacy_batch(&self.source(), queries, tau, 1)
    }

    /// Batch queries across `threads` worker threads (0 = available
    /// parallelism).
    #[deprecated(note = "use Queryable::search_batch with a Parallelism hint")]
    pub fn par_query_batch<Q: AsRef<[u8]> + Sync>(
        &self,
        queries: &[Q],
        tau: usize,
        threads: usize,
    ) -> Vec<Vec<Match>> {
        crate::exec::legacy_batch(&self.source(), queries, tau, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{CacheOutcome, CachePolicy, ExecStats, SearchRequest};

    fn brute(index: &OnlineIndex, query: &[u8], tau: usize) -> Vec<Match> {
        (0..index.inner.universe() as u32)
            .filter_map(|id| {
                let s = index.get(id)?;
                let d = editdist::edit_distance(s, query);
                (d <= tau).then_some((id, d))
            })
            .collect()
    }

    #[test]
    fn insert_query_remove_roundtrip() {
        let mut index = OnlineIndex::new(2);
        let a = index.insert(b"partition");
        let b = index.insert(b"petition");
        let c = index.insert(b"postition");
        assert_eq!(index.len(), 3);

        let hits = index.matches(b"partition", 2);
        assert_eq!(hits, vec![(a, 0), (b, 2), (c, 2)]);
        assert_eq!(index.matches(b"partition", 0), vec![(a, 0)]);

        assert!(index.remove(b));
        assert!(!index.remove(b), "double remove is a no-op");
        assert_eq!(index.matches(b"partition", 2), vec![(a, 0), (c, 2)]);
        assert_eq!(index.len(), 2);
        assert_eq!(index.get(b), None);
    }

    #[test]
    fn per_query_taus_share_one_index() {
        let mut index = OnlineIndex::new(3);
        for s in [
            "string similarity",
            "string similarty",
            "strong similarity",
            "unrelated",
        ] {
            index.insert(s.as_bytes());
        }
        for tau in 0..=3 {
            let mut expected = brute(&index, b"string similarity", tau);
            expected.sort_unstable();
            assert_eq!(
                index.matches(b"string similarity", tau),
                expected,
                "tau={tau}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "exceeds the index's τ_max")]
    fn tau_above_max_panics() {
        let index = OnlineIndex::new(1);
        index.matches(b"x", 2);
    }

    #[test]
    #[should_panic(expected = "exceeds the index's τ_max")]
    fn batch_tau_above_max_panics_too() {
        // Regression: the batch path must validate τ like the single path
        // (in release builds it would otherwise silently drop matches).
        let mut index = OnlineIndex::new(1);
        index.insert(b"abcdefgh");
        index.insert(b"abXdeXgh");
        index.search_batch(&SearchRequest::uniform(&[b"abcdefgh".as_slice()], 2));
    }

    #[test]
    fn short_strings_are_served() {
        let mut index = OnlineIndex::new(3);
        let a = index.insert(b"ab");
        let b = index.insert(b"");
        let c = index.insert(b"abcd");
        assert_eq!(index.matches(b"ab", 2), vec![(a, 0), (b, 2), (c, 2)]);
        assert_eq!(index.matches(b"", 2), vec![(a, 2), (b, 0)]);
        index.remove(a);
        assert_eq!(index.matches(b"ab", 2), vec![(b, 2), (c, 2)]);
    }

    #[test]
    fn duplicates_get_distinct_ids() {
        let mut index = OnlineIndex::new(1);
        let a = index.insert(b"duplicate");
        let b = index.insert(b"duplicate");
        assert_ne!(a, b);
        assert_eq!(index.matches(b"duplicate", 0), vec![(a, 0), (b, 0)]);
        index.remove(a);
        assert_eq!(index.matches(b"duplicate", 0), vec![(b, 0)]);
    }

    #[test]
    fn snapshot_is_point_in_time() {
        let mut index = OnlineIndex::new(1);
        index.insert(b"original entry");
        let snap = index.snapshot();
        let removed_late = index.insert(b"added after snapshot");
        index.remove(0);

        // The snapshot still sees the original state…
        assert_eq!(snap.len(), 1);
        assert_eq!(snap.matches(b"original entry", 1), vec![(0, 0)]);
        assert_eq!(snap.get(removed_late), None);
        // …while the index sees the new one.
        assert_eq!(index.len(), 1);
        assert!(index.matches(b"original entry", 1).is_empty());
        assert_eq!(
            index.matches(b"added after snapshot", 1),
            vec![(removed_late, 0)]
        );
        assert_ne!(snap.epoch(), index.epoch());
    }

    #[test]
    fn snapshots_are_queryable_across_threads() {
        let mut index = OnlineIndex::new(2);
        for i in 0..200u32 {
            index.insert(format!("record number {i:03}").as_bytes());
        }
        let snap = index.snapshot();
        let results = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let snap = snap.clone();
                    scope.spawn(move || snap.matches(b"record number 007", 2).len())
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        });
        // Mutating under live snapshots must not disturb them (COW).
        index.insert(b"record number 007");
        assert!(results.iter().all(|&n| n == results[0] && n >= 1));
    }

    #[test]
    fn cache_serves_repeats_and_invalidates_on_mutation() {
        let mut index = OnlineIndex::new(2);
        for i in 0..50u32 {
            index.insert(format!("cached entry {i:02}").as_bytes());
        }
        let req = SearchRequest::new(b"cached entry 07", 1).with_cache(CachePolicy::Use);
        let first = index.search(&req);
        assert_eq!(first.cache, CacheOutcome::Miss);
        let again = index.search(&req);
        assert_eq!(again.cache, CacheOutcome::Hit, "second lookup must hit");
        assert_eq!(again.matches, first.matches);
        assert!(
            Arc::ptr_eq(&again.matches, &first.matches),
            "a hit shares the cached vector, it does not copy it"
        );
        assert_eq!(again.stats.verifications, 0, "hits probe nothing");
        assert_eq!(index.cache_stats().hits, 1);

        let added = index.insert(b"cached entry 07");
        let after = index.search(&req);
        assert_eq!(after.cache, CacheOutcome::Miss);
        assert!(
            after.matches.iter().any(|&(id, d)| id == added && d == 0),
            "post-mutation lookup must see the new string"
        );
        assert_eq!(index.cache_stats().invalidations, 1);
    }

    #[test]
    fn shaped_requests_derive_from_cached_full_results() {
        let mut index = OnlineIndex::new(1);
        index.insert(b"shaped entry");
        // Shaped requests consult the cache but never populate it: a
        // shaped result must not masquerade as the full answer.
        let limited = SearchRequest::new(b"shaped entry", 1)
            .with_cache(CachePolicy::Use)
            .with_limit(1);
        assert_eq!(index.search(&limited).cache, CacheOutcome::Miss);
        assert_eq!(index.search(&limited).cache, CacheOutcome::Miss);
        // A plain request stores the full result…
        let plain = SearchRequest::new(b"shaped entry", 1).with_cache(CachePolicy::Use);
        let full = index.search(&plain);
        assert_eq!(full.cache, CacheOutcome::Miss);
        // …from which shaped requests are then derived without probing.
        let derived = index.search(&limited);
        assert_eq!(derived.cache, CacheOutcome::Hit);
        assert_eq!(derived.stats, ExecStats::default(), "hits probe nothing");
        assert_eq!(*derived.matches, vec![(0, 0)]);
        let counted = SearchRequest::new(b"shaped entry", 1)
            .with_cache(CachePolicy::Use)
            .count_only();
        let count_hit = index.search(&counted);
        assert_eq!(count_hit.cache, CacheOutcome::Hit);
        assert_eq!(count_hit.count, full.count);
        // Snapshots have no cache at all.
        assert_eq!(index.snapshot().search(&plain).cache, CacheOutcome::Bypass);
        // And the default policy never consults it.
        assert_eq!(
            index.search(&SearchRequest::new(b"shaped entry", 1)).cache,
            CacheOutcome::Bypass
        );
    }

    #[test]
    fn builder_configures_all_knobs() {
        let index = OnlineIndex::builder(2)
            .key_backend(KeyBackend::Interned)
            .cache_capacity(0)
            .build_from(["alpha beta", "alpha bete"]);
        assert_eq!(index.tau_max(), 2);
        assert_eq!(index.key_backend(), KeyBackend::Interned);
        assert_eq!(index.matches(b"alpha beta", 1).len(), 2);
        // Capacity 0 disables caching: repeated Use requests never hit.
        let req = SearchRequest::new(b"alpha beta", 1).with_cache(CachePolicy::Use);
        assert_eq!(index.search(&req).cache, CacheOutcome::Miss);
        assert_eq!(index.search(&req).cache, CacheOutcome::Miss);
        assert_eq!(index.cache_stats().hits, 0);
    }

    #[test]
    fn stats_display_is_one_line() {
        let mut index = OnlineIndex::new(2);
        index.insert(b"ab");
        index.insert(b"abcdefgh");
        let line = index.stats().to_string();
        assert!(line.contains("live=2"), "{line}");
        assert!(line.contains("segment_entries=3"), "{line}");
    }

    #[test]
    fn stats_track_lanes_and_bytes() {
        let mut index = OnlineIndex::new(2);
        index.insert(b"ab");
        index.insert(b"abcdefgh");
        let before = index.stats();
        assert_eq!(before.live, 2);
        assert_eq!(before.short_strings, 1);
        assert_eq!(before.segment_entries, 3); // τ_max+1 entries
        assert!(before.resident_bytes > 0);
        index.remove(0);
        let after = index.stats();
        assert_eq!(after.live, 1);
        assert_eq!(after.tombstones, 1);
        assert!(after.resident_bytes < before.resident_bytes);
        assert!(after.epoch > before.epoch);
    }
}
