//! **passjoin-online** — online similarity search on the Pass-Join index.
//!
//! The batch join (the `passjoin` crate) is built for one-shot scans: it
//! visits strings in length order, probes only already-visited strings, and
//! evicts index slices the scan has passed. That is the right shape for
//! joining two datasets once — and the wrong one for *serving*: a standing
//! collection that takes inserts and removes, and answers a stream of
//! queries, each with its own threshold.
//!
//! This crate provides that subsystem on the same partition machinery
//! (even partition §3.1, segment indices §3.2, multi-match-aware selection
//! §4, extension verification §5.2 — Li, Deng, Wang, Feng, PVLDB 2011):
//!
//! * [`OnlineIndex`] — a dynamic, non-evicting index over an owned string
//!   store: `insert` / `remove`, built via [`OnlineIndex::builder`];
//! * [`Queryable`] — **the** query surface, implemented by both
//!   [`OnlineIndex`] and [`Snapshot`] over one execution engine: typed
//!   [`SearchRequest`]s (per-query τ ≤ τ_max, top-k limits, count-only,
//!   cache policy, parallelism hints) answered with [`QueryOutcome`]s
//!   carrying per-request execution statistics;
//! * [`Queryable::search_batch`] — batches with *mixed* thresholds and
//!   shapes, sharing substring-selection work across requests of equal
//!   `(length, τ)`, multi-threaded on request;
//! * [`Queryable::search_streaming`] — push-based results: a
//!   caller-supplied [`MatchSink`] receives each match as verification
//!   accepts it, instead of a per-query buffer;
//! * [`ExecBudget`] — per-request execution caps (max verifications /
//!   candidates, pluggable-clock deadlines); a tripped budget aborts the
//!   scan and the outcome reports [`Completion::Truncated`] with the
//!   reason, so partial answers are always distinguishable from exact
//!   ones (and never cached);
//! * an LRU result cache invalidated by mutation epoch
//!   ([`CachePolicy::Use`]);
//! * [`Snapshot`] — a cheap copy-on-write view for concurrent readers;
//! * [`Snapshot::save`] / [`OnlineIndex::load`] — durable snapshots: a
//!   versioned, checksummed on-disk format (`passjoin-persist`) that a
//!   restarting process loads with zero-copy string-arena views instead
//!   of re-partitioning the whole corpus;
//! * [`EngineObs`] — opt-in observability (`passjoin-obs`, re-exported
//!   here): a lock-free metrics registry (counters, gauges, log-scale
//!   phase-duration histograms, Prometheus/JSON dumps) plus a
//!   [`TraceSink`] hook fired at plan/probe/verify/cache/flush/snapshot
//!   boundaries. Attach it per index via
//!   [`OnlineIndex::set_observability`]; with none attached the engine
//!   takes the uninstrumented path. [`WallClockTicks`] supplies a real
//!   [`TickSource`] for [`ExecBudget::with_deadline`].
//!
//! # Quick start
//!
//! ```
//! use passjoin_online::{OnlineIndex, Queryable, SearchRequest};
//!
//! let mut index = OnlineIndex::new(2); // τ_max = 2
//! for name in ["jim gray", "jim grey", "michael stonebraker"] {
//!     index.insert(name.as_bytes());
//! }
//!
//! // Single query, per-query threshold: (id, exact distance) pairs.
//! assert_eq!(index.matches(b"jim gray", 1), vec![(0, 0), (1, 1)]);
//!
//! // The collection is dynamic.
//! index.remove(1);
//! assert_eq!(index.matches(b"jim gray", 1), vec![(0, 0)]);
//!
//! // Typed batches mix thresholds and result shapes per request.
//! let response = index.search_batch(&[
//!     SearchRequest::new(b"jim gray", 1),
//!     SearchRequest::new(b"jon gray", 2).with_limit(5),
//!     SearchRequest::new(b"jim gray", 2).count_only(),
//! ]);
//! assert_eq!(*response.outcomes[0].matches, vec![(0, 0)]);
//! assert_eq!(*response.outcomes[1].matches, vec![(0, 2)]); // two edits away
//! assert_eq!(response.outcomes[2].count, 1);
//!
//! // Snapshots give concurrent readers a stable view — of the same
//! // Queryable surface.
//! let snapshot = index.snapshot();
//! index.insert(b"jim gray");
//! assert_eq!(snapshot.len(), 2, "snapshot is point-in-time");
//! ```
//!
//! # Relation to `passjoin::SearchIndex`
//!
//! [`passjoin::SearchIndex`] is the static half-step: immutable, one fixed
//! τ, borrowing its dictionary. `OnlineIndex` owns its strings, accepts
//! mutations, serves any `τ ≤ τ_max` from one index (via
//! [`passjoin::online_window`]'s mixed-τ selection windows), and adds the
//! serving-layer pieces: batching, caching, snapshots.

pub mod cache;
mod exec;
mod index;
pub mod obs;
mod persist;
mod request;
mod router;

use sj_common::StringId;

pub use cache::CacheStats;
#[doc(hidden)]
pub use exec::ExecSource;
pub use exec::Queryable;
pub use index::{KeyBackend, OnlineIndex, OnlineIndexBuilder, OnlineStats, QueryScratch, Snapshot};
pub use obs::{wall_deadline, EngineObs, WallClockTicks};
pub use passjoin::sink::{
    pull_channel, BudgetPool, BudgetSink, CollectSink, CountSink, FnSink, ManualTicks, MatchSink,
    PoolBudgetSink, PullMatchSink, PullReceiver, PullSender, TickSource, TopKSink,
    TruncationReason,
};
pub use passjoin_obs::{
    Clock, CollectingTraceSink, Counter, Gauge, Histogram, ManualNanos, MonotonicClock,
    NoopTraceSink, Registry, Span, TraceEvent, TraceSink,
};
pub use passjoin_persist::PersistError;
pub use persist::LoadMode;
pub use request::{
    BatchBudget, BatchTotals, CacheOutcome, CachePolicy, Completion, ExecBudget, ExecStats,
    Parallelism, QueryOutcome, SearchRequest, SearchResponse,
};
pub use router::{is_sharded_snapshot, ShardBy, ShardedIndex, ShardedIndexBuilder};

/// A query match: `(string id, exact edit distance)`.
pub type Match = (StringId, usize);
