//! Engine observability: [`EngineObs`] and the wall-clock tick source.
//!
//! The primitives (counters, histograms, registry, clocks, trace sinks)
//! live in the dependency-free `passjoin-obs` crate; this module binds
//! them to the engine. [`EngineObs`] pre-registers every metric the
//! engine reports — attaching one to an [`OnlineIndex`](crate::OnlineIndex)
//! (via [`OnlineIndexBuilder::observability`](crate::OnlineIndexBuilder::observability)
//! or [`OnlineIndex::set_observability`](crate::OnlineIndex::set_observability))
//! turns the instrumentation on; without one the engine pays a single
//! `Option` check per request.
//!
//! # Metric names
//!
//! | name | kind | meaning |
//! |------|------|---------|
//! | `passjoin_requests_total` | counter | requests executed through the typed `search*` paths |
//! | `passjoin_candidates_total` | counter | inverted-list occurrences screened (≡ summed [`ExecStats::candidates`](crate::ExecStats)) |
//! | `passjoin_verifications_total` | counter | extension-cascade verifications (≡ `ExecStats::verifications`) |
//! | `passjoin_short_checked_total` | counter | short-lane brute-force checks (≡ `ExecStats::short_checked`) |
//! | `passjoin_segment_matches_total` | counter | matches accepted from the segment lane (≡ `ExecStats::segment_matches`) |
//! | `passjoin_short_matches_total` | counter | matches accepted from the short lane (≡ `ExecStats::short_matches`) |
//! | `passjoin_truncated_verification_cap_total` | counter | requests truncated by a verification cap |
//! | `passjoin_truncated_candidate_cap_total` | counter | requests truncated by a candidate cap |
//! | `passjoin_truncated_deadline_total` | counter | requests truncated by a deadline |
//! | `passjoin_cache_hits_total` | counter | cache lookups answered (≡ [`CacheStats::hits`](crate::CacheStats)) |
//! | `passjoin_cache_misses_total` | counter | cache lookups that ran the query (≡ `CacheStats::misses`) |
//! | `passjoin_cache_derived_hits_total` | counter | shaped requests answered by deriving from a cached full result |
//! | `passjoin_cache_evictions_total` | counter | LRU evictions (≡ `CacheStats::evictions`) |
//! | `passjoin_cache_invalidations_total` | counter | wholesale epoch invalidations (≡ `CacheStats::invalidations`) |
//! | `passjoin_phase_plan_ns` | histogram | per-request planning time (length-plan build/reuse) |
//! | `passjoin_phase_probe_ns` | histogram | per-request probing/assembly time (total − plan − verify − cache) |
//! | `passjoin_phase_verify_ns` | histogram | per-request time inside exact edit-distance verification |
//! | `passjoin_phase_cache_ns` | histogram | per-request time holding/waiting on the cache lock |
//! | `passjoin_request_ns` | histogram | per-request wall time (= the sum of the four phases) |
//! | `passjoin_index_live_strings` | gauge | live strings at the last [`EngineObs::record_index_stats`] |
//! | `passjoin_index_segment_entries` | gauge | segment-lane posting entries at the last record |
//! | `passjoin_index_resident_bytes` | gauge | estimated resident bytes at the last record |
//! | `passjoin_index_epoch` | gauge | mutation epoch at the last record |
//! | `passjoin_snapshot_save_bytes_total` / `…_load_bytes_total` | counter | snapshot file bytes written / read |
//! | `passjoin_snapshot_save_sections_ns` / `…_save_encode_ns` / `…_save_write_ns` | histogram | save phases: string/span assembly, segment encoding, container write |
//! | `passjoin_snapshot_load_read_ns` / `…_load_decode_ns` / `…_load_validate_ns` | histogram | load phases: file read, section decoding, cross-validation |
//! | `passjoin_snapshot_section_meta_bytes_total` / `…_spans…` / `…_strings…` / `…_segments…` | counter | per-section payload bytes saved/loaded |
//!
//! Phase attribution is exact by construction: `probe` is defined as the
//! request's wall time minus the measured plan/verify/cache time, so the
//! four phases always sum to `passjoin_request_ns`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use passjoin::sink::TickSource;
use passjoin_obs::{
    Clock, Counter, Gauge, Histogram, MonotonicClock, NoopTraceSink, Registry, TraceEvent,
    TraceSink,
};

use passjoin::sink::TruncationReason;

use crate::cache::CacheCounters;
use crate::index::OnlineStats;
use crate::request::{Completion, ExecStats};

/// The engine's bundle of pre-registered metrics, a clock, and a trace
/// sink. Create one, share it via `Arc`, and attach it to the indices
/// (and snapshots, which inherit it) whose work it should account.
///
/// ```
/// use std::sync::Arc;
/// use passjoin_online::{EngineObs, OnlineIndex, Queryable, SearchRequest};
///
/// let obs = Arc::new(EngineObs::new());
/// let mut index = OnlineIndex::builder(1)
///     .observability(Arc::clone(&obs))
///     .build_from(["vldb", "pvldb"]);
/// index.search(&SearchRequest::new(b"vldb", 1));
/// assert!(obs.render_prometheus().contains("passjoin_requests_total 1"));
/// ```
pub struct EngineObs {
    registry: Arc<Registry>,
    pub(crate) clock: Arc<dyn Clock>,
    pub(crate) trace: Arc<dyn TraceSink>,
    // Request counters (≡ summed ExecStats by construction: bumped from
    // each request's final stats, not independently).
    pub(crate) requests: Counter,
    pub(crate) candidates: Counter,
    pub(crate) verifications: Counter,
    pub(crate) short_checked: Counter,
    pub(crate) segment_matches: Counter,
    pub(crate) short_matches: Counter,
    pub(crate) truncated_verification_cap: Counter,
    pub(crate) truncated_candidate_cap: Counter,
    pub(crate) truncated_deadline: Counter,
    // Cache counters: hits/misses/evictions/invalidations are bumped by
    // the cache itself at the same sites as its CacheStats; derived hits
    // are engine-side (the cache cannot see the request shape).
    pub(crate) cache_hits: Counter,
    pub(crate) cache_misses: Counter,
    pub(crate) cache_derived_hits: Counter,
    pub(crate) cache_evictions: Counter,
    pub(crate) cache_invalidations: Counter,
    // Phase timings.
    pub(crate) phase_plan_ns: Histogram,
    pub(crate) phase_probe_ns: Histogram,
    pub(crate) phase_verify_ns: Histogram,
    pub(crate) phase_cache_ns: Histogram,
    pub(crate) request_ns: Histogram,
    // Index gauges.
    index_live_strings: Gauge,
    index_segment_entries: Gauge,
    index_resident_bytes: Gauge,
    index_epoch: Gauge,
    // Snapshot persistence.
    pub(crate) snapshot_save_bytes: Counter,
    pub(crate) snapshot_load_bytes: Counter,
    pub(crate) snapshot_save_sections_ns: Histogram,
    pub(crate) snapshot_save_encode_ns: Histogram,
    pub(crate) snapshot_save_write_ns: Histogram,
    pub(crate) snapshot_load_read_ns: Histogram,
    pub(crate) snapshot_load_decode_ns: Histogram,
    pub(crate) snapshot_load_validate_ns: Histogram,
    pub(crate) section_meta_bytes: Counter,
    pub(crate) section_spans_bytes: Counter,
    pub(crate) section_strings_bytes: Counter,
    pub(crate) section_segments_bytes: Counter,
}

impl EngineObs {
    /// Observability over a fresh registry, the production
    /// [`MonotonicClock`], and the no-op trace sink.
    pub fn new() -> Self {
        Self::with_registry(Arc::new(Registry::new()))
    }

    /// Observability reporting into an existing registry — several
    /// indices (or other subsystems) can share one dump.
    pub fn with_registry(registry: Arc<Registry>) -> Self {
        let c = |name: &str| registry.counter(name);
        let h = |name: &str| registry.histogram(name);
        let g = |name: &str| registry.gauge(name);
        Self {
            clock: Arc::new(MonotonicClock::new()),
            trace: Arc::new(NoopTraceSink),
            requests: c("passjoin_requests_total"),
            candidates: c("passjoin_candidates_total"),
            verifications: c("passjoin_verifications_total"),
            short_checked: c("passjoin_short_checked_total"),
            segment_matches: c("passjoin_segment_matches_total"),
            short_matches: c("passjoin_short_matches_total"),
            truncated_verification_cap: c("passjoin_truncated_verification_cap_total"),
            truncated_candidate_cap: c("passjoin_truncated_candidate_cap_total"),
            truncated_deadline: c("passjoin_truncated_deadline_total"),
            cache_hits: c("passjoin_cache_hits_total"),
            cache_misses: c("passjoin_cache_misses_total"),
            cache_derived_hits: c("passjoin_cache_derived_hits_total"),
            cache_evictions: c("passjoin_cache_evictions_total"),
            cache_invalidations: c("passjoin_cache_invalidations_total"),
            phase_plan_ns: h("passjoin_phase_plan_ns"),
            phase_probe_ns: h("passjoin_phase_probe_ns"),
            phase_verify_ns: h("passjoin_phase_verify_ns"),
            phase_cache_ns: h("passjoin_phase_cache_ns"),
            request_ns: h("passjoin_request_ns"),
            index_live_strings: g("passjoin_index_live_strings"),
            index_segment_entries: g("passjoin_index_segment_entries"),
            index_resident_bytes: g("passjoin_index_resident_bytes"),
            index_epoch: g("passjoin_index_epoch"),
            snapshot_save_bytes: c("passjoin_snapshot_save_bytes_total"),
            snapshot_load_bytes: c("passjoin_snapshot_load_bytes_total"),
            snapshot_save_sections_ns: h("passjoin_snapshot_save_sections_ns"),
            snapshot_save_encode_ns: h("passjoin_snapshot_save_encode_ns"),
            snapshot_save_write_ns: h("passjoin_snapshot_save_write_ns"),
            snapshot_load_read_ns: h("passjoin_snapshot_load_read_ns"),
            snapshot_load_decode_ns: h("passjoin_snapshot_load_decode_ns"),
            snapshot_load_validate_ns: h("passjoin_snapshot_load_validate_ns"),
            section_meta_bytes: c("passjoin_snapshot_section_meta_bytes_total"),
            section_spans_bytes: c("passjoin_snapshot_section_spans_bytes_total"),
            section_strings_bytes: c("passjoin_snapshot_section_strings_bytes_total"),
            section_segments_bytes: c("passjoin_snapshot_section_segments_bytes_total"),
            registry,
        }
    }

    /// Replaces the clock (deterministic tests use
    /// [`passjoin_obs::ManualNanos`]).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Replaces the trace sink (default: [`NoopTraceSink`]). The sink is
    /// called at plan/verify/cache/flush/snapshot boundaries — once per
    /// request per boundary, never per candidate — and must be cheap; it
    /// runs on the query path, including parallel batch workers.
    pub fn with_trace(mut self, trace: Arc<dyn TraceSink>) -> Self {
        self.trace = trace;
        self
    }

    /// The shared registry behind this bundle.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Renders the registry in Prometheus text exposition.
    pub fn render_prometheus(&self) -> String {
        self.registry.render_prometheus()
    }

    /// Renders the registry as deterministic JSON.
    pub fn render_json(&self) -> String {
        self.registry.render_json()
    }

    /// Copies an index's aggregate statistics into the `passjoin_index_*`
    /// gauges (gauges are point-in-time: call before dumping).
    pub fn record_index_stats(&self, stats: &OnlineStats) {
        let clamp = |v: u64| i64::try_from(v).unwrap_or(i64::MAX);
        self.index_live_strings.set(clamp(stats.live as u64));
        self.index_segment_entries.set(clamp(stats.segment_entries));
        self.index_resident_bytes.set(clamp(stats.resident_bytes));
        self.index_epoch.set(clamp(stats.epoch));
    }

    /// The cache's registry mirrors (see [`CacheCounters`]).
    pub(crate) fn cache_counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.cache_hits.clone(),
            misses: self.cache_misses.clone(),
            invalidations: self.cache_invalidations.clone(),
            evictions: self.cache_evictions.clone(),
        }
    }

    /// Accounts one finished request: stats counters, completion, and the
    /// phase split. `probe` is derived as the remainder so the four phases
    /// sum exactly to `total`.
    pub(crate) fn record_request(
        &self,
        stats: &ExecStats,
        completion: &Completion,
        total_ns: u64,
        plan_ns: u64,
        cache_ns: u64,
        verify_ns: u64,
    ) {
        self.requests.inc(1);
        self.candidates.inc(stats.candidates);
        self.verifications.inc(stats.verifications);
        self.short_checked.inc(stats.short_checked);
        self.segment_matches.inc(stats.segment_matches);
        self.short_matches.inc(stats.short_matches);
        if let Completion::Truncated { reason } = completion {
            match reason {
                TruncationReason::VerificationCap => self.truncated_verification_cap.inc(1),
                TruncationReason::CandidateCap => self.truncated_candidate_cap.inc(1),
                TruncationReason::Deadline => self.truncated_deadline.inc(1),
            }
        }
        let measured = plan_ns.saturating_add(cache_ns).saturating_add(verify_ns);
        self.phase_plan_ns.observe(plan_ns);
        self.phase_probe_ns
            .observe(total_ns.saturating_sub(measured));
        self.phase_verify_ns.observe(verify_ns);
        self.phase_cache_ns.observe(cache_ns);
        self.request_ns.observe(total_ns.max(measured));
    }
}

impl Default for EngineObs {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for EngineObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineObs").finish_non_exhaustive()
    }
}

/// Fires a trace event; a one-liner so call sites stay terse.
#[inline]
pub(crate) fn trace(obs: &EngineObs, event: TraceEvent) {
    obs.trace.event(event);
}

/// A real-time [`TickSource`]: a timer thread bumps an atomic tick
/// counter every `period`, so
/// [`ExecBudget::with_deadline`](crate::ExecBudget::with_deadline) works
/// against wall-clock time. [`ManualTicks`](crate::ManualTicks) remains
/// the deterministic choice for tests.
///
/// Resolution equals the period: a deadline of `now + n` expires between
/// `(n-1)·period` and `(n+1)·period` of real time. Dropping the source
/// signals the thread to exit at its next wake-up; the drop itself does
/// not block.
///
/// ```
/// use std::sync::Arc;
/// use passjoin_online::{ExecBudget, TickSource, WallClockTicks};
///
/// let ticks = Arc::new(WallClockTicks::millis());
/// let already_passed = ticks.ticks(); // expires immediately
/// let budget = ExecBudget::new().with_deadline(ticks, already_passed);
/// assert!(!budget.is_unlimited());
/// ```
#[derive(Debug)]
pub struct WallClockTicks {
    ticks: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
}

impl WallClockTicks {
    /// Starts a timer thread advancing one tick per `period`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero (the thread would spin).
    pub fn start(period: Duration) -> Self {
        assert!(!period.is_zero(), "tick period must be non-zero");
        let ticks = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        {
            let ticks = Arc::clone(&ticks);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("passjoin-ticks".into())
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        std::thread::sleep(period);
                        ticks.fetch_add(1, Ordering::Relaxed);
                    }
                })
                .expect("spawning the tick thread");
        }
        Self { ticks, stop }
    }

    /// A millisecond-resolution source: one tick per millisecond, the
    /// natural unit for request deadlines.
    pub fn millis() -> Self {
        Self::start(Duration::from_millis(1))
    }
}

impl TickSource for WallClockTicks {
    fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }
}

impl Drop for WallClockTicks {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

/// The deadline `ms` milliseconds from now on `ticks`, as the
/// `(source, expires_at)` pair [`ExecBudget::with_deadline`] takes —
/// the one way every surface (CLI `--deadline-ms`, the network server's
/// per-request deadlines) converts a millisecond budget into tick terms,
/// so deadline semantics cannot drift between them.
///
/// `ticks` should be a long-lived [`WallClockTicks::millis`] source: each
/// source owns a timer thread, so per-request construction would leak a
/// thread per request.
///
/// [`ExecBudget::with_deadline`]: crate::ExecBudget::with_deadline
///
/// ```
/// use std::sync::Arc;
/// use passjoin_online::{wall_deadline, ExecBudget, WallClockTicks};
///
/// let ticker = Arc::new(WallClockTicks::millis());
/// let (source, at) = wall_deadline(&ticker, 250);
/// let budget = ExecBudget::new().with_deadline(source, at);
/// assert!(!budget.is_unlimited());
/// ```
pub fn wall_deadline(ticks: &Arc<WallClockTicks>, ms: u64) -> (Arc<dyn TickSource>, u64) {
    let expires_at = ticks.ticks().saturating_add(ms);
    (Arc::clone(ticks) as Arc<dyn TickSource>, expires_at)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_ticks_advance() {
        let source = WallClockTicks::start(Duration::from_millis(2));
        let start = source.ticks();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while source.ticks() == start {
            assert!(
                std::time::Instant::now() < deadline,
                "tick thread never advanced"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(source.ticks() > start);
    }

    #[test]
    #[should_panic(expected = "period must be non-zero")]
    fn zero_period_is_rejected() {
        let _ = WallClockTicks::start(Duration::ZERO);
    }

    #[test]
    fn record_request_attributes_all_time() {
        let obs = EngineObs::new();
        let stats = ExecStats {
            candidates: 10,
            verifications: 4,
            short_checked: 1,
            segment_matches: 2,
            short_matches: 1,
        };
        obs.record_request(&stats, &Completion::Complete, 1_000, 100, 50, 300);
        assert_eq!(obs.candidates.get(), 10);
        assert_eq!(obs.requests.get(), 1);
        let phases = obs.phase_plan_ns.sum()
            + obs.phase_probe_ns.sum()
            + obs.phase_verify_ns.sum()
            + obs.phase_cache_ns.sum();
        assert_eq!(
            phases,
            obs.request_ns.sum(),
            "phases partition the wall time"
        );
        assert_eq!(obs.phase_probe_ns.sum(), 550, "probe is the remainder");
    }

    #[test]
    fn truncation_reasons_route_to_their_counters() {
        let obs = EngineObs::new();
        for (reason, counter) in [
            (
                TruncationReason::VerificationCap,
                &obs.truncated_verification_cap,
            ),
            (TruncationReason::CandidateCap, &obs.truncated_candidate_cap),
            (TruncationReason::Deadline, &obs.truncated_deadline),
        ] {
            let before = counter.get();
            obs.record_request(
                &ExecStats::default(),
                &Completion::Truncated { reason },
                0,
                0,
                0,
                0,
            );
            assert_eq!(counter.get(), before + 1);
        }
        assert_eq!(obs.requests.get(), 3);
    }
}
