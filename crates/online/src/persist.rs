//! Snapshot persistence: [`Snapshot::save`] and [`OnlineIndex::load`].
//!
//! A saved snapshot is one `passjoin-persist` container. Format version 3
//! (what this build writes) carries eight sections:
//!
//! | id | section      | contents |
//! |----|--------------|----------|
//! | 1  | META         | τ_max, epoch, universe, live count, arena length, posting-entry count, key backend |
//! | 2  | SPANS        | per id: `(start: u64, len: u32)` into the arena; `start = u64::MAX` marks a tombstone |
//! | 3  | STRINGS      | the arena: every live string's bytes, concatenated in id order |
//! | 4  | SEGMENTS     | byte-keyed posting stream (`passjoin_persist::segmap::encode`) — owned backend only |
//! | 5  | SEGMENTS_INT | interner dictionary + id-keyed postings (`segmap::encode_interned`) — interned backend only |
//! | 6  | DIRECT_DIR   | direct-probe length directory (`passjoin_persist::segdirect`) |
//! | 7  | DIRECT_RUNS  | direct-probe run table, 28 B/run, `(l, slot, key)`-sorted |
//! | 8  | DIRECT_KEYS  | direct-probe key blob |
//! | 9  | DIRECT_IDS   | direct-probe id blob, 8-byte-aligned at its file offset |
//!
//! Exactly one of sections 4/5 is present, matching the META backend
//! code. Sections 6–9 are always present in v3 and encode the *same*
//! postings as sorted arrays that [`passjoin::DirectSegmentIndex`] probes
//! straight out of the loaded buffer: the cost is storing the postings
//! twice, the payoff is [`LoadMode::Direct`] loads that never replay a
//! posting. **Version 1** files (6-field META, always section 4; backend
//! defaults to owned) and **version 2** files (no direct appendix) keep
//! loading; on them [`LoadMode::Direct`] reports the appendix missing
//! rather than silently rebuilding.
//!
//! Saving walks the index in id order, so output is deterministic — and
//! independent of how the index was loaded: a direct-probe store re-saves
//! its *origin* backend's section byte-identically.
//! Loading reads the file into **one contiguous buffer** and reconstructs
//! the index around it: string entries become zero-copy spans of that
//! buffer (see `Stored::Arena` in the index module), and the segment maps
//! are replayed posting-by-posting — no string is re-partitioned, no
//! corpus byte is copied. Under [`LoadMode::Direct`] even the replay
//! disappears: the segment lane *is* the buffer. The loaded index is
//! fully mutable either way: later inserts own their bytes, removes drop
//! span entries, a direct store's first mutation promotes it back to its
//! origin hash-map backend, and the arena handle keeps the buffer alive
//! exactly as long as any snapshot or clone needs it.
//!
//! Load-time validation is layered: the container re-checks magic,
//! version, and per-section CRCs ([`PersistError`] covers each failure
//! mode); span bounds, posting geometry, interner-table shape, id ranges,
//! and the live-count/entry-count cross-checks are re-validated
//! structurally, so even a CRC-valid file written by a buggy producer is
//! rejected rather than trusted. The direct path defaults to the same
//! rigor (`deep_validate: true`); `passjoin-store`'s instant opens defer
//! the deep pass to a background thread and rely on probe-time bounds
//! checks in the meantime.

use std::path::Path;
use std::sync::{Arc, Mutex};

use passjoin_obs::{Histogram, TraceEvent};
use passjoin_persist::{segdirect, segmap, Cursor, PersistError, SnapshotFile, SnapshotWriter};
use sj_common::StringId;

use crate::cache::QueryCache;
use crate::index::{Inner, KeyBackend, SegmentStore, DEFAULT_CACHE_CAPACITY};
use crate::obs::{trace, EngineObs};
use crate::{OnlineIndex, Snapshot};

/// Section ids of the online-snapshot format.
const SEC_META: u32 = 1;
const SEC_SPANS: u32 = 2;
const SEC_STRINGS: u32 = 3;
const SEC_SEGMENTS: u32 = 4;
const SEC_SEGMENTS_INTERNED: u32 = 5;

/// META backend codes (v2+; v1 files predate the field and are owned).
const BACKEND_OWNED: u64 = 0;
const BACKEND_INTERNED: u64 = 1;

/// Sentinel `start` marking a removed id in the SPANS section.
/// `pub(crate)`: the lazy string table decodes span entries on access.
pub(crate) const TOMBSTONE: u64 = u64::MAX;

/// Bytes per SPANS entry (`start: u64` + `len: u32`).
pub(crate) const SPAN_LEN: usize = 12;

/// Largest τ_max a snapshot may declare. Far above any useful threshold
/// (the paper's workloads use τ ≤ 8; index cost grows with τ_max²), and
/// small enough that τ-derived arithmetic on a crafted META section can
/// neither overflow nor justify outsized allocations.
const MAX_TAU_MAX: usize = 4096;

impl Snapshot {
    /// Writes this point-in-time view as a snapshot file at `path`
    /// (truncating any existing file); returns the file's byte length.
    ///
    /// The write is deterministic: saving the same snapshot twice
    /// produces byte-identical files. The segment section matches the
    /// index's key backend, and loading restores that backend.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<u64, PersistError> {
        save_inner(&self.inner, self.epoch, path.as_ref(), self.obs.as_deref())
    }
}

/// Laps a pluggable clock across the save/load phases, attributing each
/// stretch to the picked histogram.
struct PhaseTimer<'a> {
    obs: &'a EngineObs,
    last: u64,
}

impl<'a> PhaseTimer<'a> {
    fn new(obs: &'a EngineObs) -> Self {
        let last = obs.clock.now_nanos();
        Self { obs, last }
    }

    fn lap(&mut self, pick: impl FnOnce(&EngineObs) -> &Histogram) {
        let now = self.obs.clock.now_nanos();
        pick(self.obs).observe(now.saturating_sub(self.last));
        self.last = now;
    }
}

/// How a load materializes the segment lane of a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Decode the hash-map section (4 or 5) and replay every posting into
    /// a freshly allocated map — the v1/v2 path, O(postings) work, full
    /// structural validation. Works on every supported format version.
    Rebuild,
    /// Adopt the direct-probe appendix (sections 6–9, v3+) in place: the
    /// loaded index probes sorted runs straight out of the file buffer and
    /// no posting is ever replayed. The first mutation promotes the store
    /// back to the hash-map backend it was saved from.
    Direct {
        /// Run the O(postings) deep validation pass
        /// ([`passjoin::DirectSegmentIndex::validate_deep`] plus the
        /// postings-cover-the-live-strings cross-check) before returning.
        /// `true` is the safe default; `passjoin-store`'s instant opens
        /// pass `false` and defer the pass to a background thread, relying
        /// on probe-time bounds checks in the meantime.
        deep_validate: bool,
    },
}

impl OnlineIndex {
    /// [`Snapshot::save`] on the index's current state.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<u64, PersistError> {
        self.snapshot().save(path)
    }

    /// Loads a snapshot file into a queryable, fully mutable index.
    ///
    /// The whole file is read into one contiguous buffer; string entries
    /// are zero-copy views into it, and the segment index is replayed from
    /// the serialized postings — no re-partitioning. Ids, tombstones, the
    /// mutation epoch, τ_max, and the key backend all round-trip exactly,
    /// so a loaded index answers every query byte-identically to the index
    /// that was saved.
    ///
    /// The index keeps the *entire* file buffer alive (not just the
    /// string-arena section) for as long as any arena-backed string is
    /// live. That is a deliberate trade: one buffer, one ownership story,
    /// and the layout the mmap path needs — under `mmap(2)` the consumed
    /// SPANS/SEGMENTS pages are simply evicted by the OS. Callers that
    /// must minimize heap today can rebuild from the corpus instead.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        load_impl(path.as_ref(), LoadMode::Rebuild, None)
    }

    /// [`OnlineIndex::load`] with observability attached for the load
    /// itself *and* the returned index: the load's read/decode/validate
    /// phase timings and section byte counts land in `obs`'s registry,
    /// and the index comes back instrumented (as if
    /// [`OnlineIndexBuilder::observability`](crate::OnlineIndexBuilder::observability)
    /// had been set before building).
    pub fn load_with(path: impl AsRef<Path>, obs: Arc<EngineObs>) -> Result<Self, PersistError> {
        let mut index = load_impl(path.as_ref(), LoadMode::Rebuild, Some(&obs))?;
        index.set_observability(Some(obs));
        Ok(index)
    }

    /// [`OnlineIndex::load`] via [`LoadMode::Direct`] with deep validation:
    /// the segment lane is the file's own sorted-run appendix (v3+), so no
    /// posting is replayed and no hash map is allocated. Queries answer
    /// byte-identically to a [`OnlineIndex::load`] of the same file; the
    /// first mutation transparently rebuilds the original backend.
    pub fn load_direct(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        load_impl(
            path.as_ref(),
            LoadMode::Direct {
                deep_validate: true,
            },
            None,
        )
    }

    /// [`OnlineIndex::load_direct`] with observability attached, exactly
    /// as [`OnlineIndex::load_with`] does for the rebuild path.
    pub fn load_direct_with(
        path: impl AsRef<Path>,
        obs: Arc<EngineObs>,
    ) -> Result<Self, PersistError> {
        let mut index = load_impl(
            path.as_ref(),
            LoadMode::Direct {
                deep_validate: true,
            },
            Some(&obs),
        )?;
        index.set_observability(Some(obs));
        Ok(index)
    }

    /// Reconstructs an index from an already-opened container — the entry
    /// point `passjoin-store` uses to combine its own buffer strategy
    /// (mmap, lazy CRC validation) with either [`LoadMode`]. The index
    /// adopts `file`'s buffer; the caller keeps control of how that buffer
    /// was produced and which payload CRCs were verified up front.
    pub fn from_snapshot_file(file: &SnapshotFile, mode: LoadMode) -> Result<Self, PersistError> {
        load_file_impl(file, mode, None)
    }

    /// [`OnlineIndex::from_snapshot_file`] with observability attached,
    /// exactly as [`OnlineIndex::load_with`] does for the path-based API.
    pub fn from_snapshot_file_with(
        file: &SnapshotFile,
        mode: LoadMode,
        obs: Arc<EngineObs>,
    ) -> Result<Self, PersistError> {
        let mut index = load_file_impl(file, mode, Some(&obs))?;
        index.set_observability(Some(obs));
        Ok(index)
    }
}

fn load_impl(
    path: &Path,
    mode: LoadMode,
    obs: Option<&EngineObs>,
) -> Result<OnlineIndex, PersistError> {
    let mut timer = obs.map(PhaseTimer::new);
    let file = SnapshotFile::open(path)?;
    if let Some(t) = timer.as_mut() {
        t.lap(|o| &o.snapshot_load_read_ns);
    }
    load_file_impl(&file, mode, obs)
}

fn load_file_impl(
    file: &SnapshotFile,
    mode: LoadMode,
    obs: Option<&EngineObs>,
) -> Result<OnlineIndex, PersistError> {
    {
        let mut timer = obs.map(PhaseTimer::new);

        let meta_payload = file.section(SEC_META)?;
        let mut meta = Cursor::new(meta_payload, "meta section");
        let tau_max = meta.len64()?;
        let epoch = meta.u64()?;
        let universe = meta.len64()?;
        let live = meta.len64()?;
        let arena_len = meta.len64()?;
        let segment_entries = meta.u64()?;
        // v1 predates the backend field; its snapshots are all owned-key.
        let backend = if file.version() >= 2 {
            meta.u64()?
        } else {
            BACKEND_OWNED
        };
        meta.finish()?;
        if tau_max > MAX_TAU_MAX {
            return Err(PersistError::Corrupt {
                context: "tau_max exceeds the format maximum",
            });
        }
        // Ids are u32; a universe beyond that could not have been written
        // by any producer and would truncate ids on reconstruction.
        if universe > u32::MAX as usize {
            return Err(PersistError::Corrupt {
                context: "universe exceeds the u32 id space",
            });
        }

        let strings_range = file.section_range(SEC_STRINGS)?;
        if strings_range.len() != arena_len {
            return Err(PersistError::Corrupt {
                context: "arena length disagrees with the meta section",
            });
        }

        let spans_range = file.section_range(SEC_SPANS)?;
        if universe
            .checked_mul(SPAN_LEN)
            .is_none_or(|expected| spans_range.len() != expected)
        {
            return Err(PersistError::Corrupt {
                context: "span table length disagrees with the meta section",
            });
        }
        // The instant-restart fast path: on a shallow direct open whose
        // posting count proves every live string is long (`entries ==
        // live·(τ_max+1)`, so the short lane is provably empty), the span
        // table is served lazily out of the buffer instead of being
        // decoded here — the one O(universe) step this function would
        // otherwise always pay. Per-span validation rides along with the
        // deferred deep checks.
        let lazy_table = matches!(
            mode,
            LoadMode::Direct {
                deep_validate: false
            }
        ) && segment_entries == live as u64 * (tau_max as u64 + 1);
        // Spans are recorded relative to the arena; rebase them onto the
        // whole-file buffer so the index can keep the single `Arc` alive.
        let base = strings_range.start;
        let mut spans = Vec::new();
        let mut max_live_len = 0usize;
        if !lazy_table {
            let spans_payload = file.section(SEC_SPANS)?;
            spans.reserve_exact(universe);
            let mut cursor = Cursor::new(spans_payload, "span table");
            let mut live_seen = 0usize;
            for _ in 0..universe {
                let start = cursor.u64()?;
                let len = cursor.u32()? as usize;
                if start == TOMBSTONE {
                    spans.push(None);
                    continue;
                }
                let start = usize::try_from(start).map_err(|_| PersistError::Corrupt {
                    context: "span offset exceeds the platform",
                })?;
                if start
                    .checked_add(len)
                    .is_none_or(|end| end > strings_range.len())
                {
                    return Err(PersistError::Corrupt {
                        context: "string span exceeds the arena",
                    });
                }
                live_seen += 1;
                max_live_len = max_live_len.max(len);
                spans.push(Some((base + start, len)));
            }
            cursor.finish()?;
            if live_seen != live {
                return Err(PersistError::Corrupt {
                    context: "live count disagrees with the meta section",
                });
            }
        }

        // The longest live string bounds every legal posting length — and,
        // with it, the allocation any hostile segment section can force.
        let origin = match backend {
            BACKEND_OWNED => KeyBackend::Owned,
            BACKEND_INTERNED => KeyBackend::Interned,
            _ => {
                return Err(PersistError::Corrupt {
                    context: "unknown key-backend code in the meta section",
                })
            }
        };
        let deep_validate = match mode {
            LoadMode::Rebuild => true,
            LoadMode::Direct { deep_validate } => deep_validate,
        };
        let seg_payload_len;
        let segments = match mode {
            LoadMode::Rebuild => match origin {
                KeyBackend::Owned => {
                    let payload = file.section(SEC_SEGMENTS)?;
                    seg_payload_len = payload.len();
                    SegmentStore::Owned(segmap::decode(payload, tau_max, universe, max_live_len)?)
                }
                KeyBackend::Interned => {
                    let payload = file.section(SEC_SEGMENTS_INTERNED)?;
                    seg_payload_len = payload.len();
                    SegmentStore::Interned(segmap::decode_interned(
                        payload,
                        tau_max,
                        universe,
                        max_live_len,
                    )?)
                }
                KeyBackend::Direct => unreachable!("origin is decoded from the backend code"),
            },
            LoadMode::Direct { .. } => {
                let index =
                    segdirect::decode_direct(file, tau_max, deep_validate.then_some(universe))?;
                // With a lazy table no span was decoded, so the longest
                // live length is unknown; the bound is deferred with the
                // rest of the deep validation.
                if !lazy_table && index.max_len() > max_live_len {
                    return Err(PersistError::Corrupt {
                        context: "direct postings exceed the longest live string",
                    });
                }
                seg_payload_len = [
                    segdirect::SEC_DIRECT_DIR,
                    segdirect::SEC_DIRECT_RUNS,
                    segdirect::SEC_DIRECT_KEYS,
                    segdirect::SEC_DIRECT_IDS,
                ]
                .iter()
                .map(|&id| file.section_range(id).map(|r| r.len()))
                .sum::<Result<usize, _>>()?;
                SegmentStore::from_direct(index, origin)
            }
        };
        if segments.entries() != segment_entries {
            return Err(PersistError::Corrupt {
                context: "posting count disagrees with the meta section",
            });
        }
        if let Some(o) = obs {
            o.section_meta_bytes.inc(meta_payload.len() as u64);
            o.section_spans_bytes.inc(spans_range.len() as u64);
            o.section_strings_bytes.inc(strings_range.len() as u64);
            o.section_segments_bytes.inc(seg_payload_len as u64);
        }
        if let Some(t) = timer.as_mut() {
            t.lap(|o| &o.snapshot_load_decode_ns);
        }
        // The online query planner derives probe windows from the even
        // partition; a snapshot with any other scheme would load fine and
        // then silently miss every match.
        if segments.scheme() != passjoin::PartitionScheme::Even {
            return Err(PersistError::Corrupt {
                context: "online snapshots require the even partition scheme",
            });
        }
        // Cross-validate postings against the string table: every
        // reference must point at a live string of the posting's length,
        // and every live long string must be referenced exactly τ_max+1
        // times. Checksums cannot catch a producer that wrote internally
        // inconsistent sections, and the query path trusts these
        // invariants (`expect`s and slices on them). Skipped only when an
        // instant open explicitly deferred deep validation.
        if deep_validate {
            let mut references = vec![0u32; universe];
            let mut consistent = true;
            segments.visit_posting_ids(|l, id| match spans.get(id as usize) {
                Some(Some((_, len))) if *len == l => references[id as usize] += 1,
                _ => consistent = false,
            });
            let expected = tau_max as u32 + 1;
            consistent &= spans
                .iter()
                .zip(&references)
                .all(|(span, &refs)| match span {
                    Some((_, len)) if *len > tau_max => refs == expected,
                    _ => refs == 0,
                });
            if !consistent {
                return Err(PersistError::Corrupt {
                    context: "segment postings do not cover the live strings",
                });
            }
        }

        let total_bytes = file.buffer().len() as u64;
        let arena = file.buffer().clone();
        let inner = if lazy_table {
            Inner::from_mapped_parts(
                tau_max,
                arena,
                spans_range,
                strings_range,
                universe,
                live,
                segments,
            )
        } else {
            Inner::from_loaded_parts(tau_max, arena, spans, segments)
        }
        .map_err(|_| PersistError::Corrupt {
            context: "snapshot sections are mutually inconsistent",
        })?;
        if let Some(t) = timer.as_mut() {
            t.lap(|o| &o.snapshot_load_validate_ns);
        }
        if let Some(o) = obs {
            o.snapshot_load_bytes.inc(total_bytes);
            trace(o, TraceEvent::SnapshotLoaded { bytes: total_bytes });
        }
        Ok(OnlineIndex {
            inner: Arc::new(inner),
            epoch,
            cache: Mutex::new(QueryCache::new(DEFAULT_CACHE_CAPACITY)),
            obs: None,
        })
    }
}

/// The `(l, slot, key, ids)` callback a posting visitor feeds — the
/// argument shape of [`segmap::encode_with`] and friends.
type PostingSink<'a> = &'a mut dyn FnMut(usize, usize, &[u8], &[StringId]);

fn save_inner(
    inner: &Inner,
    epoch: u64,
    path: &Path,
    obs: Option<&EngineObs>,
) -> Result<u64, PersistError> {
    let mut timer = obs.map(PhaseTimer::new);
    let universe = inner.universe();

    let mut spans = Vec::with_capacity(universe * SPAN_LEN);
    let mut arena = Vec::new();
    let mut live = 0usize;
    for id in 0..universe {
        match inner.get(id as u32) {
            Some(bytes) => {
                spans.extend_from_slice(&(arena.len() as u64).to_le_bytes());
                spans.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                arena.extend_from_slice(bytes);
                live += 1;
            }
            None => {
                spans.extend_from_slice(&TOMBSTONE.to_le_bytes());
                spans.extend_from_slice(&0u32.to_le_bytes());
            }
        }
    }

    // A direct store saves as its *origin* backend: the hash-map section
    // and META code are exactly what the pre-snapshot index would have
    // written, so load→save round-trips are byte-identical regardless of
    // which load mode produced the index.
    let backend_code = match inner.segments().save_backend() {
        KeyBackend::Owned => BACKEND_OWNED,
        KeyBackend::Interned => BACKEND_INTERNED,
        KeyBackend::Direct => unreachable!("save_backend resolves to the origin backend"),
    };
    let mut meta = Vec::with_capacity(56);
    meta.extend_from_slice(&(inner.tau_max() as u64).to_le_bytes());
    meta.extend_from_slice(&epoch.to_le_bytes());
    meta.extend_from_slice(&(universe as u64).to_le_bytes());
    meta.extend_from_slice(&(live as u64).to_le_bytes());
    meta.extend_from_slice(&(arena.len() as u64).to_le_bytes());
    meta.extend_from_slice(&inner.segments().entries().to_le_bytes());
    meta.extend_from_slice(&backend_code.to_le_bytes());
    if let Some(t) = timer.as_mut() {
        t.lap(|o| &o.snapshot_save_sections_ns);
    }

    let (seg_id, seg_payload) = match inner.segments() {
        SegmentStore::Owned(map) => (SEC_SEGMENTS, segmap::encode(map)),
        SegmentStore::Interned(index) => (SEC_SEGMENTS_INTERNED, segmap::encode_interned(index)),
        SegmentStore::Direct { index, origin } => {
            let visit = |f: PostingSink<'_>| {
                index
                    .try_visit_postings(|l, slot, key, ids| f(l, slot, key, ids))
                    .expect("loaded direct postings are structurally valid");
            };
            match origin {
                KeyBackend::Owned => (
                    SEC_SEGMENTS,
                    segmap::encode_with(index.scheme(), index.tau(), visit),
                ),
                KeyBackend::Interned => (
                    SEC_SEGMENTS_INTERNED,
                    segmap::encode_interned_with(index.scheme(), index.tau(), visit),
                ),
                KeyBackend::Direct => unreachable!("direct stores record a hash-map origin"),
            }
        }
    };
    // The direct-probe appendix (sections 6–9) is written on every save,
    // whatever the backend — it is what makes the file loadable without
    // replaying a single posting.
    let direct = match inner.segments() {
        SegmentStore::Owned(map) => segdirect::encode_direct_owned(map),
        SegmentStore::Interned(index) => segdirect::encode_direct_interned(index),
        SegmentStore::Direct { index, .. } => {
            segdirect::encode_direct(index.scheme(), index.tau(), |f| {
                index
                    .try_visit_postings(|l, slot, key, ids| f(l, slot, key, ids))
                    .expect("loaded direct postings are structurally valid")
            })
        }
    };
    if let Some(t) = timer.as_mut() {
        t.lap(|o| &o.snapshot_save_encode_ns);
    }
    if let Some(o) = obs {
        o.section_meta_bytes.inc(meta.len() as u64);
        o.section_spans_bytes.inc(spans.len() as u64);
        o.section_strings_bytes.inc(arena.len() as u64);
        o.section_segments_bytes.inc(seg_payload.len() as u64);
    }

    // The id blob is padded to 8-byte in-file alignment, which requires
    // knowing its absolute payload offset: header + table for all eight
    // sections, then every preceding payload.
    let mut ids_at = passjoin_persist::format::payload_base(8) as u64;
    for len in [
        meta.len(),
        spans.len(),
        arena.len(),
        seg_payload.len(),
        direct.dir.len(),
        direct.runs.len(),
        direct.keys.len(),
    ] {
        ids_at += len as u64;
    }

    let mut writer = SnapshotWriter::new();
    writer
        .section(SEC_META, meta)
        .section(SEC_SPANS, spans)
        .section(SEC_STRINGS, arena)
        .section(seg_id, seg_payload);
    for (id, payload) in direct.finish(ids_at) {
        writer.section(id, payload);
    }
    let bytes = writer.save(path)?;
    if let Some(t) = timer.as_mut() {
        t.lap(|o| &o.snapshot_save_write_ns);
    }
    if let Some(o) = obs {
        o.snapshot_save_bytes.inc(bytes);
        trace(o, TraceEvent::SnapshotSaved { bytes });
    }
    Ok(bytes)
}
