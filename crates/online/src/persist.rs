//! Snapshot persistence: [`Snapshot::save`] and [`OnlineIndex::load`].
//!
//! A saved snapshot is one `passjoin-persist` container. Format version 2
//! (what this build writes) carries four sections:
//!
//! | id | section      | contents |
//! |----|--------------|----------|
//! | 1  | META         | τ_max, epoch, universe, live count, arena length, posting-entry count, key backend |
//! | 2  | SPANS        | per id: `(start: u64, len: u32)` into the arena; `start = u64::MAX` marks a tombstone |
//! | 3  | STRINGS      | the arena: every live string's bytes, concatenated in id order |
//! | 4  | SEGMENTS     | byte-keyed posting stream (`passjoin_persist::segmap::encode`) — owned backend only |
//! | 5  | SEGMENTS_INT | interner dictionary + id-keyed postings (`segmap::encode_interned`) — interned backend only |
//!
//! Exactly one of sections 4/5 is present, matching the META backend code.
//! **Version 1** files (written before the interned backend existed) have
//! a 6-field META, always carry section 4, and keep loading — the backend
//! defaults to owned.
//!
//! Saving walks the index in id order, so output is deterministic.
//! Loading reads the file into **one contiguous buffer** and reconstructs
//! the index around it: string entries become zero-copy spans of that
//! buffer (see `Stored::Arena` in the index module), and the segment maps
//! are replayed posting-by-posting — no string is re-partitioned, no
//! corpus byte is copied. The loaded index is fully mutable: later inserts
//! own their bytes, removes drop span entries, and the arena `Arc` keeps
//! the buffer alive exactly as long as any snapshot or clone needs it.
//!
//! Load-time validation is layered: the container re-checks magic,
//! version, and per-section CRCs ([`PersistError`] covers each failure
//! mode); span bounds, posting geometry, interner-table shape, id ranges,
//! and the live-count/entry-count cross-checks are re-validated
//! structurally, so even a CRC-valid file written by a buggy producer is
//! rejected rather than trusted.

use std::path::Path;
use std::sync::{Arc, Mutex};

use passjoin_obs::{Histogram, TraceEvent};
use passjoin_persist::{segmap, Cursor, PersistError, SnapshotFile, SnapshotWriter};

use crate::cache::QueryCache;
use crate::index::{Inner, KeyBackend, SegmentStore, DEFAULT_CACHE_CAPACITY};
use crate::obs::{trace, EngineObs};
use crate::{OnlineIndex, Snapshot};

/// Section ids of the online-snapshot format.
const SEC_META: u32 = 1;
const SEC_SPANS: u32 = 2;
const SEC_STRINGS: u32 = 3;
const SEC_SEGMENTS: u32 = 4;
const SEC_SEGMENTS_INTERNED: u32 = 5;

/// META backend codes (v2+; v1 files predate the field and are owned).
const BACKEND_OWNED: u64 = 0;
const BACKEND_INTERNED: u64 = 1;

/// Sentinel `start` marking a removed id in the SPANS section.
const TOMBSTONE: u64 = u64::MAX;

/// Bytes per SPANS entry (`start: u64` + `len: u32`).
const SPAN_LEN: usize = 12;

/// Largest τ_max a snapshot may declare. Far above any useful threshold
/// (the paper's workloads use τ ≤ 8; index cost grows with τ_max²), and
/// small enough that τ-derived arithmetic on a crafted META section can
/// neither overflow nor justify outsized allocations.
const MAX_TAU_MAX: usize = 4096;

impl Snapshot {
    /// Writes this point-in-time view as a snapshot file at `path`
    /// (truncating any existing file); returns the file's byte length.
    ///
    /// The write is deterministic: saving the same snapshot twice
    /// produces byte-identical files. The segment section matches the
    /// index's key backend, and loading restores that backend.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<u64, PersistError> {
        save_inner(&self.inner, self.epoch, path.as_ref(), self.obs.as_deref())
    }
}

/// Laps a pluggable clock across the save/load phases, attributing each
/// stretch to the picked histogram.
struct PhaseTimer<'a> {
    obs: &'a EngineObs,
    last: u64,
}

impl<'a> PhaseTimer<'a> {
    fn new(obs: &'a EngineObs) -> Self {
        let last = obs.clock.now_nanos();
        Self { obs, last }
    }

    fn lap(&mut self, pick: impl FnOnce(&EngineObs) -> &Histogram) {
        let now = self.obs.clock.now_nanos();
        pick(self.obs).observe(now.saturating_sub(self.last));
        self.last = now;
    }
}

impl OnlineIndex {
    /// [`Snapshot::save`] on the index's current state.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<u64, PersistError> {
        self.snapshot().save(path)
    }

    /// Loads a snapshot file into a queryable, fully mutable index.
    ///
    /// The whole file is read into one contiguous buffer; string entries
    /// are zero-copy views into it, and the segment index is replayed from
    /// the serialized postings — no re-partitioning. Ids, tombstones, the
    /// mutation epoch, τ_max, and the key backend all round-trip exactly,
    /// so a loaded index answers every query byte-identically to the index
    /// that was saved.
    ///
    /// The index keeps the *entire* file buffer alive (not just the
    /// string-arena section) for as long as any arena-backed string is
    /// live. That is a deliberate trade: one buffer, one ownership story,
    /// and the layout the mmap follow-on needs — under `mmap(2)` the
    /// consumed SPANS/SEGMENTS pages are simply evicted by the OS. Callers
    /// that must minimize heap today can rebuild from the corpus instead.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        load_impl(path.as_ref(), None)
    }

    /// [`OnlineIndex::load`] with observability attached for the load
    /// itself *and* the returned index: the load's read/decode/validate
    /// phase timings and section byte counts land in `obs`'s registry,
    /// and the index comes back instrumented (as if
    /// [`OnlineIndexBuilder::observability`](crate::OnlineIndexBuilder::observability)
    /// had been set before building).
    pub fn load_with(path: impl AsRef<Path>, obs: Arc<EngineObs>) -> Result<Self, PersistError> {
        let mut index = load_impl(path.as_ref(), Some(&obs))?;
        index.set_observability(Some(obs));
        Ok(index)
    }
}

fn load_impl(path: &Path, obs: Option<&EngineObs>) -> Result<OnlineIndex, PersistError> {
    {
        let mut timer = obs.map(PhaseTimer::new);
        let file = SnapshotFile::open(path)?;
        if let Some(t) = timer.as_mut() {
            t.lap(|o| &o.snapshot_load_read_ns);
        }

        let meta_payload = file.section(SEC_META)?;
        let mut meta = Cursor::new(meta_payload, "meta section");
        let tau_max = meta.len64()?;
        let epoch = meta.u64()?;
        let universe = meta.len64()?;
        let live = meta.len64()?;
        let arena_len = meta.len64()?;
        let segment_entries = meta.u64()?;
        // v1 predates the backend field; its snapshots are all owned-key.
        let backend = if file.version() >= 2 {
            meta.u64()?
        } else {
            BACKEND_OWNED
        };
        meta.finish()?;
        if tau_max > MAX_TAU_MAX {
            return Err(PersistError::Corrupt {
                context: "tau_max exceeds the format maximum",
            });
        }
        // Ids are u32; a universe beyond that could not have been written
        // by any producer and would truncate ids on reconstruction.
        if universe > u32::MAX as usize {
            return Err(PersistError::Corrupt {
                context: "universe exceeds the u32 id space",
            });
        }

        let strings_range = file.section_range(SEC_STRINGS)?;
        if strings_range.len() != arena_len {
            return Err(PersistError::Corrupt {
                context: "arena length disagrees with the meta section",
            });
        }

        let spans_payload = file.section(SEC_SPANS)?;
        if universe
            .checked_mul(SPAN_LEN)
            .is_none_or(|expected| spans_payload.len() != expected)
        {
            return Err(PersistError::Corrupt {
                context: "span table length disagrees with the meta section",
            });
        }
        // Spans are recorded relative to the arena; rebase them onto the
        // whole-file buffer so the index can keep the single `Arc` alive.
        let base = strings_range.start;
        let mut spans = Vec::with_capacity(universe);
        let mut cursor = Cursor::new(spans_payload, "span table");
        let mut live_seen = 0usize;
        let mut max_live_len = 0usize;
        for _ in 0..universe {
            let start = cursor.u64()?;
            let len = cursor.u32()? as usize;
            if start == TOMBSTONE {
                spans.push(None);
                continue;
            }
            let start = usize::try_from(start).map_err(|_| PersistError::Corrupt {
                context: "span offset exceeds the platform",
            })?;
            if start
                .checked_add(len)
                .is_none_or(|end| end > strings_range.len())
            {
                return Err(PersistError::Corrupt {
                    context: "string span exceeds the arena",
                });
            }
            live_seen += 1;
            max_live_len = max_live_len.max(len);
            spans.push(Some((base + start, len)));
        }
        cursor.finish()?;
        if live_seen != live {
            return Err(PersistError::Corrupt {
                context: "live count disagrees with the meta section",
            });
        }

        // The longest live string bounds every legal posting length — and,
        // with it, the allocation any hostile segment section can force.
        let seg_payload_len;
        let segments = match backend {
            BACKEND_OWNED => {
                let payload = file.section(SEC_SEGMENTS)?;
                seg_payload_len = payload.len();
                SegmentStore::Owned(segmap::decode(payload, tau_max, universe, max_live_len)?)
            }
            BACKEND_INTERNED => {
                let payload = file.section(SEC_SEGMENTS_INTERNED)?;
                seg_payload_len = payload.len();
                SegmentStore::Interned(segmap::decode_interned(
                    payload,
                    tau_max,
                    universe,
                    max_live_len,
                )?)
            }
            _ => {
                return Err(PersistError::Corrupt {
                    context: "unknown key-backend code in the meta section",
                })
            }
        };
        if segments.entries() != segment_entries {
            return Err(PersistError::Corrupt {
                context: "posting count disagrees with the meta section",
            });
        }
        if let Some(o) = obs {
            o.section_meta_bytes.inc(meta_payload.len() as u64);
            o.section_spans_bytes.inc(spans_payload.len() as u64);
            o.section_strings_bytes.inc(strings_range.len() as u64);
            o.section_segments_bytes.inc(seg_payload_len as u64);
        }
        if let Some(t) = timer.as_mut() {
            t.lap(|o| &o.snapshot_load_decode_ns);
        }
        // The online query planner derives probe windows from the even
        // partition; a snapshot with any other scheme would load fine and
        // then silently miss every match.
        if segments.scheme() != passjoin::PartitionScheme::Even {
            return Err(PersistError::Corrupt {
                context: "online snapshots require the even partition scheme",
            });
        }
        // Cross-validate postings against the string table: every
        // reference must point at a live string of the posting's length,
        // and every live long string must be referenced exactly τ_max+1
        // times. Checksums cannot catch a producer that wrote internally
        // inconsistent sections, and the query path trusts these
        // invariants (`expect`s and slices on them).
        let mut references = vec![0u32; universe];
        let mut consistent = true;
        segments.visit_posting_ids(|l, id| match spans.get(id as usize) {
            Some(Some((_, len))) if *len == l => references[id as usize] += 1,
            _ => consistent = false,
        });
        let expected = tau_max as u32 + 1;
        consistent &= spans
            .iter()
            .zip(&references)
            .all(|(span, &refs)| match span {
                Some((_, len)) if *len > tau_max => refs == expected,
                _ => refs == 0,
            });
        if !consistent {
            return Err(PersistError::Corrupt {
                context: "segment postings do not cover the live strings",
            });
        }

        let total_bytes = file.buffer().len() as u64;
        let arena = Arc::clone(file.buffer());
        let inner = Inner::from_loaded_parts(tau_max, arena, spans, segments).map_err(|_| {
            PersistError::Corrupt {
                context: "snapshot sections are mutually inconsistent",
            }
        })?;
        if let Some(t) = timer.as_mut() {
            t.lap(|o| &o.snapshot_load_validate_ns);
        }
        if let Some(o) = obs {
            o.snapshot_load_bytes.inc(total_bytes);
            trace(o, TraceEvent::SnapshotLoaded { bytes: total_bytes });
        }
        Ok(OnlineIndex {
            inner: Arc::new(inner),
            epoch,
            cache: Mutex::new(QueryCache::new(DEFAULT_CACHE_CAPACITY)),
            obs: None,
        })
    }
}

fn save_inner(
    inner: &Inner,
    epoch: u64,
    path: &Path,
    obs: Option<&EngineObs>,
) -> Result<u64, PersistError> {
    let mut timer = obs.map(PhaseTimer::new);
    let universe = inner.universe();

    let mut spans = Vec::with_capacity(universe * SPAN_LEN);
    let mut arena = Vec::new();
    let mut live = 0usize;
    for id in 0..universe {
        match inner.get(id as u32) {
            Some(bytes) => {
                spans.extend_from_slice(&(arena.len() as u64).to_le_bytes());
                spans.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                arena.extend_from_slice(bytes);
                live += 1;
            }
            None => {
                spans.extend_from_slice(&TOMBSTONE.to_le_bytes());
                spans.extend_from_slice(&0u32.to_le_bytes());
            }
        }
    }

    let backend_code = match inner.segments().backend() {
        KeyBackend::Owned => BACKEND_OWNED,
        KeyBackend::Interned => BACKEND_INTERNED,
    };
    let mut meta = Vec::with_capacity(56);
    meta.extend_from_slice(&(inner.tau_max() as u64).to_le_bytes());
    meta.extend_from_slice(&epoch.to_le_bytes());
    meta.extend_from_slice(&(universe as u64).to_le_bytes());
    meta.extend_from_slice(&(live as u64).to_le_bytes());
    meta.extend_from_slice(&(arena.len() as u64).to_le_bytes());
    meta.extend_from_slice(&inner.segments().entries().to_le_bytes());
    meta.extend_from_slice(&backend_code.to_le_bytes());
    if let Some(t) = timer.as_mut() {
        t.lap(|o| &o.snapshot_save_sections_ns);
    }

    let (seg_id, seg_payload) = match inner.segments() {
        SegmentStore::Owned(map) => (SEC_SEGMENTS, segmap::encode(map)),
        SegmentStore::Interned(index) => (SEC_SEGMENTS_INTERNED, segmap::encode_interned(index)),
    };
    if let Some(t) = timer.as_mut() {
        t.lap(|o| &o.snapshot_save_encode_ns);
    }
    if let Some(o) = obs {
        o.section_meta_bytes.inc(meta.len() as u64);
        o.section_spans_bytes.inc(spans.len() as u64);
        o.section_strings_bytes.inc(arena.len() as u64);
        o.section_segments_bytes.inc(seg_payload.len() as u64);
    }

    let mut writer = SnapshotWriter::new();
    writer
        .section(SEC_META, meta)
        .section(SEC_SPANS, spans)
        .section(SEC_STRINGS, arena)
        .section(seg_id, seg_payload);
    let bytes = writer.save(path)?;
    if let Some(t) = timer.as_mut() {
        t.lap(|o| &o.snapshot_save_write_ns);
    }
    if let Some(o) = obs {
        o.snapshot_save_bytes.inc(bytes);
        trace(o, TraceEvent::SnapshotSaved { bytes });
    }
    Ok(bytes)
}
