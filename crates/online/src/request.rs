//! The typed query surface: [`SearchRequest`] in, [`QueryOutcome`] out.
//!
//! A request separates *what to retrieve* — the query bytes, a per-query
//! threshold, an optional top-k limit, count-only mode — from *how to
//! execute it* — cache policy and a parallelism hint for batches. Every
//! query path ([`crate::Queryable::search`], [`search_batch`], the
//! deprecated legacy wrappers, the CLI, the benches) compiles down to
//! requests executed by one engine (`crate::exec`), so a new serving
//! feature is a new request field, not a seventh method variant.
//!
//! Each answered request carries its own execution statistics
//! ([`ExecStats`]) and cache outcome, so callers can observe per-query
//! behaviour (candidates probed, verifications run, which lane produced
//! the matches) without global counters.
//!
//! ```
//! use passjoin_online::{OnlineIndex, Queryable, SearchRequest};
//!
//! let mut index = OnlineIndex::new(2);
//! index.insert(b"vldb");
//! index.insert(b"pvldb");
//! index.insert(b"sigmod");
//!
//! // Mixed thresholds, a top-k limit, and a count in one batch.
//! let batch = [
//!     SearchRequest::new(b"vldb", 1),
//!     SearchRequest::new(b"vldb", 2).with_limit(1),
//!     SearchRequest::new(b"sigmod", 2).count_only(),
//! ];
//! let response = index.search_batch(&batch);
//! assert_eq!(*response.outcomes[0].matches, vec![(0, 0), (1, 1)]);
//! assert_eq!(*response.outcomes[1].matches, vec![(0, 0)]); // closest only
//! assert_eq!(response.outcomes[2].count, 1);
//! assert!(response.outcomes[2].matches.is_empty()); // never materialized
//! ```

use std::borrow::Cow;
use std::fmt;
use std::sync::Arc;

use crate::Match;

/// Whether a request consults the source's query cache.
///
/// Only plain collect requests (no [`limit`](SearchRequest::with_limit),
/// not [`count_only`](SearchRequest::count_only)) are cacheable — the
/// cache stores full results keyed by `(query bytes, τ)`. Requests that
/// opt in but cannot be served from a cache (shaped results, or a source
/// without a cache, like [`crate::Snapshot`]) record
/// [`CacheOutcome::Bypass`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// Never consult the cache (the default — matches the legacy `query`
    /// methods, which cached only through the explicit `query_cached`).
    #[default]
    Bypass,
    /// Serve from the cache when possible; store computed full results.
    Use,
}

/// How many worker threads a batch may use. The engine resolves one batch
/// to the strongest hint among its requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Single-threaded execution (the default).
    #[default]
    Serial,
    /// Use the machine's available parallelism.
    Auto,
    /// Use exactly this many workers (`0` behaves like
    /// [`Parallelism::Auto`]).
    Threads(usize),
}

impl Parallelism {
    /// The hint as a worker count (`Auto`/`Threads(0)` resolve to the
    /// available parallelism).
    pub(crate) fn resolve(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Auto | Parallelism::Threads(0) => {
                std::thread::available_parallelism().map_or(1, |n| n.get())
            }
            Parallelism::Threads(n) => n,
        }
    }
}

/// One typed similarity query: the query bytes, its threshold, and the
/// retrieval/execution options. Build with [`SearchRequest::new`] (owned
/// bytes, `'static`) or [`SearchRequest::borrowed`] (zero-copy over a
/// caller-held query set) and the `with_*` adapters; execute with
/// [`crate::Queryable::search`] or [`crate::Queryable::search_batch`].
///
/// ```
/// use passjoin_online::{CachePolicy, Parallelism, SearchRequest};
///
/// let req = SearchRequest::new(b"jim gray", 2)
///     .with_limit(10) // the 10 closest matches only
///     .with_cache(CachePolicy::Use)
///     .with_parallelism(Parallelism::Auto);
/// assert_eq!(req.tau(), 2);
/// assert_eq!(req.limit(), Some(10));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchRequest<'a> {
    query: Cow<'a, [u8]>,
    tau: usize,
    limit: Option<usize>,
    count_only: bool,
    cache: CachePolicy,
    parallelism: Parallelism,
}

impl<'a> SearchRequest<'a> {
    /// A plain request owning its query bytes: all matches within `tau`
    /// of `query`, ascending by id — exactly what the legacy `query`
    /// method returned. For batches built over an existing query set,
    /// [`SearchRequest::borrowed`]/[`SearchRequest::uniform`] avoid
    /// copying the bytes.
    pub fn new(query: impl Into<Vec<u8>>, tau: usize) -> Self {
        Self::of(Cow::Owned(query.into()), tau)
    }

    /// A plain request borrowing its query bytes (no copy); otherwise
    /// identical to [`SearchRequest::new`].
    pub fn borrowed(query: &'a [u8], tau: usize) -> Self {
        Self::of(Cow::Borrowed(query), tau)
    }

    fn of(query: Cow<'a, [u8]>, tau: usize) -> Self {
        Self {
            query,
            tau,
            limit: None,
            count_only: false,
            cache: CachePolicy::default(),
            parallelism: Parallelism::default(),
        }
    }

    /// One plain request per query, all at the same `tau` — the uniform
    /// batch the legacy `query_batch` served. Borrows the query bytes.
    pub fn uniform<Q: AsRef<[u8]>>(queries: &'a [Q], tau: usize) -> Vec<Self> {
        queries
            .iter()
            .map(|q| Self::borrowed(q.as_ref(), tau))
            .collect()
    }

    /// Keep only the `k` matches smallest by `(distance, id)`, returned in
    /// that order. The engine runs these on a bounded heap whose worst
    /// retained distance tightens verification as it fills, so low limits
    /// on match-heavy queries do measurably less work (observable in
    /// [`ExecStats::verifications`]).
    pub fn with_limit(mut self, k: usize) -> Self {
        self.limit = Some(k);
        self
    }

    /// Report only the number of matches ([`QueryOutcome::count`]);
    /// [`QueryOutcome::matches`] stays empty and no result vector is
    /// materialized. Combined with [`with_limit`](Self::with_limit) this
    /// becomes an existence test — counting stops (and probing aborts) at
    /// the cap.
    pub fn count_only(mut self) -> Self {
        self.count_only = true;
        self
    }

    /// Sets the cache policy (see [`CachePolicy`]).
    pub fn with_cache(mut self, cache: CachePolicy) -> Self {
        self.cache = cache;
        self
    }

    /// Sets the batch parallelism hint (see [`Parallelism`]).
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The query bytes.
    pub fn query(&self) -> &[u8] {
        &self.query
    }

    /// The edit-distance threshold.
    pub fn tau(&self) -> usize {
        self.tau
    }

    /// The top-k limit, if any.
    pub fn limit(&self) -> Option<usize> {
        self.limit
    }

    /// True if only the match count is wanted.
    pub fn is_count_only(&self) -> bool {
        self.count_only
    }

    /// The cache policy.
    pub fn cache(&self) -> CachePolicy {
        self.cache
    }

    /// The parallelism hint.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }
}

/// How one request interacted with the query cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheOutcome {
    /// The cache was not consulted (policy, request shape, or a source
    /// without a cache).
    #[default]
    Bypass,
    /// Answered from the cache without probing.
    Hit,
    /// Consulted, not found; the computed result was stored.
    Miss,
}

/// Per-request execution counters, split by lane (see the index module
/// docs for the short/segment lane distinction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecStats {
    /// Posting-list entries scanned in the segment lane.
    pub candidates: u64,
    /// Segment-lane candidates that entered the verification cascade
    /// (survived dedup and the sink's length bound).
    pub verifications: u64,
    /// Short-lane strings checked by direct edit distance.
    pub short_checked: u64,
    /// Matches produced by the segment lane.
    pub segment_matches: u64,
    /// Matches produced by the short lane.
    pub short_matches: u64,
}

impl ExecStats {
    /// Accumulates another request's counters into this one.
    pub fn merge(&mut self, other: &ExecStats) {
        self.candidates += other.candidates;
        self.verifications += other.verifications;
        self.short_checked += other.short_checked;
        self.segment_matches += other.segment_matches;
        self.short_matches += other.short_matches;
    }
}

impl fmt::Display for ExecStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} candidates, {} verifications, {} short-lane checks",
            self.candidates, self.verifications, self.short_checked
        )
    }
}

/// The answer to one [`SearchRequest`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueryOutcome {
    /// The matches: ascending by id for plain requests, ascending by
    /// `(distance, id)` for limited (top-k) requests, empty for
    /// count-only requests.
    ///
    /// Shared, not copied: a cache hit hands out the cached vector
    /// itself (zero-copy, like the legacy `query_cached`), and an
    /// uncached result is the engine's buffer wrapped once. Use
    /// [`QueryOutcome::into_matches`] to take ownership — free unless
    /// the result is also retained by the cache.
    pub matches: Arc<Vec<Match>>,
    /// Matches found: `matches.len()` for materializing requests; for
    /// count-only requests the total count (capped at the limit, if any).
    pub count: usize,
    /// How the request interacted with the cache.
    pub cache: CacheOutcome,
    /// Execution counters (all zero for a cache hit — nothing was probed).
    pub stats: ExecStats,
}

impl QueryOutcome {
    /// The matches as an owned vector: unwraps the shared result when
    /// this outcome is its only holder, clones otherwise (cache hits).
    pub fn into_matches(self) -> Vec<Match> {
        Arc::try_unwrap(self.matches).unwrap_or_else(|shared| (*shared).clone())
    }
}

/// The position-aligned answers to a [`crate::Queryable::search_batch`]
/// call.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SearchResponse {
    /// One outcome per request, in request order.
    pub outcomes: Vec<QueryOutcome>,
}

impl SearchResponse {
    /// Strips the outcomes down to their match vectors (request order) —
    /// the legacy `query_batch` return shape.
    pub fn into_matches(self) -> Vec<Vec<Match>> {
        self.outcomes
            .into_iter()
            .map(QueryOutcome::into_matches)
            .collect()
    }

    /// Batch-wide totals (counts summed, cache outcomes tallied).
    pub fn totals(&self) -> BatchTotals {
        let mut totals = BatchTotals::default();
        for outcome in &self.outcomes {
            totals.matches += outcome.count;
            totals.stats.merge(&outcome.stats);
            match outcome.cache {
                CacheOutcome::Hit => totals.cache_hits += 1,
                CacheOutcome::Miss => totals.cache_misses += 1,
                CacheOutcome::Bypass => totals.cache_bypasses += 1,
            }
        }
        totals
    }
}

/// Aggregated view of a [`SearchResponse`] (see
/// [`SearchResponse::totals`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchTotals {
    /// Sum of [`QueryOutcome::count`] over the batch.
    pub matches: usize,
    /// Merged execution counters.
    pub stats: ExecStats,
    /// Requests answered from the cache.
    pub cache_hits: usize,
    /// Requests that consulted the cache and computed.
    pub cache_misses: usize,
    /// Requests that never consulted the cache.
    pub cache_bypasses: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trips_every_field() {
        let req = SearchRequest::new(b"abc".as_slice(), 3)
            .with_limit(7)
            .count_only()
            .with_cache(CachePolicy::Use)
            .with_parallelism(Parallelism::Threads(4));
        assert_eq!(req.query(), b"abc");
        assert_eq!(req.tau(), 3);
        assert_eq!(req.limit(), Some(7));
        assert!(req.is_count_only());
        assert_eq!(req.cache(), CachePolicy::Use);
        assert_eq!(req.parallelism(), Parallelism::Threads(4));
    }

    #[test]
    fn defaults_match_the_legacy_query_shape() {
        let req = SearchRequest::new(b"q".as_slice(), 1);
        assert_eq!(req.limit(), None);
        assert!(!req.is_count_only());
        assert_eq!(req.cache(), CachePolicy::Bypass);
        assert_eq!(req.parallelism(), Parallelism::Serial);
    }

    #[test]
    fn uniform_builds_one_request_per_query() {
        let queries = [b"a".as_slice(), b"bc"];
        let reqs = SearchRequest::uniform(&queries, 2);
        assert_eq!(reqs.len(), 2);
        assert!(reqs.iter().all(|r| r.tau() == 2));
        assert_eq!(reqs[1].query(), b"bc");
    }

    #[test]
    fn parallelism_resolves_to_worker_counts() {
        assert_eq!(Parallelism::Serial.resolve(), 1);
        assert_eq!(Parallelism::Threads(3).resolve(), 3);
        assert!(Parallelism::Auto.resolve() >= 1);
        assert_eq!(
            Parallelism::Threads(0).resolve(),
            Parallelism::Auto.resolve()
        );
    }

    #[test]
    fn totals_tally_outcomes() {
        let response = SearchResponse {
            outcomes: vec![
                QueryOutcome {
                    matches: Arc::new(vec![(1, 0)]),
                    count: 1,
                    cache: CacheOutcome::Miss,
                    stats: ExecStats {
                        candidates: 5,
                        verifications: 2,
                        ..ExecStats::default()
                    },
                },
                QueryOutcome {
                    matches: Arc::new(vec![(1, 0)]),
                    count: 1,
                    cache: CacheOutcome::Hit,
                    stats: ExecStats::default(),
                },
            ],
        };
        let totals = response.totals();
        assert_eq!(totals.matches, 2);
        assert_eq!(totals.stats.candidates, 5);
        assert_eq!((totals.cache_hits, totals.cache_misses), (1, 1));
        assert_eq!(response.into_matches(), vec![vec![(1, 0)], vec![(1, 0)]]);
    }
}
