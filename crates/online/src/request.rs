//! The typed query surface: [`SearchRequest`] in, [`QueryOutcome`] out.
//!
//! A request separates *what to retrieve* — the query bytes, a per-query
//! threshold, an optional top-k limit, count-only mode — from *how to
//! execute it* — cache policy and a parallelism hint for batches. Every
//! query path ([`crate::Queryable::search`], [`search_batch`], the
//! deprecated legacy wrappers, the CLI, the benches) compiles down to
//! requests executed by one engine (`crate::exec`), so a new serving
//! feature is a new request field, not a seventh method variant.
//!
//! Each answered request carries its own execution statistics
//! ([`ExecStats`]) and cache outcome, so callers can observe per-query
//! behaviour (candidates probed, verifications run, which lane produced
//! the matches) without global counters.
//!
//! Execution can also be *bounded*: an [`ExecBudget`] caps how many
//! candidates a request may scan and how many verifications it may run
//! (or attaches a tick-source deadline), and the outcome's
//! [`Completion`] says whether the answer is exact or was truncated —
//! and why. Only [`Completion::Complete`] full results ever enter the
//! query cache.
//!
//! ```
//! use passjoin_online::{OnlineIndex, Queryable, SearchRequest};
//!
//! let mut index = OnlineIndex::new(2);
//! index.insert(b"vldb");
//! index.insert(b"pvldb");
//! index.insert(b"sigmod");
//!
//! // Mixed thresholds, a top-k limit, and a count in one batch.
//! let batch = [
//!     SearchRequest::new(b"vldb", 1),
//!     SearchRequest::new(b"vldb", 2).with_limit(1),
//!     SearchRequest::new(b"sigmod", 2).count_only(),
//! ];
//! let response = index.search_batch(&batch);
//! assert_eq!(*response.outcomes[0].matches, vec![(0, 0), (1, 1)]);
//! assert_eq!(*response.outcomes[1].matches, vec![(0, 0)]); // closest only
//! assert_eq!(response.outcomes[2].count, 1);
//! assert!(response.outcomes[2].matches.is_empty()); // never materialized
//! ```

use std::borrow::Cow;
use std::fmt;
use std::sync::Arc;

use passjoin::sink::{TickSource, TruncationReason};

use crate::Match;

/// Whether a request consults the source's query cache.
///
/// Only plain collect requests (no [`limit`](SearchRequest::with_limit),
/// not [`count_only`](SearchRequest::count_only)) are cacheable — the
/// cache stores full results keyed by `(query bytes, τ)`. Requests that
/// opt in but cannot be served from a cache (shaped results, or a source
/// without a cache, like [`crate::Snapshot`]) record
/// [`CacheOutcome::Bypass`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// Never consult the cache (the default — matches the legacy `query`
    /// methods, which cached only through the explicit `query_cached`).
    #[default]
    Bypass,
    /// Serve from the cache when possible; store computed full results.
    Use,
}

/// How many worker threads a batch may use. The engine resolves one batch
/// to the strongest hint among its requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Single-threaded execution (the default).
    #[default]
    Serial,
    /// Use the machine's available parallelism.
    Auto,
    /// Use exactly this many workers (`0` behaves like
    /// [`Parallelism::Auto`]).
    Threads(usize),
}

impl Parallelism {
    /// The hint as a worker count (`Auto`/`Threads(0)` resolve to the
    /// available parallelism).
    pub(crate) fn resolve(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Auto | Parallelism::Threads(0) => {
                std::thread::available_parallelism().map_or(1, |n| n.get())
            }
            Parallelism::Threads(n) => n,
        }
    }
}

/// Per-request execution caps: the serving layer's tail-latency control.
///
/// A budget bounds *work*, not results: at most `max_candidates` scanned
/// posting entries, at most `max_verifications` edit-distance
/// computations (short-lane checks and segment-lane cascade entries
/// alike), and optionally a deadline against a pluggable [`TickSource`]
/// (so tests stay deterministic — see
/// [`ManualTicks`](passjoin::sink::ManualTicks)). When a cap trips,
/// probing aborts through the sink's saturation path and the outcome
/// reports [`Completion::Truncated`] with the reason. A tripped budget
/// always means work was actually skipped: a cap of `N` permits exactly
/// `N` units, and only the `N+1`th unit trips.
///
/// An empty budget (no caps, no deadline) is free — the engine skips the
/// budget adapter entirely.
///
/// ```
/// use passjoin_online::{ExecBudget, SearchRequest};
///
/// let req = SearchRequest::new(b"jim gray", 2)
///     .with_budget(ExecBudget::new().with_max_verifications(1_000));
/// assert_eq!(req.budget().unwrap().max_verifications(), Some(1_000));
/// ```
#[derive(Clone, Default)]
pub struct ExecBudget {
    max_verifications: Option<u64>,
    max_candidates: Option<u64>,
    deadline: Option<(Arc<dyn TickSource>, u64)>,
}

impl ExecBudget {
    /// An unlimited budget; attach caps with the `with_*` adapters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Permits at most `n` verifications (edit-distance computations).
    pub fn with_max_verifications(mut self, n: u64) -> Self {
        self.max_verifications = Some(n);
        self
    }

    /// Permits at most `n` scanned posting-list candidates.
    pub fn with_max_candidates(mut self, n: u64) -> Self {
        self.max_candidates = Some(n);
        self
    }

    /// Trips once `source.ticks() >= expires_at` (checked before each
    /// verification).
    pub fn with_deadline(mut self, source: Arc<dyn TickSource>, expires_at: u64) -> Self {
        self.deadline = Some((source, expires_at));
        self
    }

    /// The verification cap, if any.
    pub fn max_verifications(&self) -> Option<u64> {
        self.max_verifications
    }

    /// The candidate cap, if any.
    pub fn max_candidates(&self) -> Option<u64> {
        self.max_candidates
    }

    /// The deadline as `(tick source, expiry tick)`, if any.
    pub fn deadline(&self) -> Option<(&dyn TickSource, u64)> {
        self.deadline
            .as_ref()
            .map(|(source, at)| (source.as_ref(), *at))
    }

    /// True when no cap or deadline is attached (the engine then runs the
    /// request exactly as if it carried no budget).
    pub fn is_unlimited(&self) -> bool {
        self.max_verifications.is_none() && self.max_candidates.is_none() && self.deadline.is_none()
    }

    /// The intersection of this budget with a `ceiling`: per-cap minimum,
    /// earliest deadline. The result permits a unit of work only if both
    /// budgets would — how a server applies its own limits over whatever a
    /// client asked for (a client can tighten the server's ceiling, never
    /// widen it).
    ///
    /// ```
    /// use passjoin_online::ExecBudget;
    ///
    /// let client = ExecBudget::new().with_max_verifications(1_000_000);
    /// let ceiling = ExecBudget::new()
    ///     .with_max_verifications(10_000)
    ///     .with_max_candidates(50_000);
    /// let effective = client.clamped_by(&ceiling);
    /// assert_eq!(effective.max_verifications(), Some(10_000));
    /// assert_eq!(effective.max_candidates(), Some(50_000));
    /// ```
    pub fn clamped_by(&self, ceiling: &ExecBudget) -> ExecBudget {
        fn min_cap(a: Option<u64>, b: Option<u64>) -> Option<u64> {
            match (a, b) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (cap, None) | (None, cap) => cap,
            }
        }
        let deadline = match (&self.deadline, &ceiling.deadline) {
            // Both bounded: keep whichever expires first. Expiry ticks
            // are only comparable against their own source, so the
            // source travels with the winning expiry.
            (Some((a_src, a_at)), Some((b_src, b_at))) => {
                if a_at <= b_at {
                    Some((Arc::clone(a_src), *a_at))
                } else {
                    Some((Arc::clone(b_src), *b_at))
                }
            }
            (Some(d), None) | (None, Some(d)) => Some(d.clone()),
            (None, None) => None,
        };
        ExecBudget {
            max_verifications: min_cap(self.max_verifications, ceiling.max_verifications),
            max_candidates: min_cap(self.max_candidates, ceiling.max_candidates),
            deadline,
        }
    }
}

impl fmt::Debug for ExecBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecBudget")
            .field("max_verifications", &self.max_verifications)
            .field("max_candidates", &self.max_candidates)
            .field("deadline", &self.deadline.as_ref().map(|(_, at)| *at))
            .finish()
    }
}

impl PartialEq for ExecBudget {
    fn eq(&self, other: &Self) -> bool {
        self.max_verifications == other.max_verifications
            && self.max_candidates == other.max_candidates
            && match (&self.deadline, &other.deadline) {
                (None, None) => true,
                // Tick sources have no content identity; compare by
                // pointer, like `Arc::ptr_eq`.
                (Some((a, at_a)), Some((b, at_b))) => {
                    at_a == at_b && std::ptr::addr_eq(Arc::as_ptr(a), Arc::as_ptr(b))
                }
                _ => false,
            }
    }
}

impl Eq for ExecBudget {}

/// A *shared* execution budget drained by a whole request batch — the
/// batch-level counterpart of [`ExecBudget`].
///
/// Built from an `ExecBudget` spec ([`BatchBudget::new`]), it holds one
/// atomically drained [`BudgetPool`](passjoin::sink::BudgetPool); every
/// request carrying a clone of the handle
/// ([`SearchRequest::with_batch_budget`]) draws its work units from that
/// single pool, so the batch's *total* candidates/verifications stay
/// under the caps (and the deadline covers the batch) no matter how the
/// engine orders or parallelizes the requests. Draining is
/// first-come-first-served — early and fast requests consume more of the
/// pool than stragglers; the guarantee is the total, not a fair split.
///
/// Each request still reports its own [`Completion`]: a request denied a
/// unit by the exhausted pool reports [`Completion::Truncated`] with the
/// pool's reason, while batch-mates that finished before the pool ran
/// dry stay [`Completion::Complete`]. Composes with a per-request
/// [`ExecBudget`] — each unit of work must clear both. Cache hits don't
/// drain the pool (nothing is probed). Like per-request budgets, results
/// truncated by the pool are never cached.
///
/// ```
/// use passjoin_online::{BatchBudget, ExecBudget, OnlineIndex, Queryable, SearchRequest};
///
/// let mut index = OnlineIndex::new(2);
/// for s in [&b"vldb"[..], b"pvldb", b"sigmod"] {
///     index.insert(s);
/// }
/// let shared = BatchBudget::new(ExecBudget::new().with_max_verifications(1_000));
/// let batch = [
///     SearchRequest::new(b"vldb", 2).with_batch_budget(&shared),
///     SearchRequest::new(b"sigmod", 2).with_batch_budget(&shared),
/// ];
/// let response = index.search_batch(&batch);
/// assert!(response.outcomes.iter().all(|o| o.completion.is_complete()));
/// ```
#[derive(Debug, Clone)]
pub struct BatchBudget {
    pool: Arc<passjoin::sink::BudgetPool>,
}

impl BatchBudget {
    /// A shared pool holding `budget`'s caps and deadline. An unlimited
    /// `budget` yields a pool that never denies work.
    pub fn new(budget: ExecBudget) -> Self {
        let mut pool = passjoin::sink::BudgetPool::new();
        if let Some(n) = budget.max_verifications {
            pool = pool.with_max_verifications(n);
        }
        if let Some(n) = budget.max_candidates {
            pool = pool.with_max_candidates(n);
        }
        if let Some((source, at)) = budget.deadline {
            pool = pool.with_deadline(source, at);
        }
        Self {
            pool: Arc::new(pool),
        }
    }

    /// The shared pool (one per [`BatchBudget::new`] call; clones of the
    /// handle all point here).
    pub fn pool(&self) -> &Arc<passjoin::sink::BudgetPool> {
        &self.pool
    }
}

impl PartialEq for BatchBudget {
    fn eq(&self, other: &Self) -> bool {
        // A pool has no content identity — two handles are equal iff they
        // drain the same pool.
        Arc::ptr_eq(&self.pool, &other.pool)
    }
}

impl Eq for BatchBudget {}

/// Whether a [`QueryOutcome`] is an exact answer or was cut short.
///
/// Shape-driven early exits (a full top-k heap, a capped count reaching
/// its cap) are *part of the requested answer* and still count as
/// [`Completion::Complete`]; only a tripped [`ExecBudget`] reports
/// [`Completion::Truncated`]. Truncated results are never stored in the
/// query cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Completion {
    /// The scan ran to the end: the answer is exact for the requested
    /// shape.
    #[default]
    Complete,
    /// The execution budget tripped mid-scan: the answer is a subset of
    /// the exact one, and at least one unit of work was skipped.
    Truncated {
        /// Which budget cap stopped the scan.
        reason: TruncationReason,
    },
}

impl Completion {
    /// True for [`Completion::Complete`].
    pub fn is_complete(&self) -> bool {
        matches!(self, Completion::Complete)
    }
}

impl fmt::Display for Completion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Completion::Complete => f.write_str("complete"),
            Completion::Truncated { reason } => write!(f, "truncated ({reason})"),
        }
    }
}

/// One typed similarity query: the query bytes, its threshold, and the
/// retrieval/execution options. Build with [`SearchRequest::new`] (owned
/// bytes, `'static`) or [`SearchRequest::borrowed`] (zero-copy over a
/// caller-held query set) and the `with_*` adapters; execute with
/// [`crate::Queryable::search`] or [`crate::Queryable::search_batch`].
///
/// ```
/// use passjoin_online::{CachePolicy, Parallelism, SearchRequest};
///
/// let req = SearchRequest::new(b"jim gray", 2)
///     .with_limit(10) // the 10 closest matches only
///     .with_cache(CachePolicy::Use)
///     .with_parallelism(Parallelism::Auto);
/// assert_eq!(req.tau(), 2);
/// assert_eq!(req.limit(), Some(10));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchRequest<'a> {
    query: Cow<'a, [u8]>,
    tau: usize,
    limit: Option<usize>,
    count_only: bool,
    cache: CachePolicy,
    parallelism: Parallelism,
    budget: Option<ExecBudget>,
    batch_budget: Option<BatchBudget>,
}

impl<'a> SearchRequest<'a> {
    /// A plain request owning its query bytes: all matches within `tau`
    /// of `query`, ascending by id — exactly what the legacy `query`
    /// method returned. For batches built over an existing query set,
    /// [`SearchRequest::borrowed`]/[`SearchRequest::uniform`] avoid
    /// copying the bytes.
    pub fn new(query: impl Into<Vec<u8>>, tau: usize) -> Self {
        Self::of(Cow::Owned(query.into()), tau)
    }

    /// A plain request borrowing its query bytes (no copy); otherwise
    /// identical to [`SearchRequest::new`].
    pub fn borrowed(query: &'a [u8], tau: usize) -> Self {
        Self::of(Cow::Borrowed(query), tau)
    }

    fn of(query: Cow<'a, [u8]>, tau: usize) -> Self {
        Self {
            query,
            tau,
            limit: None,
            count_only: false,
            cache: CachePolicy::default(),
            parallelism: Parallelism::default(),
            budget: None,
            batch_budget: None,
        }
    }

    /// One plain request per query, all at the same `tau` — the uniform
    /// batch the legacy `query_batch` served. Borrows the query bytes.
    pub fn uniform<Q: AsRef<[u8]>>(queries: &'a [Q], tau: usize) -> Vec<Self> {
        queries
            .iter()
            .map(|q| Self::borrowed(q.as_ref(), tau))
            .collect()
    }

    /// Keep only the `k` matches smallest by `(distance, id)`, returned in
    /// that order. The engine runs these on a bounded heap whose worst
    /// retained distance tightens verification as it fills, so low limits
    /// on match-heavy queries do measurably less work (observable in
    /// [`ExecStats::verifications`]).
    pub fn with_limit(mut self, k: usize) -> Self {
        self.limit = Some(k);
        self
    }

    /// Report only the number of matches ([`QueryOutcome::count`]);
    /// [`QueryOutcome::matches`] stays empty and no result vector is
    /// materialized. Combined with [`with_limit`](Self::with_limit) this
    /// becomes an existence test — counting stops (and probing aborts) at
    /// the cap.
    pub fn count_only(mut self) -> Self {
        self.count_only = true;
        self
    }

    /// Sets the cache policy (see [`CachePolicy`]).
    pub fn with_cache(mut self, cache: CachePolicy) -> Self {
        self.cache = cache;
        self
    }

    /// Sets the batch parallelism hint (see [`Parallelism`]).
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Bounds this request's execution (see [`ExecBudget`]); the outcome's
    /// [`Completion`] reports whether the budget tripped. An unlimited
    /// budget is equivalent to none.
    pub fn with_budget(mut self, budget: ExecBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Draws this request's work allowance from a pool shared with every
    /// other request carrying the same [`BatchBudget`] handle (see
    /// [`BatchBudget`]). Composes with
    /// [`with_budget`](Self::with_budget): each unit of work must clear
    /// both the per-request budget and the shared pool.
    pub fn with_batch_budget(mut self, budget: &BatchBudget) -> Self {
        self.batch_budget = Some(budget.clone());
        self
    }

    /// The query bytes.
    pub fn query(&self) -> &[u8] {
        &self.query
    }

    /// The edit-distance threshold.
    pub fn tau(&self) -> usize {
        self.tau
    }

    /// The top-k limit, if any.
    pub fn limit(&self) -> Option<usize> {
        self.limit
    }

    /// True if only the match count is wanted.
    pub fn is_count_only(&self) -> bool {
        self.count_only
    }

    /// The cache policy.
    pub fn cache(&self) -> CachePolicy {
        self.cache
    }

    /// The parallelism hint.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// The execution budget, if any.
    pub fn budget(&self) -> Option<&ExecBudget> {
        self.budget.as_ref()
    }

    /// The shared batch budget, if any.
    pub fn batch_budget(&self) -> Option<&BatchBudget> {
        self.batch_budget.as_ref()
    }
}

/// How one request interacted with the query cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheOutcome {
    /// The cache was not consulted (policy, request shape, or a source
    /// without a cache).
    #[default]
    Bypass,
    /// Answered from the cache without probing — directly for plain
    /// requests, by sort-truncate/len derivation for shaped
    /// (`limit`/`count_only`) ones.
    Hit,
    /// Consulted, not found; the request was computed. Plain
    /// [`Completion::Complete`] results were then stored — shaped,
    /// truncated, or streamed ones never are.
    Miss,
}

/// Per-request execution counters, split by lane (see the index module
/// docs for the short/segment lane distinction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecStats {
    /// Posting-list entries scanned in the segment lane.
    pub candidates: u64,
    /// Segment-lane candidates that entered the verification cascade
    /// (survived dedup and the sink's length bound).
    pub verifications: u64,
    /// Short-lane strings checked by direct edit distance.
    pub short_checked: u64,
    /// Matches produced by the segment lane.
    pub segment_matches: u64,
    /// Matches produced by the short lane.
    pub short_matches: u64,
}

impl ExecStats {
    /// Accumulates another request's counters into this one.
    pub fn merge(&mut self, other: &ExecStats) {
        self.candidates += other.candidates;
        self.verifications += other.verifications;
        self.short_checked += other.short_checked;
        self.segment_matches += other.segment_matches;
        self.short_matches += other.short_matches;
    }
}

impl fmt::Display for ExecStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} candidates, {} verifications, {} short-lane checks",
            self.candidates, self.verifications, self.short_checked
        )
    }
}

/// The answer to one [`SearchRequest`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueryOutcome {
    /// The matches: ascending by id for plain requests, ascending by
    /// `(distance, id)` for limited (top-k) requests, empty for
    /// count-only requests.
    ///
    /// Shared, not copied: a cache hit hands out the cached vector
    /// itself (zero-copy, like the legacy `query_cached`), and an
    /// uncached result is the engine's buffer wrapped once. Use
    /// [`QueryOutcome::into_matches`] to take ownership — free unless
    /// the result is also retained by the cache.
    pub matches: Arc<Vec<Match>>,
    /// Matches found: `matches.len()` for materializing requests; for
    /// count-only requests the total count (capped at the limit, if any).
    pub count: usize,
    /// How the request interacted with the cache.
    pub cache: CacheOutcome,
    /// Whether the answer is exact or was truncated by the request's
    /// [`ExecBudget`].
    pub completion: Completion,
    /// Execution counters (all zero for a cache hit — nothing was probed).
    pub stats: ExecStats,
}

impl QueryOutcome {
    /// The matches as an owned vector: unwraps the shared result when
    /// this outcome is its only holder, clones otherwise (cache hits).
    pub fn into_matches(self) -> Vec<Match> {
        Arc::try_unwrap(self.matches).unwrap_or_else(|shared| (*shared).clone())
    }
}

/// The position-aligned answers to a [`crate::Queryable::search_batch`]
/// call.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SearchResponse {
    /// One outcome per request, in request order.
    pub outcomes: Vec<QueryOutcome>,
}

impl SearchResponse {
    /// Strips the outcomes down to their match vectors (request order) —
    /// the legacy `query_batch` return shape.
    pub fn into_matches(self) -> Vec<Vec<Match>> {
        self.outcomes
            .into_iter()
            .map(QueryOutcome::into_matches)
            .collect()
    }

    /// Batch-wide totals (counts summed, cache outcomes tallied).
    pub fn totals(&self) -> BatchTotals {
        let mut totals = BatchTotals::default();
        for outcome in &self.outcomes {
            totals.matches += outcome.count;
            totals.stats.merge(&outcome.stats);
            match outcome.cache {
                CacheOutcome::Hit => totals.cache_hits += 1,
                CacheOutcome::Miss => totals.cache_misses += 1,
                CacheOutcome::Bypass => totals.cache_bypasses += 1,
            }
            if !outcome.completion.is_complete() {
                totals.truncated += 1;
            }
        }
        totals
    }
}

/// Aggregated view of a [`SearchResponse`] (see
/// [`SearchResponse::totals`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchTotals {
    /// Sum of [`QueryOutcome::count`] over the batch.
    pub matches: usize,
    /// Merged execution counters.
    pub stats: ExecStats,
    /// Requests answered from the cache.
    pub cache_hits: usize,
    /// Requests that consulted the cache and computed.
    pub cache_misses: usize,
    /// Requests that never consulted the cache.
    pub cache_bypasses: usize,
    /// Requests whose execution budget tripped
    /// ([`Completion::Truncated`]).
    pub truncated: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trips_every_field() {
        let req = SearchRequest::new(b"abc".as_slice(), 3)
            .with_limit(7)
            .count_only()
            .with_cache(CachePolicy::Use)
            .with_parallelism(Parallelism::Threads(4))
            .with_budget(ExecBudget::new().with_max_verifications(9));
        assert_eq!(req.query(), b"abc");
        assert_eq!(req.tau(), 3);
        assert_eq!(req.limit(), Some(7));
        assert!(req.is_count_only());
        assert_eq!(req.cache(), CachePolicy::Use);
        assert_eq!(req.parallelism(), Parallelism::Threads(4));
        assert_eq!(req.budget().unwrap().max_verifications(), Some(9));
    }

    #[test]
    fn budget_defaults_and_equality() {
        use passjoin::sink::ManualTicks;

        let unlimited = ExecBudget::new();
        assert!(unlimited.is_unlimited());
        assert_eq!(unlimited, ExecBudget::default());

        let capped = ExecBudget::new()
            .with_max_verifications(5)
            .with_max_candidates(100);
        assert!(!capped.is_unlimited());
        assert_eq!(capped.max_candidates(), Some(100));
        assert_ne!(capped, unlimited);

        // Deadlines compare by tick-source identity plus expiry.
        let clock: Arc<dyn TickSource> = Arc::new(ManualTicks::new());
        let a = ExecBudget::new().with_deadline(Arc::clone(&clock), 10);
        let b = ExecBudget::new().with_deadline(Arc::clone(&clock), 10);
        let c = ExecBudget::new().with_deadline(Arc::clone(&clock), 11);
        let other: Arc<dyn TickSource> = Arc::new(ManualTicks::new());
        let d = ExecBudget::new().with_deadline(other, 10);
        assert!(!a.is_unlimited());
        assert_eq!(a.deadline().unwrap().1, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        // Debug elides the source but shows the expiry.
        assert!(format!("{a:?}").contains("10"));
    }

    #[test]
    fn clamped_by_takes_the_minimum_of_caps() {
        let client = ExecBudget::new()
            .with_max_verifications(1_000)
            .with_max_candidates(10);
        let ceiling = ExecBudget::new()
            .with_max_verifications(100)
            .with_max_candidates(50_000);
        let effective = client.clamped_by(&ceiling);
        assert_eq!(effective.max_verifications(), Some(100));
        assert_eq!(effective.max_candidates(), Some(10));

        // A missing cap on either side defers to the other side's.
        let open = ExecBudget::new();
        assert_eq!(open.clamped_by(&ceiling).max_verifications(), Some(100));
        assert_eq!(ceiling.clamped_by(&open).max_verifications(), Some(100));
        assert!(open.clamped_by(&open).is_unlimited());
    }

    #[test]
    fn clamped_by_keeps_the_earliest_deadline() {
        use passjoin::sink::ManualTicks;

        let clock: Arc<dyn TickSource> = Arc::new(ManualTicks::new());
        let early = ExecBudget::new().with_deadline(Arc::clone(&clock), 10);
        let late = ExecBudget::new().with_deadline(Arc::clone(&clock), 99);
        assert_eq!(early.clamped_by(&late).deadline().unwrap().1, 10);
        assert_eq!(late.clamped_by(&early).deadline().unwrap().1, 10);
        let none = ExecBudget::new();
        assert_eq!(none.clamped_by(&late).deadline().unwrap().1, 99);
        assert_eq!(late.clamped_by(&none).deadline().unwrap().1, 99);
    }

    #[test]
    fn batch_budget_handles_share_one_pool() {
        let shared = BatchBudget::new(ExecBudget::new().with_max_verifications(3));
        let clone = shared.clone();
        assert_eq!(shared, clone, "clones drain the same pool");
        assert_ne!(
            shared,
            BatchBudget::new(ExecBudget::new().with_max_verifications(3)),
            "equal specs, distinct pools"
        );
        // Draining through one handle is visible through the other.
        assert!(clone.pool().take_verification().is_ok());
        assert_eq!(shared.pool().verifications_left(), Some(2));
        // Requests carry the handle.
        let req = SearchRequest::new(b"q".as_slice(), 1).with_batch_budget(&shared);
        assert_eq!(req.batch_budget(), Some(&shared));
        let req2 = req.clone();
        assert_eq!(req, req2);
    }

    #[test]
    fn batch_budget_from_unlimited_spec_never_denies() {
        let open = BatchBudget::new(ExecBudget::new());
        assert!(open.pool().is_unlimited());
        assert!(open.pool().take_verification().is_ok());
        assert!(open.pool().take_candidate().is_ok());
    }

    #[test]
    fn completion_reports_and_displays() {
        use passjoin::sink::TruncationReason;

        assert!(Completion::Complete.is_complete());
        assert_eq!(Completion::Complete.to_string(), "complete");
        let truncated = Completion::Truncated {
            reason: TruncationReason::VerificationCap,
        };
        assert!(!truncated.is_complete());
        assert_eq!(truncated.to_string(), "truncated (verification cap)");
    }

    #[test]
    fn defaults_match_the_legacy_query_shape() {
        let req = SearchRequest::new(b"q".as_slice(), 1);
        assert_eq!(req.limit(), None);
        assert!(!req.is_count_only());
        assert_eq!(req.cache(), CachePolicy::Bypass);
        assert_eq!(req.parallelism(), Parallelism::Serial);
    }

    #[test]
    fn uniform_builds_one_request_per_query() {
        let queries = [b"a".as_slice(), b"bc"];
        let reqs = SearchRequest::uniform(&queries, 2);
        assert_eq!(reqs.len(), 2);
        assert!(reqs.iter().all(|r| r.tau() == 2));
        assert_eq!(reqs[1].query(), b"bc");
    }

    #[test]
    fn parallelism_resolves_to_worker_counts() {
        assert_eq!(Parallelism::Serial.resolve(), 1);
        assert_eq!(Parallelism::Threads(3).resolve(), 3);
        assert!(Parallelism::Auto.resolve() >= 1);
        assert_eq!(
            Parallelism::Threads(0).resolve(),
            Parallelism::Auto.resolve()
        );
    }

    #[test]
    fn totals_tally_outcomes() {
        let response = SearchResponse {
            outcomes: vec![
                QueryOutcome {
                    matches: Arc::new(vec![(1, 0)]),
                    count: 1,
                    cache: CacheOutcome::Miss,
                    completion: Completion::Truncated {
                        reason: passjoin::sink::TruncationReason::Deadline,
                    },
                    stats: ExecStats {
                        candidates: 5,
                        verifications: 2,
                        ..ExecStats::default()
                    },
                },
                QueryOutcome {
                    matches: Arc::new(vec![(1, 0)]),
                    count: 1,
                    cache: CacheOutcome::Hit,
                    completion: Completion::Complete,
                    stats: ExecStats::default(),
                },
            ],
        };
        let totals = response.totals();
        assert_eq!(totals.matches, 2);
        assert_eq!(totals.stats.candidates, 5);
        assert_eq!((totals.cache_hits, totals.cache_misses), (1, 1));
        assert_eq!(totals.truncated, 1);
        assert_eq!(response.into_matches(), vec![vec![(1, 0)], vec![(1, 0)]]);
    }
}
