//! Sharded query routing: one [`Queryable`] over N partitioned shards.
//!
//! A [`ShardedIndex`] holds N shards — each an [`OnlineIndex`] (or any
//! boxed [`Queryable`]) over a disjoint slice of the corpus — and is
//! itself a [`Queryable`], so the CLI, the network server, and the
//! cache/observability layers work against it unchanged. Partitioning is
//! by **length band** (the default — PASS-JOIN's per-length inverted maps
//! make contiguous length ranges natural partition boundaries, and a
//! query with threshold τ only touches shards whose band intersects
//! `[|q|−τ, |q|+τ]`) or by **hash** (uniform spread, every query fans out
//! to all shards).
//!
//! Execution fans out on scoped threads — one per shard with work — and
//! merges per-request [`QueryOutcome`]s so results are **byte-identical**
//! to a single index over the same corpus:
//!
//! * **plain** — shard matches are remapped to global ids, concatenated,
//!   and sorted ascending by id (each shard's id map is monotonic, so the
//!   per-shard order survives remapping);
//! * **top-k** — every shard returns its own k best; the router re-offers
//!   them into one [`passjoin::TopK`] keyed `(distance, id)` (a global
//!   top-k element is necessarily in its shard's top-k, so the union of
//!   shard heaps is a superset of the answer);
//! * **count-only** — counts are summed, clamped by the request's cap;
//! * [`ExecStats`] are summed, [`Completion`] is truncated if any shard
//!   truncated, and a per-request [`ExecBudget`](crate::ExecBudget)'s caps are split across
//!   the targeted shards (deadlines apply to each shard as-is) while a
//!   batch-level [`BatchBudget`](crate::BatchBudget) pool is shared
//!   atomically exactly as in the single-index engine.
//!
//! [`Queryable::search_streaming`] forwards every shard's pushes through
//! one bounded [`pull_channel`](passjoin::sink::pull_channel): shard
//! scans run on their own threads and push into the channel, the calling
//! thread drains it into the caller's sink, and the caller sink's
//! steering (a tightening `bound`, saturation) is mirrored back to every
//! shard through shared atomics — a saturated caller hangs up the
//! channel, which aborts all in-flight shard scans.
//!
//! Routing edge cases degrade to empty answers, never panics or hangs: a
//! router with zero shards, an empty shard, or a length band containing
//! no strings all produce [`Completion::Complete`] empty outcomes.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use passjoin::sink::{pull_channel, MatchSink, PullSender};
use passjoin::TopK;
use passjoin_obs::{Counter, Gauge, Registry};
use passjoin_persist::{Cursor, PersistError, SnapshotFile, SnapshotWriter};
use sj_common::StringId;

use crate::exec::{ExecSource, Queryable};
use crate::index::KeyBackend;
use crate::obs::EngineObs;
use crate::request::{
    CacheOutcome, Completion, ExecStats, QueryOutcome, SearchRequest, SearchResponse,
};
use crate::{Match, OnlineIndex};

/// How the router assigns strings to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardBy {
    /// Contiguous length bands, balanced by string count at build time
    /// (the default). Aligned with the per-length inverted maps: a query
    /// with threshold τ is routed only to shards whose band intersects
    /// `[|q|−τ, |q|+τ]`.
    #[default]
    Len,
    /// FNV-1a over the string bytes, modulo the shard count. Uniform
    /// spread regardless of the length distribution; every query fans
    /// out to all shards.
    Hash,
}

impl ShardBy {
    /// The CLI/manifest name of this policy.
    pub fn name(&self) -> &'static str {
        match self {
            ShardBy::Len => "len",
            ShardBy::Hash => "hash",
        }
    }

    /// Parses a CLI/manifest name (`"len"` or `"hash"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "len" => Some(ShardBy::Len),
            "hash" => Some(ShardBy::Hash),
            _ => None,
        }
    }
}

/// Matches queued between a shard's scan thread and the drain loop in
/// [`Queryable::search_streaming`]; bounds memory when shards outpace the
/// caller's sink.
const STREAM_QUEUE: usize = 1024;

/// One shard: its query source, the local→global id map, and (for
/// [`ShardBy::Len`]) the inclusive length band it owns.
struct Shard {
    source: ShardSource,
    /// Local id → global id; strictly increasing (strings are inserted in
    /// global id order), so remapping preserves ascending-id order.
    ids: Vec<StringId>,
    /// Inclusive length range this shard owns (`(0, usize::MAX)` under
    /// hash partitioning).
    band: (usize, usize),
}

/// Shards built by the router are concrete [`OnlineIndex`]es (mutable,
/// persistable); [`ShardedIndex::from_dyn_shards`] accepts arbitrary
/// boxed [`Queryable`]s (e.g. [`Snapshot`](crate::Snapshot)s) instead.
enum ShardSource {
    Index(OnlineIndex),
    Dyn(Box<dyn Queryable + Send + Sync>),
}

impl ShardSource {
    fn queryable(&self) -> &(dyn Queryable + Sync) {
        match self {
            ShardSource::Index(index) => index,
            ShardSource::Dyn(boxed) => &**boxed,
        }
    }
}

/// Router-level metrics (`passjoin_router_*`), registered alongside the
/// shards' shared engine metrics so one scrape shows both the rollup and
/// the per-shard split.
struct RouterObs {
    registry: Arc<Registry>,
    /// Requests the router itself received (`passjoin_router_requests_total`).
    requests: Counter,
    /// Shard sub-requests dispatched (`passjoin_router_fanout_total`).
    /// With every routed sub-request executing on its shard, this equals
    /// the engine's `passjoin_requests_total`.
    fanout: Counter,
    /// Requests whose routing matched no shard
    /// (`passjoin_router_empty_fanout_total`).
    empty: Counter,
    /// `passjoin_router_shards` gauge.
    shards: Gauge,
    /// Per-shard dispatch counters
    /// (`passjoin_router_shard{i}_requests_total`).
    shard_requests: Vec<Counter>,
}

impl RouterObs {
    fn new(registry: Arc<Registry>, shard_count: usize) -> Self {
        let shard_requests = (0..shard_count)
            .map(|i| registry.counter(&format!("passjoin_router_shard{i}_requests_total")))
            .collect();
        let obs = Self {
            requests: registry.counter("passjoin_router_requests_total"),
            fanout: registry.counter("passjoin_router_fanout_total"),
            empty: registry.counter("passjoin_router_empty_fanout_total"),
            shards: registry.gauge("passjoin_router_shards"),
            shard_requests,
            registry,
        };
        obs.shards.set(shard_count as i64);
        obs
    }

    fn record_dispatch(&self, targets: &[usize]) {
        self.requests.inc(1);
        self.fanout.inc(targets.len() as u64);
        if targets.is_empty() {
            self.empty.inc(1);
        }
        for &s in targets {
            self.shard_requests[s].inc(1);
        }
    }
}

/// Builder for a [`ShardedIndex`]; see [`ShardedIndex::builder`].
pub struct ShardedIndexBuilder {
    tau_max: usize,
    shards: usize,
    shard_by: ShardBy,
    backend: KeyBackend,
    cache_capacity: Option<usize>,
    registry: Option<Arc<Registry>>,
}

impl ShardedIndexBuilder {
    fn new(tau_max: usize) -> Self {
        Self {
            tau_max,
            shards: 1,
            shard_by: ShardBy::default(),
            backend: KeyBackend::default(),
            cache_capacity: None,
            registry: None,
        }
    }

    /// The number of shards (default 1). Zero is permitted — the router
    /// then holds no strings and answers every query with an empty
    /// [`Completion::Complete`] outcome.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// The partitioning policy (default [`ShardBy::Len`]).
    pub fn shard_by(mut self, shard_by: ShardBy) -> Self {
        self.shard_by = shard_by;
        self
    }

    /// The segment-key backend every shard is built with.
    pub fn key_backend(mut self, backend: KeyBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Per-shard query-cache capacity (each shard keeps its own cache).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = Some(capacity);
        self
    }

    /// Attaches observability: each shard gets an [`EngineObs`] built on
    /// this shared registry — same-named engine counters land in the same
    /// registry slots, so `passjoin_requests_total` etc. aggregate across
    /// shards automatically — and the router registers its
    /// `passjoin_router_*` rollup beside them.
    pub fn observability(mut self, registry: Arc<Registry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Builds an empty router. Length bands default to uniform 16-wide
    /// ranges (the last unbounded); [`ShardedIndexBuilder::build_from`]
    /// instead balances bands against the corpus length distribution.
    pub fn build(self) -> ShardedIndex {
        let bands = uniform_bands(self.shards);
        self.assemble(bands)
    }

    /// Builds a router over an initial corpus: global ids are assigned in
    /// iteration order (exactly like
    /// [`OnlineIndex::from_strings`]), and — under [`ShardBy::Len`] — the
    /// length bands are cut so shards hold roughly equal string counts.
    pub fn build_from<I, S>(self, strings: I) -> ShardedIndex
    where
        I: IntoIterator<Item = S>,
        S: AsRef<[u8]>,
    {
        let strings: Vec<S> = strings.into_iter().collect();
        let bands = match self.shard_by {
            ShardBy::Hash => uniform_bands(self.shards),
            ShardBy::Len => {
                let mut histogram: BTreeMap<usize, usize> = BTreeMap::new();
                for s in &strings {
                    *histogram.entry(s.as_ref().len()).or_insert(0) += 1;
                }
                balanced_bands(&histogram, strings.len(), self.shards)
            }
        };
        let mut router = self.assemble(bands);
        for s in &strings {
            router.insert(s.as_ref());
        }
        router
    }

    fn assemble(self, bands: Vec<(usize, usize)>) -> ShardedIndex {
        debug_assert_eq!(bands.len(), self.shards);
        let shards = bands
            .into_iter()
            .map(|band| {
                let mut builder = OnlineIndex::builder(self.tau_max).key_backend(self.backend);
                if let Some(capacity) = self.cache_capacity {
                    builder = builder.cache_capacity(capacity);
                }
                if let Some(registry) = &self.registry {
                    builder = builder
                        .observability(Arc::new(EngineObs::with_registry(Arc::clone(registry))));
                }
                Shard {
                    source: ShardSource::Index(builder.build()),
                    ids: Vec::new(),
                    band,
                }
            })
            .collect::<Vec<_>>();
        let obs = self
            .registry
            .map(|registry| RouterObs::new(registry, shards.len()));
        ShardedIndex {
            shards,
            shard_by: self.shard_by,
            tau_max: self.tau_max,
            backend: self.backend,
            epoch: 0,
            next_id: 0,
            obs,
        }
    }
}

/// N partitioned shards behind one [`Queryable`]; see the module docs for
/// the routing and merge semantics.
///
/// ```
/// use passjoin_online::{Queryable, SearchRequest, ShardedIndex};
///
/// let router = ShardedIndex::builder(1)
///     .shards(2)
///     .build_from(["vldb", "pvldb", "sigmod record"]);
/// assert_eq!(router.shard_count(), 2);
///
/// // Same surface, same answers as a single OnlineIndex.
/// let outcome = router.search(&SearchRequest::new(b"vldb", 1));
/// assert_eq!(*outcome.matches, vec![(0, 0), (1, 1)]);
/// ```
pub struct ShardedIndex {
    shards: Vec<Shard>,
    shard_by: ShardBy,
    tau_max: usize,
    backend: KeyBackend,
    epoch: u64,
    next_id: u32,
    obs: Option<RouterObs>,
}

impl ShardedIndex {
    /// A builder for a router with `tau_max` as every shard's threshold
    /// ceiling.
    pub fn builder(tau_max: usize) -> ShardedIndexBuilder {
        ShardedIndexBuilder::new(tau_max)
    }

    /// A length-banded router over an initial corpus — shorthand for
    /// `builder(tau_max).shards(shards).build_from(strings)`.
    pub fn from_strings<I, S>(strings: I, tau_max: usize, shards: usize) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<[u8]>,
    {
        Self::builder(tau_max).shards(shards).build_from(strings)
    }

    /// A router over caller-built shards: each entry is any boxed
    /// [`Queryable`] (a [`Snapshot`](crate::Snapshot), another router, …)
    /// plus its local→global id map (`ids[local] = global`; every map
    /// must be strictly increasing and the maps' global ids disjoint).
    /// Routing fans every query to all shards (no band information), and
    /// such a router cannot be mutated or persisted.
    ///
    /// # Panics
    ///
    /// Panics if `shards` and `id_maps` differ in length, if a shard's
    /// τ_max differs from `tau_max`, or if an id map is not strictly
    /// increasing.
    pub fn from_dyn_shards(
        shards: Vec<Box<dyn Queryable + Send + Sync>>,
        id_maps: Vec<Vec<StringId>>,
        tau_max: usize,
    ) -> Self {
        assert_eq!(
            shards.len(),
            id_maps.len(),
            "one id map per shard is required"
        );
        let mut next_id = 0u32;
        let backend = shards.first().map(|s| s.key_backend()).unwrap_or_default();
        let shards = shards
            .into_iter()
            .zip(id_maps)
            .map(|(source, ids)| {
                assert_eq!(
                    source.tau_max(),
                    tau_max,
                    "every shard must share the router's τ_max"
                );
                assert!(
                    ids.windows(2).all(|w| w[0] < w[1]),
                    "shard id maps must be strictly increasing"
                );
                if let Some(&last) = ids.last() {
                    next_id = next_id.max(last + 1);
                }
                Shard {
                    source: ShardSource::Dyn(source),
                    ids,
                    band: (0, usize::MAX),
                }
            })
            .collect();
        Self {
            shards,
            shard_by: ShardBy::Hash,
            tau_max,
            backend,
            epoch: 0,
            next_id,
            obs: None,
        }
    }

    /// The number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The partitioning policy.
    pub fn shard_by(&self) -> ShardBy {
        self.shard_by
    }

    /// Live strings in shard `i`.
    pub fn shard_len(&self, i: usize) -> usize {
        self.shards[i].source.queryable().len()
    }

    /// The inclusive length band shard `i` owns (meaningful under
    /// [`ShardBy::Len`]; `(0, usize::MAX)` otherwise).
    pub fn shard_band(&self, i: usize) -> (usize, usize) {
        self.shards[i].band
    }

    /// Attaches (or detaches) observability after construction — e.g. on
    /// a router restored by [`ShardedIndex::load_sharded`]. Same wiring
    /// as [`ShardedIndexBuilder::observability`]. Dyn shards (from
    /// [`ShardedIndex::from_dyn_shards`]) keep whatever instrumentation
    /// they already carry.
    pub fn set_observability(&mut self, registry: Option<Arc<Registry>>) {
        for shard in &mut self.shards {
            if let ShardSource::Index(index) = &mut shard.source {
                index.set_observability(
                    registry
                        .as_ref()
                        .map(|r| Arc::new(EngineObs::with_registry(Arc::clone(r)))),
                );
            }
        }
        self.obs = registry.map(|r| RouterObs::new(r, self.shards.len()));
    }

    /// The shared metrics registry, when observability is attached.
    pub fn registry(&self) -> Option<&Arc<Registry>> {
        self.obs.as_ref().map(|o| &o.registry)
    }

    /// Inserts a string: a fresh global id is assigned (dense, ascending,
    /// never reused) and the string lands in the shard its length band
    /// (or hash) selects.
    ///
    /// # Panics
    ///
    /// Panics on a zero-shard router or a router built from dyn shards
    /// (those are read-only composites).
    pub fn insert(&mut self, s: &[u8]) -> StringId {
        assert!(
            !self.shards.is_empty(),
            "cannot insert into a router with zero shards"
        );
        let shard_idx = match self.shard_by {
            ShardBy::Len => self.band_of(s.len()),
            ShardBy::Hash => (fnv1a(s) % self.shards.len() as u64) as usize,
        };
        let global = self.next_id;
        let shard = &mut self.shards[shard_idx];
        match &mut shard.source {
            ShardSource::Index(index) => {
                let local = index.insert(s);
                debug_assert_eq!(local as usize, shard.ids.len());
            }
            ShardSource::Dyn(_) => panic!("cannot insert into a router built from dyn shards"),
        }
        shard.ids.push(global);
        self.next_id += 1;
        self.epoch += 1;
        global
    }

    /// Removes a string by global id; returns whether it was live. The id
    /// is never reused.
    ///
    /// # Panics
    ///
    /// Panics on a router built from dyn shards.
    pub fn remove(&mut self, id: StringId) -> bool {
        for shard in &mut self.shards {
            if let Ok(local) = shard.ids.binary_search(&id) {
                let removed = match &mut shard.source {
                    ShardSource::Index(index) => index.remove(local as u32),
                    ShardSource::Dyn(_) => {
                        panic!("cannot remove from a router built from dyn shards")
                    }
                };
                if removed {
                    self.epoch += 1;
                }
                return removed;
            }
        }
        false
    }

    /// The shard index whose band contains `len` (bands are contiguous
    /// and cover the whole length axis).
    fn band_of(&self, len: usize) -> usize {
        self.shards
            .iter()
            .position(|s| s.band.0 <= len && len <= s.band.1)
            .expect("length bands cover the whole length axis")
    }

    /// The shards a query of length `len` at threshold `tau` must visit.
    fn targets(&self, len: usize, tau: usize) -> Vec<usize> {
        match self.shard_by {
            ShardBy::Hash => (0..self.shards.len()).collect(),
            ShardBy::Len => {
                let lo = len.saturating_sub(tau);
                let hi = len.saturating_add(tau);
                self.shards
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.band.0 <= hi && s.band.1 >= lo)
                    .map(|(i, _)| i)
                    .collect()
            }
        }
    }

    /// Mirrors the single-index engine's τ ceiling check, so a
    /// too-large τ fails identically whether or not any shard would have
    /// been probed.
    fn check_tau(&self, tau: usize) {
        assert!(
            tau <= self.tau_max,
            "query τ = {tau} exceeds the index's τ_max = {max}",
            max = self.tau_max
        );
    }

    /// The batch fan-out core behind [`Queryable::search`] and
    /// [`Queryable::search_batch`].
    fn fan_out(&self, reqs: &[SearchRequest]) -> Vec<QueryOutcome> {
        for req in reqs {
            self.check_tau(req.tau());
        }
        let mut outcomes: Vec<QueryOutcome> = vec![QueryOutcome::default(); reqs.len()];
        if reqs.is_empty() {
            return outcomes;
        }
        // Split each request across its target shards (budgets divided,
        // everything else cloned), building one sub-batch per shard.
        let mut per_shard: Vec<Vec<(u32, SearchRequest<'_>)>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        let mut parts: Vec<Vec<QueryOutcome>> = vec![Vec::new(); reqs.len()];
        for (ri, req) in reqs.iter().enumerate() {
            let targets = self.targets(req.query().len(), req.tau());
            if let Some(obs) = &self.obs {
                obs.record_dispatch(&targets);
            }
            parts[ri].reserve_exact(targets.len());
            for (ti, &s) in targets.iter().enumerate() {
                per_shard[s].push((ri as u32, split_request(req, targets.len(), ti)));
            }
        }

        let shard_results = self.execute(&per_shard);
        // Shard results arrive grouped by shard; regroup by request in
        // shard order (so e.g. the first truncated shard wins ties
        // deterministically), then merge.
        for (s, results) in shard_results.into_iter().enumerate() {
            let shard = &self.shards[s];
            for (ri, mut outcome) in results {
                remap_outcome(&shard.ids, &mut outcome);
                parts[ri as usize].push(outcome);
            }
        }
        for (ri, req_parts) in parts.into_iter().enumerate() {
            outcomes[ri] = merge_outcomes(&reqs[ri], req_parts);
        }
        outcomes
    }

    /// Runs the per-shard sub-batches: inline when at most one shard has
    /// work, on one scoped thread per busy shard otherwise.
    fn execute<'r>(
        &self,
        per_shard: &[Vec<(u32, SearchRequest<'r>)>],
    ) -> Vec<Vec<(u32, QueryOutcome)>> {
        let busy = per_shard.iter().filter(|subs| !subs.is_empty()).count();
        if busy <= 1 {
            return per_shard
                .iter()
                .enumerate()
                .map(|(s, subs)| self.run_shard(s, subs))
                .collect();
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = per_shard
                .iter()
                .enumerate()
                .map(|(s, subs)| scope.spawn(move || self.run_shard(s, subs)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        })
    }

    fn run_shard(&self, s: usize, subs: &[(u32, SearchRequest<'_>)]) -> Vec<(u32, QueryOutcome)> {
        if subs.is_empty() {
            return Vec::new();
        }
        let sub_reqs: Vec<SearchRequest<'_>> = subs.iter().map(|(_, r)| r.clone()).collect();
        let response = self.shards[s].source.queryable().search_batch(&sub_reqs);
        subs.iter()
            .map(|&(ri, _)| ri)
            .zip(response.outcomes)
            .collect()
    }

    /// Multi-shard plain streaming: shard scans push into one bounded
    /// channel, the calling thread drains it into the caller's sink, and
    /// the sink's steering is mirrored to every shard through shared
    /// atomics.
    fn stream_fan_out(
        &self,
        req: &SearchRequest,
        sink: &mut dyn MatchSink,
        targets: &[usize],
    ) -> QueryOutcome {
        let tau = req.tau();
        let shared_bound = AtomicUsize::new(sink.bound(tau));
        let stop = AtomicBool::new(sink.saturated());
        let (tx, rx) = pull_channel::<Match>(STREAM_QUEUE);
        let tx = Arc::new(tx);
        let mut emitted = 0usize;
        let parts: Vec<QueryOutcome> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(targets.len());
            for (ti, &s) in targets.iter().enumerate() {
                let tx = Arc::clone(&tx);
                let shard = &self.shards[s];
                let sub = split_request(req, targets.len(), ti);
                let shared_bound = &shared_bound;
                let stop = &stop;
                handles.push(scope.spawn(move || {
                    let mut shard_sink = ShardStreamSink {
                        tx,
                        ids: &shard.ids,
                        shared_bound,
                        stop,
                        disconnected: false,
                    };
                    shard
                        .source
                        .queryable()
                        .search_streaming(&sub, &mut shard_sink)
                }));
            }
            // Only shard threads may now hold senders, so the drain loop
            // terminates when the last shard finishes.
            drop(tx);
            while let Some((id, dist)) = rx.recv() {
                sink.push(id, dist);
                emitted += 1;
                shared_bound.store(sink.bound(tau), Ordering::Relaxed);
                if sink.saturated() {
                    stop.store(true, Ordering::Relaxed);
                    break;
                }
            }
            // Hanging up makes any still-queued sends fail fast, which
            // saturates the shard sinks and aborts their scans.
            drop(rx);
            handles
                .into_iter()
                .map(|h| h.join().expect("shard stream worker panicked"))
                .collect()
        });
        let mut merged = merge_outcomes(req, parts);
        merged.matches = Arc::default();
        merged.count = emitted;
        merged
    }
}

impl Queryable for ShardedIndex {
    fn exec_source(&self) -> Option<ExecSource<'_>> {
        // Composite: there is no single inner state; every provided
        // method is overridden below.
        None
    }

    fn search(&self, req: &SearchRequest) -> QueryOutcome {
        self.fan_out(std::slice::from_ref(req))
            .pop()
            .expect("one outcome per request")
    }

    fn search_batch(&self, reqs: &[SearchRequest]) -> SearchResponse {
        SearchResponse {
            outcomes: self.fan_out(reqs),
        }
    }

    fn search_streaming(&self, req: &SearchRequest, sink: &mut dyn MatchSink) -> QueryOutcome {
        self.check_tau(req.tau());
        // Buffered shapes keep the single-index streaming semantics:
        // count-only emits nothing; top-k retention is global, so the
        // merged heap is flushed in (distance, id) order.
        if req.is_count_only() {
            return self.search(req);
        }
        if req.limit().is_some() {
            let outcome = self.search(req);
            let emitted = crate::exec::replay(&outcome.matches, sink);
            return QueryOutcome {
                count: emitted,
                matches: Arc::default(),
                ..outcome
            };
        }
        let targets = self.targets(req.query().len(), req.tau());
        if let Some(obs) = &self.obs {
            obs.record_dispatch(&targets);
        }
        match targets.len() {
            0 => QueryOutcome::default(),
            1 => {
                // One target: stream straight through an id-remapping
                // adapter — full steering fidelity, no channel.
                let shard = &self.shards[targets[0]];
                let mut remap = RemapSink {
                    ids: &shard.ids,
                    inner: sink,
                };
                shard.source.queryable().search_streaming(req, &mut remap)
            }
            _ => self.stream_fan_out(req, sink, &targets),
        }
    }

    fn search_batch_streaming(
        &self,
        reqs: &[SearchRequest],
        sinks: &mut [&mut (dyn MatchSink + Send)],
    ) -> SearchResponse {
        assert_eq!(
            reqs.len(),
            sinks.len(),
            "search_batch_streaming needs exactly one sink per request"
        );
        // Requests run in order; each one still fans out across shards.
        let outcomes = reqs
            .iter()
            .zip(sinks.iter_mut())
            .map(|(req, sink)| self.search_streaming(req, &mut **sink))
            .collect();
        SearchResponse { outcomes }
    }

    fn matches(&self, query: &[u8], tau: usize) -> Vec<Match> {
        self.search(&SearchRequest::borrowed(query, tau))
            .into_matches()
    }

    fn tau_max(&self) -> usize {
        self.tau_max
    }

    fn key_backend(&self) -> KeyBackend {
        self.backend
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.source.queryable().len()).sum()
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// Forwards a shard's pushes to the caller's sink with local ids mapped
/// to global, passing all steering through unchanged.
struct RemapSink<'a> {
    ids: &'a [StringId],
    inner: &'a mut dyn MatchSink,
}

impl MatchSink for RemapSink<'_> {
    fn push(&mut self, id: StringId, dist: usize) {
        self.inner.push(self.ids[id as usize], dist);
    }

    fn bound(&self, tau: usize) -> usize {
        self.inner.bound(tau)
    }

    fn saturated(&self) -> bool {
        self.inner.saturated()
    }

    fn note_candidate(&mut self) {
        self.inner.note_candidate();
    }

    fn note_verification(&mut self) {
        self.inner.note_verification();
    }
}

/// A shard's sink during multi-shard streaming: remaps ids, queues pushes
/// on the shared channel, and mirrors the caller sink's steering (read
/// from shared atomics the drain loop maintains). A hung-up channel —
/// the caller saturated or dropped out — reads as saturation, aborting
/// the shard's scan.
struct ShardStreamSink<'a> {
    tx: Arc<PullSender<Match>>,
    ids: &'a [StringId],
    shared_bound: &'a AtomicUsize,
    stop: &'a AtomicBool,
    disconnected: bool,
}

impl MatchSink for ShardStreamSink<'_> {
    fn push(&mut self, id: StringId, dist: usize) {
        if self.disconnected {
            return;
        }
        if self.tx.send((self.ids[id as usize], dist)).is_err() {
            self.disconnected = true;
        }
    }

    fn bound(&self, tau: usize) -> usize {
        tau.min(self.shared_bound.load(Ordering::Relaxed))
    }

    fn saturated(&self) -> bool {
        self.disconnected || self.stop.load(Ordering::Relaxed) || self.tx.is_hung_up()
    }
}

/// The sub-request shard `i` of `k` receives: identical to `req` except
/// the per-request budget's caps are split `1/k` (± the remainder,
/// assigned to the first shards). Deadlines are wall boundaries, not work
/// units, so each shard keeps the full deadline; the shared batch pool —
/// already atomic — travels as-is.
fn split_request<'a>(req: &SearchRequest<'a>, k: usize, i: usize) -> SearchRequest<'a> {
    let mut sub = req.clone();
    if let Some(budget) = req.budget() {
        if !budget.is_unlimited() && k > 1 {
            let mut split = budget.clone();
            if let Some(n) = budget.max_verifications() {
                split = split.with_max_verifications(share(n, k as u64, i as u64));
            }
            if let Some(n) = budget.max_candidates() {
                split = split.with_max_candidates(share(n, k as u64, i as u64));
            }
            sub = sub.with_budget(split);
        }
    }
    sub
}

/// `total` split into `k` near-equal integer shares; the first
/// `total % k` shares take the remainder.
fn share(total: u64, k: u64, i: u64) -> u64 {
    total / k + u64::from(i < total % k)
}

/// Rewrites a shard outcome's matches from local to global ids. Both
/// result orders survive: the id maps are strictly increasing, so
/// ascending-local-id (plain) and `(distance, local id)` (top-k) orders
/// map to their global equivalents.
fn remap_outcome(ids: &[StringId], outcome: &mut QueryOutcome) {
    if outcome.matches.is_empty() {
        return;
    }
    let remapped: Vec<Match> = outcome
        .matches
        .iter()
        .map(|&(local, dist)| (ids[local as usize], dist))
        .collect();
    outcome.matches = Arc::new(remapped);
}

/// Merges per-shard outcomes into the request's single answer; see the
/// module docs for the per-shape semantics.
fn merge_outcomes(req: &SearchRequest, parts: Vec<QueryOutcome>) -> QueryOutcome {
    if parts.is_empty() {
        // No shard owns any length the query could match: a complete,
        // empty answer.
        return QueryOutcome::default();
    }
    if parts.len() == 1 {
        let mut only = parts.into_iter().next().expect("one part");
        if req.is_count_only() {
            if let Some(cap) = req.limit() {
                only.count = only.count.min(cap);
            }
        }
        return only;
    }
    let mut stats = ExecStats::default();
    let mut completion = Completion::Complete;
    let (mut any_hit, mut any_miss) = (false, false);
    for part in &parts {
        stats.merge(&part.stats);
        if completion.is_complete() {
            completion = part.completion;
        }
        match part.cache {
            CacheOutcome::Hit => any_hit = true,
            CacheOutcome::Miss => any_miss = true,
            CacheOutcome::Bypass => {}
        }
    }
    // A miss anywhere means probing happened somewhere; only an
    // all-shards-served-from-cache request counts as a hit.
    let cache = if any_miss {
        CacheOutcome::Miss
    } else if any_hit {
        CacheOutcome::Hit
    } else {
        CacheOutcome::Bypass
    };
    if req.is_count_only() {
        let total: usize = parts.iter().map(|p| p.count).sum();
        let count = match req.limit() {
            Some(cap) => total.min(cap),
            None => total,
        };
        return QueryOutcome {
            matches: Arc::default(),
            count,
            cache,
            completion,
            stats,
        };
    }
    let merged: Vec<Match> = if let Some(k) = req.limit() {
        // Every global top-k element is in its shard's top-k, so
        // re-offering the shard heaps reproduces the single-index answer.
        let mut top = TopK::new(k);
        for part in &parts {
            for &(id, dist) in part.matches.iter() {
                top.offer((dist, id));
            }
        }
        top.into_sorted_vec()
            .into_iter()
            .map(|(dist, id)| (id, dist))
            .collect()
    } else {
        let mut all: Vec<Match> = Vec::with_capacity(parts.iter().map(|p| p.matches.len()).sum());
        for part in &parts {
            all.extend_from_slice(&part.matches);
        }
        all.sort_unstable();
        all
    };
    QueryOutcome {
        count: merged.len(),
        matches: Arc::new(merged),
        cache,
        completion,
        stats,
    }
}

/// Uniform fallback bands for corpora the builder has not seen: 16-wide
/// ranges, the last unbounded.
fn uniform_bands(n: usize) -> Vec<(usize, usize)> {
    const WIDTH: usize = 16;
    (0..n)
        .map(|i| {
            let start = i * WIDTH;
            let end = if i + 1 == n {
                usize::MAX
            } else {
                start + WIDTH - 1
            };
            (start, end)
        })
        .collect()
}

/// Cuts the length axis into `n` contiguous inclusive bands so each holds
/// roughly `total / n` strings (every band is at least one length wide;
/// the last is unbounded).
fn balanced_bands(
    histogram: &BTreeMap<usize, usize>,
    total: usize,
    n: usize,
) -> Vec<(usize, usize)> {
    if n == 0 {
        return Vec::new();
    }
    if histogram.is_empty() {
        return uniform_bands(n);
    }
    let mut bands = Vec::with_capacity(n);
    let mut start = 0usize;
    let mut cumulative = 0usize;
    let mut lengths = histogram.iter().peekable();
    for band in 0..n {
        if band + 1 == n {
            bands.push((start, usize::MAX));
            break;
        }
        // Consume lengths until this band holds its proportional share.
        let quota = (total * (band + 1)) / n;
        let mut end = start;
        while let Some(&(&len, &count)) = lengths.peek() {
            if cumulative >= quota {
                break;
            }
            cumulative += count;
            end = end.max(len);
            lengths.next();
        }
        bands.push((start, end));
        start = end + 1;
    }
    bands
}

/// FNV-1a over the string bytes; stable across platforms so hash-routed
/// persistence round-trips.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// --- Persistence -----------------------------------------------------

/// Manifest section ids (disjoint from the online-snapshot ids for
/// legibility; the manifest is its own file, so overlap would be legal).
const SEC_ROUTER_META: u32 = 16;
const SEC_ROUTER_BANDS: u32 = 17;
const SEC_ROUTER_IDS: u32 = 18;

/// META shard-by codes.
const SHARD_BY_LEN: u64 = 0;
const SHARD_BY_HASH: u64 = 1;

/// META backend codes (same values the online snapshot format uses).
const BACKEND_OWNED: u64 = 0;
const BACKEND_INTERNED: u64 = 1;

/// The path shard `i`'s snapshot file lives at: `<manifest>.shard<i>`.
fn shard_path(manifest: &Path, i: usize) -> std::path::PathBuf {
    let mut os = manifest.as_os_str().to_owned();
    os.push(format!(".shard{i}"));
    std::path::PathBuf::from(os)
}

/// Whether the snapshot container at `path` is a **router manifest**
/// (written by [`ShardedIndex::save_sharded`]) rather than a single-index
/// snapshot — both share the container format, so a loader can probe
/// first and pick [`ShardedIndex::load_sharded`] or
/// [`OnlineIndex::load`] accordingly.
pub fn is_sharded_snapshot(path: impl AsRef<Path>) -> Result<bool, PersistError> {
    let file = SnapshotFile::open(path.as_ref())?;
    Ok(file.section(SEC_ROUTER_META).is_ok())
}

impl ShardedIndex {
    /// Persists the router: a manifest container at `path` (partitioning
    /// policy, bands, id maps) plus one standard snapshot file per shard
    /// at `path.shard<i>` — the shard-per-file layout the section-table
    /// format was designed to allow. Returns the total bytes written.
    /// Deterministic like [`Snapshot::save`](crate::Snapshot::save).
    ///
    /// Routers built from dyn shards cannot be persisted and report
    /// [`PersistError::Corrupt`].
    pub fn save_sharded(&self, path: impl AsRef<Path>) -> Result<u64, PersistError> {
        let path = path.as_ref();
        let mut meta = Vec::with_capacity(48);
        meta.extend_from_slice(&(self.shards.len() as u64).to_le_bytes());
        meta.extend_from_slice(
            &match self.shard_by {
                ShardBy::Len => SHARD_BY_LEN,
                ShardBy::Hash => SHARD_BY_HASH,
            }
            .to_le_bytes(),
        );
        meta.extend_from_slice(&(self.tau_max as u64).to_le_bytes());
        let backend_code = match self.backend {
            KeyBackend::Owned => BACKEND_OWNED,
            KeyBackend::Interned => BACKEND_INTERNED,
            // Shards assembled from direct-loaded indices have no single
            // buildable backend to record; reload the shards with the
            // rebuild path before persisting a router over them.
            KeyBackend::Direct => {
                return Err(PersistError::Corrupt {
                    context: "routers over direct-loaded shards cannot be persisted",
                })
            }
        };
        meta.extend_from_slice(&backend_code.to_le_bytes());
        meta.extend_from_slice(&self.epoch.to_le_bytes());
        meta.extend_from_slice(&u64::from(self.next_id).to_le_bytes());

        let mut bands = Vec::with_capacity(self.shards.len() * 16);
        let mut ids = Vec::new();
        for shard in &self.shards {
            bands.extend_from_slice(&(shard.band.0 as u64).to_le_bytes());
            bands.extend_from_slice(&(shard.band.1 as u64).to_le_bytes());
            ids.extend_from_slice(&(shard.ids.len() as u64).to_le_bytes());
            for &id in &shard.ids {
                ids.extend_from_slice(&id.to_le_bytes());
            }
        }

        let mut total = 0u64;
        for (i, shard) in self.shards.iter().enumerate() {
            let ShardSource::Index(index) = &shard.source else {
                return Err(PersistError::Corrupt {
                    context: "routers built from dyn shards cannot be persisted",
                });
            };
            total += index.save(shard_path(path, i))?;
        }

        let mut writer = SnapshotWriter::new();
        writer
            .section(SEC_ROUTER_META, meta)
            .section(SEC_ROUTER_BANDS, bands)
            .section(SEC_ROUTER_IDS, ids);
        total += writer.save(path)?;
        Ok(total)
    }

    /// Restores a router saved by [`ShardedIndex::save_sharded`]: the
    /// manifest at `path` plus its `path.shard<i>` files. Every shard
    /// round-trips through [`OnlineIndex::load`], so the restored router
    /// answers byte-identically to the saved one.
    pub fn load_sharded(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        let path = path.as_ref();
        let file = SnapshotFile::open(path)?;

        let mut meta = Cursor::new(file.section(SEC_ROUTER_META)?, "router meta section");
        let shard_count = meta.len64()?;
        let shard_by = match meta.u64()? {
            SHARD_BY_LEN => ShardBy::Len,
            SHARD_BY_HASH => ShardBy::Hash,
            _ => {
                return Err(PersistError::Corrupt {
                    context: "unknown shard-by code in the router manifest",
                })
            }
        };
        let tau_max = meta.len64()?;
        let backend = match meta.u64()? {
            BACKEND_OWNED => KeyBackend::Owned,
            BACKEND_INTERNED => KeyBackend::Interned,
            _ => {
                return Err(PersistError::Corrupt {
                    context: "unknown key-backend code in the router manifest",
                })
            }
        };
        let epoch = meta.u64()?;
        let next_id = meta.u64()?;
        meta.finish()?;
        let next_id = u32::try_from(next_id).map_err(|_| PersistError::Corrupt {
            context: "router id space exceeds u32",
        })?;

        let bands_payload = file.section(SEC_ROUTER_BANDS)?;
        if shard_count
            .checked_mul(16)
            .is_none_or(|expected| bands_payload.len() != expected)
        {
            return Err(PersistError::Corrupt {
                context: "band table length disagrees with the router manifest",
            });
        }
        let mut bands = Cursor::new(bands_payload, "router band table");
        let mut ids = Cursor::new(file.section(SEC_ROUTER_IDS)?, "router id maps");

        let mut shards = Vec::with_capacity(shard_count);
        for i in 0..shard_count {
            let band = (bands.len64()?, bands.len64()?);
            let count = ids.len64()?;
            let mut map = Vec::with_capacity(count);
            let mut previous: Option<StringId> = None;
            for _ in 0..count {
                let id = ids.u32()?;
                if id >= next_id || previous.is_some_and(|p| p >= id) {
                    return Err(PersistError::Corrupt {
                        context: "router id map is not strictly increasing within bounds",
                    });
                }
                previous = Some(id);
                map.push(id);
            }
            let index = OnlineIndex::load(shard_path(path, i))?;
            if index.tau_max() != tau_max || index.key_backend() != backend {
                return Err(PersistError::Corrupt {
                    context: "shard snapshot disagrees with the router manifest",
                });
            }
            let stats = index.stats();
            if stats.live + stats.tombstones != map.len() {
                return Err(PersistError::Corrupt {
                    context: "shard id map does not cover the shard's id universe",
                });
            }
            shards.push(Shard {
                source: ShardSource::Index(index),
                ids: map,
                band,
            });
        }
        bands.finish()?;
        ids.finish()?;

        Ok(Self {
            shards,
            shard_by,
            tau_max,
            backend,
            epoch,
            next_id,
            obs: None,
        })
    }

    /// [`ShardedIndex::load_sharded`] with observability attached to the
    /// restored router (same wiring as
    /// [`ShardedIndexBuilder::observability`]).
    pub fn load_sharded_with(
        path: impl AsRef<Path>,
        registry: Arc<Registry>,
    ) -> Result<Self, PersistError> {
        let mut router = Self::load_sharded(path)?;
        router.set_observability(Some(registry));
        Ok(router)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_bands_cover_and_balance() {
        let mut histogram = BTreeMap::new();
        for len in 1..=100usize {
            histogram.insert(len, 10);
        }
        let bands = balanced_bands(&histogram, 1000, 4);
        assert_eq!(bands.len(), 4);
        assert_eq!(bands[0].0, 0);
        assert_eq!(bands[3].1, usize::MAX);
        for w in bands.windows(2) {
            assert_eq!(w[0].1 + 1, w[1].0, "bands are contiguous");
        }
        // Roughly 25 lengths (250 strings) per band.
        assert!(bands[0].1 >= 20 && bands[0].1 <= 30, "{bands:?}");
    }

    #[test]
    fn balanced_bands_survive_skew() {
        // Every string has the same length: the first band swallows it,
        // later bands stay empty but keep valid, contiguous ranges.
        let mut histogram = BTreeMap::new();
        histogram.insert(7usize, 1000);
        let bands = balanced_bands(&histogram, 1000, 3);
        assert_eq!(bands.len(), 3);
        assert_eq!(bands[0].0, 0);
        assert_eq!(bands[2].1, usize::MAX);
        for w in bands.windows(2) {
            assert_eq!(w[0].1 + 1, w[1].0);
        }
        assert!(bands[0].1 >= 7);
    }

    #[test]
    fn share_splits_with_remainder_first() {
        assert_eq!(share(10, 3, 0), 4);
        assert_eq!(share(10, 3, 1), 3);
        assert_eq!(share(10, 3, 2), 3);
        assert_eq!((0..3).map(|i| share(10, 3, i)).sum::<u64>(), 10);
    }

    #[test]
    fn fnv1a_is_stable() {
        // Pinned so hash-routed persistence stays portable.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
