//! Differential harness for the segment-key backends: an interned-key
//! [`OnlineIndex`] must be **byte-identical** to an owned-key one on every
//! query surface — same ids, same distances, same order — for every
//! τ ≤ τ_max, on random, planted, and churned corpora, through the single,
//! batched, parallel, cached, and snapshot query paths, and across
//! save/load. A second key representation is a classic source of silent
//! divergence; this suite is the contract that keeps the two backends one
//! index.

use passjoin_online::{
    CachePolicy, KeyBackend, Match, OnlineIndex, Parallelism, Queryable, SearchRequest,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds the same collection under both backends.
fn both(strings: &[Vec<u8>], tau_max: usize) -> (OnlineIndex, OnlineIndex) {
    let owned = OnlineIndex::builder(tau_max).build_from(strings.iter());
    let interned = OnlineIndex::builder(tau_max)
        .key_backend(KeyBackend::Interned)
        .build_from(strings.iter());
    assert_eq!(owned.key_backend(), KeyBackend::Owned);
    assert_eq!(interned.key_backend(), KeyBackend::Interned);
    (owned, interned)
}

/// Uniform-τ batch through the typed API, with a thread-count hint.
fn batch<S: Queryable>(
    source: &S,
    queries: &[Vec<u8>],
    tau: usize,
    threads: usize,
) -> Vec<Vec<Match>> {
    let reqs: Vec<SearchRequest> = queries
        .iter()
        .map(|q| SearchRequest::borrowed(q, tau).with_parallelism(Parallelism::Threads(threads)))
        .collect();
    source.search_batch(&reqs).into_matches()
}

/// Asserts every query surface agrees between the two indices for every
/// τ ≤ τ_max over `queries`.
fn assert_all_paths_agree(owned: &OnlineIndex, interned: &OnlineIndex, queries: &[Vec<u8>]) {
    let tau_max = owned.tau_max();
    assert_eq!(tau_max, interned.tau_max());
    assert_eq!(owned.len(), interned.len());
    for tau in 0..=tau_max {
        for q in queries {
            assert_eq!(
                owned.matches(q, tau),
                interned.matches(q, tau),
                "single query {:?} at tau={tau}",
                String::from_utf8_lossy(q)
            );
        }
        assert_eq!(
            batch(owned, queries, tau, 1),
            batch(interned, queries, tau, 1),
            "batch at tau={tau}"
        );
        assert_eq!(
            batch(owned, queries, tau, 3),
            batch(interned, queries, tau, 3),
            "parallel batch at tau={tau}"
        );
        assert_eq!(
            batch(&owned.snapshot(), queries, tau, 1),
            batch(&interned.snapshot(), queries, tau, 1),
            "snapshot batch at tau={tau}"
        );
    }
}

fn dense_corpus() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(
        proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 0..12),
        0..24,
    )
}

fn wide_corpus() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(97u8..=122, 0..30), 0..16)
}

fn off_corpus_queries() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(
        proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 0..16),
        1..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn backends_agree_on_dense_corpora(
        strings in dense_corpus(),
        extra in off_corpus_queries(),
        tau_max in 1usize..5,
    ) {
        let (owned, interned) = both(&strings, tau_max);
        let mut queries = strings.clone();
        queries.extend(extra);
        assert_all_paths_agree(&owned, &interned, &queries);
    }

    #[test]
    fn backends_agree_on_wide_corpora(strings in wide_corpus(), tau_max in 1usize..6) {
        let (owned, interned) = both(&strings, tau_max);
        assert_all_paths_agree(&owned, &interned, &strings);
    }

    #[test]
    fn backends_agree_under_churn(
        strings in dense_corpus(),
        tau_max in 1usize..4,
        seed in proptest::arbitrary::any::<u64>(),
    ) {
        // Mirror an insert → remove → insert history on both backends: ids
        // evolve identically, so results must stay byte-identical. Churn is
        // where the interned backend's liveness counting earns its keep
        // (emptied keys must release dictionary ids, revivals must reuse
        // them) — divergence here and not on fresh builds would point
        // straight at the refcounts.
        let (mut owned, mut interned) = both(&strings, tau_max);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut live: Vec<u32> = (0..strings.len() as u32).collect();
        for round in 0..3 {
            let mut i = 0;
            while i < live.len() {
                if rng.gen_bool(0.4) {
                    let id = live.swap_remove(i);
                    prop_assert_eq!(owned.remove(id), interned.remove(id), "round {}", round);
                } else {
                    i += 1;
                }
            }
            for s in strings.iter().filter(|_| rng.gen_bool(0.5)) {
                let a = owned.insert(s);
                let b = interned.insert(s);
                prop_assert_eq!(a, b);
                live.push(a);
            }
            assert_all_paths_agree(&owned, &interned, &strings);
        }
    }

    #[test]
    fn cached_paths_agree(strings in dense_corpus(), tau_max in 1usize..4) {
        let (mut owned, mut interned) = both(&strings, tau_max);
        let cached = |q: &Vec<u8>| SearchRequest::new(q.as_slice(), tau_max)
            .with_cache(CachePolicy::Use);
        for q in strings.iter().chain(strings.iter()) {
            // Second pass hits the cache on both sides.
            let (o, i) = (owned.search(&cached(q)), interned.search(&cached(q)));
            prop_assert_eq!(o.cache, i.cache, "cache outcomes must agree");
            prop_assert_eq!(o.matches, i.matches);
        }
        if !strings.is_empty() {
            // Mutate, then re-query: both caches must invalidate alike.
            prop_assert_eq!(owned.remove(0), interned.remove(0));
            for q in &strings {
                prop_assert_eq!(
                    owned.search(&cached(q)).matches,
                    interned.search(&cached(q)).matches
                );
            }
        }
    }

    #[test]
    fn backends_agree_across_save_load(strings in dense_corpus(), tau_max in 1usize..4) {
        // Save each backend's index and reload it: all four (fresh × loaded,
        // owned × interned) must agree, and each load must restore its
        // backend.
        let (owned, interned) = both(&strings, tau_max);
        let dir = std::env::temp_dir();
        let tag = std::process::id();
        let o_path = dir.join(format!("passjoin-diff-owned-{tag}-{:p}.snap", &owned));
        let i_path = dir.join(format!("passjoin-diff-interned-{tag}-{:p}.snap", &owned));
        owned.save(&o_path).expect("save owned");
        interned.save(&i_path).expect("save interned");
        let o_loaded = OnlineIndex::load(&o_path).expect("load owned");
        let i_loaded = OnlineIndex::load(&i_path).expect("load interned");
        let _ = std::fs::remove_file(&o_path);
        let _ = std::fs::remove_file(&i_path);
        prop_assert_eq!(o_loaded.key_backend(), KeyBackend::Owned);
        prop_assert_eq!(i_loaded.key_backend(), KeyBackend::Interned);
        assert_all_paths_agree(&o_loaded, &i_loaded, &strings);
        assert_all_paths_agree(&owned, &i_loaded, &strings);
        assert_all_paths_agree(&o_loaded, &interned, &strings);
    }
}

/// A planted corpus: datagen base strings plus controlled near-duplicates
/// (the same shape `properties.rs` uses against the batch join).
fn planted_corpus(n: usize, seed: u64, max_edits: usize) -> Vec<Vec<u8>> {
    let base = datagen::DatasetSpec::new(datagen::DatasetKind::Author, n)
        .with_seed(seed)
        .generate();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37);
    let mut strings = Vec::with_capacity(2 * n);
    for s in base {
        if rng.gen_bool(0.5) {
            strings.push(datagen::mutate(&s, rng.gen_range(1..=max_edits), &mut rng));
        }
        strings.push(s);
    }
    strings
}

#[test]
fn backends_agree_on_planted_corpus() {
    let strings = planted_corpus(250, 42, 2);
    let (owned, interned) = both(&strings, 3);
    let queries: Vec<Vec<u8>> = strings.iter().step_by(5).cloned().collect();
    assert_all_paths_agree(&owned, &interned, &queries);
}

#[test]
fn interned_backend_is_smaller_on_planted_corpus() {
    // The memory claim behind the backend (paper §6): author-style corpora
    // repeat segments across strings, slots, and lengths, so one shared
    // dictionary plus 4-byte keys beats per-key byte copies. Pinned here
    // on the same corpus family the benches use, so a regression shows up
    // as a test failure rather than a silent bench drift.
    let strings = planted_corpus(500, 7, 2);
    let (owned, interned) = both(&strings, 2);
    let (o, i) = (owned.stats(), interned.stats());
    assert_eq!(o.segment_entries, i.segment_entries);
    assert!(
        i.resident_bytes < o.resident_bytes,
        "interned {} must be smaller than owned {}",
        i.resident_bytes,
        o.resident_bytes
    );
}

#[test]
fn backends_agree_after_full_churn_cycle() {
    // Insert → remove everything → re-insert: the interned dictionary is
    // fully released and revived; results must match a fresh owned build.
    let strings = planted_corpus(150, 13, 2);
    let mut interned = OnlineIndex::builder(2)
        .key_backend(KeyBackend::Interned)
        .build_from(strings.iter());
    for id in 0..strings.len() as u32 {
        assert!(interned.remove(id));
    }
    assert!(interned.is_empty());
    let mut renamed = Vec::with_capacity(strings.len());
    for s in &strings {
        renamed.push(interned.insert(s));
    }
    let owned = OnlineIndex::from_strings(strings.iter(), 2);
    for q in strings.iter().step_by(3) {
        let expected: Vec<(u32, usize)> = owned
            .matches(q, 2)
            .into_iter()
            .map(|(id, d)| (renamed[id as usize], d))
            .collect();
        assert_eq!(interned.matches(q, 2), expected);
    }
}
