//! Observability contract: the metrics registry is a *faithful sum* of
//! what the engine reports per request, and attaching it never changes
//! an answer.
//!
//! Pinned here, on both key backends:
//!
//! 1. **Registry ≡ ΣExecStats** — after any mix of single, batch
//!    (serial and parallel), streaming, and batch-streaming requests,
//!    every work counter equals the same field summed over the returned
//!    outcomes, and `requests_total` equals the number of requests.
//! 2. **Cache counters ≡ CacheStats** — hits, misses, evictions, and
//!    epoch invalidations land in the registry exactly as the cache's
//!    own lifetime stats count them, and shaped hits are tallied as
//!    derived.
//! 3. **Truncation parity** — the per-reason truncation counters equal
//!    the `Truncated` completions the caller saw, and the buffered and
//!    streamed batch paths report identical tallies for the same
//!    budgeted workload.
//! 4. **Observability is inert** — an instrumented index (with the
//!    default no-op trace sink or a collecting one) returns exactly the
//!    same outcomes as an uninstrumented one, while the collecting sink
//!    observes every request boundary.
//! 5. **Phase attribution is exhaustive** — plan + probe + verify +
//!    cache nanoseconds sum to the request total, by construction, on a
//!    match-heavy workload (the ≥ 95 % acceptance bar is met with
//!    equality).
//! 6. **Persistence metrics round-trip** — a save's section byte
//!    counters equal the load's, the snapshot trace events fire, and a
//!    `load_with` index comes back instrumented.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use passjoin_online::{
    CachePolicy, CollectSink, CollectingTraceSink, Completion, EngineObs, ExecBudget, ExecStats,
    KeyBackend, ManualTicks, MatchSink, OnlineIndex, Parallelism, Queryable, SearchRequest,
    SearchResponse, TickSource, TraceEvent, TruncationReason, WallClockTicks,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Batch streaming with a throwaway `CollectSink` per request; only the
/// response (stats, completions) matters to these contracts.
fn batch_stream_discard(index: &OnlineIndex, reqs: &[SearchRequest]) -> SearchResponse {
    let mut bufs: Vec<Vec<passjoin_online::Match>> = vec![Vec::new(); reqs.len()];
    let mut sinks: Vec<CollectSink> = bufs.iter_mut().map(CollectSink::new).collect();
    let mut slots: Vec<&mut (dyn MatchSink + Send)> = sinks
        .iter_mut()
        .map(|s| s as &mut (dyn MatchSink + Send))
        .collect();
    index.search_batch_streaming(reqs, &mut slots)
}

fn corpus(n: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let len = rng.gen_range(0..16);
            (0..len).map(|_| rng.gen_range(b'a'..=b'e')).collect()
        })
        .collect()
}

fn build(
    strings: &[Vec<u8>],
    tau_max: usize,
    backend: KeyBackend,
    cache: usize,
    obs: &Arc<EngineObs>,
) -> OnlineIndex {
    OnlineIndex::builder(tau_max)
        .key_backend(backend)
        .cache_capacity(cache)
        .observability(Arc::clone(obs))
        .build_from(strings.iter())
}

fn counter(obs: &EngineObs, name: &str) -> u64 {
    obs.registry().counter(name).get()
}

fn hsum(obs: &EngineObs, name: &str) -> u64 {
    obs.registry().histogram(name).sum()
}

fn hcount(obs: &EngineObs, name: &str) -> u64 {
    obs.registry().histogram(name).count()
}

fn add_stats(total: &mut ExecStats, stats: &ExecStats) {
    total.candidates += stats.candidates;
    total.verifications += stats.verifications;
    total.short_checked += stats.short_checked;
    total.segment_matches += stats.segment_matches;
    total.short_matches += stats.short_matches;
}

fn assert_registry_matches(obs: &EngineObs, total: &ExecStats, requests: u64) {
    assert_eq!(counter(obs, "passjoin_requests_total"), requests);
    assert_eq!(counter(obs, "passjoin_candidates_total"), total.candidates);
    assert_eq!(
        counter(obs, "passjoin_verifications_total"),
        total.verifications
    );
    assert_eq!(
        counter(obs, "passjoin_short_checked_total"),
        total.short_checked
    );
    assert_eq!(
        counter(obs, "passjoin_segment_matches_total"),
        total.segment_matches
    );
    assert_eq!(
        counter(obs, "passjoin_short_matches_total"),
        total.short_matches
    );
    assert_eq!(hcount(obs, "passjoin_request_ns"), requests);
}

/// Contract 1: every typed query path — single, serial batch, parallel
/// batch, streaming, batch-streaming — lands its final `ExecStats` in
/// the registry exactly once per request.
#[test]
fn registry_equals_summed_stats_across_all_paths() {
    for backend in [KeyBackend::Owned, KeyBackend::Interned] {
        let obs = Arc::new(EngineObs::new());
        let strings = corpus(120, 11);
        let index = build(&strings, 2, backend, 0, &obs);
        let queries = corpus(80, 12);

        let mut total = ExecStats::default();
        let mut requests = 0u64;

        // Single requests, mixed shapes.
        for (i, q) in queries.iter().enumerate() {
            let mut req = SearchRequest::borrowed(q, i % 3);
            if i % 4 == 1 {
                req = req.with_limit(2);
            }
            if i % 4 == 2 {
                req = req.count_only();
            }
            add_stats(&mut total, &index.search(&req).stats);
            requests += 1;
        }

        // Serial and parallel batches (the latter large enough to cross
        // the engine's parallel threshold, exercising the atomic
        // counters from several worker threads at once).
        for parallelism in [Parallelism::Serial, Parallelism::Threads(4)] {
            let reqs: Vec<SearchRequest> = queries
                .iter()
                .map(|q| SearchRequest::borrowed(q, 2).with_parallelism(parallelism))
                .collect();
            for outcome in &index.search_batch(&reqs).outcomes {
                add_stats(&mut total, &outcome.stats);
                requests += 1;
            }
        }

        // Streaming, single and batch form.
        for q in &queries {
            let mut emitted = Vec::new();
            let outcome = {
                let mut sink = CollectSink::new(&mut emitted);
                index.search_streaming(&SearchRequest::borrowed(q, 1), &mut sink)
            };
            add_stats(&mut total, &outcome.stats);
            requests += 1;
        }
        let reqs: Vec<SearchRequest> = queries
            .iter()
            .map(|q| SearchRequest::borrowed(q, 2))
            .collect();
        let response = batch_stream_discard(&index, &reqs);
        for outcome in &response.outcomes {
            add_stats(&mut total, &outcome.stats);
            requests += 1;
        }

        assert_registry_matches(&obs, &total, requests);

        // Snapshots share the index's instrumentation.
        let snapshot = index.snapshot();
        for q in queries.iter().take(10) {
            add_stats(
                &mut total,
                &snapshot.search(&SearchRequest::borrowed(q, 2)).stats,
            );
            requests += 1;
        }
        assert_registry_matches(&obs, &total, requests);
    }
}

/// Contract 2: the cache's registry counters track its own lifetime
/// stats exactly — across hits, misses, LRU evictions, epoch
/// invalidations, and shaped (derived) hits.
#[test]
fn cache_counters_match_cache_stats() {
    for backend in [KeyBackend::Owned, KeyBackend::Interned] {
        let obs = Arc::new(EngineObs::new());
        let strings = corpus(60, 21);
        let mut index = build(&strings, 2, backend, 4, &obs);
        let queries = corpus(12, 22);

        let cached = |q: &[u8]| SearchRequest::new(q, 2).with_cache(CachePolicy::Use);
        // More distinct (query, τ) keys than capacity ⇒ evictions; a
        // second pass over a small working set ⇒ hits.
        for q in &queries {
            index.search(&cached(q));
        }
        for q in queries.iter().take(3) {
            index.search(&cached(q));
            index.search(&cached(q));
        }
        // A shaped request answered from a stored full result is a
        // *derived* hit.
        let derived_before = counter(&obs, "passjoin_cache_derived_hits_total");
        index.search(&cached(&queries[0]).with_limit(1));
        assert_eq!(
            counter(&obs, "passjoin_cache_derived_hits_total"),
            derived_before + 1
        );
        // Mutation bumps the epoch; the next lookup invalidates.
        index.insert(b"freshly inserted");
        index.search(&cached(&queries[0]));

        let stats = index.cache_stats();
        assert!(
            stats.hits > 0 && stats.misses > 0,
            "workload exercises both"
        );
        assert!(stats.evictions > 0, "capacity 4 over 12 keys must evict");
        assert_eq!(stats.invalidations, 1, "one epoch bump, one invalidation");
        assert_eq!(counter(&obs, "passjoin_cache_hits_total"), stats.hits);
        assert_eq!(counter(&obs, "passjoin_cache_misses_total"), stats.misses);
        assert_eq!(
            counter(&obs, "passjoin_cache_evictions_total"),
            stats.evictions
        );
        assert_eq!(
            counter(&obs, "passjoin_cache_invalidations_total"),
            stats.invalidations
        );
    }
}

/// Runs one budgeted workload and returns `(per-reason registry tallies,
/// per-reason completion tallies)` for it.
fn truncation_tallies(streamed: bool, backend: KeyBackend) -> ([u64; 3], [u64; 3]) {
    let obs = Arc::new(EngineObs::new());
    let strings = corpus(150, 31);
    let index = build(&strings, 2, backend, 0, &obs);
    let queries = corpus(60, 32);

    let expired = Arc::new(ManualTicks::new());
    expired.advance(5);
    let reqs: Vec<SearchRequest> = queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            let budget = match i % 4 {
                0 => ExecBudget::new().with_max_verifications(1),
                1 => ExecBudget::new().with_max_candidates(1),
                2 => {
                    ExecBudget::new().with_deadline(Arc::clone(&expired) as Arc<dyn TickSource>, 1)
                }
                _ => ExecBudget::new(), // unlimited
            };
            SearchRequest::borrowed(q, 2).with_budget(budget)
        })
        .collect();

    let response = if streamed {
        batch_stream_discard(&index, &reqs)
    } else {
        index.search_batch(&reqs)
    };

    let mut seen = [0u64; 3];
    for outcome in &response.outcomes {
        if let Completion::Truncated { reason } = outcome.completion {
            let slot = match reason {
                TruncationReason::VerificationCap => 0,
                TruncationReason::CandidateCap => 1,
                TruncationReason::Deadline => 2,
            };
            seen[slot] += 1;
        }
    }
    let counted = [
        counter(&obs, "passjoin_truncated_verification_cap_total"),
        counter(&obs, "passjoin_truncated_candidate_cap_total"),
        counter(&obs, "passjoin_truncated_deadline_total"),
    ];
    (counted, seen)
}

/// Contract 3: the registry's per-reason truncation counters equal the
/// completions the caller saw, and the buffered and streamed batch paths
/// report the same tally for the same workload.
#[test]
fn truncation_counters_agree_buffered_and_streamed() {
    for backend in [KeyBackend::Owned, KeyBackend::Interned] {
        let (buffered_counted, buffered_seen) = truncation_tallies(false, backend);
        let (streamed_counted, streamed_seen) = truncation_tallies(true, backend);
        assert_eq!(buffered_counted, buffered_seen, "registry ≡ completions");
        assert_eq!(streamed_counted, streamed_seen, "registry ≡ completions");
        assert_eq!(
            buffered_counted, streamed_counted,
            "streamed batches report the same truncation tally as buffered"
        );
        assert!(
            buffered_seen.iter().all(|&n| n > 0),
            "workload must trip every reason: {buffered_seen:?}"
        );
    }
}

/// Contract 4: instrumentation is inert — same outcomes with no
/// observability, with the default no-op trace sink, and with a
/// collecting sink; and the collecting sink sees every boundary.
#[test]
fn observability_never_changes_results() {
    for backend in [KeyBackend::Owned, KeyBackend::Interned] {
        let strings = corpus(80, 41);
        let queries = corpus(40, 42);

        let bare = OnlineIndex::builder(2)
            .key_backend(backend)
            .cache_capacity(8)
            .build_from(strings.iter());
        let noop_obs = Arc::new(EngineObs::new());
        let noop = build(&strings, 2, backend, 8, &noop_obs);
        let collector = Arc::new(CollectingTraceSink::new());
        let collecting_obs =
            Arc::new(EngineObs::new().with_trace(Arc::clone(&collector) as Arc<_>));
        let collecting = build(&strings, 2, backend, 8, &collecting_obs);

        let reqs: Vec<SearchRequest> = queries
            .iter()
            .enumerate()
            .map(|(i, q)| {
                let mut req = SearchRequest::borrowed(q, i % 3);
                if i % 2 == 0 {
                    req = req.with_cache(CachePolicy::Use);
                }
                if i % 5 == 0 {
                    req = req.with_limit(3);
                }
                req
            })
            .collect();

        let expected = bare.search_batch(&reqs);
        for index in [&noop, &collecting] {
            let got = index.search_batch(&reqs);
            for (e, g) in expected.outcomes.iter().zip(&got.outcomes) {
                assert_eq!(e.matches, g.matches);
                assert_eq!(e.count, g.count);
                assert_eq!(e.stats, g.stats);
                assert_eq!(e.completion, g.completion);
            }
        }
        // Streaming parity too.
        for q in &queries {
            let req = SearchRequest::borrowed(q, 2);
            let mut a = Vec::new();
            let mut b = Vec::new();
            {
                let mut sink = CollectSink::new(&mut a);
                bare.search_streaming(&req, &mut sink);
            }
            {
                let mut sink = CollectSink::new(&mut b);
                collecting.search_streaming(&req, &mut sink);
            }
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "trace sink must not steer the scan");
        }

        let events = collector.take();
        let requests = counter(&collecting_obs, "passjoin_requests_total");
        let finished = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::VerifyFinished { .. }))
            .count() as u64;
        assert_eq!(finished, requests, "one VerifyFinished per request");
        let lookups = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::CacheLookup { .. }))
            .count() as u64;
        assert_eq!(
            lookups,
            counter(&collecting_obs, "passjoin_cache_hits_total")
                + counter(&collecting_obs, "passjoin_cache_misses_total"),
            "one CacheLookup per counted lookup"
        );
        let flushes = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Flush { .. }))
            .count();
        assert_eq!(flushes, queries.len(), "one Flush per streamed request");
        assert!(
            events
                .iter()
                .any(|e| matches!(e, TraceEvent::PlanBuilt { .. })),
            "plans are traced"
        );
    }
}

/// Contract 5: the four phase histograms partition the request total
/// exactly — the dump attributes 100 % of the measured wall time.
#[test]
fn phase_attribution_is_exhaustive() {
    let obs = Arc::new(EngineObs::new());
    // Match-heavy: many near-identical strings, every query hits most.
    let strings: Vec<Vec<u8>> = (0..200)
        .map(|i| format!("match heavy string {:02}", i % 10).into_bytes())
        .collect();
    let index = build(&strings, 2, KeyBackend::Owned, 8, &obs);
    let reqs: Vec<SearchRequest> = strings
        .iter()
        .step_by(2)
        .map(|q| SearchRequest::borrowed(q, 2).with_cache(CachePolicy::Use))
        .collect();
    index.search_batch(&reqs);

    let request_ns = hsum(&obs, "passjoin_request_ns");
    let attributed = hsum(&obs, "passjoin_phase_plan_ns")
        + hsum(&obs, "passjoin_phase_probe_ns")
        + hsum(&obs, "passjoin_phase_verify_ns")
        + hsum(&obs, "passjoin_phase_cache_ns");
    assert!(request_ns > 0, "a real clock must have measured something");
    assert_eq!(
        attributed, request_ns,
        "plan + probe + verify + cache must sum to the request total"
    );
}

/// A unique temp path per call (tests run concurrently in one process).
fn temp_snapshot_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "passjoin-metrics-{}-{tag}-{n}.snap",
        std::process::id()
    ))
}

struct TempFile(PathBuf);

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Contract 6: save and load byte accounting agree, the snapshot trace
/// events fire with the file's true size, and `load_with` returns an
/// instrumented index.
#[test]
fn snapshot_metrics_round_trip() {
    for backend in [KeyBackend::Owned, KeyBackend::Interned] {
        let save_trace = Arc::new(CollectingTraceSink::new());
        let save_obs = Arc::new(EngineObs::new().with_trace(Arc::clone(&save_trace) as Arc<_>));
        let strings = corpus(80, 51);
        let index = build(&strings, 2, backend, 0, &save_obs);

        let file = TempFile(temp_snapshot_path("roundtrip"));
        let bytes = index.save(&file.0).expect("save must succeed");
        assert_eq!(
            counter(&save_obs, "passjoin_snapshot_save_bytes_total"),
            bytes
        );
        assert_eq!(
            std::fs::metadata(&file.0).expect("file exists").len(),
            bytes
        );
        assert!(save_trace
            .take()
            .iter()
            .any(|e| matches!(e, TraceEvent::SnapshotSaved { bytes: b } if *b == bytes)));

        let load_trace = Arc::new(CollectingTraceSink::new());
        let load_obs = Arc::new(EngineObs::new().with_trace(Arc::clone(&load_trace) as Arc<_>));
        let loaded =
            OnlineIndex::load_with(&file.0, Arc::clone(&load_obs)).expect("load must succeed");
        assert_eq!(
            counter(&load_obs, "passjoin_snapshot_load_bytes_total"),
            bytes
        );
        assert!(load_trace
            .take()
            .iter()
            .any(|e| matches!(e, TraceEvent::SnapshotLoaded { bytes: b } if *b == bytes)));
        // Per-section payload accounting must agree between the writer
        // and the reader.
        for section in ["meta", "spans", "strings", "segments"] {
            let name = format!("passjoin_snapshot_section_{section}_bytes_total");
            let saved = counter(&save_obs, &name);
            assert!(saved > 0, "{name} on save");
            assert_eq!(counter(&load_obs, &name), saved, "{name} on load");
        }
        assert_eq!(
            hcount(&load_obs, "passjoin_snapshot_load_read_ns")
                + hcount(&load_obs, "passjoin_snapshot_load_decode_ns")
                + hcount(&load_obs, "passjoin_snapshot_load_validate_ns"),
            3,
            "each load phase observed once"
        );

        // The loaded index is instrumented without further wiring.
        loaded.search(&SearchRequest::borrowed(&strings[0], 2));
        assert_eq!(counter(&load_obs, "passjoin_requests_total"), 1);
    }
}

/// Satellite: a real wall-clock tick source drives `ExecBudget`
/// deadlines end to end — an expired deadline truncates with the
/// deadline reason and lands in the deadline counter.
#[test]
fn wall_clock_deadline_truncates_and_is_counted() {
    let obs = Arc::new(EngineObs::new());
    let strings = corpus(100, 61);
    let index = build(&strings, 2, KeyBackend::Owned, 0, &obs);

    let ticks = Arc::new(WallClockTicks::millis());
    let already_passed = ticks.ticks();
    let budget =
        ExecBudget::new().with_deadline(Arc::clone(&ticks) as Arc<dyn TickSource>, already_passed);
    let outcome = index.search(&SearchRequest::borrowed(&strings[0], 2).with_budget(budget));
    assert_eq!(
        outcome.completion,
        Completion::Truncated {
            reason: TruncationReason::Deadline
        }
    );
    assert_eq!(counter(&obs, "passjoin_truncated_deadline_total"), 1);

    // A deadline comfortably in the future completes exactly.
    let budget = ExecBudget::new().with_deadline(
        Arc::clone(&ticks) as Arc<dyn TickSource>,
        ticks.ticks() + 60_000,
    );
    let relaxed = index.search(&SearchRequest::borrowed(&strings[0], 2).with_budget(budget));
    assert!(relaxed.completion.is_complete());
    assert_eq!(
        relaxed.matches,
        index
            .search(&SearchRequest::borrowed(&strings[0], 2))
            .matches
    );
}
