//! Persistence contract: a saved-then-loaded index is indistinguishable
//! from the index it was saved from — byte-identical query results for
//! **every** τ ≤ τ_max, identical stats, identical tombstones — on random
//! and planted corpora, through churn, and the loaded index stays fully
//! mutable. And every way a file can rot — truncation, any flipped byte,
//! a wrong version, garbage — is rejected with a typed error, never a
//! panic.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use passjoin_online::{OnlineIndex, PersistError, Queryable};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A unique temp path per call (tests run concurrently in one process).
fn temp_snapshot_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "passjoin-persistence-{}-{tag}-{n}.snap",
        std::process::id()
    ))
}

/// RAII cleanup so failing tests don't leak files into the temp dir.
struct TempFile(PathBuf);

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn save_to_temp(index: &OnlineIndex, tag: &str) -> TempFile {
    let file = TempFile(temp_snapshot_path(tag));
    index.save(&file.0).expect("save must succeed");
    file
}

/// Asserts the loaded index is equivalent to `original`: same metadata,
/// same per-id strings (tombstones included), and byte-identical query
/// results for every τ ≤ τ_max over `queries`.
fn assert_equivalent(original: &OnlineIndex, loaded: &OnlineIndex, queries: &[Vec<u8>]) {
    assert_eq!(loaded.tau_max(), original.tau_max());
    assert_eq!(loaded.len(), original.len());
    assert_eq!(loaded.epoch(), original.epoch());
    // Stats agree except resident_bytes, which (deliberately) also counts
    // the pinned snapshot buffer on the loaded side.
    let (ls, os) = (loaded.stats(), original.stats());
    assert_eq!(
        (
            ls.live,
            ls.tombstones,
            ls.segment_entries,
            ls.short_strings,
            ls.epoch
        ),
        (
            os.live,
            os.tombstones,
            os.segment_entries,
            os.short_strings,
            os.epoch
        )
    );
    for id in 0..original.stats().live as u32 + original.stats().tombstones as u32 {
        assert_eq!(loaded.get(id), original.get(id), "string id {id}");
    }
    for q in queries {
        for tau in 0..=original.tau_max() {
            assert_eq!(
                loaded.matches(q, tau),
                original.matches(q, tau),
                "query {:?} at tau={tau}",
                String::from_utf8_lossy(q)
            );
        }
    }
}

fn small_corpus() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(
        proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 0..12),
        0..24,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn round_trip_on_random_corpora(strings in small_corpus(), tau_max in 1usize..5) {
        let index = OnlineIndex::from_strings(strings.iter(), tau_max);
        let file = save_to_temp(&index, "random");
        let loaded = OnlineIndex::load(&file.0).expect("load must succeed");
        // Probe with the corpus itself plus off-corpus neighbours.
        let mut queries = strings.clone();
        queries.push(b"abab".to_vec());
        queries.push(Vec::new());
        assert_equivalent(&index, &loaded, &queries);
    }

    #[test]
    fn round_trip_survives_churn(
        strings in small_corpus(),
        tau_max in 1usize..4,
        seed in proptest::arbitrary::any::<u64>(),
    ) {
        // Remove a pseudo-random subset first: tombstones, short-lane
        // holes, and emptied segment lists must all round-trip.
        let mut index = OnlineIndex::from_strings(strings.iter(), tau_max);
        let mut rng = StdRng::seed_from_u64(seed);
        for id in 0..strings.len() as u32 {
            if rng.gen_bool(0.35) {
                index.remove(id);
            }
        }
        let file = save_to_temp(&index, "churn");
        let loaded = OnlineIndex::load(&file.0).expect("load must succeed");
        assert_equivalent(&index, &loaded, &strings);
    }
}

/// A planted corpus: datagen base strings plus controlled near-duplicates
/// (the same shape `properties.rs` uses against the batch join).
fn planted_corpus(n: usize, seed: u64, max_edits: usize) -> Vec<Vec<u8>> {
    let base = datagen::DatasetSpec::new(datagen::DatasetKind::Author, n)
        .with_seed(seed)
        .generate();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37);
    let mut strings = Vec::with_capacity(2 * n);
    for s in base {
        if rng.gen_bool(0.5) {
            strings.push(datagen::mutate(&s, rng.gen_range(1..=max_edits), &mut rng));
        }
        strings.push(s);
    }
    strings
}

#[test]
fn round_trip_on_planted_corpus() {
    let strings = planted_corpus(300, 42, 2);
    let index = OnlineIndex::from_strings(strings.iter(), 3);
    let file = save_to_temp(&index, "planted");
    let loaded = OnlineIndex::load(&file.0).expect("load must succeed");
    let queries: Vec<Vec<u8>> = strings.iter().step_by(5).cloned().collect();
    assert_equivalent(&index, &loaded, &queries);
}

#[test]
fn loaded_index_stays_fully_mutable() {
    let strings = planted_corpus(100, 7, 2);
    let index = OnlineIndex::from_strings(strings.iter(), 2);
    let file = save_to_temp(&index, "mutable");
    let mut loaded = OnlineIndex::load(&file.0).expect("load must succeed");

    // Mutate the loaded index and a parallel in-memory twin identically;
    // they must stay equivalent (exercises removing arena-backed strings
    // and mixing owned inserts over the arena).
    let mut twin = OnlineIndex::from_strings(strings.iter(), 2);
    for id in (0..strings.len() as u32).step_by(3) {
        assert_eq!(loaded.remove(id), twin.remove(id));
    }
    let added_l = loaded.insert(b"freshly inserted after load");
    let added_t = twin.insert(b"freshly inserted after load");
    assert_eq!(added_l, added_t);
    for q in strings.iter().step_by(7) {
        assert_eq!(loaded.matches(q, 2), twin.matches(q, 2));
    }
    assert_eq!(
        loaded.matches(b"freshly inserted after load", 1),
        vec![(added_l, 0)]
    );

    // A snapshot save of the *mutated* loaded index round-trips again
    // (arena spans and owned strings interleave in the new arena).
    let file2 = save_to_temp(&loaded, "mutable-resave");
    let reloaded = OnlineIndex::load(&file2.0).expect("re-load must succeed");
    let queries: Vec<Vec<u8>> = strings.iter().step_by(7).cloned().collect();
    assert_equivalent(&loaded, &reloaded, &queries);
}

#[test]
fn loaded_stats_count_the_pinned_buffer_and_churn_releases_it() {
    let strings = planted_corpus(60, 11, 2);
    let index = OnlineIndex::from_strings(strings.iter(), 2);
    let file = save_to_temp(&index, "pinned");
    let file_size = std::fs::metadata(&file.0).unwrap().len();

    // A loaded index pins the whole snapshot buffer; resident_bytes must
    // say so (an operator sizing a box from --stats must not be lied to).
    let mut loaded = OnlineIndex::load(&file.0).unwrap();
    assert!(
        loaded.stats().resident_bytes >= file_size,
        "resident {} must count the pinned {file_size}-byte buffer",
        loaded.stats().resident_bytes
    );

    // Removing the last arena-backed string releases the buffer: a fully
    // churned loaded index converges to a built index's memory profile.
    for id in 0..strings.len() as u32 {
        assert!(loaded.remove(id));
    }
    assert_eq!(loaded.len(), 0);
    assert_eq!(loaded.stats().resident_bytes, 0);
    // And it keeps serving: post-release inserts and queries work.
    let id = loaded.insert(b"fresh after arena release");
    assert_eq!(
        loaded.matches(b"fresh after arena release", 1),
        vec![(id, 0)]
    );
}

#[test]
fn zero_length_arena_strings_keep_the_arena_alive() {
    // Empty strings occupy zero arena bytes but are live arena references:
    // removing the last *non-empty* loaded string must not release the
    // buffer out from under them.
    let mut index = OnlineIndex::new(2);
    let empty = index.insert(b"");
    let full = index.insert(b"abcdef");
    let file = save_to_temp(&index, "zero-len");
    let mut loaded = OnlineIndex::load(&file.0).unwrap();

    assert!(loaded.remove(full));
    // The empty string is still live and must stay queryable/savable.
    assert_eq!(loaded.get(empty), Some(&b""[..]));
    assert_eq!(loaded.matches(b"", 0), vec![(empty, 0)]);
    let resave = save_to_temp(&loaded, "zero-len-resave");
    assert_eq!(
        OnlineIndex::load(&resave.0).unwrap().get(empty),
        Some(&b""[..])
    );
    // Only once the empty string goes too is the buffer released.
    assert!(loaded.remove(empty));
    assert_eq!(loaded.stats().resident_bytes, 0);
}

#[test]
fn saves_are_deterministic() {
    let strings = planted_corpus(80, 3, 2);
    let mut index = OnlineIndex::from_strings(strings.iter(), 2);
    index.remove(5);
    let a = save_to_temp(&index, "det-a");
    let b = save_to_temp(&index, "det-b");
    assert_eq!(
        std::fs::read(&a.0).unwrap(),
        std::fs::read(&b.0).unwrap(),
        "same state must serialize to identical bytes"
    );
}

#[test]
fn save_is_atomic_over_an_existing_snapshot() {
    let strings = planted_corpus(40, 9, 2);
    let index = OnlineIndex::from_strings(strings.iter(), 2);
    let file = save_to_temp(&index, "atomic");
    // Re-saving over an existing snapshot must go through the temp-file
    // rename (no lingering sibling) and leave a loadable file.
    index.save(&file.0).unwrap();
    let mut tmp = file.0.as_os_str().to_owned();
    tmp.push(".tmp");
    assert!(
        !std::path::Path::new(&tmp).exists(),
        "temp file must not outlive a successful save"
    );
    assert_eq!(OnlineIndex::load(&file.0).unwrap().len(), index.len());

    // A *failed* save must leave the existing snapshot untouched: point
    // the save at a path whose parent directory does not exist.
    let bogus = file.0.join("sub/never.snap");
    assert!(matches!(index.save(&bogus), Err(PersistError::Io(_))));
    assert_eq!(OnlineIndex::load(&file.0).unwrap().len(), index.len());
}

#[test]
fn empty_index_round_trips() {
    let index = OnlineIndex::new(2);
    let file = save_to_temp(&index, "empty");
    let loaded = OnlineIndex::load(&file.0).unwrap();
    assert!(loaded.is_empty());
    assert_eq!(loaded.tau_max(), 2);
    assert!(loaded.matches(b"anything", 2).is_empty());
}

fn sample_snapshot_bytes() -> Vec<u8> {
    let strings = ["pass-join", "pass-joins", "snapshot", "ab", ""];
    let mut index = OnlineIndex::from_strings(strings.iter().map(|s| s.as_bytes()), 2);
    index.remove(2);
    let file = save_to_temp(&index, "corruption-base");
    std::fs::read(&file.0).unwrap()
}

fn load_bytes(bytes: &[u8], tag: &str) -> Result<OnlineIndex, PersistError> {
    let file = TempFile(temp_snapshot_path(tag));
    std::fs::write(&file.0, bytes).unwrap();
    OnlineIndex::load(&file.0)
}

#[test]
fn rejects_truncation_at_every_length() {
    let bytes = sample_snapshot_bytes();
    for cut in 0..bytes.len() {
        assert!(
            load_bytes(&bytes[..cut], "trunc").is_err(),
            "truncation to {cut}/{} bytes must be rejected",
            bytes.len()
        );
    }
}

#[test]
fn rejects_every_flipped_byte() {
    // Every byte of a snapshot is covered by the header CRC or a section
    // CRC, so *any* single-byte corruption must surface as a typed error.
    let bytes = sample_snapshot_bytes();
    for at in 0..bytes.len() {
        let mut flipped = bytes.clone();
        flipped[at] ^= 0x20;
        assert!(
            load_bytes(&flipped, "flip").is_err(),
            "flipped byte at offset {at} must be rejected"
        );
    }
}

#[test]
fn rejects_wrong_version_with_typed_error() {
    let mut bytes = sample_snapshot_bytes();
    // Patch the version field (offset 8) and leave everything else alone:
    // the loader must identify the *version* as the problem, not fail on
    // an opaque checksum error.
    bytes[8] = 0xFE;
    assert!(matches!(
        load_bytes(&bytes, "version"),
        Err(PersistError::UnsupportedVersion { found }) if found != 1
    ));
}

#[test]
fn rejects_non_snapshot_files_with_bad_magic() {
    assert!(matches!(
        load_bytes(b"this is not a snapshot file at all", "magic"),
        Err(PersistError::BadMagic { .. })
    ));
    assert!(matches!(
        load_bytes(b"", "empty"),
        Err(PersistError::Truncated { .. })
    ));
}

/// Hand-assembles a snapshot container from raw parts — a stand-in for a
/// *buggy producer*: framing and CRCs are valid, so only the loader's
/// structural cross-checks stand between these files and a query-time
/// panic.
mod inconsistent_producer {
    use super::*;
    use passjoin::OwnedSegmentIndex;
    use passjoin_persist::{segmap, SnapshotWriter};

    /// META + SPANS for one live string `"abcd"` (id 0) and one tombstone
    /// (id 1) at τ_max = 1, paired with the given segment map. The trailing
    /// 0 is the v2 backend code (owned).
    fn craft(segments: &OwnedSegmentIndex, tag: &str) -> Result<OnlineIndex, PersistError> {
        let mut meta = Vec::new();
        for v in [1u64, 0, 2, 1, 4, segments.entries(), 0] {
            meta.extend_from_slice(&v.to_le_bytes());
        }
        let mut spans = Vec::new();
        spans.extend_from_slice(&0u64.to_le_bytes()); // id 0: live "abcd"
        spans.extend_from_slice(&4u32.to_le_bytes());
        spans.extend_from_slice(&u64::MAX.to_le_bytes()); // id 1: tombstone
        spans.extend_from_slice(&0u32.to_le_bytes());

        let mut writer = SnapshotWriter::new();
        writer
            .section(1, meta)
            .section(2, spans)
            .section(3, b"abcd".to_vec())
            .section(4, segmap::encode(segments));
        let file = TempFile(temp_snapshot_path(tag));
        writer.save(&file.0)?;
        OnlineIndex::load(&file.0)
    }

    #[test]
    fn consistent_parts_load() {
        // The crafting itself is sound: postings matching the string
        // table load and answer queries.
        let mut segments = OwnedSegmentIndex::new(0, 1);
        segments.insert_owned(b"abcd", 0);
        let index = craft(&segments, "crafted-ok").expect("consistent parts must load");
        assert_eq!(index.matches(b"abcd", 1), vec![(0, 0)]);
    }

    #[test]
    fn rejects_postings_referencing_a_tombstone() {
        // Same posting count, but the references point at the removed id:
        // the query path would `expect` liveness and panic.
        let mut segments = OwnedSegmentIndex::new(0, 1);
        segments.insert_owned(b"abcd", 1);
        assert!(matches!(
            craft(&segments, "crafted-tombstone"),
            Err(PersistError::Corrupt { .. })
        ));
    }

    #[test]
    fn rejects_postings_with_mismatched_length() {
        // References a live id, but under the wrong string length: probing
        // would slice the 4-byte string with 5-length geometry and panic.
        let mut segments = OwnedSegmentIndex::new(0, 1);
        segments.insert_owned(b"abcde", 0);
        assert!(matches!(
            craft(&segments, "crafted-length"),
            Err(PersistError::Corrupt { .. })
        ));
    }

    #[test]
    fn rejects_non_even_partition_schemes() {
        // The online planner probes with the even partition; a left-heavy
        // snapshot would load and then silently miss every match.
        use passjoin::PartitionScheme;
        let mut segments = OwnedSegmentIndex::with_scheme(0, 1, PartitionScheme::LeftHeavy);
        segments.insert_owned(b"abcd", 0);
        assert!(matches!(
            craft(&segments, "crafted-scheme"),
            Err(PersistError::Corrupt { .. })
        ));
    }

    #[test]
    fn rejects_incomplete_posting_coverage() {
        // One of the live long string's τ_max+1 postings is missing (the
        // entry count in META is kept honest): the index would silently
        // miss matches that probe the absent slot.
        let mut segments = OwnedSegmentIndex::new(0, 1);
        segments
            .restore_posting(4, 1, b"ab".to_vec().into_boxed_slice(), vec![0])
            .unwrap();
        assert!(matches!(
            craft(&segments, "crafted-missing-slot"),
            Err(PersistError::Corrupt { .. })
        ));
    }

    #[test]
    fn rejects_hostile_tau_max_without_panicking() {
        // META claiming tau_max = u32::MAX (with a matching SEGMENTS tau
        // field, so the codec's equality check passes) must be a typed
        // error — not an arithmetic overflow panic in debug builds or a
        // silently accepted bogus index in release.
        let mut meta = Vec::new();
        for v in [u32::MAX as u64, 0, 0, 0, 0, 0, 0] {
            meta.extend_from_slice(&v.to_le_bytes());
        }
        let mut segments_payload = Vec::new();
        segments_payload.extend_from_slice(&0u32.to_le_bytes()); // even scheme
        segments_payload.extend_from_slice(&u32::MAX.to_le_bytes()); // tau
        segments_payload.extend_from_slice(&0u64.to_le_bytes()); // no postings
        let mut writer = SnapshotWriter::new();
        writer
            .section(1, meta)
            .section(2, Vec::new())
            .section(3, Vec::new())
            .section(4, segments_payload);
        let file = TempFile(temp_snapshot_path("crafted-tau-bomb"));
        writer.save(&file.0).unwrap();
        assert!(matches!(
            OnlineIndex::load(&file.0),
            Err(PersistError::Corrupt { .. })
        ));
    }

    #[test]
    fn rejects_hostile_posting_length_without_huge_allocation() {
        // A tiny CRC-valid file whose one posting frame claims a
        // ~4-billion-byte string length must be rejected cheaply — not
        // balloon the per-length table into an OOM abort during the
        // pre-reservation skim.
        let mut meta = Vec::new();
        for v in [1u64, 0, 2, 1, 4, 2, 0] {
            meta.extend_from_slice(&v.to_le_bytes());
        }
        let mut spans = Vec::new();
        spans.extend_from_slice(&0u64.to_le_bytes());
        spans.extend_from_slice(&4u32.to_le_bytes());
        spans.extend_from_slice(&u64::MAX.to_le_bytes());
        spans.extend_from_slice(&0u32.to_le_bytes());
        let mut segments_payload = Vec::new();
        segments_payload.extend_from_slice(&0u32.to_le_bytes()); // even scheme
        segments_payload.extend_from_slice(&1u32.to_le_bytes()); // tau = 1
        segments_payload.extend_from_slice(&1u64.to_le_bytes()); // one posting
        segments_payload.extend_from_slice(&(u32::MAX - 1).to_le_bytes()); // l bomb
        segments_payload.extend_from_slice(&1u32.to_le_bytes()); // slot
        segments_payload.extend_from_slice(&0u32.to_le_bytes()); // key_len
        segments_payload.extend_from_slice(&0u32.to_le_bytes()); // n_ids
        let mut writer = SnapshotWriter::new();
        writer
            .section(1, meta)
            .section(2, spans)
            .section(3, b"abcd".to_vec())
            .section(4, segments_payload);
        let file = TempFile(temp_snapshot_path("crafted-length-bomb"));
        writer.save(&file.0).unwrap();
        assert!(matches!(
            OnlineIndex::load(&file.0),
            Err(PersistError::Corrupt { .. })
        ));
    }

    #[test]
    fn rejects_overflowing_universe() {
        // A META section claiming a universe whose span-table size
        // overflows must be a typed error, not a panic or huge allocation.
        let mut meta = Vec::new();
        for v in [1u64, 0, u64::MAX / 2, 0, 0, 0, 0] {
            meta.extend_from_slice(&v.to_le_bytes());
        }
        let segments = OwnedSegmentIndex::new(0, 1);
        let mut writer = SnapshotWriter::new();
        writer
            .section(1, meta)
            .section(2, Vec::new())
            .section(3, Vec::new())
            .section(4, segmap::encode(&segments));
        let file = TempFile(temp_snapshot_path("crafted-overflow"));
        writer.save(&file.0).unwrap();
        assert!(matches!(
            OnlineIndex::load(&file.0),
            Err(PersistError::Corrupt { .. })
        ));
    }
}

#[test]
fn missing_file_is_an_io_error() {
    let path = temp_snapshot_path("never-written");
    assert!(matches!(OnlineIndex::load(&path), Err(PersistError::Io(_))));
}

/// The interned key backend's persistence contract: round trips restore
/// the backend and answer identically, the new dictionary + id-keyed
/// posting section survives the same corruption sweep as the rest of the
/// file, and v1 (owned-key, pre-backend) snapshots keep loading.
mod interned_backend {
    use super::*;
    use passjoin_online::KeyBackend;

    fn interned_index(strings: &[Vec<u8>], tau_max: usize) -> OnlineIndex {
        OnlineIndex::builder(tau_max)
            .key_backend(KeyBackend::Interned)
            .build_from(strings.iter())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn round_trip_on_random_corpora(strings in small_corpus(), tau_max in 1usize..5) {
            let index = interned_index(&strings, tau_max);
            let file = save_to_temp(&index, "interned-random");
            let loaded = OnlineIndex::load(&file.0).expect("load must succeed");
            prop_assert_eq!(loaded.key_backend(), KeyBackend::Interned);
            let mut queries = strings.clone();
            queries.push(b"abab".to_vec());
            queries.push(Vec::new());
            assert_equivalent(&index, &loaded, &queries);
        }

        #[test]
        fn round_trip_survives_churn(
            strings in small_corpus(),
            tau_max in 1usize..4,
            seed in proptest::arbitrary::any::<u64>(),
        ) {
            // Churn first: released-and-revived dictionary ids, tombstones,
            // and emptied posting keys must all round-trip. The save
            // compacts dead dictionary entries, so the loaded index may
            // hold *fewer* interner ids — queries must not notice.
            let mut index = interned_index(&strings, tau_max);
            let mut rng = StdRng::seed_from_u64(seed);
            for id in 0..strings.len() as u32 {
                if rng.gen_bool(0.35) {
                    index.remove(id);
                }
            }
            let file = save_to_temp(&index, "interned-churn");
            let loaded = OnlineIndex::load(&file.0).expect("load must succeed");
            prop_assert_eq!(loaded.key_backend(), KeyBackend::Interned);
            assert_equivalent(&index, &loaded, &strings);
        }
    }

    #[test]
    fn round_trip_on_planted_corpus_and_stays_mutable() {
        let strings = planted_corpus(200, 42, 2);
        let index = interned_index(&strings, 3);
        let file = save_to_temp(&index, "interned-planted");
        let mut loaded = OnlineIndex::load(&file.0).expect("load must succeed");
        let queries: Vec<Vec<u8>> = strings.iter().step_by(5).cloned().collect();
        assert_equivalent(&index, &loaded, &queries);

        // The loaded index keeps mutating like a built one (arena-backed
        // removes release dictionary refs; fresh inserts re-intern).
        let mut twin = interned_index(&strings, 3);
        for id in (0..strings.len() as u32).step_by(3) {
            assert_eq!(loaded.remove(id), twin.remove(id));
        }
        assert_eq!(
            loaded.insert(b"fresh after interned load"),
            twin.insert(b"fresh after interned load")
        );
        for q in strings.iter().step_by(7) {
            assert_eq!(loaded.matches(q, 3), twin.matches(q, 3));
        }
        // And a re-save of the mutated loaded index round-trips again.
        let file2 = save_to_temp(&loaded, "interned-resave");
        let reloaded = OnlineIndex::load(&file2.0).expect("re-load must succeed");
        assert_equivalent(&loaded, &reloaded, &queries);
    }

    #[test]
    fn saves_are_deterministic_and_history_independent() {
        let strings = planted_corpus(80, 3, 2);
        let mut index = interned_index(&strings, 2);
        index.remove(5);
        let a = save_to_temp(&index, "interned-det-a");
        let b = save_to_temp(&index, "interned-det-b");
        assert_eq!(std::fs::read(&a.0).unwrap(), std::fs::read(&b.0).unwrap());

        // A different insertion history with the same final content
        // serializes to the same bytes: the dictionary is renumbered by
        // byte order and dead ids are compacted on save.
        let mut churned = OnlineIndex::builder(2)
            .key_backend(KeyBackend::Interned)
            .build();
        churned.insert(b"a temporary resident string");
        for s in &strings {
            churned.insert(s);
        }
        assert!(churned.remove(0), "drop the temporary string");
        // Rebuild id alignment: ids shift by one, so compare via a fresh
        // save of an identically-shaped index instead.
        let mut same_history = OnlineIndex::builder(2)
            .key_backend(KeyBackend::Interned)
            .build();
        same_history.insert(b"a temporary resident string");
        for s in &strings {
            same_history.insert(s);
        }
        assert!(same_history.remove(0));
        let c = save_to_temp(&churned, "interned-det-c");
        let d = save_to_temp(&same_history, "interned-det-d");
        assert_eq!(std::fs::read(&c.0).unwrap(), std::fs::read(&d.0).unwrap());
    }

    #[test]
    fn empty_interned_index_round_trips() {
        let index = OnlineIndex::builder(2)
            .key_backend(KeyBackend::Interned)
            .build();
        let file = save_to_temp(&index, "interned-empty");
        let loaded = OnlineIndex::load(&file.0).unwrap();
        assert!(loaded.is_empty());
        assert_eq!(loaded.key_backend(), KeyBackend::Interned);
        assert!(loaded.matches(b"anything", 2).is_empty());
    }

    fn interned_snapshot_bytes() -> Vec<u8> {
        let strings = ["pass-join", "pass-joins", "snapshot", "ab", ""];
        let mut index = OnlineIndex::builder(2)
            .key_backend(KeyBackend::Interned)
            .build_from(strings.iter().map(|s| s.as_bytes()));
        index.remove(2);
        let file = save_to_temp(&index, "interned-corruption-base");
        std::fs::read(&file.0).unwrap()
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let bytes = interned_snapshot_bytes();
        for cut in 0..bytes.len() {
            assert!(
                load_bytes(&bytes[..cut], "interned-trunc").is_err(),
                "truncation to {cut}/{} bytes must be rejected",
                bytes.len()
            );
        }
    }

    #[test]
    fn rejects_every_flipped_byte() {
        // The dictionary + id-keyed posting section is covered by its CRC
        // like every other section: any single-byte corruption must
        // surface as a typed error, never a panic or a silent wrong index.
        let bytes = interned_snapshot_bytes();
        for at in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[at] ^= 0x20;
            assert!(
                load_bytes(&flipped, "interned-flip").is_err(),
                "flipped byte at offset {at} must be rejected"
            );
        }
    }

    /// CRC-valid files from a lying producer: the interned section's
    /// structural checks must reject what framing cannot.
    mod inconsistent_producer {
        use super::*;
        use passjoin::InternedSegmentIndex;
        use passjoin_persist::{segmap, SnapshotWriter};

        /// META + SPANS for one live string `"abcd"` (id 0) and one
        /// tombstone (id 1) at τ_max = 1, backend code 1 (interned),
        /// paired with the given interned segment index.
        fn craft(segments: &InternedSegmentIndex, tag: &str) -> Result<OnlineIndex, PersistError> {
            let mut meta = Vec::new();
            for v in [1u64, 0, 2, 1, 4, segments.entries(), 1] {
                meta.extend_from_slice(&v.to_le_bytes());
            }
            let mut spans = Vec::new();
            spans.extend_from_slice(&0u64.to_le_bytes()); // id 0: live "abcd"
            spans.extend_from_slice(&4u32.to_le_bytes());
            spans.extend_from_slice(&u64::MAX.to_le_bytes()); // id 1: tombstone
            spans.extend_from_slice(&0u32.to_le_bytes());

            let mut writer = SnapshotWriter::new();
            writer
                .section(1, meta)
                .section(2, spans)
                .section(3, b"abcd".to_vec())
                .section(5, segmap::encode_interned(segments));
            let file = TempFile(temp_snapshot_path(tag));
            writer.save(&file.0)?;
            OnlineIndex::load(&file.0)
        }

        #[test]
        fn consistent_parts_load() {
            let mut segments = InternedSegmentIndex::new(0, 1);
            segments.insert(b"abcd", 0);
            let index = craft(&segments, "interned-crafted-ok").expect("consistent parts load");
            assert_eq!(index.key_backend(), KeyBackend::Interned);
            assert_eq!(index.matches(b"abcd", 1), vec![(0, 0)]);
        }

        #[test]
        fn rejects_postings_referencing_a_tombstone() {
            let mut segments = InternedSegmentIndex::new(0, 1);
            segments.insert(b"abcd", 1);
            assert!(matches!(
                craft(&segments, "interned-crafted-tombstone"),
                Err(PersistError::Corrupt { .. })
            ));
        }

        #[test]
        fn rejects_postings_with_mismatched_length() {
            let mut segments = InternedSegmentIndex::new(0, 1);
            segments.insert(b"abcde", 0);
            assert!(matches!(
                craft(&segments, "interned-crafted-length"),
                Err(PersistError::Corrupt { .. })
            ));
        }

        #[test]
        fn rejects_owned_section_under_interned_backend() {
            // META claims the interned backend but the file carries the
            // byte-keyed section 4: the required section 5 is missing.
            let mut meta = Vec::new();
            for v in [1u64, 0, 2, 1, 4, 2, 1] {
                meta.extend_from_slice(&v.to_le_bytes());
            }
            let mut spans = Vec::new();
            spans.extend_from_slice(&0u64.to_le_bytes());
            spans.extend_from_slice(&4u32.to_le_bytes());
            spans.extend_from_slice(&u64::MAX.to_le_bytes());
            spans.extend_from_slice(&0u32.to_le_bytes());
            let mut owned = passjoin::OwnedSegmentIndex::new(0, 1);
            owned.insert_owned(b"abcd", 0);
            let mut writer = SnapshotWriter::new();
            writer
                .section(1, meta)
                .section(2, spans)
                .section(3, b"abcd".to_vec())
                .section(4, segmap::encode(&owned));
            let file = TempFile(temp_snapshot_path("interned-crafted-wrong-section"));
            writer.save(&file.0).unwrap();
            assert!(matches!(
                OnlineIndex::load(&file.0),
                Err(PersistError::MissingSection { section: 5 })
            ));
        }

        #[test]
        fn rejects_unknown_backend_code() {
            let mut meta = Vec::new();
            for v in [1u64, 0, 0, 0, 0, 0, 7] {
                meta.extend_from_slice(&v.to_le_bytes());
            }
            let segments = InternedSegmentIndex::new(0, 1);
            let mut writer = SnapshotWriter::new();
            writer
                .section(1, meta)
                .section(2, Vec::new())
                .section(3, Vec::new())
                .section(5, segmap::encode_interned(&segments));
            let file = TempFile(temp_snapshot_path("interned-crafted-backend-code"));
            writer.save(&file.0).unwrap();
            assert!(matches!(
                OnlineIndex::load(&file.0),
                Err(PersistError::Corrupt { .. })
            ));
        }
    }

    /// A golden v1 snapshot written by the pre-backend build (6-field
    /// META, byte-keyed section 4, container version 1): it must keep
    /// loading as an owned-key index and answer byte-identically to a
    /// fresh build of the same collection.
    #[test]
    fn v1_snapshots_still_load() {
        let bytes = include_bytes!("data/v1-owned.snap");
        assert_eq!(&bytes[8..12], &1u32.to_le_bytes(), "fixture is v1");
        let loaded = load_bytes(bytes, "v1-golden").expect("v1 snapshot must load");
        assert_eq!(loaded.key_backend(), KeyBackend::Owned);

        // The fixture's collection: five strings, id 2 removed.
        let strings = ["pass-join", "pass-joins", "snapshot", "ab", ""];
        let mut fresh = OnlineIndex::from_strings(strings.iter().map(|s| s.as_bytes()), 2);
        fresh.remove(2);
        assert_eq!(loaded.len(), fresh.len());
        assert_eq!(loaded.tau_max(), fresh.tau_max());
        assert_eq!(loaded.get(2), None, "tombstone round-trips");
        for q in strings.iter().map(|s| s.as_bytes()).chain([&b"pass"[..]]) {
            for tau in 0..=2 {
                assert_eq!(loaded.matches(q, tau), fresh.matches(q, tau), "query {q:?}");
            }
        }

        // Re-saving a v1-loaded index writes the current version; it keeps
        // round-tripping.
        let resave = save_to_temp(&loaded, "v1-resave");
        let reloaded = OnlineIndex::load(&resave.0).unwrap();
        assert_eq!(reloaded.len(), fresh.len());
        assert_eq!(
            std::fs::read(&resave.0).unwrap()[8..12],
            passjoin_persist::FORMAT_VERSION.to_le_bytes()
        );
    }
}

/// The direct-probe load path (format v3, sections 6–9): a
/// [`OnlineIndex::load_direct`] of any snapshot must be indistinguishable
/// from the [`OnlineIndex::load`] of the same file — byte-identical query
/// results, identical metadata, byte-identical re-saves — while never
/// replaying a posting; it must stay fully mutable through backend
/// promotion; and the appendix gets the same corruption/lying-producer
/// treatment as every other section.
mod direct_backend {
    use super::*;
    use passjoin_online::KeyBackend;

    fn build(strings: &[Vec<u8>], tau_max: usize, backend: KeyBackend) -> OnlineIndex {
        OnlineIndex::builder(tau_max)
            .key_backend(backend)
            .build_from(strings.iter())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn direct_load_answers_identically_to_rebuild_load(
            strings in small_corpus(),
            tau_max in 1usize..5,
            seed in proptest::arbitrary::any::<u64>(),
        ) {
            let origin = if seed % 2 == 0 { KeyBackend::Interned } else { KeyBackend::Owned };
            let mut index = build(&strings, tau_max, origin);
            let mut rng = StdRng::seed_from_u64(seed);
            for id in 0..strings.len() as u32 {
                if rng.gen_bool(0.3) {
                    index.remove(id);
                }
            }
            let file = save_to_temp(&index, "direct-diff");
            let rebuilt = OnlineIndex::load(&file.0).expect("rebuild load must succeed");
            let direct = OnlineIndex::load_direct(&file.0).expect("direct load must succeed");
            prop_assert_eq!(rebuilt.key_backend(), origin);
            prop_assert_eq!(direct.key_backend(), KeyBackend::Direct);
            let mut queries = strings.clone();
            queries.push(b"abab".to_vec());
            queries.push(Vec::new());
            assert_equivalent(&rebuilt, &direct, &queries);
        }
    }

    #[test]
    fn direct_resave_is_byte_identical_for_both_origins() {
        // A direct-loaded index re-saves through its recorded origin: the
        // file it writes must equal the file it was loaded from, byte for
        // byte — the strongest form of "nothing was lost by not rebuilding".
        for origin in [KeyBackend::Owned, KeyBackend::Interned] {
            let strings = planted_corpus(120, 17, 2);
            let mut index = build(&strings, 2, origin);
            index.remove(9);
            let file = save_to_temp(&index, "direct-resave");
            let direct = OnlineIndex::load_direct(&file.0).unwrap();
            let resave = save_to_temp(&direct, "direct-resave-out");
            assert_eq!(
                std::fs::read(&file.0).unwrap(),
                std::fs::read(&resave.0).unwrap(),
                "direct re-save must be byte-identical ({} origin)",
                origin.name()
            );
        }
    }

    #[test]
    fn first_mutation_promotes_back_to_the_origin_backend() {
        for origin in [KeyBackend::Owned, KeyBackend::Interned] {
            let strings = planted_corpus(150, 23, 2);
            let file = save_to_temp(&build(&strings, 2, origin), "direct-promote");
            let mut direct = OnlineIndex::load_direct(&file.0).unwrap();
            let mut twin = OnlineIndex::load(&file.0).unwrap();
            assert_eq!(direct.key_backend(), KeyBackend::Direct);

            // Queries before mutation leave the lane untouched.
            assert_eq!(direct.matches(&strings[0], 2), twin.matches(&strings[0], 2));
            assert_eq!(direct.key_backend(), KeyBackend::Direct);

            // The first mutation rebuilds the origin backend; afterwards
            // the two indices stay in lockstep through further churn.
            for id in (0..strings.len() as u32).step_by(4) {
                assert_eq!(direct.remove(id), twin.remove(id));
            }
            assert_eq!(
                direct.key_backend(),
                origin,
                "promotion restores the origin"
            );
            assert_eq!(
                direct.insert(b"inserted after promotion"),
                twin.insert(b"inserted after promotion")
            );
            for q in strings.iter().step_by(7) {
                assert_eq!(direct.matches(q, 2), twin.matches(q, 2));
            }
            let queries: Vec<Vec<u8>> = strings.iter().step_by(9).cloned().collect();
            assert_equivalent(&twin, &direct, &queries);
        }
    }

    #[test]
    fn empty_index_loads_direct() {
        let file = save_to_temp(&OnlineIndex::new(2), "direct-empty");
        let loaded = OnlineIndex::load_direct(&file.0).unwrap();
        assert!(loaded.is_empty());
        assert!(loaded.matches(b"anything", 2).is_empty());
    }

    #[test]
    #[should_panic(expected = "load-only")]
    fn builder_rejects_the_direct_backend() {
        let _ = OnlineIndex::builder(2).key_backend(KeyBackend::Direct);
    }

    #[test]
    fn direct_load_rejects_truncation_at_every_length() {
        let bytes = sample_snapshot_bytes();
        for cut in 0..bytes.len() {
            let file = TempFile(temp_snapshot_path("direct-trunc"));
            std::fs::write(&file.0, &bytes[..cut]).unwrap();
            assert!(
                OnlineIndex::load_direct(&file.0).is_err(),
                "truncation to {cut}/{} bytes must be rejected",
                bytes.len()
            );
        }
    }

    #[test]
    fn direct_load_rejects_every_flipped_byte() {
        // Sections 6–9 are CRC-covered like the rest of the file, and the
        // eager open checks them even though the direct path never decodes
        // the hash-map section.
        let bytes = sample_snapshot_bytes();
        for at in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[at] ^= 0x20;
            let file = TempFile(temp_snapshot_path("direct-flip"));
            std::fs::write(&file.0, &flipped).unwrap();
            assert!(
                OnlineIndex::load_direct(&file.0).is_err(),
                "flipped byte at offset {at} must be rejected"
            );
        }
    }

    /// CRC-valid v3 files from a lying producer: the appendix's structural
    /// validation must reject what framing cannot.
    mod inconsistent_producer {
        use super::*;
        use passjoin::PartitionScheme;
        use passjoin_persist::{format, segdirect, segmap, SnapshotWriter};
        use sj_common::StringId;

        /// META + SPANS + STRINGS + section 4 for one live `"abcd"` (id 0)
        /// and one tombstone (id 1) at τ_max = 1, plus a direct appendix
        /// built from `postings` — which may lie.
        fn craft(
            entries: u64,
            postings: &[(usize, usize, &[u8], &[StringId])],
            tag: &str,
        ) -> Result<OnlineIndex, PersistError> {
            let mut meta = Vec::new();
            for v in [1u64, 0, 2, 1, 4, entries, 0] {
                meta.extend_from_slice(&v.to_le_bytes());
            }
            let mut spans = Vec::new();
            spans.extend_from_slice(&0u64.to_le_bytes()); // id 0: live "abcd"
            spans.extend_from_slice(&4u32.to_le_bytes());
            spans.extend_from_slice(&u64::MAX.to_le_bytes()); // id 1: tombstone
            spans.extend_from_slice(&0u32.to_le_bytes());
            let seg = segmap::encode_with(PartitionScheme::Even, 1, |f| {
                for &(l, slot, key, ids) in postings {
                    f(l, slot, key, ids);
                }
            });
            let direct = segdirect::encode_direct(PartitionScheme::Even, 1, |f| {
                for &(l, slot, key, ids) in postings {
                    f(l, slot, key, ids);
                }
            });
            let mut ids_at = format::payload_base(8) as u64;
            for len in [
                meta.len(),
                spans.len(),
                4,
                seg.len(),
                direct.dir.len(),
                direct.runs.len(),
                direct.keys.len(),
            ] {
                ids_at += len as u64;
            }
            let mut writer = SnapshotWriter::new();
            writer
                .section(1, meta)
                .section(2, spans)
                .section(3, b"abcd".to_vec())
                .section(4, seg);
            for (id, payload) in direct.finish(ids_at) {
                writer.section(id, payload);
            }
            let file = TempFile(temp_snapshot_path(tag));
            writer.save(&file.0)?;
            OnlineIndex::load_direct(&file.0)
        }

        #[test]
        fn consistent_parts_load() {
            // "abcd" at τ=1 partitions into "ab" (slot 1) + "cd" (slot 2).
            let postings: &[(usize, usize, &[u8], &[StringId])] =
                &[(4, 1, b"ab", &[0]), (4, 2, b"cd", &[0])];
            let index = craft(2, postings, "direct-crafted-ok").expect("consistent parts load");
            assert_eq!(index.key_backend(), KeyBackend::Direct);
            assert_eq!(index.matches(b"abcd", 1), vec![(0, 0)]);
        }

        #[test]
        fn rejects_unsorted_posting_ids() {
            // Probing merges sorted lists; unsorted ids would corrupt
            // result order downstream.
            let postings: &[(usize, usize, &[u8], &[StringId])] =
                &[(4, 1, b"ab", &[1, 0]), (4, 2, b"cd", &[0, 1])];
            assert!(matches!(
                craft(4, postings, "direct-crafted-unsorted"),
                Err(PersistError::Corrupt { .. })
            ));
        }

        #[test]
        fn rejects_postings_referencing_a_tombstone() {
            let postings: &[(usize, usize, &[u8], &[StringId])] =
                &[(4, 1, b"ab", &[1]), (4, 2, b"cd", &[1])];
            assert!(matches!(
                craft(2, postings, "direct-crafted-tombstone"),
                Err(PersistError::Corrupt { .. })
            ));
        }

        #[test]
        fn rejects_keys_breaking_the_partition_geometry() {
            // Slot 1 of an even 2-partition of length 4 is 2 bytes; a
            // 3-byte key there would make probes slice out of bounds.
            let postings: &[(usize, usize, &[u8], &[StringId])] =
                &[(4, 1, b"abc", &[0]), (4, 2, b"d", &[0])];
            assert!(matches!(
                craft(2, postings, "direct-crafted-geometry"),
                Err(PersistError::Corrupt { .. })
            ));
        }

        #[test]
        fn rejects_entry_count_lies() {
            let postings: &[(usize, usize, &[u8], &[StringId])] =
                &[(4, 1, b"ab", &[0]), (4, 2, b"cd", &[0])];
            assert!(matches!(
                craft(7, postings, "direct-crafted-count"),
                Err(PersistError::Corrupt { .. })
            ));
        }

        #[test]
        fn rejects_a_dir_section_whose_blob_sizes_lie() {
            // Patch n_entries inside an otherwise-valid DIR payload (the
            // writer recomputes CRCs, so only the structural cross-check
            // can catch it): the id blob no longer matches the directory.
            let strings = planted_corpus(40, 31, 2);
            let index = OnlineIndex::from_strings(strings.iter(), 2);
            let file = save_to_temp(&index, "direct-dir-lie-base");
            let bytes = std::fs::read(&file.0).unwrap();
            let parsed = passjoin_persist::SnapshotFile::parse(bytes.into()).unwrap();
            let mut writer = SnapshotWriter::new();
            for id in [1u32, 2, 3, 4] {
                writer.section(id, parsed.section(id).unwrap().to_vec());
            }
            let mut dir = parsed.section(6).unwrap().to_vec();
            let wrong = (index.stats().segment_entries + 1).to_le_bytes();
            dir[24..32].copy_from_slice(&wrong); // n_entries field
            writer.section(6, dir);
            for id in [7u32, 8, 9] {
                writer.section(id, parsed.section(id).unwrap().to_vec());
            }
            let out = TempFile(temp_snapshot_path("direct-dir-lie"));
            writer.save(&out.0).unwrap();
            assert!(matches!(
                OnlineIndex::load_direct(&out.0),
                Err(PersistError::Corrupt { .. })
            ));
            // The rebuild path never reads the appendix and still loads.
            OnlineIndex::load(&out.0).expect("rebuild load ignores the appendix");
        }
    }

    /// Golden v2 snapshots written by the pre-appendix build: they must
    /// keep loading on the rebuild path with their recorded backend, and
    /// the direct path must report the appendix missing — never silently
    /// rebuild.
    #[test]
    fn v2_snapshots_still_load_and_direct_reports_missing() {
        for (bytes, backend) in [
            (&include_bytes!("data/v2-owned.snap")[..], KeyBackend::Owned),
            (
                &include_bytes!("data/v2-interned.snap")[..],
                KeyBackend::Interned,
            ),
        ] {
            assert_eq!(&bytes[8..12], &2u32.to_le_bytes(), "fixture is v2");
            let loaded = load_bytes(bytes, "v2-golden").expect("v2 snapshot must load");
            assert_eq!(loaded.key_backend(), backend);

            // The fixtures' collection: five strings, id 2 removed.
            let strings = ["pass-join", "pass-joins", "snapshot", "ab", ""];
            let mut fresh = OnlineIndex::builder(2)
                .key_backend(backend)
                .build_from(strings.iter().map(|s| s.as_bytes()));
            fresh.remove(2);
            assert_eq!(loaded.len(), fresh.len());
            assert_eq!(loaded.get(2), None, "tombstone round-trips");
            for q in strings.iter().map(|s| s.as_bytes()).chain([&b"pass"[..]]) {
                for tau in 0..=2 {
                    assert_eq!(loaded.matches(q, tau), fresh.matches(q, tau), "query {q:?}");
                }
            }

            // No appendix → the direct path refuses rather than rebuilds.
            let file = TempFile(temp_snapshot_path("v2-direct"));
            std::fs::write(&file.0, bytes).unwrap();
            assert!(matches!(
                OnlineIndex::load_direct(&file.0),
                Err(PersistError::MissingSection { .. })
            ));

            // A re-save of the v2-loaded index writes v3 with the appendix
            // and becomes direct-loadable.
            let resave = save_to_temp(&loaded, "v2-resave");
            let direct = OnlineIndex::load_direct(&resave.0).unwrap();
            assert_eq!(direct.matches(b"pass-join", 1).len(), 2);
        }
    }
}
