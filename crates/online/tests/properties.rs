//! The online index must be **exactly** as complete as the batch join:
//! querying every string of a collection at τ must reproduce
//! `PassJoin::self_join`'s pair set, for every τ up to the index's τ_max —
//! on adversarially dense random corpora and on planted near-duplicate
//! corpora from `datagen`. On top of that: results must be independent of
//! insertion order, survive insert → remove → insert churn, and agree
//! across the single, batched, parallel, cached, and snapshot query paths.

use passjoin::PassJoin;
use passjoin_online::{CachePolicy, Match, OnlineIndex, Parallelism, Queryable, SearchRequest};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sj_common::{SimilarityJoin, StringCollection};

/// Uniform-τ batch through the typed API, with a thread-count hint.
fn batch<S: Queryable>(
    source: &S,
    queries: &[Vec<u8>],
    tau: usize,
    threads: usize,
) -> Vec<Vec<Match>> {
    let reqs: Vec<SearchRequest> = queries
        .iter()
        .map(|q| SearchRequest::borrowed(q, tau).with_parallelism(Parallelism::Threads(threads)))
        .collect();
    source.search_batch(&reqs).into_matches()
}

/// Derives the self-join pair set by querying every string: ids equal input
/// positions (insertion order), so pairs are directly comparable with
/// `PassJoin` output.
fn pairs_via_queries(index: &OnlineIndex, strings: &[Vec<u8>], tau: usize) -> Vec<(u32, u32)> {
    let mut pairs = Vec::new();
    for (i, s) in strings.iter().enumerate() {
        for (j, _) in index.matches(s, tau) {
            let i = i as u32;
            if i != j {
                pairs.push(if i < j { (i, j) } else { (j, i) });
            }
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

fn check_matches_batch_join(strings: &[Vec<u8>], tau_max: usize) {
    let index = OnlineIndex::from_strings(strings.iter(), tau_max);
    let collection = StringCollection::new(strings.to_vec());
    for tau in 0..=tau_max {
        let expected = PassJoin::new()
            .self_join(&collection, tau)
            .normalized_pairs();
        let got = pairs_via_queries(&index, strings, tau);
        assert_eq!(
            got,
            expected,
            "τ={tau}/τ_max={tau_max} corpus={:?}",
            strings
                .iter()
                .map(|s| String::from_utf8_lossy(s).into_owned())
                .collect::<Vec<_>>()
        );
    }
    // Distances are exact, and every query at least finds the string itself.
    for (i, s) in strings.iter().enumerate() {
        for (j, d) in index.matches(s, tau_max) {
            assert_eq!(d, editdist::edit_distance(s, &strings[j as usize]));
        }
        assert!(index
            .matches(s, 0)
            .iter()
            .any(|&(j, d)| j == i as u32 && d == 0));
    }
}

fn dense_corpus() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(
        proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 0..12),
        0..24,
    )
}

fn wide_corpus() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(97u8..=122, 0..30), 0..16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matches_batch_join_dense(strings in dense_corpus(), tau_max in 1usize..5) {
        check_matches_batch_join(&strings, tau_max);
    }

    #[test]
    fn matches_batch_join_wide(strings in wide_corpus(), tau_max in 1usize..6) {
        check_matches_batch_join(&strings, tau_max);
    }

    #[test]
    fn batch_paths_agree_with_single_queries(strings in dense_corpus(), tau_max in 1usize..4) {
        let index = OnlineIndex::from_strings(strings.iter(), tau_max);
        let queries: Vec<Vec<u8>> = strings.to_vec();
        let single: Vec<_> = queries.iter().map(|q| index.matches(q, tau_max)).collect();
        prop_assert_eq!(&batch(&index, &queries, tau_max, 1), &single);
        prop_assert_eq!(&batch(&index, &queries, tau_max, 3), &single);
        prop_assert_eq!(&batch(&index.snapshot(), &queries, tau_max, 2), &single);
    }

    #[test]
    fn external_queries_match_brute_force(
        strings in dense_corpus(),
        queries in proptest::collection::vec(
            proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 0..16),
            1..16,
        ),
        tau_max in 1usize..5,
    ) {
        // Queries that are *not* corpus members (longer, shorter, or just
        // absent) must agree with brute force at every τ ≤ τ_max — the
        // batch-join comparison above only ever queries corpus strings,
        // which cannot catch window bugs that need |q| ≠ |s| asymmetry.
        let index = OnlineIndex::from_strings(strings.iter(), tau_max);
        for q in &queries {
            for tau in 0..=tau_max {
                let mut expected: Vec<(u32, usize)> = strings
                    .iter()
                    .enumerate()
                    .filter_map(|(i, s)| {
                        let d = editdist::edit_distance(s, q);
                        (d <= tau).then_some((i as u32, d))
                    })
                    .collect();
                expected.sort_unstable();
                prop_assert_eq!(
                    index.matches(q, tau),
                    expected,
                    "tau={} tau_max={} q={:?}",
                    tau,
                    tau_max,
                    String::from_utf8_lossy(q)
                );
            }
        }
    }

    #[test]
    fn removal_equals_never_inserted(strings in dense_corpus(), tau_max in 1usize..4, seed in proptest::arbitrary::any::<u64>()) {
        // Insert everything, remove a pseudo-random subset: queries must
        // equal an index over the survivors alone (modulo ids).
        let mut rng = StdRng::seed_from_u64(seed);
        let mut full = OnlineIndex::from_strings(strings.iter(), tau_max);
        let mut survivors: Vec<&Vec<u8>> = Vec::new();
        for (i, s) in strings.iter().enumerate() {
            if rng.gen_bool(0.4) {
                prop_assert!(full.remove(i as u32));
            } else {
                survivors.push(s);
            }
        }
        let fresh = OnlineIndex::from_strings(survivors.iter().copied(), tau_max);
        for q in strings.iter() {
            let got: Vec<&[u8]> = full
                .matches(q, tau_max)
                .iter()
                .map(|&(id, _)| full.get(id).unwrap())
                .collect();
            let expected: Vec<&[u8]> = fresh
                .matches(q, tau_max)
                .iter()
                .map(|&(id, _)| fresh.get(id).unwrap())
                .collect();
            prop_assert_eq!(&got, &expected, "query {:?}", q);
        }
    }
}

/// A planted corpus: datagen base strings plus controlled near-duplicates.
fn planted_corpus(n: usize, seed: u64, max_edits: usize) -> Vec<Vec<u8>> {
    let base = datagen::DatasetSpec::new(datagen::DatasetKind::Author, n)
        .with_seed(seed)
        .generate();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37);
    let mut strings = Vec::with_capacity(2 * n);
    for s in base {
        if rng.gen_bool(0.5) {
            strings.push(datagen::mutate(&s, rng.gen_range(1..=max_edits), &mut rng));
        }
        strings.push(s);
    }
    strings
}

#[test]
fn planted_corpus_matches_batch_join() {
    let strings = planted_corpus(250, 42, 2);
    check_matches_batch_join(&strings, 3);
}

#[test]
fn insert_order_invariance_on_planted_corpus() {
    let strings = planted_corpus(200, 7, 2);
    let tau = 2;
    let reference = OnlineIndex::from_strings(strings.iter(), tau);

    // A deterministic permutation: insert in reversed-then-interleaved
    // order, remembering position ↔ id mappings.
    let mut order: Vec<usize> = (0..strings.len()).collect();
    let mut rng = StdRng::seed_from_u64(99);
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    let mut shuffled = OnlineIndex::new(tau);
    let mut id_to_pos = vec![0u32; strings.len()];
    for &pos in &order {
        let id = shuffled.insert(&strings[pos]);
        id_to_pos[id as usize] = pos as u32;
    }

    for q in strings.iter().step_by(3) {
        let expected = reference.matches(q, tau);
        let mut got: Vec<(u32, usize)> = shuffled
            .matches(q, tau)
            .into_iter()
            .map(|(id, d)| (id_to_pos[id as usize], d))
            .collect();
        got.sort_unstable();
        assert_eq!(got, expected, "query {:?}", String::from_utf8_lossy(q));
    }
}

#[test]
fn insert_remove_insert_roundtrip_on_planted_corpus() {
    let strings = planted_corpus(150, 13, 2);
    let tau = 2;
    let mut index = OnlineIndex::from_strings(strings.iter(), tau);
    let reference = OnlineIndex::from_strings(strings.iter(), tau);

    // Remove every other string, then re-insert it (fresh ids): queries
    // must be unchanged up to id renaming — compare by resolved bytes.
    let mut renamed = vec![u32::MAX; strings.len()];
    for (i, s) in strings.iter().enumerate().step_by(2) {
        assert!(index.remove(i as u32));
        renamed[i] = index.insert(s);
    }
    for (i, r) in renamed.iter().enumerate() {
        if *r != u32::MAX {
            assert_eq!(index.get(*r).unwrap(), &strings[i][..]);
            assert_eq!(index.get(i as u32), None);
        }
    }
    assert_eq!(index.len(), strings.len());

    for q in strings.iter().step_by(3) {
        let expected: Vec<(&[u8], usize)> = reference
            .matches(q, tau)
            .iter()
            .map(|&(id, d)| (reference.get(id).unwrap(), d))
            .collect();
        let got: Vec<(&[u8], usize)> = {
            let mut matches = index.matches(q, tau);
            // Translate fresh ids back to original positions to restore
            // the reference's id-order.
            let original = |id: u32| renamed.iter().position(|&r| r == id).map(|p| p as u32);
            matches.sort_by_key(|&(id, _)| original(id).unwrap_or(id));
            matches
                .iter()
                .map(|&(id, d)| (index.get(id).unwrap(), d))
                .collect()
        };
        assert_eq!(got, expected, "query {:?}", String::from_utf8_lossy(q));
    }
}

#[test]
fn cached_and_uncached_agree_under_churn() {
    let strings = planted_corpus(120, 21, 2);
    let mut index = OnlineIndex::from_strings(strings.iter(), 2);
    let mut rng = StdRng::seed_from_u64(5);
    for round in 0..200 {
        let q = &strings[rng.gen_range(0..strings.len())];
        let cached =
            index.search(&SearchRequest::new(q.as_slice(), 2).with_cache(CachePolicy::Use));
        assert_eq!(*cached.matches, index.matches(q, 2), "round {round}");
        if round % 7 == 0 {
            // Mutate: the cache must never serve stale results (checked by
            // the equality above on subsequent rounds).
            let victim = rng.gen_range(0..strings.len()) as u32;
            index.remove(victim);
        }
    }
    let stats = index.cache_stats();
    assert!(
        stats.hits > 0,
        "workload must produce cache hits: {stats:?}"
    );
    assert!(stats.invalidations > 0);
}
