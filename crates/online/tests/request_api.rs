//! Differential harness for the typed query API: the
//! [`SearchRequest`]/[`Queryable`] engine must be **byte-identical** to
//! every legacy query surface it replaced — `query`, `query_with`,
//! `query_batch`, `par_query_batch`, `query_cached`, and the `Snapshot`
//! variants — on both key backends, for every τ ≤ τ_max, on random and
//! planted corpora. On top of the legacy contract, the new shapes must be
//! consistent with each other: a mixed-τ batch equals a per-query loop, a
//! top-k result equals the truncated `(distance, id)`-sorted full result,
//! and a count equals the full result's length — with the early exits
//! those shapes promise observable in the per-request statistics.
//!
//! This is the designated compatibility suite: it exercises the
//! deprecated wrappers on purpose.
#![allow(deprecated)]

use std::sync::Arc;

use passjoin_online::{
    CacheOutcome, CachePolicy, KeyBackend, Match, OnlineIndex, Parallelism, QueryOutcome,
    Queryable, SearchRequest,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build(strings: &[Vec<u8>], tau_max: usize, backend: KeyBackend) -> OnlineIndex {
    OnlineIndex::builder(tau_max)
        .key_backend(backend)
        .build_from(strings.iter())
}

/// The k smallest matches of `full` by `(distance, id)` — the top-k
/// reference semantics.
fn truncate_by_distance(full: &[Match], k: usize) -> Vec<Match> {
    let mut scored: Vec<(usize, u32)> = full.iter().map(|&(id, d)| (d, id)).collect();
    scored.sort_unstable();
    scored.into_iter().take(k).map(|(d, id)| (id, d)).collect()
}

/// Every legacy surface against the typed path, one query at a time.
fn assert_single_paths_agree(index: &OnlineIndex, queries: &[Vec<u8>]) {
    let snapshot = index.snapshot();
    for tau in 0..=index.tau_max() {
        for q in queries {
            let legacy = index.query(q, tau);
            let outcome = index.search(&SearchRequest::new(q.as_slice(), tau));
            assert_eq!(*outcome.matches, legacy, "search vs query at tau={tau}");
            assert_eq!(outcome.count, legacy.len());
            assert_eq!(outcome.cache, CacheOutcome::Bypass);
            assert_eq!(index.matches(q, tau), legacy, "matches vs query");

            let mut scratch = index.scratch();
            let mut via_with = vec![(u32::MAX, 0)]; // must append, not clear
            index.query_with(q, tau, &mut scratch, &mut via_with);
            assert_eq!(via_with[0], (u32::MAX, 0));
            assert_eq!(&via_with[1..], legacy.as_slice(), "query_with tail");

            assert_eq!(snapshot.query(q, tau), legacy, "snapshot::query");
            assert_eq!(
                *snapshot
                    .search(&SearchRequest::new(q.as_slice(), tau))
                    .matches,
                legacy,
                "snapshot::search"
            );
        }
    }
}

/// Every legacy batch surface against the typed batch, at every τ.
fn assert_batch_paths_agree(index: &OnlineIndex, queries: &[Vec<u8>]) {
    let snapshot = index.snapshot();
    for tau in 0..=index.tau_max() {
        let legacy = index.query_batch(queries, tau);
        let reqs = SearchRequest::uniform(queries, tau);
        assert_eq!(
            index.search_batch(&reqs).into_matches(),
            legacy,
            "uniform batch at tau={tau}"
        );
        let par_reqs: Vec<SearchRequest> = queries
            .iter()
            .map(|q| {
                SearchRequest::new(q.as_slice(), tau).with_parallelism(Parallelism::Threads(3))
            })
            .collect();
        assert_eq!(
            index.search_batch(&par_reqs).into_matches(),
            index.par_query_batch(queries, tau, 3),
            "parallel batch at tau={tau}"
        );
        assert_eq!(
            snapshot.search_batch(&reqs).into_matches(),
            snapshot.query_batch(queries, tau),
            "snapshot batch at tau={tau}"
        );
    }
}

/// Mixed-τ batches must equal a per-query loop of single searches, and
/// shaped requests must equal their reference semantics derived from the
/// full result.
fn assert_shapes_agree(index: &OnlineIndex, queries: &[Vec<u8>], seed: u64) {
    let tau_max = index.tau_max();
    let mut rng = StdRng::seed_from_u64(seed);
    let mixed: Vec<SearchRequest> = queries
        .iter()
        .map(|q| SearchRequest::new(q.as_slice(), rng.gen_range(0..=tau_max)))
        .collect();
    let batched = index.search_batch(&mixed);
    for (req, outcome) in mixed.iter().zip(&batched.outcomes) {
        assert_eq!(
            outcome,
            &index.search(req),
            "mixed-τ batch entry ≡ single search"
        );
        let full = &outcome.matches;
        for k in [0usize, 1, 2, full.len(), full.len() + 3] {
            let topk = index.search(&req.clone().with_limit(k));
            assert_eq!(
                *topk.matches,
                truncate_by_distance(full, k),
                "top-{k} ≡ truncated sorted full result"
            );
            let capped = index.search(&req.clone().count_only().with_limit(k));
            assert_eq!(capped.count, full.len().min(k), "capped count");
            assert!(capped.matches.is_empty());
        }
        let counted = index.search(&req.clone().count_only());
        assert_eq!(counted.count, full.len(), "count ≡ full length");
        assert!(counted.matches.is_empty());
    }
}

fn dense_corpus() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(
        proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 0..12),
        0..24,
    )
}

fn off_corpus_queries() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(
        proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 0..16),
        1..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn request_path_equals_legacy_on_both_backends(
        strings in dense_corpus(),
        extra in off_corpus_queries(),
        tau_max in 1usize..4,
    ) {
        let mut queries = strings.clone();
        queries.extend(extra);
        for backend in [KeyBackend::Owned, KeyBackend::Interned] {
            let index = build(&strings, tau_max, backend);
            assert_single_paths_agree(&index, &queries);
            assert_batch_paths_agree(&index, &queries);
        }
    }

    #[test]
    fn shaped_requests_equal_reference_semantics(
        strings in dense_corpus(),
        extra in off_corpus_queries(),
        tau_max in 1usize..4,
        seed in proptest::arbitrary::any::<u64>(),
    ) {
        let mut queries = strings.clone();
        queries.extend(extra);
        for backend in [KeyBackend::Owned, KeyBackend::Interned] {
            let index = build(&strings, tau_max, backend);
            assert_shapes_agree(&index, &queries, seed);
        }
    }

    #[test]
    fn cached_request_equals_legacy_query_cached(
        strings in dense_corpus(),
        tau_max in 1usize..4,
    ) {
        for backend in [KeyBackend::Owned, KeyBackend::Interned] {
            // Two indices with identical contents: one exercises the
            // legacy wrapper, the other the typed path — their cache
            // behaviour and results must line up query-for-query.
            let legacy_ix = build(&strings, tau_max, backend);
            let typed_ix = build(&strings, tau_max, backend);
            for round in 0..2 {
                for q in &strings {
                    let legacy: Arc<Vec<Match>> = legacy_ix.query_cached(q, tau_max);
                    let typed: QueryOutcome = typed_ix.search(
                        &SearchRequest::new(q.as_slice(), tau_max).with_cache(CachePolicy::Use),
                    );
                    prop_assert_eq!(&*legacy, &*typed.matches, "round {}", round);
                }
            }
            let (l, t) = (legacy_ix.cache_stats(), typed_ix.cache_stats());
            prop_assert_eq!(l.hits, t.hits, "hit counters must match");
            prop_assert_eq!(l.misses, t.misses);
        }
    }
}

/// A planted corpus with many near-duplicates per base string — the
/// match-heavy shape where top-k / capped-count early exits pay off.
fn heavy_corpus(n: usize, dups: usize, seed: u64) -> Vec<Vec<u8>> {
    let base = datagen::DatasetSpec::new(datagen::DatasetKind::Author, n)
        .with_seed(seed)
        .generate();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5);
    let mut strings = Vec::with_capacity(n * (dups + 1));
    for s in base {
        for _ in 0..dups {
            strings.push(datagen::mutate(&s, rng.gen_range(1..=2), &mut rng));
        }
        strings.push(s);
    }
    strings
}

#[test]
fn planted_corpus_agrees_across_all_paths() {
    let strings = heavy_corpus(150, 1, 42);
    let queries: Vec<Vec<u8>> = strings.iter().step_by(4).cloned().collect();
    for backend in [KeyBackend::Owned, KeyBackend::Interned] {
        let index = build(&strings, 3, backend);
        assert_single_paths_agree(&index, &queries);
        assert_batch_paths_agree(&index, &queries);
        assert_shapes_agree(&index, &queries, 7);
    }
}

#[test]
fn limit_and_count_observably_avoid_work() {
    // A match-heavy neighbourhood with *length diversity*: deletion
    // variants (len−1), substitution variants (len), and insertion
    // variants (len+1) of one base string. A top-1 search finds the exact
    // match while scanning length len, tightens its bound to 0, and must
    // then skip the insertion-variant lengths without verifying a single
    // candidate there.
    let base = b"partition based similarity join".to_vec();
    let mut strings: Vec<Vec<u8>> = Vec::new();
    for i in 0..10 {
        let mut del = base.clone();
        del.remove(i * 2);
        strings.push(del); // length len−1, distance 1
        let mut sub = base.clone();
        sub[i * 3] = b'#';
        strings.push(sub); // length len, distance 1
        let mut ins = base.clone();
        ins.insert(i * 2, b'+');
        strings.push(ins); // length len+1, distance 1
    }
    strings.push(base.clone()); // the exact match, distance 0
    let index = OnlineIndex::from_strings(strings.iter(), 2);
    let q = base.as_slice();

    let full = index.search(&SearchRequest::new(q, 2));
    assert!(
        full.count >= 31,
        "corpus must be match-heavy: {}",
        full.count
    );

    let top1 = index.search(&SearchRequest::new(q, 2).with_limit(1));
    assert_eq!(top1.matches.len(), 1);
    assert!(
        top1.stats.verifications < full.stats.verifications,
        "top-1 must verify less than the full scan: {} vs {}",
        top1.stats.verifications,
        full.stats.verifications
    );

    let exists = index.search(&SearchRequest::new(q, 2).count_only().with_limit(1));
    assert_eq!(exists.count, 1);
    assert!(
        exists.stats.candidates < full.stats.candidates,
        "a saturated count must stop scanning candidates: {} vs {}",
        exists.stats.candidates,
        full.stats.candidates
    );

    // And the uncapped count still visits everything but materializes
    // nothing.
    let counted = index.search(&SearchRequest::new(q, 2).count_only());
    assert_eq!(counted.count, full.count);
    assert_eq!(counted.stats, full.stats, "same work, no result vector");
}

#[test]
fn queryable_is_object_safe_over_both_sources() {
    let mut index = OnlineIndex::new(2);
    index.insert(b"object safety");
    index.insert(b"object safetty");
    let snapshot = index.snapshot();

    // One binding, either source — what the CLI does.
    for source in [&index as &dyn Queryable, &snapshot as &dyn Queryable] {
        assert_eq!(source.tau_max(), 2);
        assert_eq!(source.len(), 2);
        assert_eq!(source.key_backend(), KeyBackend::Owned);
        let outcome = source.search(&SearchRequest::new(b"object safety", 1));
        assert_eq!(*outcome.matches, vec![(0, 0), (1, 1)]);
        let batch = source.search_batch(&SearchRequest::uniform(&[b"object safety"], 1));
        assert_eq!(batch.outcomes.len(), 1);
        assert_eq!(batch.totals().matches, 2);
    }
}

#[test]
fn deprecated_constructors_equal_builder() {
    let strings: Vec<&[u8]> = vec![b"builder", b"bulider", b"unrelated"];
    let via_builder = OnlineIndex::builder(2)
        .key_backend(KeyBackend::Interned)
        .build_from(strings.iter())
        .snapshot();
    let via_deprecated =
        OnlineIndex::from_strings_with(strings.iter(), 2, KeyBackend::Interned).snapshot();
    assert_eq!(via_builder.key_backend(), via_deprecated.key_backend());
    for q in &strings {
        assert_eq!(via_builder.matches(q, 2), via_deprecated.matches(q, 2));
    }

    let mut empty = OnlineIndex::with_key_backend(1, KeyBackend::Interned);
    assert_eq!(empty.key_backend(), KeyBackend::Interned);
    empty.insert(b"still works");
    assert_eq!(empty.matches(b"still works", 0).len(), 1);

    // with_cache_capacity(0) still disables caching through the wrapper.
    let mut uncached = OnlineIndex::new(1).with_cache_capacity(0);
    uncached.insert(b"abc");
    let req = SearchRequest::new(b"abc", 1).with_cache(CachePolicy::Use);
    assert_eq!(uncached.search(&req).cache, CacheOutcome::Miss);
    assert_eq!(uncached.search(&req).cache, CacheOutcome::Miss);
    assert_eq!(uncached.cache_stats().hits, 0);
}

#[test]
fn legacy_cached_arc_identity_is_preserved() {
    // The legacy wrapper's contract includes *sharing* (`Arc` identity) on
    // repeat hits — pinned so the wrapper stays a true drop-in.
    let mut index = OnlineIndex::new(1);
    index.insert(b"shared result");
    let first = index.query_cached(b"shared result", 1);
    let again = index.query_cached(b"shared result", 1);
    assert!(Arc::ptr_eq(&first, &again), "hits must share the result");
}

#[test]
fn mixed_tau_batch_groups_by_tau_and_length() {
    // Same query text at different τ in one batch: grouping must never
    // bleed one request's threshold into another's results.
    let strings = heavy_corpus(80, 2, 3);
    let index = OnlineIndex::from_strings(strings.iter(), 3);
    let q = strings[0].as_slice();
    let reqs: Vec<SearchRequest> = (0..=3).map(|tau| SearchRequest::new(q, tau)).collect();
    let response = index.search_batch(&reqs);
    for (tau, outcome) in response.outcomes.iter().enumerate() {
        assert_eq!(*outcome.matches, index.matches(q, tau), "tau={tau}");
    }
    // Counts grow with τ (weakly), so any cross-contamination shows.
    for pair in response.outcomes.windows(2) {
        assert!(pair[0].count <= pair[1].count);
    }
}
